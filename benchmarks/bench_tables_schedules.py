"""Tables I-V — the published multi-dimensional affine schedules.

Regenerates the legality report (every transcribed schedule verified
against the machine-extracted dependences) and times the two pipeline
stages the paper's compilation scripts run: dependence checking and
schedule-driven code generation.  Table V's tiled subsystem is exercised
via the tiling directives on the DMP system.
"""

import numpy as np
import pytest

from repro.bench.figures import run_experiment
from repro.core.alpha_model import (
    bpmax_system,
    dmp_system,
    schedules_for,
    target_mapping_for,
)
from repro.core.dmp import random_triangles
from repro.polyhedral.codegen import compile_schedule, generate_schedule_code
from repro.polyhedral.dependence import check_all

from conftest import emit


def test_tables_rows():
    res = run_experiment("tables1-4")
    emit(res)
    assert all(v == 0 for v in res.column("violations"))


@pytest.mark.parametrize("variant", ["fine", "coarse", "hybrid"])
def test_legality_check_cost(benchmark, variant):
    sys_ = bpmax_system(include_s=False)
    deps = sys_.dependences()
    vs = schedules_for(variant)
    scheds, ready = vs.checker_schedules()

    def check():
        return check_all(deps, scheds, {"N": 3, "M": 3}, producer_schedules=ready)

    assert benchmark(check) == []


@pytest.mark.parametrize("variant", ["fine", "coarse", "hybrid"])
def test_schedgen_cost(benchmark, variant):
    sys_ = bpmax_system(include_s=False)
    tm = target_mapping_for(variant)
    src = benchmark(generate_schedule_code, sys_, tm, f"bp_{variant}")
    assert "heapq" in src


def test_table5_tiled_subsystem_executes(benchmark):
    """Table V: the tiled double max-plus subsystem end to end."""
    tr = random_triangles(3, 5, 4)
    tm = target_mapping_for("dmp", "dmp")
    tm.set_tiling("R0", (0, 0, 0, 2, 2, 0))
    tm.set_tiling("F", (0, 0, 0, 2, 2, 0))
    fn, _ = compile_schedule(dmp_system(), tm, func_name="dmp_t")

    def run():
        return fn({"N": 3, "M": 5}, {"T": np.stack(tr)})

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert np.isfinite(out["F"][0, 2, 0, 4])


def test_schedule_exploration_rows(benchmark):
    """§IV-A automated: the full candidate sweep, timed end to end."""
    from repro.bench.figures import run_experiment

    res = benchmark.pedantic(run_experiment, args=("explore",), rounds=2, iterations=1)
    emit(res)
    assert all(r["legal"] for r in res.rows)
    assert res.rows[0]["vectorizable"], "paper's j2-innermost choice wins"
