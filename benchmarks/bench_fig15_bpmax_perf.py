"""Fig. 15 — full BPMax performance by program version.

pytest-benchmark entries time every optimized engine on the shared
(4, 24) workload; the regenerated model rows project the paper's
curves (tiled hybrid ~76 GFLOPS at moderate sizes, coarse/fine worst).
"""

import pytest

from repro.bench.figures import run_experiment
from repro.core.engine import make_engine

from conftest import emit

VARIANTS = ["coarse", "fine", "hybrid", "hybrid-tiled"]


def test_fig15_rows():
    res = run_experiment("fig15")
    emit(res)
    moderate = [r for r in res.rows if r["m"] <= 1024]
    assert max(r["hybrid-tiled"] for r in moderate) == pytest.approx(76, rel=0.2)
    for row in res.rows:
        assert row["hybrid-tiled"] >= row["hybrid"] >= row["fine"]


@pytest.mark.parametrize("variant", VARIANTS)
def test_fig15_engine(benchmark, bpmax_workload, variant):
    def run():
        return make_engine(bpmax_workload, variant, tile=(8, 4, 0)).run()

    score = benchmark.pedantic(run, rounds=3, iterations=1)
    assert score >= 0
