"""Fig. 17 — effect of hyper-threading on the tiled double max-plus.

The model rows reproduce the paper's 3-5% SMT gain; the pytest-benchmark
entries time the real thread-pool path (row-partitioned R0 products) at
1 and 2 workers — on this single-core host the 2-worker run mainly
validates the code path rather than scaling.
"""

import pytest

from repro.bench.figures import run_experiment
from repro.core.vectorized import VectorizedBPMax

from conftest import emit


def test_fig17_rows():
    res = run_experiment("fig17")
    emit(res)
    for row in res.rows:
        assert 1.01 <= row["smt_gain"] <= 1.06, "paper: minimal 3-5% improvement"


@pytest.mark.parametrize("threads", [1, 2])
def test_fig17_threaded_engine(benchmark, bpmax_workload, threads):
    def run():
        return VectorizedBPMax(
            bpmax_workload, variant="hybrid-tiled", tile=(8, 4, 0), threads=threads
        ).run()

    score = benchmark.pedantic(run, rounds=3, iterations=1)
    assert score >= 0
