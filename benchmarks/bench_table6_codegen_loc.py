"""Table VI — auto-generated code statistics.

Regenerates the LOC rows for every program version (the paper reports
140 / 150 / ~1200 / ~1400 C LOC; our Python generator reproduces the
ordering and growth) and times the generators themselves.
"""

from repro.bench.figures import run_experiment
from repro.core.alpha_model import bpmax_system, dmp_system, target_mapping_for
from repro.polyhedral.codegen import (
    generate_schedule_code,
    generate_window_kernel,
    generate_write_code,
)

from conftest import emit


def test_table6_rows():
    res = run_experiment("table6")
    emit(res)
    loc = {r["implementation"]: r["loc"] for r in res.rows}
    # the paper's ordering: base < DMP-scheduled-ish << full BPMax < tiled
    assert loc["BPMax fine (scheduled)"] > 2 * loc["BPMax base (writeC)"]
    assert (
        loc["Double max-plus tiled (scheduled)"] > loc["Double max-plus (scheduled)"]
    )
    assert loc["BPMax hybrid (scheduled)"] >= loc["BPMax coarse (scheduled)"]
    # the vectorized window kernels (what `--backend generated` runs)
    # stay an order of magnitude below the statement-per-point programs,
    # and column tiling adds code just as the paper's tiled row does
    assert loc["Window kernel kmajor (vectorized)"] < loc["BPMax base (writeC)"]
    assert (
        loc["Window kernel kmajor tiled (vectorized)"]
        > loc["Window kernel kmajor (vectorized)"]
    )


def test_window_kernel_generation_cost(benchmark):
    src = benchmark(generate_window_kernel, "kmajor", 0)
    assert "def make_kernel" in src


def test_writec_generation_cost(benchmark):
    sys_ = bpmax_system(include_s=True)
    src = benchmark(generate_write_code, sys_, "bp")
    assert "def _v_F" in src


def test_schedgen_generation_cost(benchmark):
    sys_ = dmp_system()
    tm = target_mapping_for("dmp", "dmp")
    src = benchmark(generate_schedule_code, sys_, tm, "d")
    assert "def _stmt" in src
