"""Fig. 14 — double max-plus speedup over the original implementation.

Regenerates the model speedup curves (paper: ~178x for tiled) and
measures the real wall-clock ratio between the pure-Python baseline
kernel and the NumPy kernels on this substrate.
"""

import pytest

from repro.bench.figures import run_experiment
from repro.bench.harness import measure
from repro.core.dmp import DoubleMaxPlus, dmp_flops

from conftest import emit


def test_fig14_rows():
    res = run_experiment("fig14")
    emit(res)
    assert 100 <= max(res.column("tiled")) <= 250, "paper: ~178x"
    for row in res.rows:
        assert row["tiled"] >= row["fine-ltr"], "tiling only helps"


def test_fig14_measured_kernel_speedup(dmp_workload):
    """Wall-clock naive vs tiled on the shared workload."""
    naive = measure(
        DoubleMaxPlus([t.copy() for t in dmp_workload], kernel="naive").run, "naive"
    )
    tiled = measure(
        DoubleMaxPlus(
            [t.copy() for t in dmp_workload], kernel="tiled", tile=(16, 4, 0)
        ).run,
        "tiled",
    )
    speedup = naive.seconds / tiled.seconds
    print(f"\nmeasured kernel speedup (4 x 48): {speedup:.1f}x")
    assert speedup > 10


def test_fig14_vectorized_engine(benchmark, dmp_workload):
    def run():
        return DoubleMaxPlus([t.copy() for t in dmp_workload], kernel="vectorized").run()

    benchmark.pedantic(run, rounds=5, iterations=1)
