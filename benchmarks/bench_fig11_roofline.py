"""Fig. 11 — roofline model of the Xeon E5-1650v4.

Regenerates the per-level attainable-GFLOPS rows (the paper's ~346
GFLOPS peak and ~329 GFLOPS L1 expectation for AI = 1/6) and times the
roofline evaluation itself.
"""

import pytest

from repro.bench.figures import run_experiment
from repro.machine.roofline import MAXPLUS_STREAM_AI, Roofline
from repro.machine.specs import XEON_E5_1650V4

from conftest import emit


def test_fig11_rows():
    res = run_experiment("fig11")
    emit(res)
    g = {r["level"]: r["attainable_gflops"] for r in res.rows}
    assert g["L1"] == pytest.approx(329, rel=0.05)
    assert g["L1"] > g["L2"] > g["L3"] > g["DRAM"]
    assert all(r["bound"] == "memory" for r in res.rows), "AI=1/6 is memory-bound everywhere"


def test_fig11_curve_evaluation(benchmark):
    rl = Roofline(XEON_E5_1650V4, 6)

    def evaluate():
        return [rl.curve(level) for level in rl.levels()]

    curves = benchmark(evaluate)
    assert len(curves) == 4


def test_fig11_peak():
    rl = Roofline(XEON_E5_1650V4, 6)
    assert rl.peak_gflops == pytest.approx(345.6)
    assert rl.maxplus_bound("L1").arithmetic_intensity == MAXPLUS_STREAM_AI
