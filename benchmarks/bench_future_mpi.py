"""Conclusion future work — distributing BPMax over a cluster with MPI.

Regenerates the projected strong-scaling table on the simulated cluster
and times the real distributed executor (numerics + simulated comm) on a
small workload, checking score equality with the oracle.
"""

import pytest

from repro.bench.figures import run_experiment
from repro.core.distributed import DistributedBPMax
from repro.core.reference import bpmax_recursive
from repro.parallel.mpi import ClusterSpec

from conftest import emit


def test_mpi_scaling_rows():
    res = run_experiment("mpi-scaling")
    emit(res)
    speedup = {r["ranks"]: r["speedup"] for r in res.rows}
    assert speedup[1] == pytest.approx(1.0, rel=0.05)
    assert speedup[2] > 1.5
    assert speedup[16] > speedup[4] > speedup[2]
    eff = [r["efficiency"] for r in res.rows]
    assert eff == sorted(eff, reverse=True), "efficiency decays with ranks"


@pytest.mark.parametrize("ranks", [1, 4])
def test_distributed_executor(benchmark, bpmax_workload, ranks):
    def run():
        return DistributedBPMax(bpmax_workload, ClusterSpec(ranks=ranks)).run()

    rep = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rep.score == pytest.approx(bpmax_recursive(bpmax_workload))
