"""Fig. 13 — double max-plus performance by schedule.

pytest-benchmark entries time each kernel variant on the shared 4 x 48
workload (NumPy vectorization standing in for SIMD); the regenerated
model rows project the paper's 6-thread GFLOPS curves, where the tiled
kernel reaches ~117 GFLOPS.
"""

import pytest

from repro.bench.figures import run_experiment
from repro.core.dmp import DoubleMaxPlus

from conftest import emit

KERNELS = ["naive", "scalar-k-inner", "vectorized", "tiled"]


def test_fig13_rows():
    res = run_experiment("fig13")
    emit(res)
    for row in res.rows:
        assert row["tiled"] >= row["fine-ltr"] >= row["base"]
        assert row["tiled"] > row["coarse"], "coarse performs very poorly (paper)"
    assert max(r["tiled"] for r in res.rows) == pytest.approx(117, rel=0.1)


@pytest.mark.parametrize("kernel", KERNELS)
def test_fig13_kernel(benchmark, dmp_workload, kernel):
    def run():
        eng = DoubleMaxPlus(
            [t.copy() for t in dmp_workload], kernel=kernel, tile=(16, 4, 0)
        )
        return eng.run()

    result = benchmark.pedantic(run, rounds=2 if kernel == "naive" else 5, iterations=1)
    assert (0, len(dmp_workload) - 1) in result
