"""Figs. 7, 9 and 10 — memory maps and storage accounting.

Fig. 7/9: the phase-II vs phase-III reduction-variable storage budgets
(phase III shares R0/R3/R4 storage with F and keeps one row for R1/R2).
Fig. 10: memory-mapping option 1 (i2, j2) vs option 2 (i2, j2 - i2) —
the paper finds option 1 always faster; we time row access in both
layouts and regenerate the accounting rows.
"""

import numpy as np
import pytest

from repro.bench.harness import ExperimentResult
from repro.core.tables import FTable
from repro.machine.counters import BYTES_F32, t1

from conftest import emit


def _phase2_reduction_bytes(m: int, threads: int) -> int:
    """Phase II: P live 2-D arrays per reduction variable (R1..R4)."""
    return 4 * threads * m * m * BYTES_F32


def _phase3_reduction_bytes(m: int, threads: int) -> int:
    """Phase III: R0/R3/R4 share F's storage; one row each for R1/R2."""
    return 2 * threads * m * BYTES_F32


def test_fig07_09_rows():
    res = ExperimentResult(
        "fig07-09",
        "Reduction-variable storage: phase II vs phase III memory maps",
        ("m", "threads", "phase2_bytes", "phase3_bytes", "saving"),
        notes="phase III shares R0/R3/R4 with F and keeps one row for R1/R2",
    )
    for m in (512, 1024, 2048):
        p2 = _phase2_reduction_bytes(m, 6)
        p3 = _phase3_reduction_bytes(m, 6)
        res.add(m=m, threads=6, phase2_bytes=p2, phase3_bytes=p3, saving=p2 / p3)
        assert p3 < p2 / 100, "phase III saves orders of magnitude"
    emit(res)


def test_fig10_rows():
    res = ExperimentResult(
        "fig10",
        "Inner-triangle memory maps: allocated vs touched bytes",
        ("layout", "m", "allocated", "touched", "box_fraction"),
        notes="AlphaZ's bounding box allocates ~2x the touched triangle",
    )
    for layout in ("option1", "option2"):
        t = FTable(4, 64, layout=layout)
        for w in t.windows():
            t.alloc(*w)
        res.add(
            layout=layout,
            m=64,
            allocated=t.bytes_allocated(),
            touched=t.bytes_touched(),
            box_fraction=t.bytes_touched() / t.bytes_allocated(),
        )
    emit(res)
    assert res.rows[0]["allocated"] == res.rows[1]["allocated"]


@pytest.mark.parametrize("layout", ["option1", "option2"])
def test_fig10_row_access(benchmark, layout):
    """Option 1 keeps rows contiguous; option 2 pays a per-row skew."""
    t = FTable(2, 256, layout=layout)
    g = t.alloc(0, 1)
    g[:] = np.random.default_rng(0).random((256, 256)).astype(np.float32)

    def touch_rows():
        phys = t.physical(0, 1)
        return float(phys.sum())

    benchmark(touch_rows)


def test_memory_overhead_claim():
    """§IV-B-c: 'Memory-overhead ... is M^2 x N^2. However, we only need
    one-fourth of that memory.'"""
    n, m = 64, 256
    box = n * n * m * m * BYTES_F32
    needed = t1(n) * t1(m) * BYTES_F32
    assert needed / box == pytest.approx(0.25, rel=0.1)
