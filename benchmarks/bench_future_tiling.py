"""Conclusion future work — register-level tiling and R1/R2 tiling.

Regenerates the model ablation (kernel becomes compute-bound; the full
program escapes the R1/R2 cap), times the real two-level register
kernel against the one-level tiled kernel on this substrate, and times
the production ``tiled`` wavefront backend — the realization of the
conclusion's tiling proposal — against ``numpy-batched``.
"""

import numpy as np
import pytest

from repro.bench.figures import run_experiment
from repro.core.dmp import DoubleMaxPlus
from repro.core.engine import make_engine
from repro.kernels import BACKENDS
from repro.machine.perfmodel import PerfModel
from repro.semiring.maxplus import NEG_INF, maxplus_matmul_register, maxplus_matmul_tiled

from conftest import emit


def test_future_work_rows():
    res = run_experiment("future-work")
    emit(res)
    for row in res.rows:
        assert row["dmp_register"] > 1.5 * row["dmp_tiled"], "register tiling wins"
        assert row["bpmax_r12_tiled"] > row["bpmax_tiled"], "R1/R2 tiling wins"
    # the conclusion's goal: compute-bound, not bandwidth-bound
    assert all(r["dmp_bound"] == "peak" for r in res.rows)


def test_register_kernel_compute_bound_transition():
    """Model: register-tiled hits ~85% of the 346 GFLOPS peak."""
    pm = PerfModel()
    r = pm.predict_dmp("register-tiled", 16, 1024, tile=(64, 16, 0))
    assert r.gflops == pytest.approx(0.85 * 345.6, rel=0.02)


@pytest.mark.parametrize("kernel", ["tiled", "register-tiled"])
def test_future_kernels(benchmark, dmp_workload, kernel):
    def run():
        return DoubleMaxPlus(
            [t.copy() for t in dmp_workload], kernel=kernel, tile=(16, 8, 0)
        ).run()

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("backend", ["numpy-batched", "tiled"])
def test_future_bpmax_tiled_backend(benchmark, bpmax_workload, backend):
    """The realized future-work path: full BPMax through the tile graph."""
    if not BACKENDS[backend].available:
        pytest.skip(BACKENDS[backend].note)
    expected = make_engine(bpmax_workload, variant="batched").run()

    def run():
        return make_engine(bpmax_workload, variant="batched", backend=backend).run()

    score = benchmark.pedantic(run, rounds=3, iterations=1)
    assert score == expected


def test_register_kernel_correct():
    rng = np.random.default_rng(0)
    a = rng.random((20, 15)).astype(np.float32)
    b = rng.random((15, 25)).astype(np.float32)
    ref = np.full((20, 25), NEG_INF, dtype=np.float32)
    maxplus_matmul_tiled(a, b, ref, tile=(4, 4, 0))
    got = np.full((20, 25), NEG_INF, dtype=np.float32)
    maxplus_matmul_register(a, b, got, tile=(8, 8, 8), reg=3)
    assert np.allclose(ref, got)
