"""Kernel-backend benchmark: the R0 hot path across registered backends.

Times a full BPMax run per registered-and-available backend (through the
``batched`` program version) against the classic ``hybrid-tiled`` engine
on one (N, M) workload, checks that every timed engine returns the exact
same score, and writes ``BENCH_kernels.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel_backends.py \\
        --n 40 --m 40 --out BENCH_kernels.json

Single-backend mode (``--backend`` / ``--threads``) times one named
backend against the always-timed ``numpy-batched`` denominator and
records ``speedup_vs_numpy_batched`` — how ``BENCH_tiled.json`` is made::

    PYTHONPATH=src python benchmarks/bench_kernel_backends.py \\
        --backend tiled --threads 2 --n 60 --m 60 --out BENCH_tiled.json

CI regression gate (perf-smoke job)::

    PYTHONPATH=src python benchmarks/bench_kernel_backends.py \\
        --n 24 --m 24 --out BENCH_kernels.json \\
        --check-against benchmarks/BENCH_kernels_baseline.json --tolerance 0.3

The gate compares the *relative speedup* of the default backend over
``hybrid-tiled`` measured in the same process — machine-independent, so
a committed laptop baseline remains meaningful on a CI runner.

Scaling-exponent mode (``--slope``) times every backend over a ladder of
inner sizes M, least-squares-fits log(time) against log(M) per backend
and reports the fitted exponent — the honest way to compare a
Four-Russians kernel (lower growth rate, higher constant) against the
dense batched kernel on a noisy machine::

    PYTHONPATH=src python benchmarks/bench_kernel_backends.py \\
        --slope 24,40,64,96 --backend fourrussians \\
        --merge-baseline benchmarks/BENCH_kernels_baseline.json

Codegen mode (``--codegen``) sweeps every generated (schedule × tile)
variant — the same grid ``bpmax tune --joint`` searches — plus the
joint-tuned ``generated`` backend over a ladder of square sizes, against
the ``numpy-batched`` denominator, and records the best variant per
size.  This is how the committed ``BENCH_codegen.json`` artifact is
made::

    PYTHONPATH=src python benchmarks/bench_kernel_backends.py \\
        --codegen 24,40,60 --out benchmarks/BENCH_codegen.json

Semiring mode (``--semiring logsumexp``) times the log-partition
(BPPart) workload instead of max-plus: only backends declaring the
semiring are timed, scores agree within the corpus tolerance rather
than bit-identically, and the advisory CI artifact is written as::

    PYTHONPATH=src python benchmarks/bench_kernel_backends.py \\
        --n 24 --m 24 --semiring logsumexp --out BENCH_semiring.json

Under pytest the module also exposes a smoke test at tiny sizes.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.core.engine import make_engine  # noqa: E402
from repro.core.reference import bpmax_recursive, prepare_inputs  # noqa: E402
from repro.kernels import BACKENDS, DEFAULT_BACKEND, available_backends  # noqa: E402
from repro.rna.sequence import random_pair  # noqa: E402
from repro.semiring import get_semiring  # noqa: E402

#: score-agreement tolerance for non-exact semirings (corpus policy)
LSE_TOL = 1e-9


def _time_once(inputs, **kwargs) -> tuple[float, float]:
    """(wall seconds, score) of one full run with a fresh engine."""
    engine = make_engine(inputs, **kwargs)
    t0 = time.perf_counter()
    s = engine.run()
    return time.perf_counter() - t0, s


def _agree(a: float, b: float, exact: bool) -> bool:
    """Score equality under the semiring's contract: bit-identity for
    exact semirings, the corpus tolerance otherwise."""
    if exact:
        return a == b
    return math.isclose(a, b, rel_tol=LSE_TOL, abs_tol=LSE_TOL)


def _semiring_backends(names: list[str], semiring: str) -> list[str]:
    """Drop backends that do not declare the semiring (timing their
    transparent fallback would mislabel another backend's numbers)."""
    kept = [n for n in names if semiring in BACKENDS[n].semirings]
    for skipped in sorted(set(names) - set(kept)):
        print(
            f"note: skipping {skipped!r} (declares {BACKENDS[skipped].semirings}, "
            f"not {semiring!r})",
            file=sys.stderr,
        )
    return kept


def run_bench(
    n: int,
    m: int,
    repeats: int = 3,
    seed: int = 99,
    backend: str | None = None,
    threads: int = 1,
    semiring: str = "max-plus",
) -> dict:
    """Time hybrid-tiled and every available backend; verify score equality.

    Repeats are *interleaved* (reference, then each backend, per round)
    so a load spike on a shared machine hits every contender alike
    instead of whichever happened to run during it; each entry reports
    its best round.

    ``backend`` narrows the sweep to one named backend (``numpy-batched``
    is always timed too, as the denominator of the relative-speedup
    field); ``threads`` sizes the thread pool handed to every timed
    backend engine.  ``semiring`` swaps the reduction algebra: only
    backends declaring it are timed, and score agreement is checked
    under the semiring's contract (bit-identity when exact, the corpus
    1e-9 tolerance otherwise).
    """
    sr = get_semiring(semiring)
    names = _semiring_backends(available_backends(), sr.name)
    if backend is not None:
        if backend not in names:
            raise SystemExit(
                f"backend {backend!r} is not available for semiring "
                f"{sr.name!r}; choose from {names}"
            )
        names = sorted({backend, "numpy-batched"})
    s1, s2 = random_pair(n, m, seed)
    inputs = prepare_inputs(s1, s2, semiring=sr.name)

    results: dict = {
        "n": n,
        "m": m,
        "repeats": repeats,
        "seed": seed,
        "threads": threads,
        "semiring": sr.name,
        "default_backend": DEFAULT_BACKEND,
        "engine": {},
        "backends": {},
        "speedup_vs_hybrid_tiled": {},
        "speedup_vs_numpy_batched": {},
    }
    ref_time = float("inf")
    ref_score = None
    times: dict[str, float] = {}
    scores: dict[str, float] = {}
    for _ in range(repeats):
        t, s = _time_once(inputs, variant="hybrid-tiled")
        ref_time = min(ref_time, t)
        if ref_score is None:
            ref_score = s
        elif s != ref_score:
            raise AssertionError(f"non-deterministic score: {s} != {ref_score}")
        for name in names:
            t, s = _time_once(
                inputs, variant="batched", backend=name, threads=threads
            )
            times[name] = min(times.get(name, float("inf")), t)
            scores.setdefault(name, s)
            if s != scores[name]:
                raise AssertionError(f"non-deterministic score: {s} != {scores[name]}")
    results["engine"]["hybrid-tiled"] = ref_time
    results["score"] = ref_score
    batched_time = times.get("numpy-batched")
    for name, t in times.items():
        if not _agree(scores[name], ref_score, sr.exact):
            raise AssertionError(
                f"backend {name} score {scores[name]} != "
                f"hybrid-tiled score {ref_score} ({sr.name})"
            )
        results["backends"][name] = t
        results["speedup_vs_hybrid_tiled"][name] = ref_time / t if t > 0 else 0.0
        if batched_time is not None and t > 0:
            results["speedup_vs_numpy_batched"][name] = batched_time / t
    return results


def _fit_loglog(ms: list[int], times: list[float]) -> float:
    """Least-squares slope of log(time) against log(M): the fitted exponent."""
    xs = [math.log(m) for m in ms]
    ys = [math.log(max(t, 1e-12)) for t in times]
    mx = sum(xs) / len(xs)
    my = sum(ys) / len(ys)
    sxx = sum((x - mx) ** 2 for x in xs)
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sxx


def run_slope(
    ms: list[int],
    n: int = 24,
    repeats: int = 3,
    seed: int = 99,
    backend: str | None = None,
    threads: int = 1,
) -> dict:
    """Fit the scaling exponent of each backend over a ladder of M sizes.

    For each round, each size and each backend one full run is timed —
    fully interleaved, so machine noise hits every (backend, M) cell
    alike — and the best round per cell feeds a least-squares fit of
    log(time) vs log(M).  A backend with a genuinely cheaper inner loop
    shows up as a *lower fitted exponent* even on hardware where
    run-to-run variance swamps any single same-size comparison.  Scores
    are cross-checked per size as in :func:`run_bench`.
    """
    if len(ms) < 2:
        raise SystemExit("--slope needs at least two M sizes to fit a line")
    names = available_backends()
    if backend is not None:
        if backend not in names:
            raise SystemExit(
                f"backend {backend!r} is not available; choose from {names}"
            )
        names = sorted({backend, "numpy-batched"})
    problems = []
    for m in ms:
        s1, s2 = random_pair(n, m, seed)
        problems.append((m, prepare_inputs(s1, s2)))

    times: dict[str, dict[int, float]] = {
        name: {m: float("inf") for m in ms} for name in names
    }
    scores: dict[int, float] = {}
    for _ in range(repeats):
        for m, inputs in problems:
            for name in names:
                t, s = _time_once(
                    inputs, variant="batched", backend=name, threads=threads
                )
                times[name][m] = min(times[name][m], t)
                scores.setdefault(m, s)
                if s != scores[m]:
                    raise AssertionError(
                        f"backend {name} at M={m}: score {s} != {scores[m]}"
                    )

    exponents = {
        name: _fit_loglog(ms, [times[name][m] for m in ms]) for name in names
    }
    nb = exponents.get("numpy-batched")
    return {
        "mode": "slope",
        "n": n,
        "ms": list(ms),
        "repeats": repeats,
        "seed": seed,
        "threads": threads,
        "times": {name: {str(m): times[name][m] for m in ms} for name in names},
        "fitted_exponent": exponents,
        "exponent_delta_vs_numpy_batched": (
            {name: e - nb for name, e in exponents.items()}
            if nb is not None
            else {}
        ),
    }


def run_codegen(
    sizes: list[int],
    repeats: int = 3,
    seed: int = 99,
    threads: int = 1,
    tiles: list[int] | None = None,
) -> dict:
    """Time every generated (schedule × tile) variant over square sizes.

    Per size the grid is the joint autotuner's: each shipped schedule at
    each candidate column tile (``tiles`` overrides the ladder — the
    smoke test narrows it), each wrapped in a pinned backend, plus the
    registered ``generated`` backend resolving through the joint tune
    cache.  ``numpy-batched`` is the denominator; ``tiled`` rides along
    for context.  Rounds are interleaved as in :func:`run_bench`, scores
    must be bit-identical (max-plus), and the per-size ``best_generated``
    block names the winning variant so the committed artifact documents
    *which* schedule wins where, not just that one does.
    """
    from repro.kernels import make_pinned_backend
    from repro.polyhedral.codegen.vectorize import (
        candidate_schedules,
        candidate_tiles,
    )

    sizes = sorted(set(sizes))
    out: dict = {
        "mode": "codegen",
        "repeats": repeats,
        "seed": seed,
        "threads": threads,
        "semiring": "max-plus",
        "sizes": {},
        "wins_vs_numpy_batched": [],
    }
    for size in sizes:
        s1, s2 = random_pair(size, size, seed)
        inputs = prepare_inputs(s1, s2)
        m = inputs.m
        grid = {
            f"generated:{ks.name}:wj{wj}": make_pinned_backend(ks.name, wj)
            for ks in candidate_schedules()
            for wj in (tiles if tiles is not None else candidate_tiles(m))
        }
        contenders: dict[str, object] = {"numpy-batched": "numpy-batched"}
        if "tiled" in BACKENDS and BACKENDS["tiled"].available:
            contenders["tiled"] = "tiled"
        contenders["generated"] = "generated"
        contenders.update(grid)
        times = {name: float("inf") for name in contenders}
        ref_score = None
        for name, bk in contenders.items():  # untimed warm round
            _time_once(inputs, variant="batched", backend=bk, threads=threads)
        for _ in range(repeats):
            for name, bk in contenders.items():
                t, s = _time_once(
                    inputs, variant="batched", backend=bk, threads=threads
                )
                times[name] = min(times[name], t)
                if ref_score is None:
                    ref_score = s
                elif s != ref_score:
                    raise AssertionError(
                        f"codegen sweep at {size}x{size}: backend {name} "
                        f"score {s} != {ref_score}"
                    )
        nb = times["numpy-batched"]
        speedups = {
            name: (nb / t if t > 0 else 0.0) for name, t in times.items()
        }
        gen_names = [n for n in times if n.startswith("generated")]
        best = max(gen_names, key=lambda n: speedups[n])
        key = f"{size}x{size}"
        out["sizes"][key] = {
            "n": size,
            "m": size,
            "score": ref_score,
            "times": times,
            "speedup_vs_numpy_batched": speedups,
            "best_generated": {
                "variant": best,
                "seconds": times[best],
                "speedup_vs_numpy_batched": speedups[best],
            },
        }
        if speedups[best] >= 1.0:
            out["wins_vs_numpy_batched"].append(key)
    return out


def render_codegen(results: dict) -> str:
    lines = [
        f"generated kernels vs numpy-batched, threads={results['threads']}, "
        f"best of {results['repeats']} (interleaved)",
        f"{'variant':28s} "
        + " ".join(f"{k:>12s}" for k in results["sizes"]),
    ]
    names = sorted(
        {n for sz in results["sizes"].values() for n in sz["times"]}
    )
    for name in names:
        cells = []
        for sz in results["sizes"].values():
            sp = sz["speedup_vs_numpy_batched"].get(name)
            mark = "*" if sz["best_generated"]["variant"] == name else " "
            cells.append(f"{sp:11.2f}x{mark}" if sp is not None else " " * 13)
        lines.append(f"{name:28s} " + " ".join(cells))
    lines.append(
        "(* best generated variant per size; sizes where it beats "
        f"numpy-batched: {results['wins_vs_numpy_batched'] or 'none'})"
    )
    return "\n".join(lines)


def merge_slope(results: dict, baseline_path: Path) -> None:
    """Insert one slope run under the baseline file's ``slopes`` section."""
    baseline = (
        json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    )
    key = f"n{results['n']}|m{'-'.join(str(m) for m in results['ms'])}"
    baseline.setdefault("slopes", {})[key] = results
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")


def render_slope(results: dict) -> str:
    ms = results["ms"]
    lines = [
        f"scaling exponents over M = {ms} at N = {results['n']}, "
        f"threads={results['threads']}, best of {results['repeats']} "
        "(interleaved)",
        f"{'backend':24s} {'exponent':>9s} {'vs batched':>11s}  "
        + " ".join(f"{'M=' + str(m):>9s}" for m in ms),
    ]
    for name in sorted(results["fitted_exponent"]):
        e = results["fitted_exponent"][name]
        d = results["exponent_delta_vs_numpy_batched"].get(name)
        d_s = f"{d:+10.2f} " if d is not None else f"{'':>11s}"
        cells = " ".join(
            f"{results['times'][name][str(m)]:9.4f}" for m in ms
        )
        lines.append(f"{name:24s} {e:9.2f} {d_s} {cells}")
    return "\n".join(lines)


def verify_against_oracle(
    n: int = 6, m: int = 9, seed: int = 5, semiring: str = "max-plus"
) -> None:
    """Every backend must match the recursive oracle at a checkable size.

    The oracle is :func:`bpmax_recursive` for max-plus (bit-identity)
    and :func:`repro.core.bppart.bppart_recursive` for log-sum-exp
    (corpus tolerance).
    """
    sr = get_semiring(semiring)
    s1, s2 = random_pair(n, m, seed)
    inputs = prepare_inputs(s1, s2, semiring=sr.name)
    if sr.name == "max-plus":
        expected = bpmax_recursive(inputs)
    else:
        from repro.core.bppart import bppart_recursive

        expected = bppart_recursive(inputs)
    for name in _semiring_backends(available_backends(), sr.name):
        got = make_engine(inputs, variant="batched", backend=name).run()
        if not _agree(got, expected, sr.exact):
            raise AssertionError(
                f"backend {name} ({sr.name}): {got} != oracle {expected}"
            )


def merge_baseline(results: dict, baseline_path: Path) -> None:
    """Insert this run's results into the per-size baseline file.

    The baseline holds one entry per problem size (``"40x40"`` etc.)
    because the relative speedup grows with the window size — a gate
    must compare same-size measurements only.
    """
    baseline = (
        json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    )
    baseline.setdefault("sizes", {})[f"{results['n']}x{results['m']}"] = results
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")


def check_regression(results: dict, baseline_path: Path, tolerance: float) -> int:
    """Exit status 1 when the default backend lost >tolerance of its speedup."""
    baseline = json.loads(baseline_path.read_text())
    if "sizes" in baseline:
        key = f"{results['n']}x{results['m']}"
        baseline = baseline["sizes"].get(key)
        if baseline is None:
            print(
                f"regression check: baseline has no {key} entry "
                f"(regenerate with --merge-baseline)",
                file=sys.stderr,
            )
            return 1
    name = results["default_backend"]
    measured = results["speedup_vs_hybrid_tiled"].get(name)
    reference = baseline.get("speedup_vs_hybrid_tiled", {}).get(name)
    if measured is None or reference is None:
        print(f"regression check: no '{name}' speedup to compare", file=sys.stderr)
        return 1
    floor = reference * (1.0 - tolerance)
    print(
        f"regression check: {name} speedup {measured:.2f}x "
        f"(baseline {reference:.2f}x, floor {floor:.2f}x)"
    )
    if measured < floor:
        print(
            f"FAIL: default backend regressed more than {tolerance:.0%} "
            "against the committed baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def render(results: dict) -> str:
    lines = [
        f"kernel backends at (N, M) = ({results['n']}, {results['m']}), "
        f"threads={results.get('threads', 1)}, "
        f"semiring={results.get('semiring', 'max-plus')}, "
        f"best of {results['repeats']}",
        f"{'engine/backend':24s} {'seconds':>10s} {'speedup':>9s} {'vs batched':>11s}",
        f"{'hybrid-tiled (engine)':24s} {results['engine']['hybrid-tiled']:10.4f} "
        f"{'1.00x':>9s} {'':>11s}",
    ]
    for name, t in sorted(results["backends"].items()):
        sp = results["speedup_vs_hybrid_tiled"][name]
        vsb = results.get("speedup_vs_numpy_batched", {}).get(name)
        vsb_s = f"{vsb:10.2f}x" if vsb is not None else f"{'':>11s}"
        mark = "  [default]" if name == results["default_backend"] else ""
        lines.append(f"{name:24s} {t:10.4f} {sp:8.2f}x {vsb_s}{mark}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--n", type=int, default=40, help="outer sequence length")
    p.add_argument("--m", type=int, default=40, help="inner sequence length")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--seed", type=int, default=99)
    p.add_argument(
        "--backend",
        metavar="NAME",
        help="time only this backend (numpy-batched is still timed as the "
        "relative-speedup denominator)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=1,
        metavar="N",
        help="thread-pool size for every timed backend engine",
    )
    p.add_argument(
        "--slope",
        metavar="M1,M2,...",
        help="fit log(time) vs log(M) per backend over these inner sizes "
        "instead of timing one size (the exponent-comparison mode)",
    )
    p.add_argument(
        "--codegen",
        metavar="S1,S2,...",
        help="sweep every generated (schedule x tile) variant over these "
        "square sizes against numpy-batched (writes the BENCH_codegen "
        "artifact shape)",
    )
    p.add_argument("--out", metavar="PATH", help="write results JSON here")
    p.add_argument(
        "--merge-baseline",
        metavar="PATH",
        help="insert this run into a per-size baseline JSON (for committing)",
    )
    p.add_argument(
        "--check-against",
        metavar="PATH",
        help="committed baseline JSON to gate the default backend against",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed fractional speedup loss vs the baseline (default 0.3)",
    )
    p.add_argument(
        "--semiring",
        default="max-plus",
        metavar="NAME",
        help="reduction algebra to time (max-plus or logsumexp); only "
        "backends declaring it are timed, and score agreement follows the "
        "semiring's contract",
    )
    p.add_argument(
        "--skip-oracle",
        action="store_true",
        help="skip the small-size recursive-oracle verification",
    )
    args = p.parse_args(argv)

    if not args.skip_oracle:
        verify_against_oracle(semiring=args.semiring)
    if args.codegen:
        if get_semiring(args.semiring).name != "max-plus":
            raise SystemExit(
                "--codegen mode is max-plus only (scores are cross-checked "
                "bit-identically per size)"
            )
        try:
            sizes = sorted({int(x) for x in args.codegen.split(",") if x.strip()})
        except ValueError as exc:
            raise SystemExit(
                f"--codegen must be comma-separated integers: {exc}"
            ) from exc
        results = run_codegen(
            sizes, repeats=args.repeats, seed=args.seed, threads=args.threads
        )
        print(render_codegen(results))
        if args.out:
            Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
            print(f"wrote {args.out}")
        return 0
    if args.slope:
        if get_semiring(args.semiring).name != "max-plus":
            raise SystemExit(
                "--slope mode is max-plus only (the exponent ladder relies "
                "on bit-identical score cross-checks per size)"
            )
        try:
            ms = sorted({int(x) for x in args.slope.split(",") if x.strip()})
        except ValueError as exc:
            raise SystemExit(
                f"--slope must be comma-separated integers: {exc}"
            ) from exc
        results = run_slope(
            ms,
            n=args.n,
            repeats=args.repeats,
            seed=args.seed,
            backend=args.backend,
            threads=args.threads,
        )
        print(render_slope(results))
        if args.out:
            Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
            print(f"wrote {args.out}")
        if args.merge_baseline:
            merge_slope(results, Path(args.merge_baseline))
            print(f"merged into {args.merge_baseline}")
        if args.check_against:
            print(
                "note: --check-against is ignored in --slope mode "
                "(exponent comparison is advisory)",
                file=sys.stderr,
            )
        return 0
    results = run_bench(
        args.n,
        args.m,
        repeats=args.repeats,
        seed=args.seed,
        backend=args.backend,
        threads=args.threads,
        semiring=args.semiring,
    )
    print(render(results))
    if args.out:
        Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.merge_baseline:
        merge_baseline(results, Path(args.merge_baseline))
        print(f"merged into {args.merge_baseline}")
    if args.check_against:
        return check_regression(results, Path(args.check_against), args.tolerance)
    return 0


# -- pytest smoke coverage ------------------------------------------------------


def test_backends_benchmark_smoke(tmp_path):
    """Tiny-size end-to-end: bench runs, scores agree, JSON round-trips."""
    verify_against_oracle(n=4, m=6, seed=2)
    results = run_bench(6, 8, repeats=1, seed=3)
    assert results["backends"], "no available backends were timed"
    assert results["speedup_vs_numpy_batched"]["numpy-batched"] == 1.0
    out = tmp_path / "BENCH_kernels.json"
    out.write_text(json.dumps(results))
    again = json.loads(out.read_text())
    assert again["default_backend"] in again["backends"]
    assert check_regression(again, out, tolerance=0.999) == 0


def test_backends_benchmark_slope_smoke(tmp_path):
    """--slope path: exponents fitted per backend, baseline merge round-trips."""
    results = run_slope([6, 10], n=5, repeats=1, seed=3, backend="fourrussians")
    assert set(results["times"]) == {"fourrussians", "numpy-batched"}
    assert set(results["fitted_exponent"]) == set(results["times"])
    assert results["exponent_delta_vs_numpy_batched"]["numpy-batched"] == 0.0
    out = tmp_path / "baseline.json"
    merge_slope(results, out)
    again = json.loads(out.read_text())
    assert again["slopes"]["n5|m6-10"]["mode"] == "slope"
    assert render_slope(results)


def test_backends_benchmark_codegen_smoke(tmp_path, monkeypatch):
    """--codegen path: grid is timed, best variant named, wins recorded."""
    monkeypatch.setenv("BPMAX_CODEGEN_CACHE", str(tmp_path / "codegen"))
    results = run_codegen([6, 9], repeats=1, seed=3, tiles=[0])
    assert set(results["sizes"]) == {"6x6", "9x9"}
    for sz in results["sizes"].values():
        assert {"numpy-batched", "generated", "generated:kmajor:wj0",
                "generated:smajor:wj0"} <= set(sz["times"])
        best = sz["best_generated"]
        assert best["variant"].startswith("generated")
        assert best["speedup_vs_numpy_batched"] > 0
    assert "numpy-batched" in render_codegen(results)
    out = tmp_path / "BENCH_codegen.json"
    out.write_text(json.dumps(results))
    assert json.loads(out.read_text())["mode"] == "codegen"


def test_backends_benchmark_logsumexp_smoke(capsys):
    """--semiring logsumexp path: max-plus-only backends are skipped, the
    timed ones agree with the log-partition oracle within tolerance."""
    verify_against_oracle(n=4, m=6, seed=2, semiring="logsumexp")
    results = run_bench(6, 8, repeats=1, seed=3, semiring="log-sum-exp")
    assert results["semiring"] == "logsumexp"  # canonicalized
    assert results["backends"], "no logsumexp-capable backends were timed"
    for name in ("fourrussians", "numba"):
        assert name not in results["backends"]  # max-plus-only, skipped
    assert "semiring=logsumexp" in render(results)
    err = capsys.readouterr().err
    if "fourrussians" in BACKENDS:
        assert "skipping 'fourrussians'" in err


def test_backends_benchmark_single_backend_threads(tmp_path):
    """--backend/--threads path: one backend plus the batched denominator."""
    results = run_bench(8, 6, repeats=1, seed=4, backend="numpy", threads=2)
    assert set(results["backends"]) == {"numpy", "numpy-batched"}
    assert results["threads"] == 2
    assert "numpy" in results["speedup_vs_numpy_batched"]


if __name__ == "__main__":
    sys.exit(main())
