"""The §V headline on this substrate: >100x speedup, measured.

Times the pure-Python baseline kernel against the tiled NumPy kernel on
a workload large enough to amortize call overhead, and regenerates the
real-speedup experiment rows (kernel >100x; program speedup growing
with the inner length, as in Fig. 16).
"""

import pytest

from repro.bench.figures import run_experiment
from repro.core.dmp import DoubleMaxPlus, random_triangles

from conftest import emit


def test_real_speedup_rows():
    res = run_experiment("real-speedup")
    emit(res)
    kernel = [r for r in res.rows if r["scope"] == "R0 kernel"]
    assert max(r["speedup"] for r in kernel) > 100, "the >100x headline"
    program = [r for r in res.rows if r["scope"] == "full BPMax"]
    assert all(r["speedup"] > 2 for r in program)


@pytest.fixture(scope="module")
def headline_workload():
    return random_triangles(3, 128, 1)


def test_headline_baseline(benchmark, headline_workload):
    def run():
        return DoubleMaxPlus(
            [t.copy() for t in headline_workload], kernel="naive"
        ).run()

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_headline_optimized(benchmark, headline_workload):
    def run():
        return DoubleMaxPlus(
            [t.copy() for t in headline_workload], kernel="tiled", tile=(32, 4, 0)
        ).run()

    benchmark.pedantic(run, rounds=3, iterations=1)
