"""Fault-tolerance overhead and recovery benchmarks.

Times the three recovery paths of the robustness layer on a real
workload: checkpointing overhead on a clean run, crash-plus-resume
versus an uninterrupted run, and distributed self-healing after an
injected rank death or message drops.  Every timed run re-checks score
equality with the recursive oracle — recovery must never trade
correctness for availability.
"""

import pytest

from repro.core.distributed import DistributedBPMax
from repro.core.engine import make_engine
from repro.core.reference import bpmax_recursive
from repro.parallel.mpi import ClusterSpec
from repro.robust.checkpoint import CheckpointManager
from repro.robust.errors import EngineFailure
from repro.robust.faults import FaultPlan


def _score(engine):
    inp = engine.inputs
    return float(engine.table.get(0, inp.n - 1, 0, inp.m - 1))


@pytest.mark.parametrize("every", [1, 2])
def test_checkpoint_overhead(benchmark, bpmax_workload, tmp_path, every):
    """Clean run with per-diagonal snapshots: the overhead the paper's
    long-running 16x2500 workloads would pay for restartability."""
    oracle = bpmax_recursive(bpmax_workload)

    def run():
        ckpt = CheckpointManager(
            tmp_path / "bench.npz", bpmax_workload, variant="coarse", every=every
        )
        engine = make_engine(bpmax_workload, variant="coarse")
        engine.run(checkpoint=ckpt)
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    assert _score(engine) == pytest.approx(oracle)


def test_crash_resume_vs_clean(benchmark, bpmax_workload, tmp_path):
    """Kill the engine mid-table, resume from the snapshot: the resumed
    half plus the crashed half should stay in the clean run's ballpark."""
    oracle = bpmax_recursive(bpmax_workload)
    n = bpmax_workload.n
    crash = (1, n - 1)  # a late window: most of the table is checkpointed

    def crash_and_resume():
        path = tmp_path / "resume.npz"
        if path.exists():
            path.unlink()
        ckpt = CheckpointManager(path, bpmax_workload, variant="coarse")
        engine = make_engine(bpmax_workload, variant="coarse")
        try:
            engine.run(checkpoint=ckpt, faults=FaultPlan(crash_windows=[crash]))
        except EngineFailure:
            pass
        resumed = make_engine(bpmax_workload, variant="coarse")
        ckpt2 = CheckpointManager(path, bpmax_workload, variant="coarse")
        done = ckpt2.load(resumed.table)
        resumed.run(checkpoint=ckpt2, resume=done)
        return resumed, done

    engine, done = benchmark.pedantic(crash_and_resume, rounds=3, iterations=1)
    assert _score(engine) == pytest.approx(oracle)
    assert len(done) > 0, "the resume path must restore checkpointed windows"


def test_rank_death_recovery(benchmark, bpmax_workload):
    """4-rank distributed run with one injected rank death at wavefront 2."""
    oracle = bpmax_recursive(bpmax_workload)

    def run():
        plan = FaultPlan(rank_deaths=[(1, 2)])
        return DistributedBPMax(
            bpmax_workload, ClusterSpec(ranks=4), faults=plan
        ).run()

    rep = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rep.score == pytest.approx(oracle)
    assert rep.dead_ranks == (1,)
    assert rep.recovered_windows > 0


@pytest.mark.parametrize("rate", [0.0, 0.1, 0.3])
def test_message_drop_retries(benchmark, bpmax_workload, rate):
    """Retry cost as the simulated network loses more triangles."""
    oracle = bpmax_recursive(bpmax_workload)

    def run():
        plan = FaultPlan(seed=13, message_drop_rate=rate) if rate else None
        return DistributedBPMax(
            bpmax_workload, ClusterSpec(ranks=3), faults=plan, max_retries=8
        ).run()

    rep = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rep.score == pytest.approx(oracle)
    if rate == 0.0:
        assert rep.retries == 0 and rep.redundant_bytes == 0
    else:
        assert rep.redundant_bytes == rep.retries * bpmax_workload.m**2 * 4
