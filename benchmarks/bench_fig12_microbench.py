"""Fig. 12 — the Y = max(a + X, Y) streaming micro-benchmark.

Times the real NumPy stream kernel at an L1-resident chunk and at a
DRAM-sized chunk (the staircase the paper plots), regenerates the
model rows calibrated to the paper's 120 / 240 GFLOPS anchors, and
checks that the measured kernel slows down once the chunk spills the
cache hierarchy.
"""

import numpy as np
import pytest

from repro.bench.figures import run_experiment
from repro.semiring.microbench import StreamBenchmark, maxplus_stream

from conftest import emit


def test_fig12_rows():
    res = run_experiment("fig12")
    emit(res)
    assert max(res.column("model_6t")) == pytest.approx(120.5, rel=0.05)
    assert max(res.column("model_12t")) == pytest.approx(241.1, rel=0.05)


@pytest.mark.parametrize("kib", [4, 16, 4096], ids=lambda k: f"chunk{k}KiB")
def test_fig12_stream_kernel(benchmark, kib):
    n = kib * 1024 // 4
    rng = np.random.default_rng(0)
    x = rng.random(n, dtype=np.float32)
    y = rng.random(n, dtype=np.float32)
    benchmark(maxplus_stream, 1.5, x, y)


def test_fig12_measured_staircase():
    """Wall-clock GFLOPS must degrade from cache-resident to DRAM-sized."""
    small = StreamBenchmark(2 * 1024, iterations=64).run().gflops
    large = StreamBenchmark(8 * 1024 * 1024, iterations=2).run().gflops
    assert small > large
