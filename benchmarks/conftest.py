"""Shared fixtures and helpers for the benchmark suite.

Every ``bench_*`` / ``test_*`` module regenerates one paper table or
figure: it times the real substrate computation with pytest-benchmark,
prints the regenerated rows (run with ``-s`` to see them inline; the CLI
``python -m repro experiment <id>`` prints the same rows), and asserts
the qualitative shape the paper reports.
"""

from __future__ import annotations

import pytest


def emit(result) -> None:
    """Print one regenerated experiment table."""
    print()
    print(result.render())


@pytest.fixture(scope="session")
def dmp_workload():
    """Shared double max-plus workload: 4 x 48 input triangles."""
    from repro.core.dmp import random_triangles

    return random_triangles(4, 48, 0)


@pytest.fixture(scope="session")
def bpmax_workload():
    """Shared BPMax workload: a (4, 24) sequence pair."""
    from repro.core.reference import prepare_inputs
    from repro.rna.sequence import random_pair

    s1, s2 = random_pair(4, 24, 99)
    return prepare_inputs(s1, s2)
