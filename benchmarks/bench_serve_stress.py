"""Stress-scenario replay for the sharded serving tier.

Replays the seeded scenario library of :mod:`repro.serve.scenarios` —
bursty arrivals, heavy-tailed sizes, deadline storms, poisoned requests,
injected worker kills — against a live :class:`repro.serve.ShardScheduler`
with real worker processes, pacing submissions to each scenario's
arrival schedule.  Per scenario it reports client-observed p50/p99
latency by priority class, shed rate, worker deaths/respawns, and
verifies the robustness contract:

* **zero hung futures** — every submitted future resolves;
* **structured shedding** — every failed result carries a
  :class:`~repro.robust.errors.BpmaxError`-derived ``error_type``,
  never a bare timeout;
* **bit-identical answers** — every accepted score equals the
  in-process :func:`repro.core.api.bpmax` answer for the same pair;
* **latency gate** (``--check``) — accepted interactive+batch p99 stays
  under the scenario's ``p99_budget_s``.

Reproducibility follows the suite convention: the workload seed is
``BPMAX_TEST_SEED`` (default 12345, override with ``--seed``) and is
printed and recorded, so any failure replays exactly::

    PYTHONPATH=src python benchmarks/bench_serve_stress.py \
        --scenarios bursty-small --shards 2 --check

``--http`` replays the same scenarios through the real HTTP gateway
(:mod:`repro.serve.http`) on an ephemeral port: arrivals become paced
``POST /v1/fold`` calls over real sockets, so the reported p50/p99
include network and wire-protocol overhead.  The contract tightens
accordingly — any error body that is not the structured JSON envelope
(or any hung connection) hard-fails the replay — and the report lands
in ``BENCH_http.json`` by default.

Writes ``BENCH_serve.json`` (see ``--out``).  Under pytest the module
exposes a smoke test replaying the CI scenario (``bursty-small``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.core.api import bpmax  # noqa: E402
from repro.robust.errors import BpmaxError  # noqa: E402
from repro.serve import ShardScheduler  # noqa: E402
from repro.serve.scenarios import (  # noqa: E402
    SCENARIOS,
    default_seed,
    generate,
    get_scenario,
    scaled,
)

#: error types a request may legitimately resolve with under stress —
#: each is a structured BpmaxError subclass, so clients can branch on it
STRUCTURED_ERRORS = {
    "AdmissionRejected",   # bounded queue said no
    "DeadlineExceeded",    # budget expired (at admission or mid-run)
    "RequestCancelled",    # shutdown resolved it, didn't strand it
    "WorkerFailure",       # re-route budget exhausted after worker death
    "InvalidSequenceError",  # poisoned request failed validation alone
    "EngineFailure",       # injected engine crash, uncompensated
}

#: default replay set: the acceptance scenario plus one of each shape
DEFAULT_SCENARIOS = (
    "steady",
    "bursty",
    "deadline-storm",
    "poisoned",
    "worker-kill",
    "overload-2x",
)


def _pctl(xs: list[float], q: float) -> float:
    if not xs:
        return 0.0
    xs = sorted(xs)
    idx = min(len(xs) - 1, max(0, int(round(q * (len(xs) - 1)))))
    return xs[idx]


def replay(
    name: str,
    shards: int = 2,
    queue_limit: int = 64,
    seed: int | None = None,
    time_scale: float = 1.0,
    resolve_timeout_s: float = 120.0,
) -> dict:
    """Replay one scenario; returns the report row (raises on a contract
    violation — hung future, unstructured error, wrong score)."""
    scn = get_scenario(name)
    if time_scale != 1.0:
        scn = scaled(scn, time_scale)
    used_seed = default_seed() if seed is None else int(seed)
    timed = generate(scn, seed=used_seed)
    plan = scn.fault_plan(used_seed)

    # in-process golden answers for every servable pair (the pure-function
    # contract: score depends only on the pair + scoring model)
    expected: dict[tuple[str, str], float] = {}
    for t in timed:
        pair = (t.request.seq1, t.request.seq2)
        if pair not in expected:
            try:
                expected[pair] = bpmax(*pair).score
            except BpmaxError:
                pass  # poisoned pair; must come back as a structured error

    latencies: dict[str, float] = {}
    submit_at: dict[str, float] = {}

    t0 = time.perf_counter()
    with ShardScheduler(
        shards=shards,
        queue_limit=queue_limit,
        faults=plan,
        heartbeat_timeout_s=30.0,
    ) as sched:
        futures = []
        for t in timed:
            now = time.perf_counter() - t0
            if t.at_s > now:
                time.sleep(t.at_s - now)
            rid = t.request.id
            submit_at[rid] = time.perf_counter()
            fut = sched.submit(t.request)
            fut.add_done_callback(
                lambda f, rid=rid: latencies.__setitem__(
                    rid, time.perf_counter() - submit_at[rid]
                )
            )
            futures.append((t.request, fut))
        results = []
        for req, fut in futures:
            try:
                results.append((req, fut.result(timeout=resolve_timeout_s)))
            except TimeoutError:
                raise AssertionError(
                    f"hung future: request {req.id!r} unresolved after "
                    f"{resolve_timeout_s:g}s (seed {used_seed})"
                ) from None
        wall_s = time.perf_counter() - t0
        stats = sched.stats

    accepted, shed = [], []
    for req, res in results:
        if res.ok:
            want = expected.get((req.seq1, req.seq2))
            if want is None or res.score != want:
                raise AssertionError(
                    f"score drift: {req.id!r} served {res.score!r}, "
                    f"in-process bpmax says {want!r} (seed {used_seed})"
                )
            accepted.append((req, res))
        else:
            if res.error_type not in STRUCTURED_ERRORS:
                raise AssertionError(
                    f"unstructured failure: {req.id!r} -> "
                    f"{res.error_type!r}: {res.error} (seed {used_seed})"
                )
            shed.append((req, res))

    lat_by_class: dict[str, list[float]] = {}
    for req, _res in accepted:
        lat_by_class.setdefault(req.priority, []).append(latencies[req.id])
    gated = [
        s
        for c in ("interactive", "batch")
        for s in lat_by_class.get(c, [])
    ]
    return {
        "scenario": scn.name,
        "description": scn.description,
        "seed": used_seed,
        "shards": shards,
        "queue_limit": queue_limit,
        "time_scale": time_scale,
        "requests": len(timed),
        "accepted": len(accepted),
        "shed": len(shed),
        "shed_rate": round(len(shed) / len(timed), 4),
        "shed_error_types": sorted({r.error_type for _q, r in shed}),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(accepted) / wall_s, 1) if wall_s else 0.0,
        "latency_s": {
            cls: {
                "count": len(xs),
                "p50": round(_pctl(xs, 0.50), 4),
                "p99": round(_pctl(xs, 0.99), 4),
                "max": round(max(xs), 4),
            }
            for cls, xs in sorted(lat_by_class.items())
        },
        "p99_gated_s": round(_pctl(gated, 0.99), 4),
        "p99_budget_s": scn.p99_budget_s,
        "worker_deaths": stats["deaths"],
        "worker_respawns": stats["respawns"],
        "rerouted": stats["rerouted"],
        "degraded_requests": stats["degraded_requests"],
        "admission": stats["admission"],
        "scores_identical": True,
        "hung_futures": 0,
    }


#: gateway protocol codes a request may also fail with over HTTP
HTTP_STRUCTURED_ERRORS = STRUCTURED_ERRORS | {"ServerDraining", "GatewayTimeout"}

#: statuses the gateway may legitimately answer a scenario request with
HTTP_ERROR_STATUSES = {400, 429, 500, 503, 504}


def replay_http(
    name: str,
    shards: int = 2,
    queue_limit: int = 64,
    seed: int | None = None,
    time_scale: float = 1.0,
    resolve_timeout_s: float = 120.0,
) -> dict:
    """Replay one scenario over real sockets through the HTTP gateway.

    Same contract as :func:`replay` plus the wire half: every error
    response must be the structured JSON envelope with a correct status
    (anything else — an undecodable body, a missing code, a connection
    that never completes — raises).  Latencies are client-observed over
    the socket, so p50/p99 include network overhead.
    """
    import threading

    from repro.serve import GatewayClient, GatewayStatusError, HttpGateway
    from repro.serve.request import request_wire_dict

    scn = get_scenario(name)
    if time_scale != 1.0:
        scn = scaled(scn, time_scale)
    used_seed = default_seed() if seed is None else int(seed)
    timed = generate(scn, seed=used_seed)
    plan = scn.fault_plan(used_seed)

    expected: dict[tuple[str, str], float] = {}
    for t in timed:
        pair = (t.request.seq1, t.request.seq2)
        if pair not in expected:
            try:
                expected[pair] = bpmax(*pair).score
            except BpmaxError:
                pass

    outcomes: list[tuple[object, object, float]] = []
    lock = threading.Lock()

    t0 = time.perf_counter()
    with ShardScheduler(
        shards=shards,
        queue_limit=queue_limit,
        faults=plan,
        heartbeat_timeout_s=30.0,
    ) as sched:
        with HttpGateway(sched) as gateway:
            url = gateway.url()

            def one(t):
                client = GatewayClient(
                    url, timeout_s=resolve_timeout_s, max_retries=0
                )
                delay = t.at_s - (time.perf_counter() - t0)
                if delay > 0:
                    time.sleep(delay)
                started = time.perf_counter()
                try:
                    result = client.fold(request_wire_dict(t.request))
                except GatewayStatusError as exc:
                    result = exc
                with lock:
                    outcomes.append(
                        (t.request, result, time.perf_counter() - started)
                    )

            threads = [
                threading.Thread(target=one, args=(t,), daemon=True)
                for t in timed
            ]
            for th in threads:
                th.start()
            join_deadline = time.monotonic() + resolve_timeout_s
            for th in threads:
                th.join(timeout=max(0.1, join_deadline - time.monotonic()))
            hung = sum(1 for th in threads if th.is_alive())
            if hung:
                raise AssertionError(
                    f"{hung} HTTP connections never completed for {name!r} "
                    f"(seed {used_seed})"
                )
            wall_s = time.perf_counter() - t0
            stats = sched.stats

    accepted, shed = [], []
    lat_by_class: dict[str, list[float]] = {}
    for req, result, latency in outcomes:
        if isinstance(result, GatewayStatusError):
            err = (result.envelope or {}).get("error")
            if not err:
                raise AssertionError(
                    f"unstructured error body: {req.id!r} -> HTTP "
                    f"{result.status} with no JSON envelope (seed {used_seed})"
                )
            if err.get("code") not in HTTP_STRUCTURED_ERRORS:
                raise AssertionError(
                    f"unstructured failure: {req.id!r} -> "
                    f"{err.get('code')!r}: {err.get('message')} "
                    f"(seed {used_seed})"
                )
            if result.status not in HTTP_ERROR_STATUSES or (
                result.status != err.get("status")
            ):
                raise AssertionError(
                    f"wrong status: {req.id!r} -> HTTP {result.status} with "
                    f"envelope status {err.get('status')!r} (seed {used_seed})"
                )
            shed.append((req, result))
        else:
            want = expected.get((req.seq1, req.seq2))
            if want is None or result["score"] != want:
                raise AssertionError(
                    f"score drift: {req.id!r} served {result.get('score')!r}, "
                    f"in-process bpmax says {want!r} (seed {used_seed})"
                )
            accepted.append((req, result))
            lat_by_class.setdefault(req.priority, []).append(latency)

    gated = [
        s
        for c in ("interactive", "batch")
        for s in lat_by_class.get(c, [])
    ]
    return {
        "scenario": scn.name,
        "description": scn.description,
        "transport": "http",
        "seed": used_seed,
        "shards": shards,
        "queue_limit": queue_limit,
        "time_scale": time_scale,
        "requests": len(timed),
        "accepted": len(accepted),
        "shed": len(shed),
        "shed_rate": round(len(shed) / len(timed), 4),
        "shed_error_types": sorted(
            {(r.envelope.get("error") or {}).get("code") for _q, r in shed}
        ),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(accepted) / wall_s, 1) if wall_s else 0.0,
        "latency_s": {
            cls: {
                "count": len(xs),
                "p50": round(_pctl(xs, 0.50), 4),
                "p99": round(_pctl(xs, 0.99), 4),
                "max": round(max(xs), 4),
            }
            for cls, xs in sorted(lat_by_class.items())
        },
        "p99_gated_s": round(_pctl(gated, 0.99), 4),
        "p99_budget_s": scn.p99_budget_s,
        "worker_deaths": stats["deaths"],
        "worker_respawns": stats["respawns"],
        "rerouted": stats["rerouted"],
        "degraded_requests": stats["degraded_requests"],
        "admission": stats["admission"],
        "scores_identical": True,
        "hung_futures": 0,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--scenarios",
        default=",".join(DEFAULT_SCENARIOS),
        help=f"comma-separated scenario names (available: {sorted(SCENARIOS)})",
    )
    ap.add_argument("--shards", type=int, default=2)
    ap.add_argument("--queue-limit", type=int, default=64)
    ap.add_argument("--seed", type=int, default=None,
                    help="workload seed (default: BPMAX_TEST_SEED or 12345)")
    ap.add_argument("--time-scale", type=float, default=1.0,
                    help="stretch arrival horizons (2.0 = half the load)")
    ap.add_argument("--http", action="store_true",
                    help="replay over real sockets through the HTTP "
                    "gateway (p50/p99 include network overhead; any "
                    "unstructured error body hard-fails)")
    ap.add_argument("--out", default=None,
                    help="report path (default: BENCH_serve.json, or "
                    "BENCH_http.json with --http)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless every scenario keeps accepted "
                    "interactive+batch p99 under its budget")
    args = ap.parse_args(argv)
    out_path = args.out or ("BENCH_http.json" if args.http else "BENCH_serve.json")

    names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
    seed = default_seed() if args.seed is None else args.seed
    print(f"seed {seed} (replay with --seed {seed} or BPMAX_TEST_SEED={seed})")

    replay_fn = replay_http if args.http else replay
    rows, failures = [], []
    for name in names:
        row = replay_fn(
            name,
            shards=args.shards,
            queue_limit=args.queue_limit,
            seed=seed,
            time_scale=args.time_scale,
        )
        rows.append(row)
        print(
            f"{row['scenario']:>16}: {row['accepted']}/{row['requests']} ok, "
            f"shed {row['shed_rate']:.0%}, p99 {row['p99_gated_s']:.3f}s "
            f"(budget {row['p99_budget_s']:g}s), deaths {row['worker_deaths']}, "
            f"respawns {row['worker_respawns']}, wall {row['wall_s']:.2f}s"
        )
        if args.check and row["p99_gated_s"] > row["p99_budget_s"]:
            failures.append(
                f"{name}: p99 {row['p99_gated_s']:.3f}s over "
                f"budget {row['p99_budget_s']:g}s"
            )

    report = {
        "seed": seed,
        "shards": args.shards,
        "queue_limit": args.queue_limit,
        "time_scale": args.time_scale,
        "transport": "http" if args.http else "in-process",
        "scenarios": rows,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


def test_stress_smoke_bursty_small():
    """CI smoke: the bursty-small scenario (2 shards, one injected
    kill) upholds the whole contract — replay() raises on any hung
    future, unstructured error, or score drift."""
    row = replay("bursty-small", shards=2, queue_limit=16)
    assert row["accepted"] + row["shed"] == row["requests"]
    assert row["hung_futures"] == 0
    assert row["scores_identical"]
    assert row["worker_deaths"] >= 1  # the injected kill fired
    assert row["worker_respawns"] >= 1
    assert row["p99_gated_s"] <= row["p99_budget_s"]


try:  # the marker only matters under pytest; standalone runs skip it
    import pytest as _pytest
    _http_marker = _pytest.mark.http
except ImportError:  # pragma: no cover
    def _http_marker(fn):
        return fn


@_http_marker
def test_stress_smoke_bursty_small_http():
    """CI smoke over real sockets: same scenario and contract through
    the HTTP gateway — replay_http() additionally raises on any
    unstructured error body or hung connection."""
    row = replay_http("bursty-small", shards=2, queue_limit=16)
    assert row["transport"] == "http"
    assert row["accepted"] + row["shed"] == row["requests"]
    assert row["hung_futures"] == 0
    assert row["scores_identical"]
    assert row["worker_deaths"] >= 1
    assert row["p99_gated_s"] <= row["p99_budget_s"]


if __name__ == "__main__":
    raise SystemExit(main())
