"""Fig. 18 — effect of the (i2 x k2 x j2) tile shape on double max-plus.

Regenerates the model sweep at the paper's 16 x 2500 workload (cubic
tiles poor, best shapes leave j2 untiled, ~10% best-vs-generic gap),
times the real tiled kernel across shapes on the shared workload, and
sweeps the production ``tiled`` backend's window-block width (the knob
``bpmax tune`` searches) on a full BPMax run.
"""

import pytest

from repro.bench.figures import run_experiment
from repro.core.dmp import DoubleMaxPlus
from repro.core.engine import make_engine
from repro.kernels import BACKENDS, TiledExecutor

from conftest import emit

SHAPES = [(16, 2, 0), (32, 4, 0), (16, 4, 0), (16, 16, 16), (8, 8, 8)]

#: window-block widths swept on the (4, 24) shared workload
WINDOW_BLOCKS = [1, 2, 4]


def test_fig18_rows():
    res = run_experiment("fig18")
    emit(res)
    by_tile = {r["tile"]: r["model_gflops_16x2500"] for r in res.rows}
    assert by_tile["64x16xN"] > by_tile["64x64x64"], "cubic tiles perform poorly"
    assert by_tile["64x16xN"] > by_tile["32x32x32"]
    # untiled-j2 family within ~15% of each other (paper: ~10%)
    fam = [by_tile["64x16xN"], by_tile["128x8xN"]]
    assert abs(fam[0] - fam[1]) / max(fam) <= 0.15


@pytest.mark.parametrize("tile", SHAPES, ids=lambda t: f"{t[0]}x{t[1]}x{t[2] or 'N'}")
def test_fig18_tiled_kernel(benchmark, dmp_workload, tile):
    def run():
        return DoubleMaxPlus(
            [t.copy() for t in dmp_workload], kernel="tiled", tile=tile
        ).run()

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("wb", WINDOW_BLOCKS, ids=lambda w: f"wb{w}")
def test_tiled_backend_window_block_sweep(benchmark, bpmax_workload, wb):
    """Production tile-shape sweep: the tiled backend at each block width."""
    if not BACKENDS["tiled"].available:
        pytest.skip(BACKENDS["tiled"].note)
    expected = make_engine(bpmax_workload, variant="batched").run()

    def run():
        engine = make_engine(bpmax_workload, variant="batched", backend="tiled")
        return TiledExecutor(engine, wb=wb).run()

    score = benchmark.pedantic(run, rounds=3, iterations=1)
    assert score == expected
