"""Serving-layer throughput benchmark: batched service vs one-shot calls.

Replays the acceptance workload of the serving layer — 200 requests
drawn from 50 distinct pairs (every pair requested 4 times, shuffled,
N = M by default) — two ways:

* **sequential**: one fresh :func:`repro.core.api.bpmax` call per
  request, the way a script without the serving layer would do it;
* **served**: one :class:`repro.serve.BatchScheduler` fed all 200
  requests at once, so caching, in-flight coalescing, shape batching
  (shared workspaces) and worker parallelism all engage.

Every served score is checked bit-identical to its sequential
counterpart before any timing is reported.  With ``--check`` the run
fails unless the served path is at least ``--min-speedup`` (default 3×)
faster — the acceptance gate::

    PYTHONPATH=src python benchmarks/bench_serving.py --check

Writes ``BENCH_serving.json`` (see ``--out``).  Under pytest the module
exposes a smoke test on a reduced workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.core.api import bpmax  # noqa: E402
from repro.rna.sequence import random_pair  # noqa: E402
from repro.serve import BatchScheduler, SubmitRequest  # noqa: E402


def make_workload(
    requests: int = 200, distinct: int = 50, size: int = 24, seed: int = 2024
) -> list[tuple[str, str]]:
    """``requests`` pairs over ``distinct`` unique problems, shuffled
    deterministically so repeats are spread out rather than adjacent
    (adjacent repeats would flatter the cache)."""
    pool = []
    for k in range(distinct):
        s1, s2 = random_pair(size, size, seed + k)
        pool.append((str(s1), str(s2)))
    workload = [pool[i % distinct] for i in range(requests)]
    # deterministic LCG shuffle (no RNG state shared with the corpus)
    state = seed
    for i in range(len(workload) - 1, 0, -1):
        state = (state * 1103515245 + 12345) % (1 << 31)
        j = state % (i + 1)
        workload[i], workload[j] = workload[j], workload[i]
    return workload


def run_bench(
    requests: int = 200,
    distinct: int = 50,
    size: int = 24,
    workers: int = 4,
    max_batch: int = 16,
    seed: int = 2024,
) -> dict:
    workload = make_workload(requests, distinct, size, seed)

    t0 = time.perf_counter()
    sequential = [bpmax(a, b).score for a, b in workload]
    t_seq = time.perf_counter() - t0

    reqs = [SubmitRequest(a, b, id=str(i)) for i, (a, b) in enumerate(workload)]
    t0 = time.perf_counter()
    with BatchScheduler(max_batch=max_batch, workers=workers) as sched:
        results = sched.serve_all(reqs)
        stats = sched.stats
    t_srv = time.perf_counter() - t0

    for i, (r, want) in enumerate(zip(results, sequential)):
        if not r.ok:
            raise AssertionError(f"request {i} failed: {r.error}")
        if r.score != want:
            raise AssertionError(
                f"request {i}: served score {r.score!r} != sequential {want!r}"
            )

    return {
        "requests": requests,
        "distinct_pairs": distinct,
        "size": size,
        "workers": workers,
        "max_batch": max_batch,
        "seed": seed,
        "sequential_s": round(t_seq, 4),
        "served_s": round(t_srv, 4),
        "speedup": round(t_seq / t_srv, 3) if t_srv else float("inf"),
        "sequential_rps": round(requests / t_seq, 1),
        "served_rps": round(requests / t_srv, 1) if t_srv else float("inf"),
        "scheduler": stats.as_dict(),
        "scores_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=200)
    ap.add_argument("--distinct", type=int, default=50)
    ap.add_argument("--size", type=int, default=24,
                    help="N = M strand length (acceptance workload: <= 30)")
    ap.add_argument("--workers", type=int, default=4,
                    help="concurrent batch executions; oversubscribing a "
                    "small box still wins because the NumPy kernels "
                    "release the GIL")
    ap.add_argument("--max-batch", type=int, default=16)
    ap.add_argument("--seed", type=int, default=2024)
    ap.add_argument("--out", default="BENCH_serving.json")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless speedup >= --min-speedup")
    ap.add_argument("--min-speedup", type=float, default=3.0)
    args = ap.parse_args(argv)

    res = run_bench(
        args.requests, args.distinct, args.size,
        args.workers, args.max_batch, args.seed,
    )
    Path(args.out).write_text(json.dumps(res, indent=2) + "\n")
    print(
        f"sequential: {res['sequential_s']:.3f}s ({res['sequential_rps']:.0f} req/s)\n"
        f"served    : {res['served_s']:.3f}s ({res['served_rps']:.0f} req/s)\n"
        f"speedup   : {res['speedup']:.2f}x  (scores bit-identical)\n"
        f"batches   : {res['scheduler']['batches']}, "
        f"mean size {res['scheduler']['mean_batch_size']}, "
        f"cache hits {res['scheduler']['cache']['hits']}, "
        f"coalesced {res['scheduler']['coalesced']}"
    )
    if args.check and res["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {res['speedup']:.2f}x below the "
            f"{args.min_speedup:.1f}x acceptance gate",
            file=sys.stderr,
        )
        return 1
    return 0


def test_serving_speedup_smoke(tmp_path):
    """Reduced acceptance workload: identical scores, service faster."""
    res = run_bench(requests=60, distinct=15, size=16, workers=2)
    assert res["scores_identical"]
    assert res["scheduler"]["completed"] == 60
    assert res["speedup"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
