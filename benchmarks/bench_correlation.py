"""§I motivation — BPMax captures the thermodynamics (BPPart study).

Regenerates the correlation between BPMax scores and exact ensemble
free energies at the paper's two reference temperatures, and times the
three partition-function implementations.
"""

import pytest

from repro.bench.figures import run_experiment
from repro.core.bppart import (
    beta_from_celsius,
    duplex_partition,
    partition_exact,
    single_strand_partition,
)
from repro.core.reference import prepare_inputs
from repro.rna.sequence import random_pair

from conftest import emit


def test_correlation_rows():
    res = run_experiment("correlation")
    emit(res)
    by_t = {r["temperature_c"]: r for r in res.rows}
    assert by_t[-180.0]["pearson"] > 0.85
    assert by_t[37.0]["pearson"] > 0.8
    assert by_t[-180.0]["pearson"] >= by_t[37.0]["pearson"]


@pytest.fixture(scope="module")
def pf_inputs():
    s1, s2 = random_pair(4, 5, 77)
    return prepare_inputs(s1, s2)


def test_single_strand_partition_cost(benchmark):
    s1, _ = random_pair(24, 2, 3)
    inp = prepare_inputs(s1, "A")
    beta = beta_from_celsius(37.0)
    q = benchmark(single_strand_partition, inp.score1, beta)
    assert q[0, 23] >= 1.0


def test_duplex_partition_cost(benchmark):
    s1, s2 = random_pair(16, 24, 4)
    inp = prepare_inputs(s1, s2)
    z = benchmark(duplex_partition, inp, beta_from_celsius(37.0))
    assert z >= 1.0


def test_exact_joint_partition_cost(benchmark, pf_inputs):
    z = benchmark.pedantic(
        partition_exact, args=(pf_inputs, 1.0), rounds=2, iterations=1
    )
    assert z >= 1.0
