"""Fig. 16 — BPMax speedup over the original program.

Regenerates the model speedup curves (paper: ~100x with 6 threads for
longer sequences) and measures the real baseline-vs-optimized ratio on
this substrate, checking it grows with the inner length as in the
paper's figure.
"""

from repro.bench.figures import run_experiment
from repro.bench.harness import measure
from repro.core.engine import make_engine
from repro.core.reference import prepare_inputs
from repro.rna.sequence import random_pair

from conftest import emit


def test_fig16_rows():
    res = run_experiment("fig16")
    emit(res)
    assert max(res.column("hybrid-tiled")) >= 90, "paper: ~100x"
    for row in res.rows:
        assert row["hybrid-tiled"] >= row["hybrid"] >= row["fine"]


def test_fig16_measured_speedup_grows_with_length():
    speedups = []
    for m in (16, 32):
        s1, s2 = random_pair(4, m, 31)
        inp = prepare_inputs(s1, s2)
        t_base = measure(lambda: make_engine(inp, "baseline").run(), "b").seconds
        t_opt = measure(
            lambda: make_engine(inp, "hybrid-tiled", tile=(8, 4, 0)).run(), "o"
        ).seconds
        speedups.append(t_base / t_opt)
    print(f"\nmeasured program speedups at m=16, 32: {speedups}")
    assert speedups[-1] > speedups[0], "speedup grows with sequence length"


def test_fig16_baseline_engine(benchmark):
    s1, s2 = random_pair(3, 12, 2)
    inp = prepare_inputs(s1, s2)

    def run():
        return make_engine(inp, "baseline").run()

    benchmark.pedantic(run, rounds=2, iterations=1)
