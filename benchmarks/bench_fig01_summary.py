"""Fig. 1 — summary of the optimization results on both Xeons.

Times the flagship engine (hybrid-tiled) on the shared workload and
regenerates the paper's overview rows (model projection for the two
machines the paper used).
"""

from repro.bench.figures import run_experiment
from repro.core.engine import make_engine

from conftest import emit


def test_fig01_rows():
    res = run_experiment("fig01")
    emit(res)
    for row in res.rows:
        assert row["speedup"] > 50, "paper: >100x headline"
        assert 0.1 < row["peak_fraction"] < 0.35, "paper: ~1/4..1/5 of peak"
    # E-2278G performs the same or better (paper §V-C)
    by_machine = {}
    for row in res.rows:
        by_machine.setdefault(row["machine"], []).append(row["tiled_gflops"])
    assert min(by_machine["Xeon E-2278G"]) >= 0.95 * min(
        by_machine["Xeon E5-1650v4"]
    )


def test_fig01_flagship_engine(benchmark, bpmax_workload):
    engine = make_engine(bpmax_workload, "hybrid-tiled", tile=(16, 4, 0))
    score = benchmark(engine.run)
    assert score > 0
