"""Setuptools shim: enables legacy editable installs on offline hosts
where the wheel package is unavailable (PEP 660 needs bdist_wheel).
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
