#!/usr/bin/env python3
"""Scan an mRNA for the binding site of a small regulatory RNA.

The motivating use case of RRI programs (paper §I): bacterial sRNAs
repress or activate mRNAs by base-pairing with them.  This example
slides a short antisense sRNA along a longer synthetic mRNA, scoring
each window with BPMax, and reports the best binding site — the
windowed workload shape (short x long, like the paper's 16 x 2500
experiments) where the optimized CPU engines matter.

The sweep runs through the serving layer
(:func:`repro.core.windowed.scan_windows_served`), the same path the
``bpmax scan`` CLI subcommand uses: each window is a serve request, so
repeated windows come from the result cache instead of recomputing.

Run:  python examples/srna_target_scan.py
CLI:  bpmax scan CUCCUCCACCUC <target> --window 24 --stride 6
"""

import numpy as np

from repro import RnaSequence, bpmax, random_sequence
from repro.core.windowed import scan_windows_served

#: a 12-nt sRNA "seed" (antisense to the site we will plant); chosen
#: pyrimidine-rich so it carries no self-structure — like real seed
#: regions, which must stay single-stranded to find their target
SRNA = RnaSequence("CUCCUCCACCUC", name="sRNA")

WINDOW = 24
STRIDE = 6


def build_mrna(rng: np.random.Generator) -> RnaSequence:
    """A synthetic 180-nt mRNA with the sRNA's perfect target planted."""
    target = SRNA.reversed()  # antiparallel complement site
    target = RnaSequence(
        "".join({"A": "U", "U": "A", "G": "C", "C": "G"}[c] for c in target.seq)
    )
    left = random_sequence(90, rng, name="utr5")
    right = random_sequence(78, rng, name="cds")
    return RnaSequence(left.seq + target.seq + right.seq, name="mRNA")


def scan(srna: RnaSequence, mrna: RnaSequence) -> list[tuple[int, float]]:
    """Interaction gain of the sRNA against each mRNA window.

    Uses the library's served windowed mode (:func:`repro.core.windowed
    .scan_windows_served`): the gain ``F - (S1 + S2)`` measures how much
    pairing the *interaction* adds over folding each molecule separately,
    the antiparallel convention feeds each window 3'->5', and identical
    windows are deduplicated through the serve-layer result cache.
    """
    result = scan_windows_served(
        srna, mrna, window=WINDOW, stride=STRIDE, variant="hybrid-tiled",
    )
    return [(h.start, h.gain) for h in result.hits]


def main() -> None:
    rng = np.random.default_rng(2021)
    mrna = build_mrna(rng)
    print(f"sRNA ({len(SRNA)} nt): {SRNA}")
    print(f"mRNA ({len(mrna)} nt), target planted at 90..{90 + len(SRNA) - 1}\n")

    hits = scan(SRNA, mrna)
    best_start, best_score = max(hits, key=lambda h: h[1])
    print("window  gain")
    for start, score in hits:
        bar = "#" * int(score)
        mark = " <-- best" if start == best_start else ""
        print(f"{start:6d}  {score:5.1f}  {bar}{mark}")

    print(f"\nbest binding window starts at {best_start} (gain {best_score:g})")
    # show the predicted duplex at the best site
    site = RnaSequence(mrna[best_start : best_start + WINDOW]).reversed()
    result = bpmax(SRNA, site, structure=True)
    db1, db2 = result.structure.dotbracket()
    print(f"sRNA : {SRNA}")
    print(f"       {db1}")
    print(f"site : {site}   (3'->5')")
    print(f"       {db2}")

    assert abs(best_start - 90) <= WINDOW, "scan should locate the planted site"


if __name__ == "__main__":
    main()
