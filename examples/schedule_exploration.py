#!/usr/bin/env python3
"""The AlphaZ workflow end to end: equations -> schedules -> code.

Reproduces the paper's methodology on the mini polyhedral framework:

1. express BPMax as a system of affine recurrence equations;
2. extract its dependences and machine-check the legality of each
   published schedule (Tables I-IV), including the parallel dimensions;
3. generate scheduled Python code for each variant (the
   ``generateScheduleC`` analogue) and compare LOC (Table VI);
4. run the generated code and check it against the recursive oracle.

Run:  python examples/schedule_exploration.py
"""

from repro.core.alpha_model import (
    bpmax_system,
    schedules_for,
    target_mapping_for,
)
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.polyhedral.codegen import compile_schedule, count_loc
from repro.polyhedral.dependence import check_all
from repro.rna.sequence import random_pair


def main() -> None:
    # -- 1. the program, as equations ---------------------------------
    system = bpmax_system(include_s=False)
    print("BPMax as a mini-Alpha system:")
    print(f"  parameters : {system.params}")
    print(f"  inputs     : {[d.name for d in system.inputs]}")
    print(f"  equations  : {[eq.var for eq in system.equations]}")

    # -- 2. dependence analysis + legality ----------------------------
    deps = system.dependences()
    print(f"\nextracted {len(deps)} dependences from the equations")
    params = {"N": 3, "M": 4}
    for variant in ("fine", "coarse", "hybrid"):
        vs = schedules_for(variant)
        scheds, ready = vs.checker_schedules()
        violations = check_all(deps, scheds, params, producer_schedules=ready)
        status = "LEGAL" if not violations else f"{len(violations)} violations"
        print(
            f"  {vs.table:9s} ({variant:6s}): rank {vs.body['F'].rank}, "
            f"parallel dim {vs.parallel_dim} -> {status}"
        )
        print(f"      F schedule: {vs.body['F'].mapping}")

    # -- 3 + 4. generate, measure, run, verify -------------------------
    s1, s2 = random_pair(3, 4, 17)
    inp = prepare_inputs(s1, s2)
    inputs = {
        "score1": inp.score1,
        "score2": inp.score2,
        "iscore": inp.iscore,
        "S1": inp.s1,
        "S2": inp.s2,
    }
    expected = bpmax_recursive(inp)
    print(f"\noracle score for a random (3, 4) pair: {expected:g}")
    print(f"{'variant':10s} {'LOC':>5s} {'loops':>6s} {'score':>7s}")
    for variant in ("fine", "coarse", "hybrid"):
        fn, src = compile_schedule(
            system, target_mapping_for(variant), func_name=f"bpmax_{variant}"
        )
        stats = count_loc(variant, src)
        out = fn({"N": inp.n, "M": inp.m}, inputs)
        score = out["F"][0, inp.n - 1, 0, inp.m - 1]
        flag = "ok" if abs(score - expected) < 1e-4 else "MISMATCH"
        print(
            f"{variant:10s} {stats.code_lines:5d} {stats.loop_count:6d} "
            f"{score:7g} {flag}"
        )


if __name__ == "__main__":
    main()
