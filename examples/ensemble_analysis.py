#!/usr/bin/env python3
"""Ensemble analysis: beyond the optimum (the BPPart companion view).

BPMax reports a single optimal score; its companion BPPart (paper
ref. [3]) sums over the whole Boltzmann ensemble.  This example runs the
exact small-scale ensemble machinery of :mod:`repro.core.bppart` on one
sequence pair:

* the partition function and free energy at two temperatures;
* how sharply the ensemble concentrates on the optimum as T drops
  (the mechanism behind the paper's correlation claims);
* exact base-pair probabilities — which contacts are thermodynamically
  robust rather than merely optimal;
* the suboptimal band: every structure within Delta of the optimum.

Run:  python examples/ensemble_analysis.py
"""

from repro.core.bppart import (
    beta_from_celsius,
    correlation_study,
    ensemble_stats,
    pair_probabilities,
    suboptimal_structures,
)
from repro.core.reference import prepare_inputs

SEQ1 = "GCGAU"
SEQ2 = "AUCGC"


def main() -> None:
    inputs = prepare_inputs(SEQ1, SEQ2)
    print(f"strands: {SEQ1} x {SEQ2}\n")

    # 1. ensemble statistics at the paper's two reference temperatures
    print("temperature   Z           -dG      P(MFE)   <weight>  structures")
    for t in (37.0, -180.0):
        st = ensemble_stats(inputs, beta_from_celsius(t))
        print(
            f"{t:8.1f} C  {st.z:11.4g}  {-st.free_energy:7.2f}  "
            f"{st.mfe_probability:7.3f}  {st.expected_weight:8.2f}  "
            f"{st.n_structures:6d}"
        )
    print("  (colder -> the ensemble collapses onto the BPMax optimum)\n")

    # 2. exact pair probabilities at 37 C
    probs = pair_probabilities(inputs, beta_from_celsius(37.0))
    print("most probable contacts at 37 C:")
    ranked = sorted(
        [("intra1", p, v) for p, v in probs.intra1.items()]
        + [("intra2", p, v) for p, v in probs.intra2.items()]
        + [("inter", p, v) for p, v in probs.inter.items()],
        key=lambda x: -x[2],
    )
    for kind, pair, v in ranked[:6]:
        print(f"  {kind:6s} {pair}: {v:.3f}")

    # 3. the suboptimal band
    print("\nstructures within 2 bonds of the optimum:")
    for weight, s in suboptimal_structures(inputs, delta=2.0)[:8]:
        print(
            f"  weight {weight:4.1f}: intra1={sorted(s.pairs1)} "
            f"intra2={sorted(s.pairs2)} inter={sorted(s.inter)}"
        )

    # 4. the correlation study behind the paper's motivation
    print("\nBPMax vs exact ensemble -dG over 25 random pairs:")
    for r in correlation_study(n_samples=25, lengths=(4, 4), rng=8):
        print(
            f"  T={r.temperature_c:7.1f} C: pearson={r.pearson:.3f} "
            f"spearman={r.spearman:.3f}"
        )
    print("  (paper quotes 0.904 / 0.836 for piRNA-vs-BPMax at these T)")


if __name__ == "__main__":
    main()
