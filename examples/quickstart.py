#!/usr/bin/env python3
"""Quickstart: score an RNA-RNA interaction with BPMax.

Run:  python examples/quickstart.py
"""

from repro import bpmax, fold

# Two short interacting strands.  BPMax maximizes the total weighted
# number of base pairs (GC=3, AU=2, GU=1), allowing intramolecular
# folding in each strand plus non-crossing intermolecular pairs.
SEQ1 = "GCGCUUCGCAAUGG"
SEQ2 = "CCAUUGCGAAGCGC"  # reverse complement of SEQ1


def main() -> None:
    # 1. single-strand folding (the S tables BPMax builds internally)
    for name, seq in (("strand 1", SEQ1), ("strand 2", SEQ2)):
        score, db = fold(seq)
        print(f"{name}: {seq}")
        print(f"  fold   : {db}   (weighted pairs = {score:g})")

    # 2. the interaction score, using the paper's flagship engine
    result = bpmax(SEQ1, SEQ2, variant="hybrid-tiled", structure=True)
    print(f"\nBPMax interaction score: {result.score:g}")

    # 3. one optimal structure: intramolecular pairs as dot-bracket,
    #    intermolecular partners marked '*'
    db1, db2 = result.structure.dotbracket()
    print(f"strand 1: {SEQ1}")
    print(f"          {db1}")
    print(f"strand 2: {SEQ2}")
    print(f"          {db2}")
    print(f"intermolecular pairs (i1, i2): {result.structure.inter}")

    # 4. every program version computes the same score
    for variant in ("baseline", "coarse", "fine", "hybrid", "hybrid-tiled"):
        r = bpmax(SEQ1, SEQ2, variant=variant)
        print(f"  {variant:13s} -> {r.score:g}")


if __name__ == "__main__":
    main()
