#!/usr/bin/env python3
"""Performance study: the paper's evaluation story in one script.

Walks the three optimization phases on this substrate:

* Phase I  — the roofline and the stream micro-benchmark (Figs. 11/12);
* Phase II — loop order matters: the unvectorizable k2-inner kernel vs
  the vectorized j2-inner kernel (Fig. 13's permutation story);
* Phase III — tiling: shapes, the 'don't tile j2' rule (Fig. 18), and
  the measured >100x kernel speedup headline.

Run:  python examples/performance_study.py
"""

from repro.bench.harness import measure
from repro.core.dmp import DoubleMaxPlus, dmp_flops, random_triangles
from repro.machine.perfmodel import PerfModel
from repro.machine.roofline import Roofline
from repro.machine.specs import XEON_E5_1650V4
from repro.semiring.microbench import StreamBenchmark


def phase1() -> None:
    print("== Phase I: machine peak and the stream micro-benchmark ==")
    rl = Roofline(XEON_E5_1650V4, 6)
    print(f"theoretical max-plus peak : {rl.peak_gflops:7.1f} GFLOPS")
    print(f"L1 roof at AI = 1/6       : {rl.maxplus_bound('L1').attainable_gflops:7.1f} GFLOPS")
    pm = PerfModel()
    print(f"model stream @ 6 threads  : {pm.predict_stream(16 * 1024, 6):7.1f} GFLOPS (paper: 120)")
    print(f"model stream @ 12 threads : {pm.predict_stream(16 * 1024, 12):7.1f} GFLOPS (paper: 240)")
    measured = StreamBenchmark(4 * 1024, iterations=64).run()
    print(f"measured here, 1 thread   : {measured.gflops:7.2f} GFLOPS (NumPy substrate)\n")


def phase2() -> None:
    print("== Phase II: loop permutation enables vectorization ==")
    triangles = random_triangles(4, 64, 0)
    flops = dmp_flops(4, 64)
    for kernel in ("naive", "scalar-k-inner", "vectorized"):
        eng = DoubleMaxPlus([t.copy() for t in triangles], kernel=kernel)
        m = measure(eng.run, kernel, flops=flops)
        print(f"  {kernel:15s}: {m.seconds * 1e3:9.1f} ms  ({m.gflops:.3f} GFLOPS)")
    print()


def phase3() -> None:
    print("== Phase III: tiling the (i2, k2, j2) band ==")
    triangles = random_triangles(3, 128, 0)
    flops = dmp_flops(3, 128)
    shapes = [(8, 8, 8), (32, 32, 32), (16, 4, 0), (32, 4, 0)]
    results = {}
    for shape in shapes:
        eng = DoubleMaxPlus([t.copy() for t in triangles], kernel="tiled", tile=shape)
        m = measure(eng.run, str(shape), flops=flops)
        label = f"{shape[0]}x{shape[1]}x{shape[2] or 'N'}"
        results[label] = m
        print(f"  tile {label:11s}: {m.seconds * 1e3:8.1f} ms  ({m.gflops:.3f} GFLOPS)")

    print("\n== the headline: baseline vs optimized kernel ==")
    base = measure(
        DoubleMaxPlus([t.copy() for t in triangles], kernel="naive").run,
        "naive",
        flops=flops,
    )
    best = min(results.values(), key=lambda m: m.seconds)
    print(f"  pure-Python baseline : {base.seconds:8.2f} s")
    print(f"  best tiled kernel    : {best.seconds:8.4f} s")
    print(f"  measured speedup     : {base.seconds / best.seconds:8.1f}x  (paper: ~178x on C/OpenMP)")

    pm = PerfModel()
    projected = pm.predict_dmp("tiled", 16, 2500, tile=(64, 16, 0))
    baseline = pm.predict_dmp("base", 16, 2500)
    print(
        f"  model @ paper scale  : {projected.speedup_over(baseline):8.1f}x "
        f"({projected.gflops:.0f} GFLOPS tiled vs {baseline.gflops:.2f} base)"
    )


def main() -> None:
    phase1()
    phase2()
    phase3()


if __name__ == "__main__":
    main()
