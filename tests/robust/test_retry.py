"""Tests for the retry helper."""

import pytest

from repro.robust.deadline import Deadline
from repro.robust.errors import DeadlineExceeded, EngineFailure
from repro.robust.retry import retry


def flaky(fail_times, exc=EngineFailure):
    """A callable that fails ``fail_times`` times, then returns 42."""
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= fail_times:
            raise exc(f"failure {state['calls']}")
        return 42

    fn.state = state
    return fn


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        fn = flaky(2)
        assert retry(fn, attempts=3, backoff=0.0) == 42
        assert fn.state["calls"] == 3

    def test_exhausted_attempts_reraise_last(self):
        fn = flaky(5)
        with pytest.raises(EngineFailure, match="failure 2"):
            retry(fn, attempts=2, backoff=0.0)

    def test_non_retryable_propagates_immediately(self):
        fn = flaky(1, exc=KeyError)
        with pytest.raises(KeyError):
            retry(fn, attempts=5, backoff=0.0)
        assert fn.state["calls"] == 1

    def test_deadline_exceeded_never_retried(self):
        def fn():
            raise DeadlineExceeded("budget spent")

        calls = []
        with pytest.raises(DeadlineExceeded):
            retry(lambda: (calls.append(1), fn())[1], attempts=5, backoff=0.0)
        assert len(calls) == 1

    def test_backoff_schedule_is_exponential(self):
        delays = []
        fn = flaky(3)
        retry(fn, attempts=4, backoff=0.01, sleep=delays.append)
        assert delays == pytest.approx([0.01, 0.02, 0.04])

    def test_jitter_is_deterministic_per_seed(self):
        def schedule(seed):
            delays = []
            retry(flaky(3), attempts=4, backoff=0.01, jitter=0.5, seed=seed,
                  sleep=delays.append)
            return delays

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        for d, base in zip(schedule(7), [0.01, 0.02, 0.04]):
            assert base <= d <= base * 1.5

    def test_on_retry_callback(self):
        seen = []
        retry(
            flaky(2),
            attempts=3,
            backoff=0.0,
            on_retry=lambda i, e: seen.append((i, str(e))),
        )
        assert [i for i, _ in seen] == [0, 1]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="attempts"):
            retry(lambda: 1, attempts=0)
        with pytest.raises(ValueError, match="non-negative"):
            retry(lambda: 1, backoff=-1.0)


class TestDeadline:
    def test_fake_clock_budget(self):
        t = {"now": 0.0}
        d = Deadline(10.0, clock=lambda: t["now"])
        d.check("start")
        assert d.remaining() == pytest.approx(10.0)
        t["now"] = 9.0
        d.check("almost")
        t["now"] = 10.5
        assert d.expired()
        with pytest.raises(DeadlineExceeded, match="diagonal 3"):
            d.check("diagonal 3")

    def test_unlimited_budget_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        d.check()

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline(0)
        with pytest.raises(ValueError, match="positive"):
            Deadline(-3)
