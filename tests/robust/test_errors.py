"""Tests for the structured exception hierarchy."""

import pytest

from repro.robust.errors import (
    BpmaxError,
    CheckpointError,
    DeadlineExceeded,
    EngineFailure,
    InvalidSequenceError,
    MessageLost,
    RankFailure,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidSequenceError,
            EngineFailure,
            DeadlineExceeded,
            CheckpointError,
            MessageLost,
            RankFailure,
        ],
    )
    def test_all_derive_from_bpmax_error(self, exc):
        assert issubclass(exc, BpmaxError)

    def test_builtin_compatibility(self):
        """Pre-existing except-clauses keep catching the new types."""
        assert issubclass(InvalidSequenceError, ValueError)
        assert issubclass(EngineFailure, RuntimeError)
        assert issubclass(DeadlineExceeded, TimeoutError)
        assert issubclass(MessageLost, RuntimeError)

    def test_alphabet_reexports_same_class(self):
        from repro.rna.alphabet import InvalidSequenceError as alias

        assert alias is InvalidSequenceError


class TestEngineFailure:
    def test_context_in_message(self):
        e = EngineFailure("crashed", variant="hybrid", window=(2, 5))
        assert "hybrid" in str(e) and "(2, 5)" in str(e)
        assert e.variant == "hybrid"
        assert e.window == (2, 5)

    def test_plain_message(self):
        e = EngineFailure("boom")
        assert str(e) == "boom"
