"""Tests for checkpoint save/load and staleness rejection."""

import numpy as np
import pytest

from repro.core.reference import BaselineBPMax, prepare_inputs
from repro.core.tables import FTable
from repro.robust.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    inputs_digest,
)
from repro.robust.errors import CheckpointError
from repro.rna.sequence import random_pair


@pytest.fixture
def inputs():
    s1, s2 = random_pair(5, 6, 11)
    return prepare_inputs(s1, s2)


def filled_table(inputs):
    engine = BaselineBPMax(inputs)
    engine.run()
    return engine.table


class TestDigest:
    def test_same_inputs_same_digest(self, inputs):
        s1, s2 = random_pair(5, 6, 11)
        assert inputs_digest(inputs) == inputs_digest(prepare_inputs(s1, s2))

    def test_different_inputs_different_digest(self, inputs):
        s1, s2 = random_pair(5, 6, 12)
        assert inputs_digest(inputs) != inputs_digest(prepare_inputs(s1, s2))


class TestRoundTrip:
    def test_save_load_prefix(self, tmp_path, inputs):
        table = filled_table(inputs)
        ckpt = CheckpointManager(tmp_path / "c.npz", inputs, variant="baseline")
        for d in range(3):  # diagonals 0..2 complete
            for i1 in range(inputs.n - d):
                ckpt.mark_done(i1, i1 + d)
        assert ckpt.prefix_diagonal() == 2
        ckpt.save(table)

        fresh = FTable(inputs.n, inputs.m)
        ckpt2 = CheckpointManager(tmp_path / "c.npz", inputs, variant="baseline")
        resumed = ckpt2.load(fresh)
        assert len(resumed) == sum(inputs.n - d for d in range(3))
        for i1, j1 in resumed:
            np.testing.assert_array_equal(fresh.inner(i1, j1), table.inner(i1, j1))

    def test_maybe_save_every(self, tmp_path, inputs):
        table = filled_table(inputs)
        ckpt = CheckpointManager(tmp_path / "c.npz", inputs, every=2)
        for i1 in range(inputs.n):
            ckpt.mark_done(i1, i1)
        assert not ckpt.maybe_save(table)  # prefix 0: advance of 1 < every=2
        for i1 in range(inputs.n - 1):
            ckpt.mark_done(i1, i1 + 1)
        assert ckpt.maybe_save(table)  # prefix 1: advance of 2
        assert ckpt.saves == 1

    def test_final_diagonal_always_saved(self, tmp_path, inputs):
        table = filled_table(inputs)
        ckpt = CheckpointManager(tmp_path / "c.npz", inputs, every=100)
        for d in range(inputs.n):
            for i1 in range(inputs.n - d):
                ckpt.mark_done(i1, i1 + d)
        assert ckpt.maybe_save(table)

    def test_atomic_write_leaves_no_tmp(self, tmp_path, inputs):
        table = filled_table(inputs)
        ckpt = CheckpointManager(tmp_path / "c.npz", inputs)
        ckpt.mark_done(0, 0)
        for i1 in range(1, inputs.n):
            ckpt.mark_done(i1, i1)
        ckpt.save(table)
        assert (tmp_path / "c.npz").exists()
        assert not (tmp_path / "c.npz.tmp").exists()


class TestRejection:
    def _saved(self, tmp_path, inputs):
        table = filled_table(inputs)
        ckpt = CheckpointManager(tmp_path / "c.npz", inputs)
        for i1 in range(inputs.n):
            ckpt.mark_done(i1, i1)
        ckpt.save(table)
        return tmp_path / "c.npz"

    def test_missing_file(self, tmp_path, inputs):
        ckpt = CheckpointManager(tmp_path / "nope.npz", inputs)
        with pytest.raises(CheckpointError, match="no checkpoint"):
            ckpt.load(FTable(inputs.n, inputs.m))

    def test_stale_digest_rejected(self, tmp_path, inputs):
        path = self._saved(tmp_path, inputs)
        s1, s2 = random_pair(5, 6, 999)  # same shape, different sequences
        other = prepare_inputs(s1, s2)
        ckpt = CheckpointManager(path, other)
        with pytest.raises(CheckpointError, match="stale"):
            ckpt.load(FTable(other.n, other.m))

    def test_foreign_npz_rejected(self, tmp_path, inputs):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.zeros(3))
        ckpt = CheckpointManager(path, inputs)
        with pytest.raises(CheckpointError, match="not a BPMax checkpoint"):
            ckpt.load(FTable(inputs.n, inputs.m))

    def test_version_mismatch_rejected(self, tmp_path, inputs):
        path = self._saved(tmp_path, inputs)
        with np.load(path, allow_pickle=False) as data:
            contents = {k: data[k] for k in data.files}
        contents["__version"] = np.int64(CHECKPOINT_VERSION + 1)
        np.savez(path, **contents)
        ckpt = CheckpointManager(path, inputs)
        with pytest.raises(CheckpointError, match="version"):
            ckpt.load(FTable(inputs.n, inputs.m))

    def test_invalid_every(self, tmp_path, inputs):
        with pytest.raises(ValueError, match="every"):
            CheckpointManager(tmp_path / "c.npz", inputs, every=0)

    def test_save_nothing_rejected(self, tmp_path, inputs):
        ckpt = CheckpointManager(tmp_path / "c.npz", inputs)
        with pytest.raises(CheckpointError, match="no complete diagonal"):
            ckpt.save(FTable(inputs.n, inputs.m))
