"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.robust.errors import EngineFailure
from repro.robust.faults import FaultEvent, FaultPlan


class TestEngineWindowFaults:
    def test_crash_fires_once(self):
        plan = FaultPlan(crash_windows=[(1, 3)])
        with pytest.raises(EngineFailure, match="injected crash"):
            plan.engine_window(1, 3)
        # fire-once: the retried/resumed computation proceeds
        assert plan.engine_window(1, 3) == 0.0

    def test_healthy_window_is_free(self):
        plan = FaultPlan()
        assert plan.engine_window(0, 0) == 0.0
        assert plan.events == []

    def test_slow_window_returns_delay(self):
        plan = FaultPlan(slow_windows=[(0, 2)], slow_delay_s=0.25)
        assert plan.engine_window(0, 2) == 0.25
        assert plan.events == [FaultEvent("slow-window", (0, 2))]


class TestWorkerFaults:
    def test_worker_crash_fires_once(self):
        plan = FaultPlan(worker_crashes=[2])
        plan.pool_task(0)
        with pytest.raises(EngineFailure, match="task 2"):
            plan.pool_task(2)
        plan.pool_task(2)  # retried task proceeds


class TestMessageFaults:
    def test_scripted_drops_consume_budget(self):
        plan = FaultPlan(message_drops=[(1, 0), (1, 0)])
        assert plan.drop_message(1, 0)
        assert plan.drop_message(1, 0)
        assert not plan.drop_message(1, 0)
        assert not plan.drop_message(0, 1)

    def test_rate_based_drops_deterministic_per_seed(self):
        def decisions(seed):
            plan = FaultPlan(seed=seed, message_drop_rate=0.5)
            return [plan.drop_message(0, 1) for _ in range(64)]

        assert decisions(3) == decisions(3)
        assert any(decisions(3)) and not all(decisions(3))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="message_drop_rate"):
            FaultPlan(message_drop_rate=1.5)


class TestRankDeaths:
    def test_death_fires_once_at_diagonal(self):
        plan = FaultPlan(rank_deaths=[(2, 3)])
        assert not plan.rank_dies(2, 1)
        assert plan.rank_dies(2, 3)
        assert not plan.rank_dies(2, 3)
        assert not plan.rank_dies(1, 3)


class TestDeterminism:
    def test_identical_plans_log_identical_events(self):
        def run(plan):
            for w in [(0, 1), (1, 2), (0, 2)]:
                try:
                    plan.engine_window(*w)
                except EngineFailure:
                    pass
            for _ in range(16):
                plan.drop_message(0, 1)
            plan.rank_dies(1, 2)
            return plan.events

        make = lambda: FaultPlan(  # noqa: E731
            seed=9,
            crash_windows=[(1, 2)],
            message_drop_rate=0.3,
            rank_deaths=[(1, 2)],
        )
        assert run(make()) == run(make())
