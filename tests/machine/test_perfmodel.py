"""Tests for the calibrated performance model.

These assert the *qualitative claims of the paper* — who wins, rough
factors, crossovers — which is exactly what the model exists to
reproduce (see DESIGN.md's substitution table).
"""

import pytest

from repro.bench.workloads import PAPER_ANCHORS
from repro.machine.perfmodel import BPMAX_VARIANTS, DMP_VARIANTS, PerfModel
from repro.machine.specs import XEON_E2278G

N = 16
TILE = (64, 16, 0)


@pytest.fixture(scope="module")
def pm():
    return PerfModel()


class TestStreamCalibration:
    def test_fig12_six_thread_anchor(self, pm):
        """Paper: up to 120 GFLOPS with 6 threads."""
        g = pm.predict_stream(16 * 1024, 6)
        assert g == pytest.approx(PAPER_ANCHORS["stream_6t_gflops"], rel=0.05)

    def test_fig12_twelve_thread_anchor(self, pm):
        g = pm.predict_stream(16 * 1024, 12)
        assert g == pytest.approx(PAPER_ANCHORS["stream_12t_gflops"], rel=0.05)

    def test_staircase_decreases_with_chunk(self, pm):
        vals = [pm.predict_stream(c, 6) for c in (2**12, 2**18, 2**21, 2**25)]
        assert vals == sorted(vals, reverse=True)
        assert vals[0] > 3 * vals[-1]

    def test_invalid_args(self, pm):
        with pytest.raises(ValueError):
            pm.predict_stream(0, 6)


class TestDmpModel:
    def test_fig13_tiled_hits_117(self, pm):
        """Tiled kernel ~117 GFLOPS = ~97% of the stream target."""
        g = pm.predict_dmp("tiled", N, 1024, tile=TILE).gflops
        assert g == pytest.approx(PAPER_ANCHORS["dmp_tiled_gflops"], rel=0.1)
        assert g / pm.predict_stream(16 * 1024, 6) > 0.9

    def test_fig13_ordering_moderate_sizes(self, pm):
        """tiled > fine > coarse > base once coarse has spilled the LLC."""
        g = {v: pm.predict_dmp(v, N, 1024, tile=TILE).gflops for v in DMP_VARIANTS}
        assert g["tiled"] > g["fine-ltr"] > g["coarse"] > g["base"]

    def test_fig14_kernel_speedup_over_100x(self, pm):
        """Paper: ~178x over the original base kernel."""
        base = pm.predict_dmp("base", N, 2048)
        tiled = pm.predict_dmp("tiled", N, 2048, tile=TILE)
        s = tiled.speedup_over(base)
        assert 100 <= s <= 250

    def test_phase1_collapse_at_long_sequences(self, pm):
        """§IV-A-c: 'significant collapse in performance when the input
        sequences are longer' for the untiled kernel."""
        short = pm.predict_dmp("fine-ltr", N, 512).gflops
        long_ = pm.predict_dmp("fine-ltr", N, 4096).gflops
        assert long_ < 0.7 * short

    def test_coarse_spills_earlier_than_fine(self, pm):
        """Coarse-grain multiplies the LLC footprint by the thread count."""
        m = 1024
        coarse = pm.predict_dmp("coarse", N, m)
        fine = pm.predict_dmp("fine-ltr", N, m)
        assert coarse.gflops < fine.gflops
        assert coarse.bound == "DRAM"

    def test_diagonal_vs_bottomup_minor(self, pm):
        """Fig. 13: only a minor difference between traversal orders."""
        d = pm.predict_dmp("fine-diagonal", N, 1024).gflops
        b = pm.predict_dmp("fine-ltr", N, 1024).gflops
        assert 0.9 < d / b < 1.0

    def test_fig17_smt_gain_3_to_5_percent(self, pm):
        lo, hi = PAPER_ANCHORS["smt_gain_tiled"]
        for m in (512, 1024, 2048, 4096):
            g6 = pm.predict_dmp("tiled", N, m, 6, tile=TILE).gflops
            g12 = pm.predict_dmp("tiled", N, m, 12, tile=TILE).gflops
            assert lo - 0.01 <= g12 / g6 <= hi + 0.01

    def test_fig18_j2_untiled_beats_cubic(self, pm):
        """'cubic tiles perform poorly ... best result when j2 is not tiled'."""
        best = pm.predict_dmp("tiled", N, 2500, tile=(64, 16, 0)).gflops
        cubic = pm.predict_dmp("tiled", N, 2500, tile=(64, 64, 64)).gflops
        assert best > 1.2 * cubic

    def test_fig18_best_vs_generic_within_about_10pct(self, pm):
        """'10% performance differences between the best and generic tiles'."""
        a = pm.predict_dmp("tiled", N, 1024, tile=(64, 16, 0)).gflops
        b = pm.predict_dmp("tiled", N, 1024, tile=(128, 8, 0)).gflops
        assert abs(a - b) / max(a, b) <= 0.15

    def test_unknown_variant_rejected(self, pm):
        with pytest.raises(ValueError, match="unknown"):
            pm.predict_dmp("turbo", N, 256)

    def test_bad_tile_rejected(self, pm):
        with pytest.raises(ValueError, match="tile"):
            pm.predict_dmp("tiled", N, 256, tile=(0, 4, 0))

    def test_no_work_rejected(self, pm):
        with pytest.raises(ValueError, match="work"):
            pm.predict_dmp("base", 1, 1)


class TestBpmaxModel:
    def test_fig15_tiled_hybrid_near_76(self, pm):
        """Paper: ~76 GFLOPS for moderate-size sequences."""
        g = pm.predict_bpmax("hybrid-tiled", N, 1024, tile=TILE).gflops
        assert g == pytest.approx(PAPER_ANCHORS["bpmax_tiled_gflops"], rel=0.2)

    def test_fig15_ordering(self, pm):
        g = {v: pm.predict_bpmax(v, N, 1024, tile=TILE).gflops for v in BPMAX_VARIANTS}
        assert g["hybrid-tiled"] > g["hybrid"] > g["fine"] > g["base"]
        assert g["hybrid-tiled"] > g["coarse"]

    def test_fig16_100x_speedup(self, pm):
        """Paper: ~100x speedup for longer sequences."""
        base = pm.predict_bpmax("base", N, 1024)
        tiled = pm.predict_bpmax("hybrid-tiled", N, 1024, tile=TILE)
        assert 70 <= tiled.speedup_over(base) <= 180

    def test_full_program_slower_than_kernel(self, pm):
        """§V-C: the whole program is well below the 117 GFLOPS kernel,
        dragged down by R1/R2."""
        kernel = pm.predict_dmp("tiled", N, 1024, tile=TILE).gflops
        program = pm.predict_bpmax("hybrid-tiled", N, 1024, tile=TILE).gflops
        assert program < 0.8 * kernel

    def test_r1r2_collapse_at_2048(self, pm):
        """§V-C: the Theta(M^2)=16 MB row working set spills at M=2048."""
        g1024 = pm.predict_bpmax("hybrid-tiled", N, 1024, tile=TILE).gflops
        g2048 = pm.predict_bpmax("hybrid-tiled", N, 2048, tile=TILE).gflops
        assert g2048 < g1024

    def test_fine_cannot_parallelize_r1r2(self, pm):
        """Fine-grain leaves R1/R2 single-threaded -> worse than hybrid."""
        fine = pm.predict_bpmax("fine", N, 1024).gflops
        hybrid = pm.predict_bpmax("hybrid", N, 1024).gflops
        assert hybrid > 1.5 * fine

    def test_e2278g_same_or_better(self, pm):
        """§V-C / Fig. 1: E-2278G performs the same or better."""
        pm8 = PerfModel(XEON_E2278G)
        for m in (512, 1024, 2048):
            g6 = pm.predict_bpmax("hybrid-tiled", N, m, tile=TILE).gflops
            g8 = pm8.predict_bpmax("hybrid-tiled", N, m, tile=TILE).gflops
            assert g8 >= 0.95 * g6

    def test_quarter_of_peak_on_e2278g(self):
        """Paper: 'reaching close to one-fourth of the theoretical
        single-precision machine peak' on E-2278G."""
        pm8 = PerfModel(XEON_E2278G)
        g = pm8.predict_bpmax("hybrid-tiled", N, 1024, tile=TILE).gflops
        frac = g / (XEON_E2278G.maxplus_peak_flops() / 1e9)
        assert 0.15 <= frac <= 0.35

    def test_unknown_variant_rejected(self, pm):
        with pytest.raises(ValueError, match="unknown"):
            pm.predict_bpmax("warp", N, 256)


class TestFutureWorkVariants:
    """Conclusion §VI projections: register tiling and R1/R2 tiling."""

    def test_register_tiling_compute_bound(self, pm):
        """'an additional level of tiling at the register level is
        required to make the program compute-bound'."""
        r = pm.predict_dmp("register-tiled", N, 1024, tile=TILE)
        assert r.bound == "peak"
        assert r.gflops > 2 * pm.predict_dmp("tiled", N, 1024, tile=TILE).gflops

    def test_register_tiling_below_peak(self, pm):
        r = pm.predict_dmp("register-tiled", N, 1024, tile=TILE)
        assert r.gflops <= pm.machine.maxplus_peak_flops() / 1e9

    def test_r12_tiling_lifts_program(self, pm):
        """'We also plan to apply tiling on R1 and R2'."""
        plain = pm.predict_bpmax("hybrid-tiled", N, 1024, tile=TILE)
        tiled12 = pm.predict_bpmax("hybrid-tiled-r12", N, 1024, tile=TILE)
        assert tiled12.gflops > plain.gflops

    def test_r12_tiling_removes_collapse(self, pm):
        """R1/R2 tiling keeps the rows L2-resident, so the M=2048 DRAM
        collapse of the plain hybrid-tiled program disappears."""
        g1024 = pm.predict_bpmax("hybrid-tiled-r12", N, 1024, tile=TILE).gflops
        g2048 = pm.predict_bpmax("hybrid-tiled-r12", N, 2048, tile=TILE).gflops
        assert g2048 >= 0.95 * g1024
