"""Tests for the roofline model (paper Fig. 11)."""

import numpy as np
import pytest

from repro.machine.roofline import MAXPLUS_STREAM_AI, Roofline
from repro.machine.specs import XEON_E5_1650V4


@pytest.fixture
def rl():
    return Roofline(XEON_E5_1650V4, threads=6)


class TestRoofline:
    def test_maxplus_ai_is_one_sixth(self):
        assert MAXPLUS_STREAM_AI == pytest.approx(1 / 6)

    def test_l1_bound_matches_paper(self, rl):
        """Paper: 'we expect to achieve around 329 GFLOPS based on L1'."""
        pt = rl.maxplus_bound("L1")
        assert pt.bound == "memory"
        assert 320 <= pt.attainable_gflops <= 340

    def test_peak(self, rl):
        assert rl.peak_gflops == pytest.approx(345.6)

    def test_memory_bound_below_ridge(self, rl):
        for level in rl.levels():
            ridge = rl.ridge_point(level)
            below = rl.attainable(ridge / 2, level)
            above = rl.attainable(ridge * 2, level)
            assert below.bound == "memory"
            assert above.bound == "compute"
            assert above.attainable_gflops == pytest.approx(rl.peak_gflops)

    def test_rooflines_ordered_by_level(self, rl):
        """At the stream AI, L1 roof >= L2 >= L3 >= DRAM."""
        vals = [
            rl.attainable(MAXPLUS_STREAM_AI, lvl).attainable_gflops
            for lvl in ("L1", "L2", "L3", "DRAM")
        ]
        assert vals == sorted(vals, reverse=True)

    def test_curve_monotone(self, rl):
        ais, vals = rl.curve("L2")
        assert len(ais) == len(vals)
        assert (np.diff(vals) >= -1e-9).all()

    def test_invalid_ai_rejected(self, rl):
        with pytest.raises(ValueError, match="intensity"):
            rl.attainable(0.0, "L1")

    def test_fewer_threads_lower_roof(self):
        r1 = Roofline(XEON_E5_1650V4, 1)
        r6 = Roofline(XEON_E5_1650V4, 6)
        assert (
            r1.maxplus_bound("L1").attainable_gflops
            < r6.maxplus_bound("L1").attainable_gflops
        )
