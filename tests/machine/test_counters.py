"""Tests for the exact work counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.counters import (
    bpmax_breakdown,
    bytes_f_table,
    bytes_inner_triangle,
    flops_bpmax_total,
    flops_r0,
    flops_r1r2,
    flops_r3r4,
    k1,
    t1,
)

sizes = st.integers(1, 64)


class TestClosedForms:
    @given(st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_t1_counts_windows(self, n):
        assert t1(n) == sum(1 for i in range(n) for j in range(i, n))

    @given(st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_k1_counts_splits(self, n):
        brute = sum(
            1
            for i in range(n)
            for j in range(i, n)
            for k in range(i, j)
        )
        assert k1(n) == brute

    def test_r0_dominates_asymptotically(self):
        wk = bpmax_breakdown(64, 64)
        assert wk.r0_fraction > 0.8

    def test_r1r2_scales_as_n2m3(self):
        assert flops_r1r2(8, 16) == 2 * 2 * t1(8) * k1(16)

    def test_r3r4_symmetric_form(self):
        assert flops_r3r4(8, 16) == 2 * 2 * k1(8) * t1(16)

    @given(sizes, sizes)
    @settings(max_examples=30, deadline=None)
    def test_total_is_sum_of_parts(self, n, m):
        wk = bpmax_breakdown(n, m)
        assert wk.total == flops_bpmax_total(n, m)

    @given(sizes, sizes)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_both_lengths(self, n, m):
        assert flops_bpmax_total(n + 1, m) >= flops_bpmax_total(n, m)
        assert flops_bpmax_total(n, m + 1) >= flops_bpmax_total(n, m)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            bpmax_breakdown(0, 4)


class TestMemorySizes:
    def test_paper_16mb_anchor(self):
        """§V-C: ~16 MB of data per R1/R2 row at inner length 2048.

        The Theta(M^2) set = triangle + S2 box; the triangle alone is 8 MB.
        """
        tri = bytes_inner_triangle(2048)
        assert 8.0e6 < tri < 8.6e6
        assert 16.0e6 < tri * 2 + 8 < 17.2e6

    def test_f_table_quarter_of_box(self):
        """The triangular table is ~1/4 of the M^2 N^2 bounding box."""
        n, m = 64, 64
        box = n * n * m * m * 4
        assert bytes_f_table(n, m) / box == pytest.approx(0.25, rel=0.05)
