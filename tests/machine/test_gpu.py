"""Tests for the GPU comparison model (Gildemaster related work)."""

import pytest

from repro.machine.gpu import GpuSpec, GpuWindowedModel, VOLTA_LIKE


@pytest.fixture(scope="module")
def gm():
    return GpuWindowedModel()


class TestCapacity:
    def test_limited_window_claim(self, gm):
        """§II: 'only up to a limited number of nucleotide sequences or a
        window ... can be processed on GPU due to memory constraints.'"""
        n_fit = gm.max_resident_n(2500)
        assert n_fit < 64  # a 16 GB device holds only a few dozen rows

    def test_capacity_grows_as_m_shrinks(self, gm):
        assert gm.max_resident_n(512) > gm.max_resident_n(2500)

    def test_table_bytes(self, gm):
        # T1(16) = 136 windows of m^2 floats
        assert gm.table_bytes(16, 100) == 136 * 100 * 100 * 4


class TestComparison:
    def test_gpu_wins_in_memory(self, gm):
        """Gildemaster: 'significant speedup on a windowed version'."""
        c = gm.compare(16, 2500)
        assert c.fits_device
        assert c.gpu_speedup_over_cpu > 2

    def test_transfer_fraction_grows_past_capacity(self, gm):
        small = gm.compare(16, 2500)
        big = gm.compare(128, 2500)
        assert not big.fits_device
        assert big.transfer_fraction > small.transfer_fraction

    def test_speedup_declines_past_capacity(self, gm):
        """'the cost of moving data out of the GPU memory negatively
        impacts the overall performance.'"""
        resident = gm.compare(16, 2500).gpu_speedup_over_cpu
        spilled = gm.compare(256, 2500).gpu_speedup_over_cpu
        assert spilled < resident

    def test_windows_needed_grow(self, gm):
        assert gm.compare(256, 2500).windows_needed > gm.compare(64, 2500).windows_needed

    def test_small_sizes_rejected(self, gm):
        with pytest.raises(ValueError, match="need n, m"):
            gm.compare(1, 100)


class TestGpuSpec:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GpuSpec("x", 0, 1, 1, 1)
        with pytest.raises(ValueError, match="efficiency"):
            GpuSpec("x", 1, 1, 1, 1, kernel_efficiency=2.0)

    def test_volta_defaults(self):
        assert VOLTA_LIKE.memory_bytes == 16 * 1024**3

    def test_bigger_memory_bigger_windows(self):
        small = GpuWindowedModel(GpuSpec("s", 14e12, 4 * 1024**3, 900e9, 12e9))
        large = GpuWindowedModel(GpuSpec("l", 14e12, 32 * 1024**3, 900e9, 12e9))
        assert large.max_resident_n(2500) > small.max_resident_n(2500)
