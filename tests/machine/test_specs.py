"""Tests for machine specifications."""

import pytest

from repro.machine.specs import MACHINES, XEON_E2278G, XEON_E5_1650V4


class TestXeonE51650v4:
    def test_theoretical_maxplus_peak(self):
        """Paper §V-A: ~346 GFLOPS single-precision max-plus peak."""
        assert XEON_E5_1650V4.maxplus_peak_flops() / 1e9 == pytest.approx(345.6)

    def test_scalar_peak_is_peak_over_lanes(self):
        assert XEON_E5_1650V4.scalar_peak_flops() * 8 == pytest.approx(
            XEON_E5_1650V4.maxplus_peak_flops()
        )

    def test_cache_sizes(self):
        assert XEON_E5_1650V4.cache("L1").size_bytes == 32 * 1024
        assert XEON_E5_1650V4.cache("L2").size_bytes == 256 * 1024
        assert XEON_E5_1650V4.llc.size_bytes == 15 * 1024 * 1024

    def test_l1_bandwidth_per_core(self):
        """93 bytes/cycle at 3.6 GHz."""
        bw = XEON_E5_1650V4.level_bandwidth("L1", 1)
        assert bw == pytest.approx(93 * 3.6e9)

    def test_bandwidth_scales_with_cores_up_to_six(self):
        bw1 = XEON_E5_1650V4.level_bandwidth("L1", 1)
        assert XEON_E5_1650V4.level_bandwidth("L1", 6) == pytest.approx(6 * bw1)
        # SMT threads do not add cache ports
        assert XEON_E5_1650V4.level_bandwidth("L1", 12) == pytest.approx(6 * bw1)

    def test_dram_bandwidth(self):
        assert XEON_E5_1650V4.level_bandwidth("DRAM") == pytest.approx(76.8e9)

    def test_unknown_cache_rejected(self):
        with pytest.raises(KeyError):
            XEON_E5_1650V4.cache("L4")

    def test_smt_capped_peak(self):
        assert XEON_E5_1650V4.maxplus_peak_flops(12) == pytest.approx(
            XEON_E5_1650V4.maxplus_peak_flops(6)
        )


class TestE2278G:
    def test_more_cores_higher_peak(self):
        assert XEON_E2278G.maxplus_peak_flops() > XEON_E5_1650V4.maxplus_peak_flops()

    def test_registry(self):
        assert set(MACHINES) == {"Xeon E5-1650v4", "Xeon E-2278G"}
