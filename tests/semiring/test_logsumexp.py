"""Property tests of the log-sum-exp semiring instance.

Three contracts, each driven by Hypothesis under the suite's named
profiles (see ``tests/conftest.py``):

* **semiring axioms** — ⊕ = ``logaddexp`` and ⊗ = ``+`` form a
  commutative semiring over ``[-inf, +finite)``: identity and
  absorption are *exact* (``logaddexp(-inf, x) == x`` — the property
  the engines' masking relies on), associativity and distributivity
  hold within the corpus tolerance (1e-9), since float reduction order
  legitimately perturbs the last bits;
* **temperature limit** — ``(1/β)·lse(β·x)`` agrees with max-plus as
  β → ∞, monotonically from above, so the log-partition value is a
  smoothed upper bound of the BPMax score;
* **overflow safety** — extreme magnitudes never produce ``inf``/
  ``nan``: ``logaddexp`` is the shifted form, not ``log(exp+exp)``.
"""

from __future__ import annotations

import functools
import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.semiring import LOG_SUM_EXP, MAX_PLUS, Semiring, get_semiring

SR = LOG_SUM_EXP
NEG_INF = float("-inf")
#: corpus tolerance for non-exact comparisons (mirrors repro.golden)
ATOL = RTOL = 1e-9

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
#: semiring carrier: finite scores plus the ⊕-identity -inf
values = st.one_of(finite, st.just(NEG_INF))
value_lists = st.lists(values, min_size=1, max_size=12)


def close(a: float, b: float) -> bool:
    # math.isclose treats equal infinities as close, which is what the
    # tolerance policy means for the -inf identity element
    return math.isclose(a, b, rel_tol=RTOL, abs_tol=ATOL)


class TestDescriptor:
    def test_instance_flags(self):
        assert SR.name == "logsumexp"
        assert SR.exact is False and SR.idempotent is False
        assert SR.npdtype == np.dtype(np.float64)
        assert MAX_PLUS.exact is True and MAX_PLUS.idempotent is True
        assert isinstance(SR, Semiring)

    def test_aliases_resolve(self):
        assert get_semiring("logsumexp") is SR
        assert get_semiring("log-sum-exp") is SR
        assert get_semiring(SR) is SR

    def test_identity_elements(self):
        assert SR.zero == NEG_INF and SR.one == 0.0


class TestAxioms:
    @given(a=values, b=values)
    def test_add_commutative_exact(self, a, b):
        assert SR.add(a, b) == SR.add(b, a)

    @given(a=values, b=values, c=values)
    def test_add_associative_within_tolerance(self, a, b, c):
        assert close(SR.add(SR.add(a, b), c), SR.add(a, SR.add(b, c)))

    @given(x=values)
    def test_add_identity_exact(self, x):
        # the engines mask pruned candidates with -inf and rely on the
        # identity holding bit-exactly, not just within tolerance
        assert SR.add(SR.zero, x) == x
        assert SR.add(x, SR.zero) == x

    @given(x=values)
    def test_mul_identity_and_absorption_exact(self, x):
        assert SR.mul(SR.one, x) == x
        assert SR.mul(SR.zero, x) == SR.zero

    @given(a=values, b=values, c=values)
    def test_mul_distributes_over_add(self, a, b, c):
        lhs = SR.mul(a, SR.add(b, c))
        rhs = SR.add(SR.mul(a, b), SR.mul(a, c))
        assert close(lhs, rhs)

    @given(xs=value_lists)
    def test_add_reduce_matches_pairwise_fold(self, xs):
        arr = np.asarray(xs, dtype=np.float64)
        folded = functools.reduce(SR.add, xs)
        assert close(float(SR.add_reduce(arr)), float(folded))

    @given(xs=value_lists)
    def test_add_is_monotone_above_max(self, xs):
        # ⊕ only adds probability mass: lse(xs) >= max(xs), with
        # equality iff a single term dominates completely
        arr = np.asarray(xs, dtype=np.float64)
        assert float(SR.add_reduce(arr)) >= float(np.max(arr))


class TestTemperatureLimit:
    """(1/β)·lse(β·x) ↓ max(x) as β → ∞ (agreement with max-plus)."""

    @given(xs=st.lists(finite, min_size=1, max_size=8))
    def test_bounded_between_max_and_max_plus_log_n(self, xs):
        arr = np.asarray(xs, dtype=np.float64)
        mx = float(np.max(arr))
        for beta in (1.0, 4.0, 64.0, 1024.0):
            smoothed = float(np.logaddexp.reduce(beta * arr)) / beta
            assert smoothed >= mx - ATOL
            assert smoothed <= mx + math.log(len(xs)) / beta + ATOL

    @given(xs=st.lists(finite, min_size=2, max_size=8))
    def test_monotone_decreasing_in_beta(self, xs):
        arr = np.asarray(xs, dtype=np.float64)
        prev = math.inf
        for beta in (1.0, 2.0, 8.0, 128.0, 4096.0):
            smoothed = float(np.logaddexp.reduce(beta * arr)) / beta
            # non-increasing within rounding slack scaled to magnitude
            slack = 1e-9 * max(1.0, abs(smoothed))
            assert smoothed <= prev + slack
            prev = smoothed

    @given(xs=st.lists(finite, min_size=1, max_size=8))
    def test_limit_is_the_maxplus_reduction(self, xs):
        arr = np.asarray(xs, dtype=np.float64)
        mx = float(MAX_PLUS.add_reduce(arr))
        beta = 1e8
        smoothed = float(np.logaddexp.reduce(beta * arr)) / beta
        assert math.isclose(smoothed, mx, rel_tol=1e-6, abs_tol=1e-6)


extreme = st.floats(
    min_value=-1e308, max_value=1e308, allow_nan=False, allow_infinity=False
)


class TestOverflowSafety:
    @given(a=extreme, b=extreme)
    def test_pairwise_never_inf_or_nan(self, a, b):
        with np.errstate(over="ignore"):  # |a - b| may exceed float64
            out = float(SR.add(a, b))
        assert math.isfinite(out), (a, b, out)

    @given(xs=st.lists(st.one_of(extreme, st.just(NEG_INF)), min_size=1, max_size=16))
    def test_reduce_never_nan(self, xs):
        with np.errstate(over="ignore"):
            out = float(SR.add_reduce(np.asarray(xs, dtype=np.float64)))
        assert not math.isnan(out), xs
        assert out != math.inf, xs  # -inf allowed: all-identity input

    def test_huge_magnitude_cancellation(self):
        # naive log(exp(a) + exp(b)) overflows at a ~ 710; the shifted
        # form must survive the extremes of float64
        assert float(SR.add(1e308, 1e308)) == pytest.approx(1e308)
        with np.errstate(over="ignore"):  # |a - b| itself exceeds float64
            assert float(SR.add(-1e308, 1e308)) == pytest.approx(1e308)
        arr = np.array([710.0] * 8, dtype=np.float64)
        assert math.isfinite(float(SR.add_reduce(arr)))
