"""Max-plus kernel equivalence and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring.maxplus import (
    KERNELS,
    NEG_INF,
    matmul_flops,
    maxplus_matmul,
    maxplus_matmul_naive,
    maxplus_matmul_tiled,
    maxplus_matmul_vectorized,
)
from repro.semiring.semiring import MAX_PLUS


def _rand(rng, shape):
    return rng.random(shape).astype(np.float32)


@st.composite
def matmul_case(draw):
    n = draw(st.integers(1, 6))
    k = draw(st.integers(1, 6))
    m = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    return _rand(rng, (n, k)), _rand(rng, (k, m)), _rand(rng, (n, m))


class TestKernelEquivalence:
    @given(matmul_case())
    @settings(max_examples=40, deadline=None)
    def test_all_kernels_agree(self, case):
        a, b, c0 = case
        ref = c0.copy()
        maxplus_matmul_naive(a, b, ref)
        for name, kern in KERNELS.items():
            got = c0.copy()
            if name == "tiled":
                kern(a, b, got, tile=(2, 2, 2))
            else:
                kern(a, b, got)
            assert np.allclose(got, ref), name

    def test_matches_semiring_reference(self):
        rng = np.random.default_rng(0)
        a, b = _rand(rng, (5, 7)), _rand(rng, (7, 3))
        assert np.allclose(maxplus_matmul(a, b), MAX_PLUS.matmul(a, b))

    @pytest.mark.parametrize(
        "tile", [(1, 1, 1), (3, 2, 0), (8, 8, 8), (2, 5, 3), (16, 1, 0)]
    )
    def test_tiled_any_shape(self, tile):
        rng = np.random.default_rng(3)
        a, b = _rand(rng, (7, 6)), _rand(rng, (6, 9))
        ref = maxplus_matmul(a, b)
        got = np.full((7, 9), NEG_INF, dtype=np.float32)
        maxplus_matmul_tiled(a, b, got, tile=tile)
        assert np.allclose(got, ref)


class TestAccumulation:
    def test_accumulates_into_c(self):
        """C's prior contents participate in the max."""
        a = np.zeros((1, 1), dtype=np.float32)
        b = np.zeros((1, 1), dtype=np.float32)
        c = np.full((1, 1), 99.0, dtype=np.float32)
        maxplus_matmul_vectorized(a, b, c)
        assert c[0, 0] == 99.0

    def test_neg_inf_rows_ignored(self):
        a = np.full((2, 2), NEG_INF, dtype=np.float32)
        b = np.ones((2, 2), dtype=np.float32)
        c = np.zeros((2, 2), dtype=np.float32)
        maxplus_matmul_vectorized(a, b, c)
        assert np.all(c == 0.0)

    def test_empty_k_dimension(self):
        a = np.zeros((2, 0), dtype=np.float32)
        b = np.zeros((0, 2), dtype=np.float32)
        c = np.zeros((2, 2), dtype=np.float32)
        for name, kern in KERNELS.items():
            out = c.copy()
            if name == "tiled":
                kern(a, b, out, tile=(1, 1, 0))
            else:
                kern(a, b, out)
            assert np.allclose(out, c), name


class TestValidation:
    def test_shape_mismatch(self):
        a = np.zeros((2, 3), dtype=np.float32)
        b = np.zeros((4, 2), dtype=np.float32)
        c = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="incompatible"):
            maxplus_matmul_vectorized(a, b, c)

    def test_bad_tile_rejected(self):
        a = b = c = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="tile"):
            maxplus_matmul_tiled(a, b, c, tile=(0, 1, 0))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            maxplus_matmul_vectorized(
                np.zeros(3, dtype=np.float32),
                np.zeros((3, 3), dtype=np.float32),
                np.zeros((3, 3), dtype=np.float32),
            )

    def test_flops_count(self):
        assert matmul_flops(2, 3, 4) == 48


class TestRegisterKernel:
    """The future-work two-level kernel must agree with every other."""

    @given(matmul_case(), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_matches_naive(self, case, reg):
        from repro.semiring.maxplus import maxplus_matmul_register

        a, b, c0 = case
        ref = c0.copy()
        maxplus_matmul_naive(a, b, ref)
        got = c0.copy()
        maxplus_matmul_register(a, b, got, tile=(2, 3, 2), reg=reg)
        assert np.allclose(got, ref)

    def test_bad_reg_rejected(self):
        from repro.semiring.maxplus import maxplus_matmul_register

        z = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="register depth"):
            maxplus_matmul_register(z, z, z.copy(), reg=0)
