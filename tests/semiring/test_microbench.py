"""Tests for the Algorithm-3 stream micro-benchmark."""

import numpy as np
import pytest

from repro.semiring.microbench import (
    StreamBenchmark,
    maxplus_stream,
    maxplus_stream_python,
    stream_flops,
)


class TestKernel:
    def test_matches_python_version(self):
        rng = np.random.default_rng(0)
        x = rng.random(50).astype(np.float32)
        y1 = rng.random(50).astype(np.float32)
        y2 = y1.copy()
        maxplus_stream(1.5, x, y1)
        maxplus_stream_python(1.5, x, y2)
        assert np.allclose(y1, y2)

    def test_in_place(self):
        x = np.array([1.0], dtype=np.float32)
        y = np.array([0.0], dtype=np.float32)
        out = maxplus_stream(2.0, x, y)
        assert out is y
        assert y[0] == 3.0

    def test_keeps_larger_y(self):
        x = np.array([0.0], dtype=np.float32)
        y = np.array([10.0], dtype=np.float32)
        maxplus_stream(1.0, x, y)
        assert y[0] == 10.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            maxplus_stream(0.0, np.zeros(3), np.zeros(4))


class TestBenchmark:
    def test_flop_accounting(self):
        assert stream_flops(100, 5) == 1000

    def test_run_reports_positive_gflops(self):
        res = StreamBenchmark(chunk_size=1024, iterations=2, threads=1).run()
        assert res.gflops > 0
        assert res.seconds > 0
        assert res.chunk_size == 1024

    def test_threads_scale_work(self):
        r1 = StreamBenchmark(1024, iterations=2, threads=1).run()
        r2 = StreamBenchmark(1024, iterations=2, threads=3).run()
        # 3x the arrays -> 3x the flops accounted
        assert r2.threads == 3
        assert stream_flops(1024, 2) * 3 == 3 * stream_flops(1024, 2)
        assert r2.seconds >= r1.seconds * 0.5  # sanity: more work, not less time/3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_sizes_rejected(self, bad):
        with pytest.raises(ValueError):
            StreamBenchmark(chunk_size=bad)
        with pytest.raises(ValueError):
            StreamBenchmark(chunk_size=8, iterations=bad)

    def test_deterministic_data(self):
        b1 = StreamBenchmark(64, seed=9)
        b2 = StreamBenchmark(64, seed=9)
        assert np.allclose(b1._xs[0], b2._xs[0])
