"""Semiring axioms, property-based."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring.semiring import MAX_PLUS, MIN_PLUS, PLUS_TIMES, Semiring

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)
SEMIRINGS = [MAX_PLUS, MIN_PLUS, PLUS_TIMES]


@pytest.mark.parametrize("sr", SEMIRINGS, ids=lambda s: s.name)
class TestAxioms:
    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=50, deadline=None)
    def test_add_associative_commutative(self, sr: Semiring, a, b, c):
        assert sr.add(sr.add(a, b), c) == pytest.approx(sr.add(a, sr.add(b, c)), rel=1e-9, abs=1e-9)
        assert sr.add(a, b) == sr.add(b, a)

    @given(a=finite)
    @settings(max_examples=50, deadline=None)
    def test_identities(self, sr: Semiring, a):
        assert sr.add(a, sr.zero) == a
        assert sr.mul(a, sr.one) == pytest.approx(a)

    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=50, deadline=None)
    def test_mul_distributes_over_add(self, sr: Semiring, a, b, c):
        left = sr.mul(a, sr.add(b, c))
        right = sr.add(sr.mul(a, b), sr.mul(a, c))
        assert left == pytest.approx(right, rel=1e-6, abs=1e-6)


class TestMatrixOps:
    def test_eye_is_identity_maxplus(self):
        rng = np.random.default_rng(0)
        a = rng.random((4, 4)).astype(np.float32)
        assert np.allclose(MAX_PLUS.matmul(a, MAX_PLUS.eye(4)), a)
        assert np.allclose(MAX_PLUS.matmul(MAX_PLUS.eye(4), a), a)

    def test_plus_times_matches_numpy(self):
        rng = np.random.default_rng(1)
        a, b = rng.random((3, 5)), rng.random((5, 2))
        assert np.allclose(PLUS_TIMES.matmul(a, b), a @ b)

    def test_maxplus_matmul_associative(self):
        rng = np.random.default_rng(2)
        a, b, c = (rng.random((4, 4)) for _ in range(3))
        left = MAX_PLUS.matmul(MAX_PLUS.matmul(a, b), c)
        right = MAX_PLUS.matmul(a, MAX_PLUS.matmul(b, c))
        assert np.allclose(left, right)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="incompatible"):
            MAX_PLUS.matmul(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_zeros(self):
        z = MIN_PLUS.zeros((2, 2))
        assert np.all(np.isposinf(z))
