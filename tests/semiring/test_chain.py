"""Tests for the tropical matrix-chain library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring.chain import (
    accumulated_products,
    all_windows_product,
    chain_flops,
    chain_order,
    chain_product,
)
from repro.semiring.semiring import MAX_PLUS, MIN_PLUS, PLUS_TIMES


def _chain(dims, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.random((dims[i], dims[i + 1])).astype(np.float64)
        for i in range(len(dims) - 1)
    ]


class TestChainOrder:
    def test_clrs_example(self):
        """The classic CLRS instance: optimal cost 15125."""
        ops, _ = chain_order([30, 35, 15, 5, 10, 20, 25])
        assert ops == 15125

    def test_single_matrix_zero_cost(self):
        ops, _ = chain_order([4, 7])
        assert ops == 0

    def test_flops_optimal_at_most_left_to_right(self):
        dims = [30, 35, 15, 5, 10, 20, 25]
        assert chain_flops(dims, optimal=True) <= chain_flops(dims, optimal=False)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            chain_order([5])


class TestChainProduct:
    def test_plus_times_matches_numpy(self):
        mats = _chain([3, 4, 2, 5])
        got = chain_product(mats, PLUS_TIMES)
        assert np.allclose(got, mats[0] @ mats[1] @ mats[2])

    @given(st.integers(2, 5), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_maxplus_parenthesization_invariant(self, r, seed):
        """Associativity: any parenthesization gives the same product."""
        rng = np.random.default_rng(seed)
        dims = list(rng.integers(1, 5, r + 1))
        mats = _chain(dims, seed)
        opt = chain_product(mats, MAX_PLUS)
        left = mats[0]
        for m in mats[1:]:
            left = MAX_PLUS.matmul(left, m)
        assert np.allclose(opt, left)

    def test_min_plus_shortest_path_semantics(self):
        """Chain product of an adjacency matrix power = path lengths."""
        inf = float("inf")
        a = np.array([[0, 1, inf], [inf, 0, 1], [inf, inf, 0]])
        two_hops = chain_product([a, a], MIN_PLUS)
        assert two_hops[0, 2] == 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            chain_product([np.zeros((2, 3)), np.zeros((4, 2))])


class TestWindows:
    def test_all_windows_consistent_with_chain(self):
        mats = _chain([3, 3, 3, 3], 7)
        wins = all_windows_product(mats, MAX_PLUS)
        assert np.allclose(wins[(0, 2)], chain_product(mats, MAX_PLUS))

    def test_window_count(self):
        mats = _chain([2] * 5, 1)
        wins = all_windows_product(mats, MAX_PLUS)
        assert len(wins) == 4 * 5 // 2

    def test_accumulated_equals_full_for_maxplus(self):
        """For idempotent ⊕ and square matrices, accumulating all splits
        equals the full chain product (the DMP correctness core)."""
        mats = _chain([4] * 5, 3)
        acc = accumulated_products(mats, MAX_PLUS)
        full = chain_product(mats, MAX_PLUS)
        assert np.allclose(acc, full)

    def test_accumulated_single_matrix(self):
        mats = _chain([3, 4], 2)
        assert np.allclose(accumulated_products(mats, MAX_PLUS), mats[0])

    def test_accumulated_differs_for_plus_times(self):
        """Non-idempotent ⊕: splits genuinely add up."""
        mats = _chain([2, 2, 2, 2], 5)  # three square matrices
        acc = accumulated_products(mats, PLUS_TIMES)
        full = chain_product(mats, PLUS_TIMES)
        # r-1 = 2 splits, each equal to the full product for plus-times
        assert np.allclose(acc, 2 * full)
