"""Tests for the Four-Russians backend: tables, encoders, precondition,
bit-identity, observe counters, sparsification and the autotune sweep."""

import itertools

import numpy as np
import pytest

from repro.core.engine import make_engine
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.kernels import BACKENDS
from repro.kernels.autotune import (
    default_candidates,
    default_q_candidates,
    fr_cache_key,
    get_block_width,
    tune_fourrussians,
)
from repro.kernels.fourrussians_tables import (
    EXACT_INT_LIMIT,
    MAX_CODES,
    TABLE_CACHE_BUDGET,
    BoundedScoresCheck,
    FourRussiansTables,
    cache_block_width,
    check_bounded_scores,
    encode_col_blocks,
    encode_row_blocks,
    get_tables,
    heuristic_q,
    max_block_width,
    nussinov_fourrussians,
)
from repro.observe import collecting
from repro.observe.report import predicted_fr_cells
from repro.rna.nussinov import nussinov_reference
from repro.rna.scoring import ScoringModel
from repro.rna.sequence import random_pair


@pytest.fixture
def rng():
    return np.random.default_rng(17)


# -- block-width arithmetic ----------------------------------------------------


class TestBlockWidths:
    def test_max_block_width_respects_code_cap(self):
        for d in (0, 1, 2, 3, 7):
            q = max_block_width(d)
            assert (d + 1) ** (q - 1) <= MAX_CODES
            assert d == 0 or (d + 1) ** q > MAX_CODES

    def test_cache_block_width_respects_budget(self):
        for d in (1, 2, 3):
            q = cache_block_width(d)
            t = FourRussiansTables(d, q)
            assert t.comb.nbytes <= TABLE_CACHE_BUDGET
            # one step wider must blow the budget (or the code cap)
            if q < max_block_width(d):
                assert FourRussiansTables(d, q + 1).comb.nbytes > TABLE_CACHE_BUDGET

    def test_heuristic_q_clamped_by_cache_budget(self):
        # d=3 at large M: log2 would pick 7+, the budget caps lower
        assert heuristic_q(160, 3) == cache_block_width(3)
        assert heuristic_q(8, 3) == 3  # small M: log2 rules
        assert heuristic_q(2, 3) == 2  # floor


# -- table construction --------------------------------------------------------


def _brute_tables(d, q):
    """Brute-force pf/pu from first principles over all digit strings.

    Codes are little-endian in base ``d + 1`` (digit ``k`` scales by
    ``(d + 1)**k``), matching the ``powers`` vector of the tables.
    """
    t = FourRussiansTables(d, q)

    def prefix_of(code):
        digits = [(code // (d + 1) ** k) % (d + 1) for k in range(q - 1)]
        return np.concatenate([[0], np.cumsum(digits)])

    for ca in range(t.ncodes):
        pa = prefix_of(ca)
        for cb in range(t.ncodes):
            yield t, ca, cb, pa, prefix_of(cb)


@pytest.mark.parametrize("d,q", [(1, 3), (2, 3), (3, 2)])
class TestTables:
    def test_pair_matches_brute_force(self, d, q):
        for t, ca, cb, pa, pb in _brute_tables(d, q):
            assert t.pair[ca, cb] == max(pa[k] - pb[k] for k in range(q))

    def test_pf_matches_brute_force(self, d, q):
        for t, ca, cb, pa, pb in _brute_tables(d, q):
            for t0 in range(q):
                want = max(pa[k] - pa[t0] - pb[k] for k in range(t0, q))
                assert t.pf[t0, ca, cb] == want

    def test_pu_matches_brute_force(self, d, q):
        for t, ca, cb, pa, pb in _brute_tables(d, q):
            for tmax in range(1, q):
                want = max(pa[k] - pb[k] for k in range(tmax))
                assert t.pu[tmax, ca, cb] == want

    def test_comb_layout_views(self, d, q):
        t = FourRussiansTables(d, q)
        # pu occupies [0, q), pf occupies [q, 2q); pair is pf[0]
        assert np.shares_memory(t.pu, t.comb) and np.shares_memory(t.pf, t.comb)
        assert t.comb.shape == (2 * q, t.ncodes, t.ncodes)
        np.testing.assert_array_equal(t.comb[q], t.pair)
        assert t.pair_flat.base is not None


class TestTableCache:
    def test_get_tables_is_cached(self):
        assert get_tables(2, 3) is get_tables(2, 3)

    def test_rejects_code_overflow(self):
        with pytest.raises(ValueError, match="MAX_CODES"):
            FourRussiansTables(31, 4)

    def test_rejects_degenerate_width(self):
        with pytest.raises(ValueError, match=">= 2"):
            FourRussiansTables(2, 1)


# -- difference encoders -------------------------------------------------------


class TestEncoders:
    def test_row_blocks_round_trip(self, rng):
        q, d = 3, 2
        t = get_tables(d, q)
        mat = np.cumsum(rng.integers(0, d + 1, size=(4, 10)), axis=1).astype(
            np.float32
        )
        codes, base = encode_row_blocks(mat, q, d, t.powers)
        assert codes.shape == base.shape == (4, 10 // q)
        for i in range(4):
            for kb in range(10 // q):
                assert base[i, kb] == mat[i, kb * q]
                for k in range(q):
                    got = base[i, kb] + t.prefix[codes[i, kb], k]
                    assert got == mat[i, kb * q + k]

    def test_col_blocks_round_trip(self, rng):
        q, d = 3, 2
        t = get_tables(d, q)
        mat = (
            np.cumsum(rng.integers(0, d + 1, size=(9, 5)), axis=0)[::-1]
            .astype(np.float32)
            .copy()
        )
        codes, base = encode_col_blocks(mat, q, d, t.powers)
        for kb in range(9 // q):
            for j in range(5):
                assert base[kb, j] == mat[kb * q, j]
                for k in range(q):
                    got = base[kb, j] - t.prefix[codes[kb, j], k]
                    assert got == mat[kb * q + k, j]

    def test_partial_blocks_not_encoded(self):
        t = get_tables(1, 4)
        codes, base = encode_row_blocks(np.zeros((3, 7), np.float32), 4, 1, t.powers)
        assert codes.shape == (3, 1)  # 7 // 4

    def test_neg_inf_regions_do_not_poison(self):
        t = get_tables(2, 2)
        mat = np.full((2, 4), -np.inf, dtype=np.float32)
        mat[0] = [0.0, 1.0, 2.0, 2.0]
        codes, base = encode_row_blocks(mat, 2, 2, t.powers)
        assert np.all(codes >= 0) and np.all(codes < t.ncodes)


# -- Nussinov prototype --------------------------------------------------------


class TestNussinovPrototype:
    @pytest.mark.parametrize("seq", ["GGGCCC", "GCAUGCAUGCAU", "AUGCGCGAUAUGCCG"])
    @pytest.mark.parametrize("q", [None, 2, 4])
    def test_bitwise_equal_to_reference(self, seq, q):
        ref = nussinov_reference(seq)
        got = nussinov_fourrussians(seq, q=q)
        np.testing.assert_array_equal(got, ref)

    def test_refuses_unbounded_model(self):
        bad = ScoringModel(pair_weights={frozenset("GC"): 2.5})
        with pytest.raises(ValueError, match="precondition"):
            nussinov_fourrussians("GGCC", model=bad)


# -- precondition checker ------------------------------------------------------


class TestPrecondition:
    def test_default_model_passes(self):
        check = check_bounded_scores(ScoringModel())
        assert check == BoundedScoresCheck(ok=True, d=3)

    def test_prepared_inputs_pass(self):
        s1, s2 = random_pair(6, 8, 3)
        assert check_bounded_scores(prepare_inputs(s1, s2)).ok

    @pytest.mark.parametrize(
        "weights,why",
        [
            ({frozenset("GC"): 2.5}, "not integers"),
            ({frozenset("GC"): -1.0}, "negative"),
            ({frozenset("GC"): float(2 * EXACT_INT_LIMIT)}, "exceed"),
        ],
    )
    def test_violations_detected(self, weights, why):
        check = check_bounded_scores(ScoringModel(pair_weights=weights))
        assert not check.ok and why in check.reason


class TestEngineFallback:
    """Satellite: violating models fall back, never compute a wrong score."""

    def _violating_inputs(self):
        model = ScoringModel(pair_weights={frozenset("GC"): 1.5})
        s1, s2 = random_pair(5, 7, 11)
        return prepare_inputs(s1, s2, model=model)

    def test_falls_back_with_structured_note(self):
        inputs = self._violating_inputs()
        engine = make_engine(inputs, variant="batched", backend="fourrussians")
        note = engine.backend_note
        assert note is not None
        assert note["requested"] == "fourrussians"
        assert note["resolved"] == "numpy-batched"
        assert "not integers" in note["reason"]

    def test_fallback_score_is_correct(self):
        inputs = self._violating_inputs()
        got = make_engine(inputs, variant="batched", backend="fourrussians").run()
        assert got == bpmax_recursive(inputs)

    def test_conforming_inputs_carry_no_note(self):
        s1, s2 = random_pair(5, 7, 11)
        engine = make_engine(
            prepare_inputs(s1, s2), variant="batched", backend="fourrussians"
        )
        assert engine.backend_note is None and engine._fr is not None

    def test_threaded_run_keeps_generic_kernel_bit_identical(self):
        s1, s2 = random_pair(6, 9, 13)
        inputs = prepare_inputs(s1, s2)
        ref = make_engine(inputs, variant="batched", backend="numpy-batched").run()
        got = make_engine(
            inputs, variant="batched", backend="fourrussians", threads=2
        ).run()
        assert got == ref


# -- bit-identity of the blocked kernel ----------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("n,m", [(4, 5), (6, 9), (8, 12), (5, 16), (7, 13)])
    @pytest.mark.parametrize("q", [None, 2, 3])
    @pytest.mark.parametrize("sparsify", [True, False])
    def test_table_matches_batched(self, n, m, q, sparsify):
        s1, s2 = random_pair(n, m, n * 31 + m)
        inputs = prepare_inputs(s1, s2)
        ref = make_engine(inputs, variant="batched", backend="numpy-batched")
        ref_score = ref.run()
        fr = make_engine(
            inputs,
            variant="batched",
            backend="fourrussians",
            fr_q=q,
            fr_sparsify=sparsify,
        )
        assert fr.run() == ref_score
        np.testing.assert_array_equal(fr.table.packed, ref.table.packed)

    def test_matches_recursive_oracle(self):
        s1, s2 = random_pair(5, 8, 21)
        inputs = prepare_inputs(s1, s2)
        got = make_engine(inputs, variant="batched", backend="fourrussians").run()
        assert got == bpmax_recursive(inputs)

    def test_tiny_inner_strand(self):
        # m < q: no full blocks at all, boundary pass carries the window
        s1, s2 = random_pair(6, 2, 9)
        inputs = prepare_inputs(s1, s2)
        ref = make_engine(inputs, variant="batched", backend="numpy-batched").run()
        assert make_engine(inputs, variant="batched", backend="fourrussians").run() == ref


# -- observe counters ----------------------------------------------------------


class TestCounters:
    @pytest.mark.parametrize("n,m,q", [(4, 6, 2), (5, 9, 3), (6, 13, 3)])
    def test_predicted_equals_observed_without_pruning(self, n, m, q):
        s1, s2 = random_pair(n, m, m)
        inputs = prepare_inputs(s1, s2)
        with collecting() as c:
            make_engine(
                inputs,
                variant="batched",
                backend="fourrussians",
                fr_q=q,
                fr_sparsify=False,
            ).run()
        want = predicted_fr_cells(n, m, q)
        got = c.as_dict()
        assert got["fr_lookup_cells"] == want["fr_lookup_cells"]
        assert got["fr_boundary_cells"] == want["fr_boundary_cells"]
        assert got["r0_splits_pruned"] == 0

    def test_table_build_counted_once_per_config(self):
        from repro.kernels import fourrussians_tables as ft

        ft._TABLES.pop("fr|d3|q2", None)
        with collecting() as c:
            get_tables(3, 2)
            get_tables(3, 2)
        assert c.fr_table_builds == 1 and c.fr_table_cells > 0

    def test_sparsifiable_input_prunes_splits(self):
        # no intermolecular weight and an unpairable inner strand: whole
        # splits are dominated and must be skipped, not just bounded
        model = ScoringModel(inter_weights={})
        inputs = prepare_inputs("GGGCCCGGGCCC", "AAAAAAAAAA", model=model)
        with collecting() as c:
            fr = make_engine(inputs, variant="batched", backend="fourrussians")
            score = fr.run()
        assert c.r0_splits_pruned > 0
        ref = make_engine(inputs, variant="batched", backend="numpy-batched").run()
        assert score == ref

    def test_pruned_run_counts_fewer_lookups(self):
        model = ScoringModel(inter_weights={})
        inputs = prepare_inputs("GGGCCCGGGCCC", "AAAAAAAAAA", model=model)
        def cells(sparsify):
            with collecting() as c:
                make_engine(
                    inputs,
                    variant="batched",
                    backend="fourrussians",
                    fr_sparsify=sparsify,
                ).run()
            return c.fr_lookup_cells
        assert cells(True) < cells(False)


# -- registry capability flags -------------------------------------------------


class TestRegistration:
    def test_registered_with_capabilities(self):
        b = BACKENDS["fourrussians"]
        assert b.available
        assert b.capabilities.get("bounded_scores")
        assert b.capabilities.get("workspace_reuse")
        assert b.capabilities.get("autotune")
        assert b.fallback == "numpy-batched"


# -- autotune ------------------------------------------------------------------


class TestAutotune:
    def test_default_candidates_deduplicated(self):
        # n=16, threads=4: n//2 == 8 collides with the power-of-two ladder
        cands = default_candidates(16, 4)
        assert cands == sorted(set(cands))
        assert len(cands) == len(set(cands))

    def test_default_q_candidates_range(self):
        qs = default_q_candidates(80, 3)
        assert qs[0] == 2 and qs == sorted(set(qs))
        assert qs[-1] <= max_block_width(3)
        assert qs[-1] >= cache_block_width(3)

    def test_fr_cache_key_includes_bound(self):
        a = fr_cache_key(8, 16, 1, 3)
        b = fr_cache_key(8, 16, 1, 2)
        assert a != b and a.endswith("|fr|d3")

    def test_tune_round_trip(self, tmp_path):
        path = tmp_path / "autotune.json"
        result = tune_fourrussians(
            5, 12, q_candidates=[2, 3, 3], repeats=1, path=path
        )
        assert result.param == "fr_q"
        assert result.best_wb in (2, 3)
        assert result.best_sparsify in (True, False)
        assert set(result.candidates) == {"q2|sp0", "q2|sp1", "q3|sp0", "q3|sp1"}
        # the persisted winner is what engines pick up afterwards
        assert get_block_width(5, 12, 1, 3, path=path) == result.best_wb

    def test_get_block_width_falls_back_to_heuristic(self, tmp_path):
        path = tmp_path / "empty.json"
        assert get_block_width(5, 24, 1, 3, path=path) == heuristic_q(24, 3)

    def test_tune_refuses_violating_model(self, tmp_path, monkeypatch):
        from repro.kernels import autotune as at

        def bad_check(_):
            return BoundedScoresCheck(ok=False, reason="unit test")

        monkeypatch.setattr(
            "repro.kernels.fourrussians_tables.check_bounded_scores", bad_check
        )
        with pytest.raises(ValueError, match="precondition"):
            at.tune_fourrussians(4, 8, repeats=1, path=tmp_path / "x.json")


# -- serving passthrough -------------------------------------------------------


class TestServePassthrough:
    def test_scheduler_accepts_fourrussians_backend(self):
        from repro.serve import BatchScheduler, SubmitRequest

        req = SubmitRequest(
            "GGGG", "CCCC", variant="batched", backend="fourrussians"
        )
        with BatchScheduler(cache=0) as sched:
            (r,) = sched.serve_all([req])
        assert r.ok and r.score == 12.0
