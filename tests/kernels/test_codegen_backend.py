"""Generated-kernel backend: cache semantics, registry, engine parity.

The codegen backend closes the schedule → kernel loop; this suite pins
its operational contracts:

* **cache** — cold loads emit source once (``codegen_compiles``), every
  later load in-process or from disk is a ``codegen_cache_hits``; keys
  carry the machine fingerprint, dtype, size class, schedule, tile and
  emitter version; stale on-disk entries (key mismatch) recompile;
* **registry** — ``generated`` / ``generated-kmajor`` /
  ``generated-smajor`` register as ``slab_direct`` backends with full
  provenance; ``generated-numba`` degrades to ``generated`` without
  numba installed;
* **engine parity** — every generated backend produces packed tables
  bit-identical to ``numpy-batched`` under max-plus, and scores that
  conform to the golden corpus in both algebras; threaded runs fall
  back to the generic row-partitioned path and stay exact;
* **joint autotune** — ``tune_joint`` persists a (schedule, tile)
  winner that :func:`get_generated_config` replays, defaulting to
  ``kmajor`` untiled when nothing was tuned.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.api import bpmax
from repro.core.engine import make_engine
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.golden import MANIFEST_SEMIRINGS, verify_manifest
from repro.kernels import BACKENDS, HAVE_NUMBA, get_backend
from repro.kernels.autotune import (
    cache_key,
    get_generated_config,
    joint_cache_key,
    load_cache,
    machine_fingerprint,
    save_entry,
    size_class,
    tune_joint,
)
from repro.kernels.codegen_backend import (
    clear_codegen_memory_cache,
    codegen_cache_dir,
    codegen_cache_key,
    get_window_kernel,
    load_kernel_module,
    make_pinned_backend,
)
from repro.observe import collecting
from repro.polyhedral.codegen.vectorize import CODEGEN_VERSION
from repro.rna.sequence import random_pair
from repro.semiring import LOG_SUM_EXP, MAX_PLUS
from repro.serve.request import SubmitRequest
from repro.serve.scheduler import BatchScheduler

MANIFEST = Path(__file__).parent.parent / "golden" / "manifest.json"
GENERATED_NAMES = ("generated", "generated-kmajor", "generated-smajor")


@pytest.fixture
def codegen_env(tmp_path, monkeypatch):
    """Isolated disk caches + a clean in-process module cache."""
    monkeypatch.setenv("BPMAX_CODEGEN_CACHE", str(tmp_path / "codegen"))
    monkeypatch.setenv("BPMAX_TUNE_CACHE", str(tmp_path / "autotune.json"))
    clear_codegen_memory_cache()
    yield tmp_path
    clear_codegen_memory_cache()


def _full_tables(engine):
    n = engine.inputs.n
    return {
        (i1, j1): np.array(engine.table.inner(i1, j1), copy=True)
        for i1 in range(n)
        for j1 in range(i1, n)
    }


class TestCacheKey:
    def test_key_fields(self):
        key = codegen_cache_key("kmajor", 8, dtype="float64", m=20)
        assert key == (
            f"{machine_fingerprint()}|float64|m{size_class(20)}"
            f"|kmajor|wj8|v{CODEGEN_VERSION}"
        )

    def test_dir_precedence(self, monkeypatch, tmp_path):
        monkeypatch.setenv("BPMAX_CODEGEN_CACHE", str(tmp_path / "env"))
        assert codegen_cache_dir() == tmp_path / "env"
        assert codegen_cache_dir(tmp_path / "explicit") == tmp_path / "explicit"
        monkeypatch.delenv("BPMAX_CODEGEN_CACHE")
        assert codegen_cache_dir() == Path.home() / ".cache" / "bpmax" / "codegen"

    def test_joint_key_extends_tile_key(self):
        assert joint_cache_key(12, 10, 2) == cache_key(12, 10, 2) + "|joint"


class TestCacheRoundTrip:
    def test_cold_compile_then_in_process_hit(self, codegen_env):
        with collecting() as c:
            get_window_kernel("kmajor", 0, MAX_PLUS, m=12)
        assert c.codegen_compiles == 1
        assert c.codegen_cache_hits == 0
        with collecting() as c:
            get_window_kernel("kmajor", 0, MAX_PLUS, m=12)
        assert c.codegen_compiles == 0
        assert c.codegen_cache_hits == 1

    def test_disk_hit_after_memory_clear(self, codegen_env):
        get_window_kernel("smajor", 8, MAX_PLUS, m=12)
        clear_codegen_memory_cache()  # simulate a fresh process
        with collecting() as c:
            get_window_kernel("smajor", 8, MAX_PLUS, m=12)
        assert c.codegen_compiles == 0
        assert c.codegen_cache_hits >= 1

    def test_source_on_disk_carries_key_header(self, codegen_env):
        load_kernel_module("kmajor", 0, m=12)
        files = list((codegen_env / "codegen").glob("*.py"))
        assert len(files) == 1
        key = codegen_cache_key("kmajor", 0, m=12)
        assert files[0].read_text().startswith(f"# key: {key}\n")

    def test_stale_disk_entry_recompiles(self, codegen_env):
        load_kernel_module("kmajor", 0, m=12)
        (f,) = (codegen_env / "codegen").glob("*.py")
        f.write_text("# key: something-else\nraise AssertionError\n")
        clear_codegen_memory_cache()
        with collecting() as c:
            load_kernel_module("kmajor", 0, m=12)
        assert c.codegen_compiles == 1
        key = codegen_cache_key("kmajor", 0, m=12)
        assert f.read_text().startswith(f"# key: {key}\n")

    def test_distinct_variants_distinct_modules(self, codegen_env):
        with collecting() as c:
            load_kernel_module("kmajor", 0, m=12)
            load_kernel_module("kmajor", 8, m=12)
            load_kernel_module("smajor", 0, m=12)
            load_kernel_module("kmajor", 0, dtype="float64", m=12)
        assert c.codegen_compiles == 4
        assert len(list((codegen_env / "codegen").glob("*.py"))) == 4

    def test_semiring_binding_cached_per_algebra(self, codegen_env):
        k1 = get_window_kernel("kmajor", 0, MAX_PLUS, m=12)
        k2 = get_window_kernel("kmajor", 0, MAX_PLUS, m=12)
        k3 = get_window_kernel("kmajor", 0, LOG_SUM_EXP, m=12)
        assert k1 is k2
        assert k3 is not k1


class TestRegistry:
    def test_generated_backends_registered(self):
        for name in GENERATED_NAMES:
            b = BACKENDS[name]
            assert b.available
            assert b.capabilities["slab_direct"]
            assert b.capabilities["workspace_reuse"]
            assert b.window_r0 is not None
            assert set(b.semirings) == {"max-plus", "logsumexp"}

    def test_provenance_rendered_fields(self):
        assert BACKENDS["generated-kmajor"].provenance == {
            "schedule": "kmajor",
            "tile_wj": 0,
            "source": "pinned",
        }
        prov = BACKENDS["generated"].provenance
        assert prov["schedule"] == "auto" and "tune" in prov["source"]

    def test_numba_variant_degrades_without_numba(self):
        b = BACKENDS["generated-numba"]
        assert b.semirings == ("max-plus",)
        if HAVE_NUMBA:
            assert b.available
        else:
            assert not b.available
            assert b.fallback == "generated"
            assert get_backend("generated-numba").name == "generated"

    def test_pinned_instances_pass_through_get_backend(self):
        bk = make_pinned_backend("smajor", 16)
        assert get_backend(bk) is bk
        assert bk.name == "generated:smajor:wj16"
        assert bk.provenance["codegen"] == f"v{CODEGEN_VERSION}"
        assert bk.name not in BACKENDS  # throwaway, never registered


class TestEngineParity:
    @pytest.mark.parametrize("backend", GENERATED_NAMES)
    def test_tables_bit_identical_maxplus(self, codegen_env, backend):
        s1, s2 = random_pair(8, 7, 23)
        inp = prepare_inputs(s1, s2)
        ref = make_engine(inp, variant="batched")
        gen = make_engine(inp, variant="batched", backend=backend)
        assert ref.run() == gen.run()
        expected = _full_tables(ref)
        got = _full_tables(gen)
        for key, block in expected.items():
            np.testing.assert_array_equal(got[key], block, err_msg=str(key))

    @pytest.mark.parametrize("backend", ["generated", "generated-smajor"])
    def test_logsumexp_matches_reference(self, codegen_env, backend):
        s1, s2 = random_pair(7, 6, 41)
        inp = prepare_inputs(s1, s2, semiring="logsumexp")
        ref = make_engine(inp, variant="batched").run()
        got = make_engine(inp, variant="batched", backend=backend).run()
        assert got == pytest.approx(ref, abs=1e-9)

    def test_threads_fall_back_to_generic_path(self, codegen_env):
        """threads > 1 keeps the row-partitioned path — still exact,
        and no generated-kernel cells are counted."""
        s1, s2 = random_pair(9, 6, 31)
        inp = prepare_inputs(s1, s2)
        expected = bpmax_recursive(inp)
        with collecting() as c:
            got = make_engine(
                inp, variant="batched", backend="generated-kmajor", threads=2
            ).run()
        assert got == expected
        assert c.generated_kernel_cells == 0

    def test_generated_cells_counted_single_thread(self, codegen_env):
        s1, s2 = random_pair(6, 5, 19)
        inp = prepare_inputs(s1, s2)
        with collecting() as c:
            make_engine(inp, variant="batched", backend="generated").run()
        assert c.generated_kernel_cells > 0
        assert c.codegen_compiles + c.codegen_cache_hits >= 1
        with collecting() as c:
            make_engine(inp, variant="batched").run()
        assert c.generated_kernel_cells == 0

    @pytest.mark.parametrize("shape", [(1, 1), (1, 5), (5, 1), (2, 2), (3, 7)])
    def test_degenerate_shapes(self, codegen_env, shape):
        n, m = shape
        s1, s2 = random_pair(n, m, 3)
        inp = prepare_inputs(s1, s2)
        expected = bpmax_recursive(inp)
        got = make_engine(inp, variant="batched", backend="generated").run()
        assert got == expected

    def test_serve_passthrough(self, codegen_env):
        s1, s2 = random_pair(6, 6, 57)
        req = SubmitRequest(str(s1), str(s2), backend="generated-kmajor")
        with BatchScheduler(cache=0) as sched:
            (r,) = sched.serve_all([req])
        assert r.ok, r.error
        assert r.score == bpmax(str(s1), str(s2)).score


class TestGoldenConformance:
    @pytest.mark.parametrize("semiring", MANIFEST_SEMIRINGS)
    @pytest.mark.parametrize("backend", ["generated-kmajor", "generated-smajor"])
    def test_generated_backends_conform(self, codegen_env, backend, semiring):
        problems = verify_manifest(
            MANIFEST, variant="batched", backend=backend, semirings=(semiring,)
        )
        assert problems == []


class TestJointTune:
    def test_tune_persists_and_replays(self, codegen_env):
        path = codegen_env / "autotune.json"
        res = tune_joint(12, 10, repeats=1, tiles=[0, 8], path=path)
        assert res.param == "wj"
        assert res.best_schedule in ("kmajor", "smajor")
        assert res.best_wb in (0, 8)
        assert set(res.candidates) == {
            "kmajor|wj0", "kmajor|wj8", "smajor|wj0", "smajor|wj8"
        }
        entry = load_cache(path)["entries"][res.key]
        assert entry["schedule"] == res.best_schedule
        assert entry["wj"] == res.best_wb
        assert get_generated_config(12, 10, path=path) == (
            res.best_schedule,
            res.best_wb,
        )

    def test_untuned_default_is_kmajor_untiled(self, codegen_env):
        path = codegen_env / "autotune.json"
        assert get_generated_config(50, 50, path=path) == ("kmajor", 0)

    def test_malformed_entry_falls_back_to_default(self, codegen_env):
        path = codegen_env / "autotune.json"
        save_entry(joint_cache_key(9, 9, 1), {"wj": 8}, path)  # no schedule
        assert get_generated_config(9, 9, path=path) == ("kmajor", 0)
        save_entry(
            joint_cache_key(9, 9, 2), {"schedule": "smajor", "wj": -3}, path
        )
        assert get_generated_config(9, 9, threads=2, path=path) == ("smajor", 0)

    def test_empty_grid_rejected(self, codegen_env):
        with pytest.raises(ValueError, match="at least one"):
            tune_joint(6, 6, schedules=[], path=codegen_env / "autotune.json")

    def test_rerun_warm_starts_previous_winner(self, codegen_env):
        """A persisted winner is swept first (its caches get the untimed
        warm-up) without changing the grid's membership."""
        path = codegen_env / "autotune.json"
        save_entry(
            joint_cache_key(8, 8, 1),
            {"schedule": "smajor", "wj": 8, "wall_s": 0.0},
            path,
        )
        res = tune_joint(
            8, 8, repeats=1, schedules=["kmajor", "smajor"], tiles=[0, 8],
            path=path,
        )
        assert set(res.candidates) == {
            "kmajor|wj0", "kmajor|wj8", "smajor|wj0", "smajor|wj8"
        }
