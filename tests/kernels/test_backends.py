"""Tests for the kernel backend registry and its fallback semantics."""

import numpy as np
import pytest

from repro.kernels import (
    BACKENDS,
    DEFAULT_BACKEND,
    HAVE_NUMBA,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.semiring.maxplus import NEG_INF, maxplus_matmul_naive


class TestRegistry:
    def test_core_backends_registered(self):
        assert {"numpy", "numpy-batched", "numba"} <= set(BACKENDS)

    def test_default_resolves(self):
        assert get_backend(None).name == DEFAULT_BACKEND
        assert get_backend(DEFAULT_BACKEND).name == DEFAULT_BACKEND

    def test_resolved_backend_passthrough(self):
        b = get_backend("numpy")
        assert get_backend(b) is b

    def test_unknown_backend_raises_with_listing(self):
        with pytest.raises(ValueError, match="unknown backend 'warp'"):
            get_backend("warp")
        with pytest.raises(ValueError, match="numpy-batched"):
            get_backend("warp")

    def test_numba_fallback_chain(self):
        resolved = get_backend("numba")
        if HAVE_NUMBA:
            assert resolved.name == "numba"
        else:
            assert resolved.name == DEFAULT_BACKEND
            assert not BACKENDS["numba"].available
            assert BACKENDS["numba"].note  # explains why it is missing

    def test_available_backends_sorted_and_available(self):
        names = available_backends()
        assert list(names) == sorted(names)
        assert all(BACKENDS[n].available for n in names)
        assert DEFAULT_BACKEND in names

    def test_unavailable_without_fallback_raises(self):
        register_backend(
            KernelBackend(
                "_test-dead",
                matmul=lambda a, b, c: c,
                batched_r0=lambda *a, **k: a[2],
                available=False,
                note="unit test",
            )
        )
        try:
            with pytest.raises(ValueError, match="unavailable"):
                get_backend("_test-dead")
        finally:
            del BACKENDS["_test-dead"]

    def test_fallback_cycle_detected(self):
        register_backend(
            KernelBackend(
                "_test-cycle",
                matmul=lambda a, b, c: c,
                batched_r0=lambda *a, **k: a[2],
                available=False,
                fallback="_test-cycle",
                note="unit test",
            )
        )
        try:
            with pytest.raises(ValueError, match="fallback"):
                get_backend("_test-cycle")
        finally:
            del BACKENDS["_test-cycle"]

    def test_register_last_wins(self):
        original = BACKENDS["numpy"]
        try:
            replacement = KernelBackend(
                "numpy", matmul=original._matmul, batched_r0=original._batched_r0
            )
            assert register_backend(replacement) is replacement
            assert get_backend("numpy") is replacement
        finally:
            BACKENDS["numpy"] = original

    def test_repr_mentions_availability(self):
        assert "available" in repr(get_backend("numpy"))
        if not HAVE_NUMBA:
            assert "unavailable" in repr(BACKENDS["numba"])


def _random_stacks(rng, s, m, triangular):
    """Stacked operands, optionally with the BPMax triangle structure."""
    a = rng.uniform(-4, 9, size=(s, m, m)).astype(np.float32)
    b = rng.uniform(-4, 9, size=(s, m, m)).astype(np.float32)
    if triangular:
        for t in range(s):
            a[t][np.tril_indices(m, -1)] = NEG_INF  # strictly lower = -inf
            b[t][np.tril_indices(m, 0)] = NEG_INF  # shifted: row k cols <= k
    return a, b


class TestBackendKernels:
    @pytest.mark.parametrize("name", ["numpy", "numpy-batched"])
    def test_batched_r0_matches_naive(self, rng, name):
        backend = get_backend(name)
        a, b = _random_stacks(rng, 3, 6, triangular=False)
        expected = np.full((6, 6), NEG_INF, dtype=np.float32)
        for t in range(3):
            maxplus_matmul_naive(a[t], b[t], expected)
        got = np.full((6, 6), NEG_INF, dtype=np.float32)
        backend.batched_r0(a, b, got)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("name", ["numpy", "numpy-batched"])
    def test_triangular_flag_bit_identical(self, rng, name):
        backend = get_backend(name)
        a, b = _random_stacks(rng, 4, 7, triangular=True)
        dense = np.full((7, 7), NEG_INF, dtype=np.float32)
        backend.batched_r0(a, b, dense)
        tri = np.full((7, 7), NEG_INF, dtype=np.float32)
        backend.batched_r0(a, b, tri, triangular=True)
        np.testing.assert_array_equal(tri, dense)

    @pytest.mark.parametrize("name", ["numpy", "numpy-batched"])
    def test_matmul_matches_naive(self, rng, name):
        backend = get_backend(name)
        a = rng.uniform(-4, 9, size=(5, 5)).astype(np.float32)
        b = rng.uniform(-4, 9, size=(5, 5)).astype(np.float32)
        expected = np.full((5, 5), NEG_INF, dtype=np.float32)
        maxplus_matmul_naive(a, b, expected)
        got = np.full((5, 5), NEG_INF, dtype=np.float32)
        backend.matmul(a, b, got)
        np.testing.assert_array_equal(got, expected)

    def test_batched_scratch_reuse_bit_identical(self, rng):
        """Passing Workspace scratch must not change a single bit."""
        backend = get_backend("numpy-batched")
        a, b = _random_stacks(rng, 3, 6, triangular=False)
        plain = np.full((6, 6), NEG_INF, dtype=np.float32)
        backend.batched_r0(a, b, plain)
        tmp = np.empty((3, 6, 6), dtype=np.float32)
        red = np.empty((6, 6), dtype=np.float32)
        pooled = np.full((6, 6), NEG_INF, dtype=np.float32)
        backend.batched_r0(a, b, pooled, tmp=tmp, red=red)
        np.testing.assert_array_equal(pooled, plain)
