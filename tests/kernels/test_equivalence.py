"""Backend-equivalence suite: every backend must be *bit-identical* to the
references — on clean runs, across variants, under checkpoint/resume
interruption, under fault injection, threaded, and through fallback
chains.  This is the contract that makes the backend registry safe to
dispatch at runtime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import bpmax
from repro.core.dmp import DoubleMaxPlus, dmp_reference, random_triangles
from repro.core.engine import make_engine
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.core.vectorized import VARIANT_CONFIGS, VectorizedBPMax
from repro.kernels import available_backends
from repro.rna.sequence import random_pair
from repro.robust.errors import EngineFailure
from repro.robust.faults import FaultPlan

BACKEND_NAMES = list(available_backends())
RNA = st.text(alphabet="ACGU", min_size=1, max_size=6)


def _full_table_items(engine):
    n, m = engine.inputs.n, engine.inputs.m
    return {
        (i1, j1): np.array(engine.table.inner(i1, j1), copy=True)
        for i1 in range(n)
        for j1 in range(i1, n)
    }


class TestScoreEquivalence:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_batched_matches_oracle(self, medium_inputs, backend):
        expected = bpmax_recursive(medium_inputs)
        got = make_engine(medium_inputs, variant="batched", backend=backend).run()
        assert got == expected

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("variant", list(VARIANT_CONFIGS))
    def test_every_variant_accepts_every_backend(
        self, small_inputs, variant, backend
    ):
        expected = bpmax_recursive(small_inputs)
        got = VectorizedBPMax(
            small_inputs, variant=variant, backend=backend, tile=(2, 2, 0)
        ).run()
        assert got == expected

    @given(RNA, RNA)
    @settings(max_examples=25, deadline=None)
    def test_property_backends_bit_identical(self, a, b):
        inp = prepare_inputs(a, b)
        expected = bpmax_recursive(inp)
        scores = {
            name: make_engine(inp, variant="batched", backend=name).run()
            for name in BACKEND_NAMES
        }
        for name, score in scores.items():
            assert score == expected, name  # exact, not approx

    def test_full_tables_bit_identical(self, medium_inputs):
        engines = {
            name: make_engine(medium_inputs, variant="batched", backend=name)
            for name in BACKEND_NAMES
        }
        engines["legacy"] = make_engine(medium_inputs, variant="hybrid")
        for eng in engines.values():
            eng.run()
        tables = {name: _full_table_items(eng) for name, eng in engines.items()}
        ref = tables.pop("legacy")
        for name, table in tables.items():
            for key, block in ref.items():
                np.testing.assert_array_equal(table[key], block, err_msg=f"{name} {key}")


class TestDmpEquivalence:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_dmp_backend_bit_identical(self, backend):
        tris = random_triangles(6, 5, 3)
        ref = dmp_reference(tris)
        got = DoubleMaxPlus(tris, backend=backend).run()
        for key in ref:
            np.testing.assert_array_equal(got[key], ref[key], err_msg=str(key))

    def test_dmp_fallback_name_accepted(self):
        """'numba' resolves (to itself or its fallback) and stays exact."""
        tris = random_triangles(5, 4, 9)
        ref = dmp_reference(tris)
        got = DoubleMaxPlus(tris, backend="numba").run()
        for key in ref:
            np.testing.assert_array_equal(got[key], ref[key], err_msg=str(key))


class TestRobustnessEquivalence:
    """Backends must stay bit-identical through the fault-tolerance layer."""

    @pytest.fixture
    def strands(self):
        return random_pair(5, 7, 21)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_crash_resume_bit_identical(self, tmp_path, strands, backend):
        s1, s2 = strands
        clean = bpmax(s1, s2, variant="batched", backend=backend)
        path = tmp_path / f"{backend}.npz"
        plan = FaultPlan(crash_windows=[(1, 3)])
        with pytest.raises(EngineFailure):
            bpmax(
                s1, s2, variant="batched", backend=backend,
                checkpoint=path, faults=plan,
            )
        resumed = bpmax(
            s1, s2, variant="batched", backend=backend,
            checkpoint=path, resume=True,
        )
        assert resumed.score == clean.score
        assert resumed.resumed_windows > 0

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_fallback_chain_score_exact(self, strands, backend):
        s1, s2 = strands
        clean = bpmax(s1, s2, variant="batched", backend=backend)
        plan = FaultPlan(crash_windows=[(0, 4)])
        res = bpmax(
            s1, s2, variant="batched", backend=backend,
            fallback=("hybrid", "baseline"), faults=plan,
        )
        assert res.score == clean.score
        assert res.degraded_from == ("batched",)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_threaded_bit_identical(self, medium_inputs, backend):
        serial = make_engine(medium_inputs, variant="batched", backend=backend)
        threaded = make_engine(
            medium_inputs, variant="batched", backend=backend, threads=3
        )
        assert serial.run() == threaded.run()
        ref = _full_table_items(serial)
        got = _full_table_items(threaded)
        for key, block in ref.items():
            np.testing.assert_array_equal(got[key], block, err_msg=str(key))


class TestPersistentPool:
    def test_one_pool_per_run(self, medium_inputs, monkeypatch):
        """A threaded run builds exactly one pool and closes it at the end."""
        import repro.core.vectorized as vec

        created = []
        real_runner = vec.ParallelRunner

        class CountingRunner(real_runner):
            def __init__(self, *args, **kwargs):
                created.append(self)
                self.closed = False
                super().__init__(*args, **kwargs)

            def close(self):
                self.closed = True
                super().close()

        monkeypatch.setattr(vec, "ParallelRunner", CountingRunner)
        eng = VectorizedBPMax(medium_inputs, variant="batched", threads=2)
        eng.run()
        assert len(created) == 1
        assert created[0].closed
        assert eng._pool is None  # released for the next run

    def test_serial_run_builds_no_pool(self, small_inputs, monkeypatch):
        import repro.core.vectorized as vec

        def boom(*args, **kwargs):
            raise AssertionError("serial run must not build a thread pool")

        monkeypatch.setattr(vec, "ParallelRunner", boom)
        VectorizedBPMax(small_inputs, variant="batched").run()


class TestShiftedCache:
    def test_shifted_cached_and_consistent(self, small_inputs):
        eng = VectorizedBPMax(small_inputs, variant="hybrid")
        eng.run()
        tri = eng.table
        first = tri.shifted(1, small_inputs.n - 1)
        assert tri.shifted(1, small_inputs.n - 1) is first  # cached view
        inner = tri.inner(1, small_inputs.n - 1)
        np.testing.assert_array_equal(first[:-1], inner[1:])
        assert np.all(first[-1] == -np.inf)

    def test_cache_invalidated_on_set_inner(self, small_inputs):
        from repro.core.tables import FTable

        n, m = small_inputs.n, small_inputs.m
        t = FTable(n, m)
        t.alloc(0, 1)
        stale = t.shifted(0, 1)
        fresh_block = np.zeros((m, m), dtype=np.float32)
        t.set_inner(0, 1, fresh_block)
        renewed = t.shifted(0, 1)
        assert renewed is not stale
        np.testing.assert_array_equal(renewed[:-1], fresh_block[1:])

    def test_cache_dropped_on_free(self, small_inputs):
        from repro.core.tables import FTable

        n, m = small_inputs.n, small_inputs.m
        t = FTable(n, m)
        t.alloc(0, 1)
        t.shifted(0, 1)
        t.free(0, 1)
        t.alloc(0, 1)
        s = t.shifted(0, 1)  # rebuilt from the fresh block, no stale view
        assert np.all(s == -np.inf)
