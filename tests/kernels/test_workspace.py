"""Tests for the per-engine Workspace scratch pool."""

import numpy as np
import pytest

from repro.kernels import Workspace
from repro.semiring.maxplus import NEG_INF


class TestShapes:
    def test_eager_buffers(self):
        ws = Workspace(5, 3)
        assert ws.acc.shape == (5, 5)
        assert ws.red.shape == (5, 5)
        assert ws.fin.shape == (6, 5)
        for row in (ws.row_a, ws.row_b, ws.row_c):
            assert row.shape == (5,)
            assert row.dtype == np.float32

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError, match="width"):
            Workspace(0, 3)
        with pytest.raises(ValueError, match="kmax"):
            Workspace(4, -1)


class TestAccReset:
    def test_reset_fills_identity_and_reuses_buffer(self):
        ws = Workspace(4, 2)
        first = ws.acc_reset()
        first[:] = 7.0
        second = ws.acc_reset()
        assert second is first  # no reallocation
        assert np.all(second == NEG_INF)


class TestStacks:
    def test_lazy_then_grown(self):
        ws = Workspace(4, 10)
        assert ws.nbytes() < 4 * 4 * 4 * 10  # stacked buffers not built yet
        a, b, braw = ws.stacks(2)
        assert a.shape == (2, 4, 4)
        assert b.shape == (2, 4, 4)
        assert braw.shape == (2, 4, 4)
        grown = ws.nbytes()
        a2, _, _ = ws.stacks(3)  # within geometric slack: no regrow
        assert ws.nbytes() == grown
        ws.stacks(10)
        assert ws.nbytes() > grown

    def test_views_share_base_across_calls(self):
        ws = Workspace(3, 8)
        a1, _, _ = ws.stacks(2)
        a2, _, _ = ws.stacks(2)
        assert a1.base is a2.base

    def test_tmp3_matches_stack_capacity(self):
        ws = Workspace(3, 8)
        tmp = ws.tmp3(4)
        assert tmp.shape == (4, 3, 3)
        assert tmp.dtype == np.float32

    def test_kmax_exceeded_raises(self):
        ws = Workspace(3, 2)
        with pytest.raises(ValueError, match="sized for 2"):
            ws.stacks(3)

    def test_zero_kmax_allows_no_splits(self):
        ws = Workspace(3, 0)
        a, b, braw = ws.stacks(0)
        assert a.shape[0] == 0

    def test_repr(self):
        assert "Workspace" in repr(Workspace(3, 1))
