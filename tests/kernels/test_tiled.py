"""Tiled wavefront backend: scheduler, executor, autotuner, counters.

The generic equivalence suite (tests/kernels/test_equivalence.py) already
covers the ``tiled`` backend through its registry sweep; this module pins
the tile-specific contracts — window-block sweeps and thread counts stay
bit-identical, the dependence-counting scheduler is deterministic and
propagates failures, the autotune cache round-trips, resumed tiles are
skipped, and counters report the same op totals as the batched path.
"""

from __future__ import annotations

import json

import networkx as nx
import numpy as np
import pytest

from repro.core.api import bpmax
from repro.core.engine import make_engine
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.kernels import BACKENDS, TiledExecutor, Workspace, get_tile_shape
from repro.kernels.autotune import (
    cache_key,
    default_candidates,
    heuristic_block,
    load_cache,
    save_entry,
    size_class,
    tune,
)
from repro.kernels.tiled_backend import gemm_outer_sum_exact
from repro.observe import collecting
from repro.parallel.pool import ParallelRunner
from repro.parallel.wavefront import execute_dag
from repro.rna.sequence import random_pair
from repro.robust.errors import EngineFailure
from repro.robust.faults import FaultPlan

TILED = BACKENDS["tiled"]

pytestmark = pytest.mark.skipif(
    not TILED.available, reason=f"tiled backend unavailable: {TILED.note}"
)


def _full_tables(engine):
    n = engine.inputs.n
    return {
        (i1, j1): np.array(engine.table.inner(i1, j1), copy=True)
        for i1 in range(n)
        for j1 in range(i1, n)
    }


class TestBackendRegistration:
    def test_probe_passes_on_this_machine(self):
        assert gemm_outer_sum_exact()

    def test_capability_flags(self):
        assert TILED.capabilities == {
            "threads": True,
            "workspace_reuse": True,
            "autotune": True,
            "tile_graph": True,
            "bounded_scores": False,
            "slab_direct": False,
        }
        batched = BACKENDS["numpy-batched"]
        assert not batched.capabilities["tile_graph"]
        assert set(TILED.capabilities) == set(TILED.CAPABILITY_FLAGS)


class TestBitIdentity:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_threads_bit_identical_tables(self, medium_inputs, threads):
        ref = make_engine(medium_inputs, variant="batched")
        tiled = make_engine(
            medium_inputs, variant="batched", backend="tiled", threads=threads
        )
        assert ref.run() == tiled.run()
        expected = _full_tables(ref)
        got = _full_tables(tiled)
        for key, block in expected.items():
            np.testing.assert_array_equal(got[key], block, err_msg=str(key))

    @pytest.mark.parametrize("wb", [1, 2, 3, 5, 99])
    def test_window_block_sweep_exact(self, wb):
        s1, s2 = random_pair(9, 6, 17)
        inp = prepare_inputs(s1, s2)
        expected = bpmax_recursive(inp)
        engine = make_engine(inp, variant="batched", backend="tiled", threads=2)
        assert TiledExecutor(engine, wb=wb).run() == expected

    @pytest.mark.parametrize("shape", [(1, 1), (1, 5), (5, 1), (2, 2), (3, 7)])
    def test_degenerate_shapes(self, shape):
        n, m = shape
        s1, s2 = random_pair(n, m, 3)
        inp = prepare_inputs(s1, s2)
        expected = bpmax_recursive(inp)
        got = make_engine(inp, variant="batched", backend="tiled", threads=2).run()
        assert got == expected

    def test_op_counts_match_batched(self, medium_inputs):
        with collecting() as ref_c:
            make_engine(medium_inputs, variant="batched").run()
        with collecting() as tiled_c:
            make_engine(
                medium_inputs, variant="batched", backend="tiled", threads=2
            ).run()
        assert tiled_c.op_counts() == ref_c.op_counts()
        assert tiled_c.cells == ref_c.cells
        assert tiled_c.tiles_executed > 0
        assert tiled_c.tile_wavefronts > 0
        assert ref_c.tiles_executed == 0

    def test_mirror_cap_falls_back_to_batched_path(self, small_inputs, monkeypatch):
        """Over-cap problems run the per-window path, still exact."""
        import repro.kernels.tiled_backend as tb

        monkeypatch.setattr(tb, "MIRROR_BYTES_CAP", 0)
        assert not TiledExecutor.fits(small_inputs.n, small_inputs.m)
        expected = bpmax_recursive(small_inputs)
        got = make_engine(small_inputs, variant="batched", backend="tiled").run()
        assert got == expected


class TestResumeAndFaults:
    def test_crash_checkpoint_resume(self, tmp_path):
        s1, s2 = random_pair(6, 5, 8)
        clean = bpmax(s1, s2, variant="batched", backend="tiled", threads=2)
        path = tmp_path / "tiled.npz"
        plan = FaultPlan(crash_windows=[(1, 3)])
        with pytest.raises(EngineFailure):
            bpmax(
                s1, s2, variant="batched", backend="tiled", threads=2,
                checkpoint=path, faults=plan,
            )
        resumed = bpmax(
            s1, s2, variant="batched", backend="tiled", threads=2,
            checkpoint=path, resume=True,
        )
        assert resumed.score == clean.score
        assert resumed.resumed_windows > 0

    def test_resumed_tiles_not_recounted(self, tmp_path):
        """Resume computes (and counts) only the windows past the prefix."""
        s1, s2 = random_pair(6, 5, 8)
        path = tmp_path / "tiled.npz"
        with pytest.raises(EngineFailure):
            bpmax(
                s1, s2, variant="batched", backend="tiled",
                checkpoint=path, faults=FaultPlan(crash_windows=[(0, 3)]),
            )
        with collecting() as c:
            bpmax(
                s1, s2, variant="batched", backend="tiled",
                checkpoint=path, resume=True,
            )
        inp = prepare_inputs(s1, s2)
        with collecting() as full:
            make_engine(inp, variant="batched", backend="tiled").run()
        assert c.cells < full.cells

    def test_slow_fault_applies(self):
        s1, s2 = random_pair(4, 4, 5)
        clean = bpmax(s1, s2, variant="batched", backend="tiled")
        slowed = bpmax(
            s1, s2, variant="batched", backend="tiled",
            faults=FaultPlan(slow_windows={(0, 1): 0.01}),
        )
        assert slowed.score == clean.score


class TestExecuteDag:
    def _chain(self, k):
        g = nx.DiGraph()
        for i in range(k):
            g.add_node(i)
            if i:
                g.add_edge(i - 1, i)
        return g

    @pytest.mark.parametrize("threads", [1, 3])
    def test_executes_every_task_in_order(self, threads):
        g = self._chain(6)
        order = []
        with ParallelRunner(threads) as runner:
            stats = execute_dag(g, runner, lambda t: order.append(t) or t)
        assert stats.tasks == 6
        assert order == list(range(6))

    def test_on_complete_receives_results(self):
        g = nx.DiGraph()
        g.add_nodes_from("abc")
        seen = {}
        with ParallelRunner(2) as runner:
            execute_dag(
                g, runner, lambda t: t.upper(),
                on_complete=lambda t, r: seen.__setitem__(t, r),
            )
        assert seen == {"a": "A", "b": "B", "c": "C"}

    @pytest.mark.parametrize("threads", [1, 2])
    def test_error_propagates_and_cancels(self, threads):
        g = self._chain(5)
        ran = []

        def body(t):
            if t == 2:
                raise ValueError("boom at 2")
            ran.append(t)
            return t

        with ParallelRunner(threads) as runner:
            with pytest.raises(ValueError, match="boom at 2"):
                execute_dag(g, runner, body)
        assert 3 not in ran and 4 not in ran  # successors never dispatched

    def test_cyclic_graph_rejected(self):
        g = nx.DiGraph([(0, 1), (1, 0)])
        with ParallelRunner(1) as runner:
            with pytest.raises(ValueError, match="acyclic"):
                execute_dag(g, runner, lambda t: t)

    def test_key_orders_ready_set(self):
        g = nx.DiGraph()
        g.add_nodes_from([3, 1, 2])
        order = []
        with ParallelRunner(1) as runner:
            execute_dag(g, runner, lambda t: order.append(t), key=lambda t: -t)
        assert order == [3, 2, 1]


class TestAutotune:
    def test_size_class_buckets(self):
        assert size_class(1) == 8
        assert size_class(8) == 8
        assert size_class(9) == 16
        assert size_class(60) == 64

    def test_heuristic_single_thread_one_tile_per_diagonal(self):
        assert heuristic_block(40, 40, threads=1) == 40
        assert heuristic_block(1, 40, threads=8) == 1

    def test_heuristic_multithread_bounded(self):
        wb = heuristic_block(60, 60, threads=2)
        assert 1 <= wb <= 15  # at most ceil(n / 2 threads)

    def test_default_candidates_cover_heuristic_picks(self):
        cands = default_candidates(16, threads=2)
        assert set(cands) >= {1, 2, 4, 8, 16}
        assert all(1 <= c <= 16 for c in cands)

    def test_cache_round_trip(self, tmp_path):
        path = tmp_path / "autotune.json"
        key = cache_key(12, 9, 2)
        save_entry(key, {"wb": 6, "wall_s": 0.1}, path)
        assert load_cache(path)["entries"][key]["wb"] == 6
        assert get_tile_shape(12, 9, threads=2, path=path) == 6
        # other keys still fall back to the heuristic
        assert get_tile_shape(12, 9, threads=3, path=path) == heuristic_block(
            12, 9, 3
        )

    def test_corrupt_cache_reads_empty(self, tmp_path):
        path = tmp_path / "autotune.json"
        path.write_text("{ not json")
        assert load_cache(path) == {"version": 1, "entries": {}}
        path.write_text(json.dumps({"version": 999, "entries": {"x": {}}}))
        assert load_cache(path)["entries"] == {}

    def test_tuned_wb_clamped_to_n(self, tmp_path):
        path = tmp_path / "autotune.json"
        save_entry(cache_key(5, 4, 1), {"wb": 1000}, path)
        assert get_tile_shape(5, 4, threads=1, path=path) == 5

    def test_tune_measures_and_persists(self, tmp_path):
        path = tmp_path / "autotune.json"
        res = tune(6, 5, threads=2, candidates=[1, 6], repeats=1, path=path)
        assert res.best_wb in (1, 6)
        assert set(res.candidates) == {1, 6}
        entry = load_cache(path)["entries"][res.key]
        assert entry["wb"] == res.best_wb
        assert get_tile_shape(6, 5, threads=2, path=path) == res.best_wb


class TestWorkspaceQuantum:
    def test_growth_rounds_to_quantum(self):
        ws = Workspace(4, kmax=100, quantum=8)
        ws.stacks(3)
        assert ws._cap == 8  # want=max(4, 0) rounded up to the quantum
        ws.stacks(9)
        assert ws._cap == 16  # doubled and still quantum-aligned

    def test_growth_never_exceeds_kmax(self):
        ws = Workspace(3, kmax=5, quantum=8)
        ws.stacks(5)
        assert ws._cap == 5

    def test_workspace_bytes_gauge(self, small_inputs):
        with collecting() as c:
            make_engine(small_inputs, variant="batched").run()
        assert c.workspace_bytes > 0

    def test_tiled_reports_scratch_high_water(self, small_inputs):
        with collecting() as c:
            make_engine(small_inputs, variant="batched", backend="tiled").run()
        assert c.workspace_bytes > 0
        assert c.tile_slab_bytes >= 0
