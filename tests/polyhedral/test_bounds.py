"""Unit tests for the emission helpers behind both code generators."""

import pytest

from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.codegen.bounds import guard_expr, loop_bounds, py_affine
from repro.polyhedral.domain import Constraint, Domain


class TestPyAffine:
    @pytest.mark.parametrize(
        "text,env,value",
        [
            ("i + 2*j - 3", {"i": 1, "j": 2}, 2),
            ("0 - i", {"i": 5}, -5),
            ("7", {}, 7),
            ("N - i - 1", {"N": 10, "i": 3}, 6),
        ],
    )
    def test_emitted_text_evaluates_correctly(self, text, env, value):
        emitted = py_affine(AffineExpr.parse(text))
        assert eval(emitted, {}, dict(env)) == value

    def test_zero(self):
        assert py_affine(AffineExpr()) == "0"


class TestLoopBounds:
    def test_triangle_bounds(self):
        dom = Domain.parse("{i, j | 0 <= i && i <= j && j < N}", params=("N",))
        systems = dom._eliminated_systems()
        lo0, hi0 = loop_bounds(dom, 0, systems)
        lo1, hi1 = loop_bounds(dom, 1, systems)
        env = {"N": 5}
        assert eval(lo0, {}, env) == 0
        assert eval(hi0, {}, env) == 4
        env["i"] = 2
        assert eval(lo1, {}, env) == 2
        assert eval(hi1, {}, env) == 4

    def test_exact_ceil_floor_division(self):
        """2i <= j <= 2i + 3 style bounds need exact integer division."""
        dom = Domain.parse("{i, j | 0 <= i < 4 && i <= 2*j && 2*j <= 3*i + 1}")
        systems = dom._eliminated_systems()
        lo, hi = loop_bounds(dom, 1, systems)
        for i in range(4):
            env = {"i": i}
            got_lo, got_hi = eval(lo, {}, dict(env)), eval(hi, {}, dict(env))
            want = [j for j in range(-10, 20) if i <= 2 * j <= 3 * i + 1]
            if want:
                assert got_lo == min(want)
                assert got_hi == max(want)

    def test_unbounded_raises(self):
        dom = Domain.parse("{i | i >= 0}")
        with pytest.raises(ValueError, match="unbounded"):
            loop_bounds(dom, 0, dom._eliminated_systems())


class TestGuard:
    def test_guard_semantics(self):
        cons = tuple(Constraint.parse("i <= j")) + tuple(Constraint.parse("i == 2"))
        text = guard_expr(cons)
        assert eval(text, {}, {"i": 2, "j": 5})
        assert not eval(text, {}, {"i": 3, "j": 5})
        assert not eval(text, {}, {"i": 2, "j": 1})

    def test_empty_guard_is_true(self):
        assert guard_expr(()) == "True"
