"""Tests for polyhedral domains and Fourier-Motzkin elimination."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral.domain import Constraint, Domain, EmptyDomainError


def brute_points(domain: Domain, params: dict, box: int = 12) -> set:
    """Brute-force enumeration over a box for cross-checking."""
    names = domain.names
    out = set()

    def rec(level, pt):
        if level == len(names):
            if domain.contains(pt, params):
                out.add(pt)
            return
        for v in range(-box, box + 1):
            rec(level + 1, pt + (v,))

    rec(0, ())
    return out


class TestConstraintParse:
    @pytest.mark.parametrize(
        "text,n",
        [("i <= j", 1), ("0 <= i < N", 2), ("i == j", 1), ("i > 0", 1), ("a<=b<=c", 2)],
    )
    def test_chain_lengths(self, text, n):
        assert len(Constraint.parse(text)) == n

    def test_strict_inequality_semantics(self):
        (c,) = Constraint.parse("i < 3")
        assert c.holds({"i": 2}) and not c.holds({"i": 3})

    def test_equality(self):
        (c,) = Constraint.parse("i == j")
        assert c.holds({"i": 2, "j": 2}) and not c.holds({"i": 2, "j": 3})

    def test_bad_kind_rejected(self):
        from repro.polyhedral.affine import AffineExpr

        with pytest.raises(ValueError, match="kind"):
            Constraint(AffineExpr.parse("i"), "lt")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            Constraint.parse("i j")


class TestDomainBasics:
    def test_parse_triangle(self):
        d = Domain.parse("{i, j | 0 <= i && i <= j && j < N}", params=("N",))
        assert d.contains((0, 2), {"N": 3})
        assert not d.contains((2, 1), {"N": 3})

    def test_points_triangle(self):
        d = Domain.parse("{i, j | 0 <= i && i <= j && j < N}", params=("N",))
        pts = list(d.points({"N": 3}))
        assert pts == [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]

    def test_count(self):
        d = Domain.parse("{i, j | 0 <= i && i <= j && j < N}", params=("N",))
        assert d.count({"N": 5}) == 15

    def test_empty(self):
        d = Domain.parse("{i | 0 <= i && i < N}", params=("N",))
        assert d.is_empty({"N": 0})
        assert not d.is_empty({"N": 1})

    def test_equality_constraint(self):
        d = Domain.parse("{i, j | 0 <= i < 4 && j == 2*i}", params=())
        assert list(d.points({})) == [(0, 0), (1, 2), (2, 4), (3, 6)]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Domain.parse("{i | i <= Q}")

    def test_unbounded_raises(self):
        d = Domain.parse("{i | i >= 0}")
        with pytest.raises(EmptyDomainError, match="unbounded"):
            list(d.points({}))

    def test_bounding_box(self):
        d = Domain.parse("{i, j | 0 <= i && i <= j && j < 4}")
        assert d.bounding_box({}) == [(0, 3), (0, 3)]

    def test_intersect_subset_names(self):
        d = Domain.parse("{i, j | 0 <= i < 5 && 0 <= j < 5}")
        g = Domain.parse("{i | i <= 2}")
        got = d.intersect(g)
        assert got.count({}) == 15

    def test_intersect_disjoint_names_rejected(self):
        d = Domain.parse("{i | 0 <= i < 5}")
        with pytest.raises(ValueError, match="subset"):
            d.intersect(Domain.parse("{q | q >= 0}"))

    def test_project_out(self):
        d = Domain.parse("{i, j | 0 <= i && i <= j && j < 4}")
        p = d.project_out("j")
        assert p.names == ("i",)
        assert list(p.points({})) == [(0,), (1,), (2,), (3,)]


@st.composite
def random_domains(draw):
    """Random 2-D bounded domains with a couple of extra constraints."""
    lo1, lo2 = draw(st.integers(-3, 1)), draw(st.integers(-3, 1))
    hi1 = lo1 + draw(st.integers(0, 5))
    hi2 = lo2 + draw(st.integers(0, 5))
    cons = []
    cons += Constraint.parse(f"{lo1} <= x")
    cons += Constraint.parse(f"x <= {hi1}")
    cons += Constraint.parse(f"{lo2} <= y")
    cons += Constraint.parse(f"y <= {hi2}")
    extra = draw(
        st.lists(
            st.sampled_from(
                ["x <= y", "y <= x", "x + y <= 4", "x - y <= 2", "x + 2*y >= 0"]
            ),
            max_size=2,
        )
    )
    for t in extra:
        cons += Constraint.parse(t)
    return Domain(("x", "y"), tuple(cons))


class TestEnumerationProperty:
    @given(random_domains())
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, d):
        got = set(d.points({}))
        expected = brute_points(d, {})
        assert got == expected

    @given(random_domains())
    @settings(max_examples=40, deadline=None)
    def test_lexicographic_order(self, d):
        pts = list(d.points({}))
        assert pts == sorted(pts)
