"""Tests for change-of-basis, schedule helpers and the pretty-printer."""

import numpy as np
import pytest

from repro.polyhedral.affine import AffineMap
from repro.polyhedral.alpha import Interpreter, SystemError, parse_system
from repro.polyhedral.schedule import Schedule
from repro.polyhedral.transformations import (
    change_of_basis,
    permute_schedule,
    skew_schedule,
    to_alphabets,
)

TRI_SRC = """
affine T {N}
input
  float x {i, j | 0<=i && i<=j && j<N}
;
output
  float y {i, j | 0<=i && i<=j && j<N};
local
  float t {i, j | 0<=i && i<=j && j<N};
let
  t[i, j] = case {
    {i, j | i == j} : x[i, j];
    {i, j | i < j}  : reduce(max, [k] in {i, j, k | 0<=i<=k && k<j && j<N},
                             t[i, k] + t[k + 1, j]);
  };
  y[i, j] = t[i, j] + x[i, j];
"""


@pytest.fixture
def tri_system():
    return parse_system(TRI_SRC)


def _tri_inputs(n, seed=0):
    rng = np.random.default_rng(seed)
    return {"x": rng.integers(0, 5, (n, n)).astype(float)}


class TestChangeOfBasis:
    def test_skewed_local_preserves_outputs(self, tri_system):
        """Re-index t through (i, j) -> (i, j - i): the paper's memory-map
        option 2.  Outputs must be untouched."""
        n = 5
        fwd = AffineMap.parse("(i, j -> i, j - i)")
        inv = AffineMap.parse("(p, q -> p, p + q)")
        skewed = change_of_basis(tri_system, "t", ("p", "q"), fwd, inv)
        inputs = _tri_inputs(n)
        a = Interpreter(tri_system, {"N": n}, inputs).table("y")
        b = Interpreter(skewed, {"N": n}, inputs).table("y")
        iu = np.triu_indices(n)
        assert np.allclose(a[iu], b[iu])

    def test_reindexed_variable_moves(self, tri_system):
        fwd = AffineMap.parse("(i, j -> i, j - i)")
        inv = AffineMap.parse("(p, q -> p, p + q)")
        skewed = change_of_basis(tri_system, "t", ("p", "q"), fwd, inv)
        it = Interpreter(skewed, {"N": 4}, _tri_inputs(4))
        orig = Interpreter(tri_system, {"N": 4}, _tri_inputs(4))
        for i in range(4):
            for j in range(i, 4):
                assert it.value("t", i, j - i) == pytest.approx(
                    orig.value("t", i, j)
                )

    def test_output_can_be_reindexed(self, tri_system):
        fwd = AffineMap.parse("(i, j -> j, i)")
        inv = AffineMap.parse("(a, b -> b, a)")
        swapped = change_of_basis(tri_system, "y", ("a", "b"), fwd, inv)
        it = Interpreter(swapped, {"N": 4}, _tri_inputs(4))
        orig = Interpreter(tri_system, {"N": 4}, _tri_inputs(4))
        assert it.value("y", 3, 0) == pytest.approx(orig.value("y", 0, 3))

    def test_non_invertible_rejected(self, tri_system):
        fwd = AffineMap.parse("(i, j -> i, i)")  # collapses j
        inv = AffineMap.parse("(p, q -> p, q)")
        with pytest.raises(SystemError, match="not invertible"):
            change_of_basis(tri_system, "t", ("p", "q"), fwd, inv)

    def test_wrong_input_names_rejected(self, tri_system):
        fwd = AffineMap.parse("(a, b -> a, b)")
        inv = AffineMap.parse("(p, q -> p, q)")
        with pytest.raises(SystemError, match="must be"):
            change_of_basis(tri_system, "t", ("p", "q"), fwd, inv)


class TestScheduleHelpers:
    def test_permute(self):
        s = Schedule.parse("S", "(i, j -> i, j)", parallel_dims=[1])
        p = permute_schedule(s, (1, 0))
        assert p.time((2, 5)) == (5, 2)
        assert p.parallel_dims == frozenset([0])

    def test_permute_invalid(self):
        s = Schedule.parse("S", "(i, j -> i, j)")
        with pytest.raises(ValueError, match="permutation"):
            permute_schedule(s, (0, 0))

    def test_skew(self):
        s = Schedule.parse("S", "(i, j -> i, j)")
        k = skew_schedule(s, dim=1, source=0, factor=2)
        assert k.time((3, 4)) == (3, 10)

    def test_skew_self_rejected(self):
        s = Schedule.parse("S", "(i, j -> i, j)")
        with pytest.raises(ValueError, match="itself"):
            skew_schedule(s, 0, 0)

    def test_skew_preserves_legality(self):
        """Skewing by a positive multiple of an earlier dim keeps any
        lexicographic ordering intact."""
        from repro.polyhedral.affine import AffineMap as AM
        from repro.polyhedral.dependence import Dependence, check_legality
        from repro.polyhedral.domain import Domain

        dom = Domain.parse("{i | 1 <= i && i < N}", params=("N",))
        dep = Dependence(
            "d", "A", "A", dom,
            AM.parse("(i -> i)"), AM.parse("(i -> i - 1)"),
        )
        base = Schedule.parse("A", "(i -> i, 0)")
        assert check_legality(dep, {"A": base}, {"N": 8}) == []
        skewed = skew_schedule(base, dim=1, source=0, factor=3)
        assert check_legality(dep, {"A": skewed}, {"N": 8}) == []


class TestPrettyPrinter:
    def test_round_trip(self, tri_system):
        text = to_alphabets(tri_system)
        back = parse_system(text)
        n = 5
        inputs = _tri_inputs(n, 3)
        a = Interpreter(tri_system, {"N": n}, inputs).table("y")
        b = Interpreter(back, {"N": n}, inputs).table("y")
        iu = np.triu_indices(n)
        assert np.allclose(a[iu], b[iu])

    def test_bpmax_system_prints(self):
        """The full BPMax system renders without error (the -inf branch
        prints as a large negative literal workaround is not needed:
        constants are finite in the printable subset)."""
        from repro.core.alpha_model import dmp_system

        text = to_alphabets(dmp_system())
        assert "affine dmp" in text
        assert "reduce(max" in text
        back = parse_system(text)
        assert {eq.var for eq in back.equations} == {"R0", "F"}

    def test_sections_present(self, tri_system):
        text = to_alphabets(tri_system)
        for word in ("input", "output", "local", "let"):
            assert word in text


class TestPrinterLimits:
    def test_non_finite_constant_rejected(self):
        """The full BPMax system uses Const(-inf) in its closure guards:
        alphabets syntax cannot express it, and the printer says so."""
        from repro.core.alpha_model import bpmax_system

        with pytest.raises(ValueError, match="non-finite"):
            to_alphabets(bpmax_system(include_s=False))
