"""Tests for rectangular tiling and tile graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral.tiling import (
    TileSpec,
    tile_graph,
    tile_iter,
    tile_point,
    tiling_legal,
)


class TestTileSpec:
    def test_effective_untiled(self):
        spec = TileSpec(("i", "j"), (4, 0))
        assert spec.effective((10, 7)) == (4, 7)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            TileSpec(("i",), (-1,))

    def test_arity_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            TileSpec(("i", "j"), (2,))


class TestTilePoint:
    def test_mapping(self):
        spec = TileSpec(("i", "j"), (4, 4))
        assert tile_point((0, 0), spec, (10, 10)) == (0, 0)
        assert tile_point((4, 7), spec, (10, 10)) == (1, 1)
        assert tile_point((9, 9), spec, (10, 10)) == (2, 2)

    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(0, 19),
        st.integers(0, 19),
    )
    @settings(max_examples=50, deadline=None)
    def test_point_inside_its_tile(self, ti, tj, x, y):
        spec = TileSpec(("i", "j"), (ti, tj))
        sizes = (20, 20)
        t = tile_point((x, y), spec, sizes)
        assert (x, y) in set(tile_iter(t, spec, sizes))


class TestTileIter:
    def test_tiles_partition_space(self):
        spec = TileSpec(("i", "j"), (3, 4))
        sizes = (7, 9)
        seen = set()
        g = tile_graph(sizes, spec, [])
        for t in g.nodes:
            pts = set(tile_iter(t, spec, sizes))
            assert not (pts & seen), "tiles overlap"
            seen |= pts
        assert len(seen) == 63

    def test_edge_tiles_clipped(self):
        spec = TileSpec(("i",), (4,))
        pts = list(tile_iter((1,), spec, (6,)))
        assert pts == [(4,), (5,)]


class TestTileGraph:
    def test_forward_deps_give_dag(self):
        spec = TileSpec(("i", "j"), (2, 2))
        g = tile_graph((6, 6), spec, [(1, 0), (0, 1)])
        assert nx.is_directed_acyclic_graph(g)
        assert ((0, 0), (1, 0)) in g.edges or ((0, 0), (0, 1)) in g.edges

    def test_intra_tile_deps_no_edges(self):
        spec = TileSpec(("i",), (10,))
        g = tile_graph((10,), spec, [(1,)])
        assert g.number_of_edges() == 0

    def test_wavefront_depth(self):
        spec = TileSpec(("i", "j"), (1, 1))
        g = tile_graph((3, 3), spec, [(1, 0), (0, 1)])
        assert nx.dag_longest_path_length(g) == 4  # (0,0) -> (2,2)


class TestLegality:
    def test_nonnegative_band_legal(self):
        assert tiling_legal([(1, 0, 2), (0, 1, 0)], band=[0, 1])

    def test_negative_component_illegal(self):
        assert not tiling_legal([(1, -1)], band=[0, 1])

    def test_band_restriction(self):
        # negative only outside the band: still legal to tile the band
        assert tiling_legal([(1, -1)], band=[0])
