"""Tests for the mini-Alpha language: AST, parser, normalization, interpreter."""

import numpy as np
import pytest

from repro.polyhedral.affine import AffineMap, var
from repro.polyhedral.alpha import (
    AlphaSystem,
    BinOp,
    Case,
    Const,
    Equation,
    EvaluationError,
    IndexExpr,
    Interpreter,
    ParseError,
    Reduce,
    SystemError,
    VarDecl,
    VarRef,
    free_vars,
    normalize,
    normalize_expr,
    normalize_reductions,
    parse_system,
    walk,
)
from repro.polyhedral.domain import Domain

MM_SRC = """
affine MM {N, K, M}
input
  float A {i, j | 0<=i<M && 0<=j<K};
  float B {i, j | 0<=i<K && 0<=j<N};
output
  float C {i, j | 0<=i<M && 0<=j<N};
let
  C[i, j] = reduce(+, [k] in {i, j, k | 0<=i<M && 0<=j<N && 0<=k<K}, A[i, k] * B[k, j]);
"""

PREFIX_SRC = """
affine PS {N}
input
  float x {i | 0<=i<N};
output
  float s {i | 0<=i<N};
let
  s[i] = case {
    {i | i == 0} : x[0];
    {i | i > 0}  : s[i - 1] + x[i];
  };
"""


class TestParser:
    def test_matrix_multiply(self):
        sys_ = parse_system(MM_SRC)
        assert sys_.name == "MM"
        assert [d.name for d in sys_.inputs] == ["A", "B"]
        assert sys_.equation_for("C")

    def test_prefix_sum_case(self):
        sys_ = parse_system(PREFIX_SRC)
        eq = sys_.equation_for("s")
        assert isinstance(eq.body, Case)
        assert len(eq.body.branches) == 2

    def test_undeclared_variable_rejected(self):
        bad = MM_SRC.replace("A[i, k]", "Z[i, k]")
        with pytest.raises((SystemError, ParseError)):
            parse_system(bad)

    def test_index_mismatch_rejected(self):
        bad = MM_SRC.replace("C[i, j] =", "C[p, q] =")
        with pytest.raises(ParseError, match="match"):
            parse_system(bad)

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_system("affine X {N} let ???")

    def test_max_min_functions(self):
        src = """
affine T {N}
input
  float x {i | 0<=i<N};
output
  float y {i | 0<=i<N};
let
  y[i] = max(x[i], min(x[i], 3));
"""
        sys_ = parse_system(src)
        assert isinstance(sys_.equation_for("y").body, BinOp)

    def test_comments_skipped(self):
        src = MM_SRC.replace("input", "// a comment\ninput")
        assert parse_system(src).name == "MM"


class TestAst:
    def test_walk_and_free_vars(self):
        sys_ = parse_system(MM_SRC)
        body = sys_.equation_for("C").body
        assert free_vars(body) == {"A", "B"}
        assert any(isinstance(e, Reduce) for e in walk(body))

    def test_bad_binop_rejected(self):
        with pytest.raises(ValueError, match="operator"):
            BinOp("^", Const(1), Const(2))

    def test_reduce_requires_trailing_extra(self):
        dom = Domain.parse("{k, i | 0<=k<3 && 0<=i<3}")
        with pytest.raises(ValueError, match="end with"):
            Reduce("max", ("k",), dom, Const(0))

    def test_empty_case_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Case(branches=())


class TestValidation:
    def test_missing_equation(self):
        sys_ = AlphaSystem(name="X", params=("N",))
        dom = Domain.parse("{i | 0<=i<N}", params=("N",))
        sys_.outputs.append(VarDecl("y", dom))
        with pytest.raises(SystemError, match="no defining equation"):
            sys_.validate()

    def test_duplicate_declaration(self):
        sys_ = AlphaSystem(name="X", params=("N",))
        dom = Domain.parse("{i | 0<=i<N}", params=("N",))
        sys_.inputs.append(VarDecl("y", dom))
        sys_.outputs.append(VarDecl("y", dom))
        with pytest.raises(SystemError, match="duplicate"):
            sys_.validate()

    def test_arity_mismatch_in_access(self):
        sys_ = AlphaSystem(name="X", params=("N",))
        dom = Domain.parse("{i | 0<=i<N}", params=("N",))
        sys_.inputs.append(VarDecl("x", dom))
        sys_.outputs.append(VarDecl("y", dom))
        bad_access = VarRef("x", AffineMap(inputs=("i",), exprs=(var("i"), var("i"))))
        sys_.equations.append(Equation("y", dom, bad_access))
        with pytest.raises(SystemError, match="arity"):
            sys_.validate()


class TestInterpreter:
    def test_matrix_multiply(self):
        sys_ = parse_system(MM_SRC)
        rng = np.random.default_rng(0)
        A = rng.random((4, 3))
        B = rng.random((3, 5))
        it = Interpreter(sys_, {"M": 4, "K": 3, "N": 5}, {"A": A, "B": B})
        assert np.allclose(it.table("C"), A @ B)

    def test_prefix_sum(self):
        sys_ = parse_system(PREFIX_SRC)
        x = np.arange(6, dtype=float)
        it = Interpreter(sys_, {"N": 6}, {"x": x})
        assert np.allclose(it.table("s"), np.cumsum(x))

    def test_callable_input(self):
        sys_ = parse_system(PREFIX_SRC)
        it = Interpreter(sys_, {"N": 4}, {"x": lambda i: float(i * i)})
        assert it.value("s", 3) == 0 + 1 + 4 + 9

    def test_out_of_domain_raises(self):
        sys_ = parse_system(PREFIX_SRC)
        it = Interpreter(sys_, {"N": 4}, {"x": np.zeros(4)})
        with pytest.raises(EvaluationError, match="outside"):
            it.value("s", 9)

    def test_unbound_param_rejected(self):
        sys_ = parse_system(PREFIX_SRC)
        with pytest.raises(SystemError, match="unbound param"):
            Interpreter(sys_, {}, {"x": np.zeros(4)})

    def test_unbound_input_rejected(self):
        sys_ = parse_system(PREFIX_SRC)
        with pytest.raises(SystemError, match="unbound inputs"):
            Interpreter(sys_, {"N": 4}, {})

    def test_cycle_detected(self):
        src = """
affine C {N}
output
  float y {i | 0<=i<N};
let
  y[i] = y[i] + 1;
"""
        sys_ = parse_system(src)
        it = Interpreter(sys_, {"N": 2}, {})
        with pytest.raises(EvaluationError, match="cyclic"):
            it.value("y", 0)

    def test_empty_reduction_gives_identity(self):
        src = """
affine E {N}
input
  float x {i | 0<=i<N};
output
  float y {i | 0<=i<N};
let
  y[i] = reduce(max, [k] in {i, k | 0<=i<N && 0<=k<i}, x[k]);
"""
        sys_ = parse_system(src)
        it = Interpreter(sys_, {"N": 3}, {"x": np.ones(3)})
        assert it.value("y", 0) == float("-inf")
        assert it.value("y", 2) == 1.0


class TestNormalize:
    def test_constant_folding(self):
        e = BinOp("+", Const(2), Const(3))
        assert normalize_expr(e) == Const(5.0)

    def test_unit_elimination(self):
        x = VarRef("x", AffineMap(inputs=("i",), exprs=(var("i"),)))
        assert normalize_expr(BinOp("+", x, Const(0))) == x
        assert normalize_expr(BinOp("*", Const(1), x)) == x

    def test_normalize_system_preserves_semantics(self):
        sys_ = parse_system(PREFIX_SRC)
        norm = normalize(sys_)
        x = np.arange(5, dtype=float)
        a = Interpreter(sys_, {"N": 5}, {"x": x}).table("s")
        b = Interpreter(norm, {"N": 5}, {"x": x}).table("s")
        assert np.allclose(a, b)

    def test_normalize_reductions_hoists(self):
        src = """
affine H {N}
input
  float x {i | 0<=i<N};
output
  float y {i | 0<=i<N};
let
  y[i] = x[i] + reduce(max, [k] in {i, k | 0<=i<N && 0<=k<=i}, x[k]);
"""
        sys_ = parse_system(src)
        hoisted = normalize_reductions(sys_)
        # the reduce is now its own local equation
        assert len(hoisted.equations) == 2
        assert any(e.var.startswith("_red_") for e in hoisted.equations)
        x = np.array([3.0, 1.0, 5.0])
        a = Interpreter(sys_, {"N": 3}, {"x": x}).table("y")
        b = Interpreter(hoisted, {"N": 3}, {"x": x}).table("y")
        assert np.allclose(a, b)

    def test_top_level_reduce_not_hoisted(self):
        sys_ = parse_system(MM_SRC)
        hoisted = normalize_reductions(sys_)
        assert len(hoisted.equations) == len(sys_.equations)
