"""Tests for affine expressions and maps."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral.affine import AffineExpr, AffineMap, const, var

names = st.sampled_from(["i", "j", "k", "N"])
coeffs = st.integers(-5, 5)


@st.composite
def exprs(draw):
    e = AffineExpr.constant(draw(coeffs))
    for _ in range(draw(st.integers(0, 3))):
        e = e + AffineExpr(coeffs={draw(names): Fraction(draw(coeffs))})
    return e


class TestParse:
    @pytest.mark.parametrize(
        "text,env,value",
        [
            ("i", {"i": 3}, 3),
            ("i + j", {"i": 1, "j": 2}, 3),
            ("j - i", {"i": 1, "j": 5}, 4),
            ("2*i - 3", {"i": 4}, 5),
            ("i*2 + 1", {"i": 4}, 9),
            ("-i + N", {"i": 2, "N": 10}, 8),
            ("0-1", {}, -1),
            ("7", {}, 7),
        ],
    )
    def test_parse_and_evaluate(self, text, env, value):
        assert AffineExpr.parse(text).evaluate(env) == value

    @pytest.mark.parametrize("bad", ["", "i*j", "i**2", "2i", "i+"])
    def test_rejects_non_affine(self, bad):
        with pytest.raises(ValueError):
            AffineExpr.parse(bad)

    def test_str_roundtrip(self):
        e = AffineExpr.parse("2*i - j + 3")
        assert AffineExpr.parse(str(e)) == e


class TestAlgebra:
    @given(exprs(), exprs())
    @settings(max_examples=50, deadline=None)
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(exprs())
    @settings(max_examples=50, deadline=None)
    def test_sub_self_is_zero(self, a):
        assert a - a == AffineExpr()

    @given(exprs(), st.integers(-4, 4))
    @settings(max_examples=50, deadline=None)
    def test_scalar_mult_distributes(self, a, k):
        env = {n: 2 for n in ("i", "j", "k", "N")}
        assert (a * k).evaluate(env) == k * a.evaluate(env)

    def test_product_of_variables_rejected(self):
        with pytest.raises(TypeError, match="non-constant"):
            _ = var("i") * var("j")

    def test_substitute(self):
        e = AffineExpr.parse("i + 2*j")
        s = e.substitute({"j": AffineExpr.parse("k - 1")})
        assert s == AffineExpr.parse("i + 2*k - 2")

    def test_unbound_name_raises(self):
        with pytest.raises(KeyError, match="unbound"):
            var("i").evaluate({})


class TestAffineMap:
    def test_parse_and_apply(self):
        m = AffineMap.parse("(i, j -> j - i, i, 0-1)")
        assert m(2, 5) == (3, 2, -1)

    def test_arity_check(self):
        m = AffineMap.parse("(i -> i)")
        with pytest.raises(ValueError, match="expects"):
            m(1, 2)

    def test_compose(self):
        outer = AffineMap.parse("(a, b -> a + b)")
        inner = AffineMap.parse("(i, j -> i, j - 1)")
        assert outer.compose(inner)(3, 4) == (6,)

    def test_compose_arity_mismatch(self):
        with pytest.raises(ValueError, match="compose"):
            AffineMap.parse("(a -> a)").compose(AffineMap.parse("(i -> i, i)"))

    def test_parse_requires_arrow(self):
        with pytest.raises(ValueError, match="->"):
            AffineMap.parse("(i, j)")

    def test_apply_env_with_params(self):
        m = AffineMap.parse("(i -> N - i)")
        assert m.apply_env({"i": 2, "N": 10}) == (8,)

    def test_const_helper(self):
        assert const(4).evaluate({}) == 4
