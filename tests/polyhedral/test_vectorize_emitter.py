"""Vectorized window-kernel emitter: legality, source shape, conformance.

The emitter lowers a legal space-time map over the R0 reduction indices
``(s, k)`` plus an optional column tile into a complete python module.
This suite pins three contracts:

* **legality** — only bijective permutations of ``(s, k)`` are accepted
  (each time expression one plain variable, unit coefficient, zero
  constant); anything else raises :class:`ScheduleLegalityError`;
* **source shape** — generated modules carry their provenance constants
  and compile standalone (no imports beyond numpy);
* **conformance** — for every shipped schedule × candidate tile, the
  generated window kernel reproduces the reference semiring kernels on
  randomized window data: the ``kmajor`` order is bit-identical to
  ``semiring_batched`` in *both* algebras (it emits the same op
  sequence), ``smajor`` is bit-identical under max-plus (idempotent ⊕)
  and matches within 1e-9 under log-sum-exp; the scalar twin is
  bit-identical under max-plus.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.polyhedral.codegen.vectorize import (
    CODEGEN_SCHEDULES,
    REDUCTION_INDICES,
    KernelSchedule,
    ScheduleLegalityError,
    candidate_schedules,
    candidate_tiles,
    compile_window_kernel,
    generate_window_kernel,
    get_kernel_schedule,
    is_legal_schedule,
    loop_order,
)
from repro.polyhedral.schedule import Schedule
from repro.semiring import LOG_SUM_EXP, MAX_PLUS
from repro.semiring.generic import semiring_batched, semiring_bias_reduce
from repro.semiring.maxplus import NEG_INF

SCHEDULE_NAMES = [ks.name for ks in CODEGEN_SCHEDULES]


def _parse(text: str, parallel_dims=()):
    return Schedule.parse("R0", text, parallel_dims=parallel_dims)


class TestLegality:
    @pytest.mark.parametrize(
        "text, expected_order",
        [
            ("(s, k -> k, s)", ("k", "s")),
            ("(s, k -> s, k)", ("s", "k")),
        ],
    )
    def test_permutations_accepted(self, text, expected_order):
        sched = _parse(text)
        assert loop_order(sched) == expected_order
        assert is_legal_schedule(sched)

    @pytest.mark.parametrize(
        "text",
        [
            "(s, k -> s, s)",  # not a bijection: k never scheduled
            "(s, k -> k + 1, s)",  # constant offset
            "(s, k -> 2*k, s)",  # non-unit coefficient
            "(s, k -> s + k, k)",  # multi-variable expression
        ],
    )
    def test_non_permutations_rejected(self, text):
        sched = _parse(text)
        with pytest.raises(ScheduleLegalityError):
            loop_order(sched)
        assert not is_legal_schedule(sched)

    def test_legality_error_is_value_error(self):
        assert issubclass(ScheduleLegalityError, ValueError)

    def test_kernel_schedule_fails_fast_on_illegal_map(self):
        with pytest.raises(ScheduleLegalityError):
            KernelSchedule("bad", _parse("(s, k -> s, s)"))

    def test_shipped_schedules_cover_both_orders(self):
        orders = {ks.order for ks in candidate_schedules()}
        assert orders == {("k", "s"), ("s", "k")}
        assert set(SCHEDULE_NAMES) == {"kmajor", "smajor"}

    def test_get_kernel_schedule_round_trip(self):
        for name in SCHEDULE_NAMES:
            assert get_kernel_schedule(name).name == name
        with pytest.raises(ValueError, match="unknown kernel schedule"):
            get_kernel_schedule("zmajor")

    def test_reduction_indices_pinned(self):
        # the emitter's contract with the R0 equation in alpha.py
        assert REDUCTION_INDICES == ("s", "k")


class TestGeneratedSource:
    def test_module_constants_and_entry_points(self):
        for name in SCHEDULE_NAMES:
            for wj in (0, 8):
                src = generate_window_kernel(name, wj)
                assert f"SCHEDULE = '{name}'" in src
                assert f"TILE_WJ = {wj}" in src
                assert "def make_kernel(" in src
                assert "def make_scalar_kernel(" in src
                # the cache layer owns the key header, not the emitter
                assert not src.startswith("# key:")

    def test_compiles_standalone(self):
        ns, src = compile_window_kernel("kmajor", 0)
        assert callable(ns["make_kernel"])
        assert callable(ns["make_scalar_kernel"])
        assert ns["SCHEDULE"] == "kmajor"
        assert ns["TILE_WJ"] == 0
        assert "SCHEDULE = 'kmajor'" in src

    def test_tile_changes_source(self):
        assert generate_window_kernel("kmajor", 0) != generate_window_kernel(
            "kmajor", 16
        )


def _window_case(rng, k, m, dtype):
    """Randomized window operands shaped like the engine hands them over.

    ``aslab`` mimics packed left triangles (upper triangular, -inf
    below the diagonal), ``bstack`` the shifted right triangles (last
    row all -inf), ``brow0`` row 0 of each *raw* right operand.  The
    raw stack the reference R3 reduce consumes is reassembled from
    ``brow0`` + ``bstack`` exactly as the emitted decomposition assumes
    (``raw[i2] == shifted[i2 - 1]`` for ``i2 >= 1``).
    """
    aslab = rng.uniform(-4, 4, size=(k, m, m)).astype(dtype)
    bstack = rng.uniform(-4, 4, size=(k, m, m)).astype(dtype)
    brow0 = rng.uniform(-4, 4, size=(k, m)).astype(dtype)
    tril = np.tril_indices(m, -1)
    for s in range(k):
        aslab[s][tril] = NEG_INF
        bstack[s][tril] = NEG_INF
    bstack[:, m - 1, :] = NEG_INF
    s1l = rng.uniform(0, 3, size=k).astype(dtype)
    s1r = rng.uniform(0, 3, size=k).astype(dtype)
    raw = np.concatenate([brow0[:, None, :], bstack[:, : m - 1, :]], axis=1)
    return aslab, bstack, brow0, s1l, s1r, raw


def _reference_window(sr, aslab, s1l, s1r, raw, bstack, m):
    """R0 + R3 + R4 through the reference semiring kernels."""
    acc = np.full((m, m), NEG_INF, dtype=sr.npdtype)
    semiring_batched(sr, aslab, bstack, acc, triangular=True)
    semiring_bias_reduce(sr, raw, s1l, acc)
    semiring_bias_reduce(sr, aslab, s1r, acc)
    return acc


def _run_generated(ns, sr, aslab, bstack, brow0, s1l, s1r, m, k):
    kern = ns["make_kernel"](sr)
    acc = np.full((m, m), NEG_INF, dtype=sr.npdtype)
    tmp = np.empty((k, m, m), dtype=sr.npdtype)
    red = np.empty((m, m), dtype=sr.npdtype)
    kern(aslab, bstack, brow0, s1l, s1r, acc, tmp, red)
    return acc


class TestConformance:
    @pytest.mark.parametrize("name", SCHEDULE_NAMES)
    @pytest.mark.parametrize("k, m", [(1, 2), (3, 5), (6, 9), (9, 12)])
    def test_every_schedule_and_tile_matches_reference(self, name, k, m):
        for wj in candidate_tiles(m):
            ns, _ = compile_window_kernel(name, wj)
            for sr in (MAX_PLUS, LOG_SUM_EXP):
                rng = np.random.default_rng(1000 + 17 * k + m)
                aslab, bstack, brow0, s1l, s1r, raw = _window_case(
                    rng, k, m, sr.npdtype
                )
                expected = _reference_window(sr, aslab, s1l, s1r, raw, bstack, m)
                got = _run_generated(
                    ns, sr, aslab, bstack, brow0, s1l, s1r, m, k
                )
                label = f"{name} wj={wj} {sr.name}"
                if name == "kmajor" or sr is MAX_PLUS:
                    # same per-cell ⊕ sequence as the reference → bits
                    np.testing.assert_array_equal(got, expected, err_msg=label)
                else:
                    finite = np.isfinite(expected)
                    np.testing.assert_array_equal(
                        np.isfinite(got), finite, err_msg=label
                    )
                    np.testing.assert_allclose(
                        got[finite], expected[finite], atol=1e-9, err_msg=label
                    )

    @pytest.mark.parametrize("name", SCHEDULE_NAMES)
    @pytest.mark.parametrize("wj", [0, 8])
    def test_scalar_twin_bit_identical_maxplus(self, name, wj):
        k, m = 4, 10
        ns, _ = compile_window_kernel(name, wj)
        rng = np.random.default_rng(77)
        aslab, bstack, brow0, s1l, s1r, raw = _window_case(
            rng, k, m, MAX_PLUS.npdtype
        )
        expected = _reference_window(
            MAX_PLUS, aslab, s1l, s1r, raw, bstack, m
        )
        scalar = ns["make_scalar_kernel"]()
        acc = np.full((m, m), NEG_INF, dtype=MAX_PLUS.npdtype)
        scalar(np.ascontiguousarray(aslab), bstack, brow0, s1l, s1r, acc)
        np.testing.assert_array_equal(acc, expected)

    def test_noncontiguous_scratch_rejected(self):
        """``reshape(-1)`` on strided scratch would silently copy and
        break ``out=`` accumulation — the guard must catch it."""
        k, m = 2, 6
        ns, _ = compile_window_kernel("kmajor", 0)
        kern = ns["make_kernel"](MAX_PLUS)
        rng = np.random.default_rng(5)
        aslab, bstack, brow0, s1l, s1r, _ = _window_case(
            rng, k, m, MAX_PLUS.npdtype
        )
        acc = np.full((m, m), NEG_INF, dtype=np.float32)
        bad_tmp = np.empty((k, m, 2 * m), dtype=np.float32)[:, :, ::2]
        red = np.empty((m, m), dtype=np.float32)
        with pytest.raises(ValueError, match="contiguous"):
            kern(aslab, bstack, brow0, s1l, s1r, acc, bad_tmp, red)

    def test_candidate_tiles_bounded_by_width(self):
        assert candidate_tiles(8) == (0,)
        assert candidate_tiles(20) == (0, 8, 16)
        assert candidate_tiles(100) == (0, 8, 16, 32, 64)
