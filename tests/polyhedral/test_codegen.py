"""Tests for both code generators, including property-based
codegen-vs-interpreter equivalence on random systems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral.alpha import Interpreter, parse_system
from repro.polyhedral.codegen import (
    MappingError,
    TargetMapping,
    compile_schedule,
    compile_write,
    count_loc,
    generate_schedule_code,
    generate_write_code,
)

MM_SRC = """
affine MM {N, K, M}
input
  float A {i, j | 0<=i<M && 0<=j<K};
  float B {i, j | 0<=i<K && 0<=j<N};
output
  float C {i, j | 0<=i<M && 0<=j<N};
let
  C[i, j] = reduce(max, [k] in {i, j, k | 0<=i<M && 0<=j<N && 0<=k<K}, A[i, k] + B[k, j]);
"""

PREFIX_SRC = """
affine PS {N}
input
  float x {i | 0<=i<N};
output
  float s {i | 0<=i<N};
let
  s[i] = case {
    {i | i == 0} : x[0];
    {i | i > 0}  : s[i - 1] + x[i];
  };
"""


@pytest.fixture(scope="module")
def mm():
    return parse_system(MM_SRC)


@pytest.fixture(scope="module")
def prefix():
    return parse_system(PREFIX_SRC)


def _mm_data(seed=0):
    rng = np.random.default_rng(seed)
    A = rng.random((4, 3))
    B = rng.random((3, 5))
    expected = (A[:, :, None] + B[None, :, :]).max(axis=1)
    return {"A": A, "B": B}, {"M": 4, "K": 3, "N": 5}, expected


class TestWriteC:
    def test_matrix_multiply(self, mm):
        inputs, params, expected = _mm_data()
        fn, src = compile_write(mm)
        assert np.allclose(fn(params, inputs)["C"], expected)
        assert "def _v_C" in src

    def test_prefix_sum(self, prefix):
        fn, _ = compile_write(prefix)
        out = fn({"N": 5}, {"x": np.arange(5.0)})
        assert np.allclose(out["s"], np.cumsum(np.arange(5.0)))

    def test_callable_inputs(self, prefix):
        fn, _ = compile_write(prefix)
        out = fn({"N": 3}, {"x": lambda i: 2.0 * i})
        assert out["s"][2] == 6.0

    def test_empty_output_domain(self, prefix):
        fn, _ = compile_write(prefix)
        out = fn({"N": 0}, {"x": np.zeros(0)})
        assert out["s"].size == 0

    def test_source_is_self_contained(self, mm):
        src = generate_write_code(mm)
        ns: dict = {}
        exec(compile(src, "<t>", "exec"), ns)  # no repro imports needed
        assert "MM" in ns


class TestSchedGen:
    def test_mm_with_schedule(self, mm):
        inputs, params, expected = _mm_data()
        tm = TargetMapping("MM")
        tm.set_space_time_map(
            "C", "(i, j, k -> i, k, j)", init="(i, j -> i, 0-1, j)", parallel_dims=[0]
        )
        fn, src = compile_schedule(mm, tm)
        assert np.allclose(fn(params, inputs)["C"], expected)
        assert "heapq" in src

    def test_prefix_with_schedule(self, prefix):
        tm = TargetMapping("PS")
        tm.set_space_time_map("s", "(i -> i)")
        fn, _ = compile_schedule(prefix, tm)
        out = fn({"N": 6}, {"x": np.ones(6)})
        assert np.allclose(out["s"], np.arange(1.0, 7.0))

    def test_illegal_order_would_read_nan(self, prefix):
        """A reversed schedule executes in the wrong order: the generated
        code faithfully follows it and reads uninitialised memory."""
        tm = TargetMapping("PS")
        tm.set_space_time_map("s", "(i -> 0 - i)")
        fn, _ = compile_schedule(prefix, tm)
        out = fn({"N": 4}, {"x": np.ones(4)})
        assert np.isnan(out["s"][3])

    def test_memory_map(self, prefix):
        tm = TargetMapping("PS")
        tm.set_space_time_map("s", "(i -> i)")
        tm.set_memory_map("s", "(i -> i)")
        fn, _ = compile_schedule(prefix, tm)
        assert fn({"N": 3}, {"x": np.ones(3)})["s"][2] == 3.0

    def test_memory_space_sharing(self, mm):
        inputs, params, expected = _mm_data()
        tm = TargetMapping("MM")
        tm.set_space_time_map(
            "C", "(i, j, k -> i, k, j)", init="(i, j -> i, 0-1, j)"
        )
        tm.set_memory_space("shared", "C")
        fn, src = compile_schedule(mm, tm)
        assert np.allclose(fn(params, inputs)["C"], expected)
        assert "_mem_shared" in src

    def test_reduction_without_init_rejected(self, mm):
        tm = TargetMapping("MM")
        tm.set_space_time_map("C", "(i, j, k -> i, k, j)")
        with pytest.raises(MappingError, match="init"):
            generate_schedule_code(mm, tm)

    def test_missing_schedule_rejected(self, prefix):
        tm = TargetMapping("PS")
        with pytest.raises(MappingError):
            generate_schedule_code(prefix, tm)

    def test_rank_mismatch_rejected(self, mm):
        tm = TargetMapping("MM")
        tm.set_space_time_map("C", "(i, j, k -> i, k)", init="(i, j -> i, 0-1)")
        tm.set_space_time_map("C", "(i, j, k -> i, k, j)", init="(i, j -> i, 0-1, j)")
        # mixing ranks across variables is the error path
        tm2 = TargetMapping("X")
        tm2.space_time = {
            "a": tm.space_time["C"],
        }
        assert tm.schedule_rank() == 3

    def test_tiling_executes_correctly(self, mm):
        inputs, params, expected = _mm_data()
        tm = TargetMapping("MM")
        tm.set_space_time_map(
            "C", "(i, j, k -> i, k, j)", init="(i, j -> i, 0-1, j)"
        )
        tm.set_tiling("C", (2, 2, 0))
        fn, src = compile_schedule(mm, tm)
        assert np.allclose(fn(params, inputs)["C"], expected)
        assert "_tt0" in src

    def test_mixed_tiling_rejected(self, mm):
        """Tiling only a subset of statements needs a subsystem (paper
        Phase III) — schedgen refuses, as AlphaZ produces inferior code."""
        src2 = MM_SRC.replace(
            "output\n  float C", "output\n  float D {i, j | 0<=i<M && 0<=j<N};\n  float C"
        ).replace(
            "let",
            "let\n  D[i, j] = C[i, j] + 1;",
        )
        sys2 = parse_system(src2)
        tm = TargetMapping("MM")
        tm.set_space_time_map("C", "(i, j, k -> 0, i, k, j)", init="(i, j -> 0, i, 0-1, j)")
        tm.set_space_time_map("D", "(i, j -> 1, i, 0, j)")
        tm.set_tiling("C", (0, 2, 2, 0))
        with pytest.raises(MappingError, match="uniform tiling"):
            generate_schedule_code(sys2, tm)


class TestLocStats:
    def test_counts(self):
        src = "# c\n\nfor i in range(3):\n    def _v_x():\n        pass\n"
        stats = count_loc("t", src)
        assert stats.comment_lines == 1
        assert stats.blank_lines == 1
        assert stats.loop_count == 1
        assert stats.statement_functions == 1

    def test_scheduled_code_bigger_than_write(self, mm):
        w = count_loc("w", generate_write_code(mm))
        tm = TargetMapping("MM")
        tm.set_space_time_map("C", "(i, j, k -> i, k, j)", init="(i, j -> i, 0-1, j)")
        s = count_loc("s", generate_schedule_code(mm, tm))
        assert s.code_lines > 0 and w.code_lines > 0


# ---- property-based: random affine systems, schedgen == interpreter ----

@st.composite
def random_system(draw):
    """A random 2-variable system over a triangle with a reduction."""
    n = draw(st.integers(2, 5))
    op = draw(st.sampled_from(["max", "+", "min"]))
    coef = draw(st.integers(1, 2))
    src = f"""
affine R {{N}}
input
  float x {{i, j | 0<=i<=j && j<N}};
output
  float y {{i, j | 0<=i<=j && j<N}};
local
  float r {{i, j | 0<=i<j && j<N}};
let
  r[i, j] = reduce({op}, [k] in {{i, j, k | 0<=i<=k && k<j && j<N}},
                   y[i, k] + {coef}*y[k + 1, j]);
  y[i, j] = case {{
    {{i, j | i == j}} : x[i, j];
    {{i, j | i < j}}  : r[i, j];
  }};
"""
    return parse_system(src), n


class TestSchedGenProperty:
    @given(random_system(), st.sampled_from(["diag", "col"]))
    @settings(max_examples=20, deadline=None)
    def test_schedgen_matches_interpreter(self, case, order):
        """Any legal schedule must reproduce the interpreter's semantics."""
        sys_, n = case
        rng = np.random.default_rng(n)
        x = rng.integers(0, 5, (n, n)).astype(float)
        it = Interpreter(sys_, {"N": n}, {"x": x})
        expected = it.table("y")

        tm = TargetMapping("R")
        if order == "diag":
            tm.set_space_time_map(
                "r", "(i, j, k -> j - i, i, k, j)", init="(i, j -> j - i, i, i - 1, j)"
            )
            tm.set_space_time_map("y", "(i, j -> j - i, i, j, j)")
        else:
            tm.set_space_time_map(
                "r", "(i, j, k -> 0 - i, j, k, j)", init="(i, j -> 0 - i, j, i - 1, j)"
            )
            tm.set_space_time_map("y", "(i, j -> 0 - i, j, j, j)")
        fn, _ = compile_schedule(sys_, tm)
        got = fn({"N": n}, {"x": x})["y"]
        iu = np.triu_indices(n)
        assert np.allclose(got[iu], expected[iu])


class TestWriteCProperty:
    @given(random_system())
    @settings(max_examples=15, deadline=None)
    def test_writec_matches_interpreter(self, case):
        """Demand-driven generated code == interpreter on random systems."""
        sys_, n = case
        rng = np.random.default_rng(n + 17)
        x = rng.integers(0, 5, (n, n)).astype(float)
        expected = Interpreter(sys_, {"N": n}, {"x": x}).table("y")
        fn, _ = compile_write(sys_)
        got = fn({"N": n}, {"x": x})["y"]
        iu = np.triu_indices(n)
        assert np.allclose(got[iu], expected[iu])
