"""Tests for multi-dimensional schedules and dependence legality."""

import pytest

from repro.polyhedral.affine import AffineMap
from repro.polyhedral.dependence import Dependence, check_all, check_legality
from repro.polyhedral.domain import Domain
from repro.polyhedral.schedule import Schedule, lex_compare, lex_less


class TestLexOrder:
    def test_compare(self):
        assert lex_compare((1, 2), (1, 3)) == -1
        assert lex_compare((2, 0), (1, 9)) == 1
        assert lex_compare((1, 2), (1, 2)) == 0

    def test_less(self):
        assert lex_less((0, 5), (1, 0))
        assert not lex_less((1, 0), (1, 0))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="ranks"):
            lex_compare((1,), (1, 2))


class TestSchedule:
    def test_time_vector(self):
        s = Schedule.parse("S", "(i, j -> j - i, i)")
        assert s.time((2, 5)) == (3, 2)

    def test_parallel_dims_excluded_from_sequential(self):
        s = Schedule.parse("S", "(i, j -> i, j)", parallel_dims=[1])
        assert s.sequential_time((2, 5)) == (2,)

    def test_parallel_dim_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Schedule.parse("S", "(i -> i)", parallel_dims=[3])

    def test_bind_parameters(self):
        s = Schedule.parse("S", "(i -> M, i)")
        bound = s.bind({"M": 7})
        assert bound.time((2,)) == (7, 2)


def _flow_dep():
    """A[i] reads A[i-1] for 1 <= i < N."""
    dom = Domain.parse("{i | 1 <= i && i < N}", params=("N",))
    return Dependence(
        name="A<-A",
        consumer="A",
        producer="A",
        domain=dom,
        consumer_map=AffineMap.parse("(i -> i)"),
        producer_map=AffineMap.parse("(i -> i - 1)"),
    )


class TestLegality:
    def test_identity_schedule_legal(self):
        dep = _flow_dep()
        scheds = {"A": Schedule.parse("A", "(i -> i)")}
        assert check_legality(dep, scheds, {"N": 10}) == []

    def test_reversed_schedule_illegal(self):
        dep = _flow_dep()
        scheds = {"A": Schedule.parse("A", "(i -> 0 - i)")}
        violations = check_legality(dep, scheds, {"N": 10})
        assert len(violations) == 9

    def test_parallel_dim_makes_chain_illegal(self):
        dep = _flow_dep()
        scheds = {"A": Schedule.parse("A", "(i -> i)", parallel_dims=[0])}
        # with the only dim parallel, producer time == consumer time -> illegal
        assert check_legality(dep, scheds, {"N": 5})

    def test_sampling_bounds_work(self):
        dep = _flow_dep()
        scheds = {"A": Schedule.parse("A", "(i -> 0 - i)")}
        v = check_legality(dep, scheds, {"N": 100}, max_points=10, rng=0)
        assert len(v) == 10

    def test_unscheduled_input_is_fine(self):
        dom = Domain.parse("{i | 0 <= i && i < N}", params=("N",))
        dep = Dependence(
            "B<-In",
            consumer="B",
            producer="In",
            domain=dom,
            consumer_map=AffineMap.parse("(i -> i)"),
            producer_map=AffineMap.parse("(i -> i)"),
        )
        assert check_legality(dep, {"B": Schedule.parse("B", "(i -> i)")}, {"N": 4}) == []

    def test_producer_override_used(self):
        dep = _flow_dep()
        body = Schedule.parse("A", "(i -> i, 1)")
        late_ready = Schedule.parse("A", "(i -> i, 9)")
        # without the override, producer (i-1, 1) < consumer (i, 1): legal
        assert check_legality(dep, {"A": body}, {"N": 5}) == []
        # ready time (i-1, 9) still < (i, 1): stays legal (earlier dim wins)
        assert (
            check_legality(
                dep, {"A": body}, {"N": 5}, producer_schedules={"A": late_ready}
            )
            == []
        )
        # but a ready time violating the first dim is caught
        bad_ready = Schedule.parse("A", "(i -> i + 5, 0)")
        assert check_legality(
            dep, {"A": body}, {"N": 5}, producer_schedules={"A": bad_ready}
        )

    def test_check_all_aggregates(self):
        dep = _flow_dep()
        scheds = {"A": Schedule.parse("A", "(i -> 0 - i)")}
        assert len(check_all([dep, dep], scheds, {"N": 4})) == 6

    def test_dependence_map_arity_checked(self):
        dom = Domain.parse("{i | 0 <= i && i < 3}")
        with pytest.raises(ValueError, match="must match"):
            Dependence(
                "x",
                consumer="A",
                producer="A",
                domain=dom,
                consumer_map=AffineMap.parse("(i, j -> i)"),
                producer_map=AffineMap.parse("(i -> i)"),
            )
