"""Tests for the experiment harness utilities."""

import pytest

from repro.bench.harness import ExperimentResult, Measurement, format_table, measure


class TestMeasure:
    def test_returns_positive_time(self):
        m = measure(lambda: sum(range(1000)), "sum", flops=2000)
        assert m.seconds > 0
        assert m.gflops is not None and m.gflops > 0

    def test_no_flops_no_gflops(self):
        assert measure(lambda: None).gflops is None

    def test_repeats_take_best(self):
        m = measure(lambda: None, repeats=3)
        assert m.seconds >= 0

    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)


class TestExperimentResult:
    def test_add_and_column(self):
        res = ExperimentResult("x", "t", ("a", "b"))
        res.add(a=1, b=2.0)
        res.add(a=3, b=4.0)
        assert res.column("a") == [1, 3]

    def test_missing_column_rejected(self):
        res = ExperimentResult("x", "t", ("a", "b"))
        with pytest.raises(ValueError, match="missing"):
            res.add(a=1)

    def test_unknown_column_lookup(self):
        res = ExperimentResult("x", "t", ("a",))
        with pytest.raises(KeyError):
            res.column("z")

    def test_render_contains_rows(self):
        res = ExperimentResult("figX", "demo", ("a",), notes="hello")
        res.add(a=42)
        text = res.render()
        assert "figX" in text and "hello" in text and "42" in text


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("col",), [{"col": 1}, {"col": 22222}])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1

    def test_float_formatting(self):
        text = format_table(("v",), [{"v": 0.00123}, {"v": float("nan")}])
        assert "0.00123" in text and "nan" in text

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text and "b" in text


class TestCsvExport:
    def test_to_csv_roundtrip(self):
        import csv
        import io

        res = ExperimentResult("x", "t", ("a", "b"))
        res.add(a=1, b=2.5)
        res.add(a=3, b=4.0)
        rows = list(csv.DictReader(io.StringIO(res.to_csv())))
        assert rows[0]["a"] == "1" and rows[1]["b"] == "4.0"

    def test_save_csv(self, tmp_path):
        res = ExperimentResult("x", "t", ("a",))
        res.add(a=7)
        path = tmp_path / "x.csv"
        res.save_csv(path)
        assert "a\r\n7" in path.read_text() or "a\n7" in path.read_text()


class TestProfiling:
    def test_profile_call_reports(self):
        from repro.bench.profiling import profile_call

        def work():
            return sum(i * i for i in range(50_000))

        report = profile_call(work, top=5)
        assert report.total_seconds > 0
        assert report.total_calls > 0
        assert len(report.top) <= 5
        assert "cumulative" in report.text

    def test_profile_engine_finds_hotspot(self):
        """Profiling the optimized engine surfaces the row-finishing
        loops, the substrate's analogue of the paper's R1/R2 bottleneck."""
        from repro.bench.profiling import profile_call
        from repro.core.engine import make_engine
        from repro.core.reference import prepare_inputs
        from repro.rna.sequence import random_pair

        s1, s2 = random_pair(4, 20, 2)
        inp = prepare_inputs(s1, s2)
        engine = make_engine(inp, "hybrid-tiled", tile=(8, 4, 0))
        report = profile_call(engine.run)
        assert report.cumulative_of("_finish_rows") > 0

    def test_bad_top_rejected(self):
        from repro.bench.profiling import profile_call

        with pytest.raises(ValueError, match="top"):
            profile_call(lambda: None, top=0)
