"""Tests for the experiment generators: every paper table/figure runs and
its qualitative shape holds."""

import math

import pytest

from repro.bench.figures import EXPERIMENTS, run_experiment
from repro.bench.workloads import PAPER_ANCHORS


class TestRegistry:
    def test_every_experiment_has_generator(self):
        expected = {
            "fig01",
            "fig11",
            "fig12",
            "fig13",
            "fig13w",
            "fig14",
            "fig15",
            "fig15w",
            "fig16",
            "fig17",
            "fig18",
            "tables1-4",
            "table6",
            "real-speedup",
            "breakdown",
            "correlation",
            "mpi-scaling",
            "future-work",
            "explore",
            "gpu-compare",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown"):
            run_experiment("fig99")


class TestModelExperiments:
    def test_fig01_summary_shape(self):
        res = run_experiment("fig01")
        for row in res.rows:
            assert row["speedup"] > 50
            assert 0.1 < row["peak_fraction"] < 0.35

    def test_fig11_roofline_rows(self):
        res = run_experiment("fig11")
        levels = res.column("level")
        assert levels == ["L1", "L2", "L3", "DRAM"]
        g = res.column("attainable_gflops")
        assert g == sorted(g, reverse=True)
        # the paper's ~329 GFLOPS L1 expectation
        assert g[0] == pytest.approx(PAPER_ANCHORS["l1_roof_gflops"], rel=0.05)

    def test_fig12_anchors(self):
        res = run_experiment("fig12")
        best6 = max(res.column("model_6t"))
        best12 = max(res.column("model_12t"))
        assert best6 == pytest.approx(PAPER_ANCHORS["stream_6t_gflops"], rel=0.05)
        assert best12 == pytest.approx(PAPER_ANCHORS["stream_12t_gflops"], rel=0.05)
        measured = [g for g in res.column("measured_1t") if not math.isnan(g)]
        assert measured and all(g > 0 for g in measured)

    def test_fig13_who_wins(self):
        res = run_experiment("fig13")
        for row in res.rows:
            assert row["tiled"] >= row["fine-ltr"] >= row["base"]
            assert row["tiled"] > row["coarse"]

    def test_fig14_tiled_speedup_band(self):
        res = run_experiment("fig14")
        best = max(res.column("tiled"))
        assert 100 <= best <= 250  # paper: ~178x

    def test_fig15_ordering(self):
        res = run_experiment("fig15")
        for row in res.rows:
            assert row["hybrid-tiled"] >= row["hybrid"] >= row["fine"]
            assert row["hybrid-tiled"] > row["base"]

    def test_fig16_100x(self):
        res = run_experiment("fig16")
        assert max(res.column("hybrid-tiled")) >= 90

    def test_fig17_smt_band(self):
        res = run_experiment("fig17")
        lo, hi = PAPER_ANCHORS["smt_gain_tiled"]
        for g in res.column("smt_gain"):
            assert lo - 0.02 <= g <= hi + 0.02

    def test_fig18_cubic_poor(self):
        res = run_experiment("fig18")
        by_tile = {r["tile"]: r["model_gflops_16x2500"] for r in res.rows}
        assert by_tile["64x16xN"] > by_tile["64x64x64"]
        assert by_tile["64x16xN"] > by_tile["32x32x32"]

    def test_breakdown_r0_dominates(self):
        res = run_experiment("breakdown")
        for row in res.rows:
            assert row["r0_pct"] > 50


class TestStructuralExperiments:
    def test_tables_schedules_all_legal(self):
        res = run_experiment("tables1-4")
        assert all(v == 0 for v in res.column("violations"))
        assert len(res.rows) == 4

    def test_table6_loc_growth(self):
        """Table VI's shape: scheduled BPMax much bigger than the base and
        DMP programs; tiling adds code."""
        res = run_experiment("table6")
        loc = {r["implementation"]: r["loc"] for r in res.rows}
        assert loc["BPMax fine (scheduled)"] > 2 * loc["BPMax base (writeC)"]
        assert loc["BPMax fine (scheduled)"] > 2 * loc["Double max-plus (scheduled)"]
        assert (
            loc["Double max-plus tiled (scheduled)"]
            > loc["Double max-plus (scheduled)"]
        )


@pytest.mark.slow
class TestWallClockExperiments:
    def test_fig13w_vectorized_beats_naive(self):
        res = run_experiment("fig13w")
        for row in res.rows:
            assert row["vectorized"] > row["naive"]
            assert row["tiled"] > row["naive"]

    def test_fig15w_optimized_beats_baseline(self):
        res = run_experiment("fig15w")
        for row in res.rows:
            assert row["speedup_tiled"] > 1

    def test_real_speedup_kernel_over_100x(self):
        res = run_experiment("real-speedup")
        kernel_rows = [r for r in res.rows if r["scope"] == "R0 kernel"]
        assert max(r["speedup"] for r in kernel_rows) > 100
