"""RunReport: serialization, observed-vs-predicted, roofline link."""

from __future__ import annotations

import json

import pytest

from repro.core.api import bpmax
from repro.machine.roofline import MAXPLUS_STREAM_AI
from repro.observe import Counters, RunReport, collecting, predicted_op_counts
from repro.observe.report import FLOPS_PER_OP, REPORT_VERSION


def _report(n=4, m=4, **kw) -> RunReport:
    c = Counters()
    for d1 in range(n):
        for _ in range(n - d1):
            c.count_window(d1, m)
    return RunReport.from_counters(c, n=n, m=m, variant="batched", **kw)


class TestObservedVsPredicted:
    def test_exact_run_has_no_deviations(self):
        rep = _report()
        assert rep.deviations() == {}
        assert rep.observed_op_counts() == rep.predicted()

    def test_deviation_detected(self):
        c = Counters()
        c.ops_r0 = 7  # wrong on purpose
        rep = RunReport.from_counters(c, n=4, m=4, variant="x")
        dev = rep.deviations()
        assert dev["r0"] == (7, predicted_op_counts(4, 4)["r0"])

    def test_flops_and_totals(self):
        rep = _report()
        pred = predicted_op_counts(4, 4)
        total = sum(v for k, v in pred.items() if k != "cells")
        assert rep.ops_total == total
        assert rep.flops == FLOPS_PER_OP * total


class TestRoofline:
    def test_summary_without_bytes(self):
        rep = _report()
        roof = rep.roofline_summary()
        assert roof["predicted_ai"] == MAXPLUS_STREAM_AI
        assert roof["predicted_gflops"] > 0
        assert roof["achieved_ai"] is None

    def test_summary_with_bytes(self):
        c = Counters()
        c.count_window(2, 4)
        c.count_slab(2, 3, 3, 4, 4)
        rep = RunReport.from_counters(c, n=4, m=4, variant="batched", wall_s=0.5)
        roof = rep.roofline_summary()
        expected_ai = FLOPS_PER_OP * c.ops_r0 / c.bytes_moved
        assert roof["achieved_ai"] == pytest.approx(expected_ai)
        assert roof["achieved_gflops_bound"] > 0
        assert roof["bound"] in ("compute", "memory")
        assert roof["measured_gflops"] == pytest.approx(rep.flops / 0.5 / 1e9)


class TestSerialization:
    def test_round_trip(self, tmp_path):
        rep = _report(wall_s=1.25, score=9.0, backend="numpy-batched", threads=2)
        path = tmp_path / "report.json"
        rep.save(path)
        back = RunReport.load(path)
        assert back == rep

    def test_version_checked(self, tmp_path):
        rep = _report()
        data = rep.as_dict()
        data["version"] = REPORT_VERSION + 1
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version"):
            RunReport.load(path)

    def test_as_dict_is_json_safe(self):
        json.dumps(_report().as_dict())


class TestRender:
    def test_render_clean_run(self):
        out = _report(score=5.0, wall_s=0.1).render()
        assert "MISMATCH" not in out
        assert "r0" in out and "predicted" in out
        assert "roofline" in out

    def test_render_marks_mismatch(self):
        c = Counters()
        c.ops_r2 = 1
        out = RunReport.from_counters(c, n=4, m=4, variant="x").render()
        assert "MISMATCH" in out


class TestApiIntegration:
    def test_bpmax_metrics_attaches_report(self):
        result = bpmax("GCGC", "GCGC", variant="batched", metrics=True)
        rep = result.report
        assert rep is not None
        assert rep.deviations() == {}
        assert rep.score == result.score
        assert rep.wall_s > 0
        assert rep.backend == "numpy-batched"
        assert rep.variant == "batched"

    def test_bpmax_default_has_no_report(self):
        assert bpmax("GCGC", "GCGC").report is None

    def test_metrics_collection_is_scoped(self):
        from repro.observe import active

        bpmax("GCG", "CGC", metrics=True)
        assert active() is None
