"""Counter semantics: closed forms, hand-computed totals, regressions.

The hand-computed (N=4, M=4) case is the acceptance check from the
issue: ``T1(4) = 10`` windows/cells per axis and ``K1(4) = 10`` split
triples give exactly 100 operations for every one of R0-R4 and 100
cells, and every engine must observe exactly that.
"""

from __future__ import annotations

import pytest

from repro.core.engine import ENGINES, make_engine
from repro.core.reference import prepare_inputs
from repro.kernels import Workspace
from repro.machine.counters import k1, t1
from repro.observe import Counters, active, collecting, predicted_op_counts
from repro.rna.sequence import random_pair


class TestCollecting:
    def test_inactive_by_default(self):
        assert active() is None

    def test_collecting_installs_and_restores(self):
        with collecting() as c:
            assert active() is c
        assert active() is None

    def test_nested_collectors_shadow(self):
        with collecting() as outer:
            with collecting() as inner:
                assert active() is inner
            assert active() is outer

    def test_collecting_accepts_existing_counters(self):
        mine = Counters()
        with collecting(mine) as c:
            assert c is mine

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("x")
        assert active() is None


class TestClosedForms:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 8])
    def test_count_window_matches_brute_force(self, m):
        """count_window's closed forms equal explicit loop enumeration."""
        cells = sum(1 for i2 in range(m) for j2 in range(i2, m))
        k1m = sum(j2 - i2 for i2 in range(m) for j2 in range(i2, m))
        for splits in range(4):
            c = Counters()
            c.count_window(splits, m)
            assert c.cells == cells
            assert c.ops_r0 == splits * k1m
            assert c.ops_r1 == c.ops_r2 == k1m
            assert c.ops_r3 == c.ops_r4 == splits * cells

    def test_predicted_op_counts_hand_computed_4x4(self):
        # T1(4) = 10, K1(4) = 10: every term is exactly 100
        assert predicted_op_counts(4, 4) == {
            "r0": 100,
            "r1": 100,
            "r2": 100,
            "r3": 100,
            "r4": 100,
            "cells": 100,
        }

    def test_predicted_matches_machine_closed_forms(self):
        pred = predicted_op_counts(6, 9)
        assert pred["r0"] == k1(6) * k1(9)
        assert pred["r1"] == pred["r2"] == t1(6) * k1(9)
        assert pred["r3"] == pred["r4"] == k1(6) * t1(9)
        assert pred["cells"] == t1(6) * t1(9)


@pytest.fixture(scope="module")
def inputs_4x4():
    s1, s2 = random_pair(4, 4, 11)
    return prepare_inputs(s1, s2)


class TestEngineCounts:
    @pytest.mark.parametrize("variant", ENGINES)
    def test_every_engine_observes_100_ops_per_term(self, inputs_4x4, variant):
        """Acceptance check: per-term counts at (4, 4) are exactly 100."""
        with collecting() as c:
            make_engine(inputs_4x4, variant).run()
        assert c.op_counts() == {t: 100 for t in ("r0", "r1", "r2", "r3", "r4")}
        assert c.cells == 100
        assert c.windows == t1(4)

    @pytest.mark.parametrize("variant", ENGINES)
    def test_counts_match_prediction_rectangular(self, variant):
        s1, s2 = random_pair(5, 7, 3)
        inp = prepare_inputs(s1, s2)
        with collecting() as c:
            make_engine(inp, variant).run()
        pred = predicted_op_counts(5, 7)
        observed = dict(c.op_counts(), cells=c.cells)
        assert observed == pred


class TestSlabAccounting:
    def test_triangular_skip_matches_structure(self):
        """The triangular-aware batched mode skips exactly the structural
        slab fraction: touched cells per window are K1(M) of the M^3
        dense cells, i.e. a skip fraction of 1 - (M^2 - 1) / (6 M^2)."""
        m = 8
        s1, s2 = random_pair(6, m, 5)
        inp = prepare_inputs(s1, s2)
        with collecting() as c:
            make_engine(inp, "batched").run()
        assert c.slabs_total > 0
        expected_touch = (m * m - 1) / (6 * m * m)
        assert c.slab_skip_fraction() == pytest.approx(1 - expected_touch)
        # the issue's floor: at least ~3/4 of dense cells always skipped
        assert c.slab_skip_fraction() >= 0.75
        # the paper's ~6x traffic-cut claim
        assert c.traffic_ratio() == pytest.approx(
            (6 * m * m) / (m * m - 1)
        )
        assert c.traffic_ratio() > 5.9

    def test_fully_skipped_slabs_counted(self):
        # the last reduction step (k = m - 1) has an empty slab
        m = 6
        s1, s2 = random_pair(4, m, 9)
        inp = prepare_inputs(s1, s2)
        with collecting() as c:
            make_engine(inp, "batched").run()
        assert c.slabs_skipped > 0
        assert c.slabs_skipped < c.slabs_total

    def test_touched_cells_equal_r0_ops(self):
        """Each touched slab cell corresponds to one R0 max-plus op."""
        s1, s2 = random_pair(5, 6, 21)
        inp = prepare_inputs(s1, s2)
        with collecting() as c:
            make_engine(inp, "batched").run()
        assert c.slab_cells_touched == c.ops_r0


class TestWorkspaceAccounting:
    def test_grow_counts_bytes(self):
        with collecting() as c:
            ws = Workspace(4, 8)
            ws.stacks(2)
        assert c.ws_grow_events == 1
        assert c.ws_bytes_allocated == 4 * ws._astack.nbytes

    def test_warm_workspace_never_grows(self):
        ws = Workspace(4, 8)
        ws.stacks(8)  # warm to the high-water mark
        with collecting() as c:
            for k in range(1, 9):
                ws.stacks(k)
                ws.tmp3(k)
        assert c.ws_grow_events == 0
        assert c.ws_stack_reuses == 8

    def test_engine_hot_path_zero_alloc_after_warmup(self):
        """Regression: a warmed engine's hot path allocates nothing."""
        s1, s2 = random_pair(6, 5, 13)
        inp = prepare_inputs(s1, s2)
        engine = make_engine(inp, "batched")
        first = engine.run()  # warm-up: grows to the high-water mark
        with collecting() as c:
            second = engine.run()
        assert second == first
        assert c.ws_grow_events == 0
        assert c.ws_bytes_allocated == 0
        assert c.ws_stack_reuses > 0


class TestDerived:
    def test_ops_total_and_repr(self):
        c = Counters()
        c.count_window(2, 3)
        assert c.ops_total == c.ops_r0 + c.ops_r1 + c.ops_r2 + c.ops_r3 + c.ops_r4
        assert "Counters(" in repr(c)

    def test_ratios_degenerate_cases(self):
        c = Counters()
        assert c.traffic_ratio() == 1.0
        assert c.slab_skip_fraction() == 0.0

    def test_as_dict_covers_every_field(self):
        from repro.observe import COUNTER_FIELDS

        d = Counters().as_dict()
        assert tuple(d) == COUNTER_FIELDS
        assert all(v == 0 for v in d.values())
