"""Unit tests for the span tracer (ring buffer, nesting, JSON export)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.observe.tracer import (
    Tracer,
    get_tracer,
    iter_tree,
    trace,
    tracing,
)


def fake_clock():
    """Deterministic clock advancing 1.0 per read."""
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += 1.0
        return state["t"]

    return clock


class TestTracerBasics:
    def test_disabled_records_nothing(self):
        tr = Tracer()
        with tr.trace("outer"):
            tr.event("nope")
        assert tr.records() == ()

    def test_span_recorded_when_enabled(self):
        tr = Tracer(clock=fake_clock())
        tr.enabled = True
        with tr.trace("work", size=3):
            pass
        (rec,) = tr.records()
        assert rec.name == "work"
        assert rec.kind == "span"
        assert rec.attrs == {"size": 3}
        assert rec.dur_s == pytest.approx(1.0)

    def test_event_recorded_under_current_span(self):
        tr = Tracer()
        tr.enabled = True
        with tr.trace("outer") as span:
            tr.event("mark", x=1)
        events = tr.events("mark")
        assert len(events) == 1
        assert events[0].parent == span.sid
        assert events[0].dur_s == 0.0

    def test_exception_marks_span(self):
        tr = Tracer()
        tr.enabled = True
        with pytest.raises(ValueError):
            with tr.trace("boom"):
                raise ValueError("x")
        (rec,) = tr.spans("boom")
        assert rec.attrs["error"] == "ValueError"

    def test_spans_filter_by_name(self):
        tr = Tracer()
        tr.enabled = True
        with tr.trace("a"):
            pass
        with tr.trace("b"):
            pass
        assert [r.name for r in tr.spans("a")] == ["a"]
        assert len(tr.spans()) == 2

    def test_clear(self):
        tr = Tracer()
        tr.enabled = True
        with tr.trace("a"):
            pass
        tr.clear()
        assert tr.records() == ()


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        tr = Tracer(capacity=3)
        tr.enabled = True
        for i in range(5):
            with tr.trace(f"s{i}"):
                pass
        assert [r.name for r in tr.records()] == ["s2", "s3", "s4"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_evicted_parent_makes_root(self):
        tr = Tracer(capacity=2)
        tr.enabled = True
        with tr.trace("outer"):
            with tr.trace("a"):
                pass
            with tr.trace("b"):
                pass
            with tr.trace("c"):
                pass
        # ring holds only the two newest records; 'c' lost its parent
        roots = tr.tree()
        names = [n["name"] for n in iter_tree(roots)]
        assert set(names) == {"c", "outer"}
        assert all(not n["children"] or n["name"] == "outer" for n in roots)


class TestNesting:
    def test_tree_structure(self):
        tr = Tracer()
        tr.enabled = True
        with tr.trace("run"):
            with tr.trace("window"):
                with tr.trace("kernel"):
                    pass
            with tr.trace("window"):
                pass
        roots = tr.tree()
        assert len(roots) == 1
        run = roots[0]
        assert run["name"] == "run"
        assert [c["name"] for c in run["children"]] == ["window", "window"]
        assert run["children"][0]["children"][0]["name"] == "kernel"

    def test_thread_local_stacks(self):
        tr = Tracer()
        tr.enabled = True
        done = threading.Event()

        def worker():
            with tr.trace("child"):
                pass
            done.set()

        with tr.trace("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        child = tr.spans("child")[0]
        # the worker thread had no open span of its own: top-level parent
        assert child.parent == 0


class TestExport:
    def test_export_round_trip(self, tmp_path):
        tr = Tracer()
        tr.enabled = True
        with tr.trace("outer", n=4):
            tr.event("ping")
        path = tmp_path / "trace.json"
        tr.save(path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert data["count"] == 2
        names = {s["name"] for s in data["spans"]}
        assert names == {"outer", "ping"}

    def test_export_counts(self):
        tr = Tracer()
        tr.enabled = True
        with tr.trace("a"):
            pass
        out = tr.export()
        assert out["count"] == len(out["spans"]) == 1


class TestGlobalTracer:
    def test_module_trace_disabled_is_noop(self):
        assert not get_tracer().enabled
        span = trace("anything")
        with span:
            pass
        assert get_tracer().records() == () or not get_tracer().enabled

    def test_tracing_context_enables_and_restores(self):
        tr = get_tracer()
        assert not tr.enabled
        with tracing() as inner:
            assert inner is tr
            assert tr.enabled
            with trace("inside"):
                pass
        assert not tr.enabled
        assert [r.name for r in tr.spans("inside")] == ["inside"]

    def test_tracing_nested_keeps_enabled(self):
        with tracing():
            with tracing():
                assert get_tracer().enabled
            assert get_tracer().enabled
        assert not get_tracer().enabled

    def test_tracing_capacity_override(self):
        with tracing(capacity=4) as tr:
            for i in range(8):
                with trace(f"s{i}"):
                    pass
            assert len(tr.records()) == 4
        # restore default capacity for other tests
        with tracing(capacity=65536):
            pass
