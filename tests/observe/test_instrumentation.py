"""Spans and events from every instrumented layer, plus CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.api import bpmax
from repro.core.dmp import DoubleMaxPlus, random_triangles
from repro.machine.counters import k1, t1
from repro.observe import collecting, tracing
from repro.parallel.pool import ParallelRunner
from repro.parallel.wavefront import simulate_dag, triangle_task_graph
from repro.robust.errors import BpmaxError
from repro.robust.faults import FaultPlan
from repro.robust.retry import retry


class TestEngineSpans:
    def test_run_window_kernel_span_hierarchy(self):
        with tracing() as tr:
            bpmax("GCGCA", "CGCG", variant="batched")
        names = {r.name for r in tr.spans()}
        assert {"bpmax", "engine.run", "engine.window", "r0.batched"} <= names
        run = tr.spans("engine.run")[0]
        assert run.attrs["variant"] == "batched"
        # every window span nests under the engine.run span
        for w in tr.spans("engine.window"):
            assert w.parent == run.sid

    def test_baseline_span(self):
        with tracing() as tr:
            bpmax("GCG", "CGC", variant="baseline")
        assert tr.spans("engine.run")[0].attrs["variant"] == "baseline"

    def test_dmp_span_and_counters(self):
        tris = random_triangles(4, 5, 1)
        with tracing() as tr, collecting() as c:
            DoubleMaxPlus(tris, kernel="vectorized").run()
        span = tr.spans("dmp.run")[0]
        assert span.attrs["n"] == 4 and span.attrs["m"] == 5
        assert c.windows == t1(4) - 4  # diagonal windows are inputs
        assert c.ops_r0 == k1(4) * k1(5)


class TestParallelSpans:
    def test_pool_map_span(self):
        with tracing() as tr:
            with ParallelRunner(threads=2) as pool:
                assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        span = tr.spans("pool.map")[0]
        assert span.attrs == {"tasks": 3, "threads": 2}

    def test_wavefront_span(self):
        with tracing() as tr:
            simulate_dag(triangle_task_graph(4), threads=2)
        span = tr.spans("wavefront.simulate")[0]
        assert span.attrs["tasks"] == t1(4)


class TestRobustEvents:
    def test_checkpoint_save_event_and_counters(self, tmp_path):
        path = tmp_path / "ck.npz"
        with tracing() as tr, collecting() as c:
            bpmax_score = bpmax(
                "GCGC", "GCGC", variant="baseline", checkpoint=path
            ).score
        assert bpmax_score is not None
        events = tr.events("checkpoint.save")
        assert events
        assert c.checkpoint_saves == len(events)
        assert c.checkpoint_bytes == sum(e.attrs["bytes"] for e in events)
        assert c.checkpoint_bytes > 0

    def test_retry_event_and_counter(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise BpmaxError("transient")
            return "ok"

        with tracing() as tr, collecting() as c:
            assert retry(flaky, attempts=4, backoff=0.0) == "ok"
        assert c.retries == 2
        evts = tr.events("retry")
        assert [e.attrs["attempt"] for e in evts] == [0, 1]
        assert all(e.attrs["error"] == "BpmaxError" for e in evts)

    def test_fault_events_and_counter(self):
        plan = FaultPlan(crash_windows=[(0, 1)], slow_windows=[(1, 2)])
        with tracing() as tr, collecting() as c:
            with pytest.raises(Exception):
                plan.engine_window(0, 1)
            plan.engine_window(1, 2)
        assert c.faults_injected == 2
        names = {e.name for e in tr.events()}
        assert names == {"fault.crash-window", "fault.slow-window"}
        # the plan's own deterministic log is unchanged by the tracer
        assert [e.kind for e in plan.events] == ["crash-window", "slow-window"]


class TestDistributedEvents:
    def test_rank_death_recovery_events(self, small_inputs):
        from repro.core.distributed import DistributedBPMax
        from repro.parallel.mpi import ClusterSpec

        plan = FaultPlan(rank_deaths=[(1, 2)], message_drops=[(1, 0)])
        with tracing() as tr:
            report = DistributedBPMax(
                small_inputs, ClusterSpec(ranks=2), faults=plan
            ).run()
        assert report.recovered_windows > 0
        names = {r.name for r in tr.records()}
        assert {"dist.run", "dist.wavefront", "dist.rank_death",
                "dist.recovered", "dist.transfer_retry"} <= names
        death = tr.events("dist.rank_death")[0]
        assert death.attrs == {"rank": 1, "diagonal": 2}


class TestCliObservability:
    def test_run_metrics_prints_report(self, capsys):
        assert main(["run", "GCGC", "GCGC", "--variant", "batched",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "RunReport" in out
        assert "MISMATCH" not in out
        assert "roofline" in out

    def test_run_metrics_out_and_report_subcommand(self, tmp_path, capsys):
        path = tmp_path / "rep.json"
        assert main(["run", "GCGC", "GCGC", "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        assert path.exists()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "RunReport" in out and "predicted" in out

    def test_run_trace_writes_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["run", "GCGC", "GCGC", "--trace", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["version"] == 1
        names = {s["name"] for s in data["spans"]}
        assert "engine.run" in names
        assert "trace" in capsys.readouterr().out

    def test_report_subcommand_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["report", str(bad)]) == 2
        assert "cannot load report" in capsys.readouterr().err
