"""Property-based correctness suite (requires Hypothesis; skipped cleanly
without it).

Algorithmic invariants of BPMax that hold for *every* input, checked over
generated sequences rather than hand-picked cases:

* every optimized engine equals the memoized-recursion oracle;
* the score is symmetric in the two strands (the recurrence treats the
  strand-1 and strand-2 reductions symmetrically);
* scaling all pair weights by a positive integer scales the score by
  exactly that factor (the DP is max-plus linear in the weights), and in
  particular never decreases it (monotonicity);
* the max-plus semiring satisfies its axioms on the matrix level
  (associativity, identity, absorption by the ⊕-identity).
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property-based suite needs the hypothesis package"
)
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.api import bpmax  # noqa: E402
from repro.core.engine import make_engine  # noqa: E402
from repro.core.reference import bpmax_recursive, prepare_inputs  # noqa: E402
from repro.rna.scoring import ScoringModel  # noqa: E402
from repro.semiring.semiring import MAX_PLUS  # noqa: E402

SETTINGS = settings(max_examples=25, deadline=None)

#: short RNA strands; lengths small enough for the recursion oracle
rna = st.text(alphabet="ACGU", min_size=1, max_size=6)

#: small-integer float32 matrices — exact max-plus arithmetic
def int_matrix(n: int):
    return (
        st.lists(
            st.lists(st.integers(min_value=-8, max_value=8), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        )
        .map(lambda rows: np.array(rows, dtype=np.float32))
    )


# the recursion oracle adjusts sys.recursionlimit per call, which
# Hypothesis (which also manages the limit) reports as a mutated-state
# warning; the adjustment is intentional and monotone, so silence it
@pytest.mark.filterwarnings("ignore::hypothesis.errors.HypothesisWarning")
class TestEngineVsOracle:
    @SETTINGS
    @given(seq1=rna, seq2=rna)
    def test_optimized_engine_matches_recursion(self, seq1, seq2):
        inp = prepare_inputs(seq1, seq2)
        oracle = bpmax_recursive(inp)
        assert make_engine(inp, "hybrid-tiled").run() == oracle

    @SETTINGS
    @given(seq1=rna, seq2=rna)
    def test_batched_engine_matches_recursion(self, seq1, seq2):
        inp = prepare_inputs(seq1, seq2)
        assert make_engine(inp, "batched").run() == bpmax_recursive(inp)


class TestSymmetry:
    @SETTINGS
    @given(seq1=rna, seq2=rna)
    def test_score_symmetric_in_strands(self, seq1, seq2):
        assert bpmax(seq1, seq2).score == bpmax(seq2, seq1).score


class TestScaling:
    @SETTINGS
    @given(seq1=rna, seq2=rna, lam=st.integers(min_value=2, max_value=4))
    def test_weights_scale_score_exactly(self, seq1, seq2, lam):
        """bpmax is homogeneous: scaling every pair weight by λ scales
        the optimum by λ (and is therefore monotone in the weights)."""
        base = ScoringModel()
        scaled = ScoringModel(
            pair_weights={p: lam * w for p, w in base.pair_weights.items()}
        )
        s_base = bpmax(seq1, seq2, model=base).score
        s_scaled = bpmax(seq1, seq2, model=scaled).score
        assert s_scaled == lam * s_base
        assert s_scaled >= s_base  # weights are non-negative


class TestSemiringAxioms:
    @SETTINGS
    @given(data=st.data(), n=st.integers(min_value=1, max_value=4))
    def test_matmul_associative(self, data, n):
        a = data.draw(int_matrix(n))
        b = data.draw(int_matrix(n))
        c = data.draw(int_matrix(n))
        left = MAX_PLUS.matmul(MAX_PLUS.matmul(a, b), c)
        right = MAX_PLUS.matmul(a, MAX_PLUS.matmul(b, c))
        assert np.array_equal(left, right)

    @SETTINGS
    @given(data=st.data(), n=st.integers(min_value=1, max_value=4))
    def test_identity_matrix(self, data, n):
        a = data.draw(int_matrix(n))
        eye = MAX_PLUS.eye(n)
        assert np.array_equal(MAX_PLUS.matmul(a, eye), a)
        assert np.array_equal(MAX_PLUS.matmul(eye, a), a)

    @SETTINGS
    @given(data=st.data(), n=st.integers(min_value=1, max_value=4))
    def test_neg_inf_absorbs(self, data, n):
        """The ⊕-identity matrix (-inf everywhere) annihilates products."""
        a = data.draw(int_matrix(n))
        zero = MAX_PLUS.zeros((n, n))
        assert np.all(MAX_PLUS.matmul(a, zero) == MAX_PLUS.zero)
        assert np.all(MAX_PLUS.matmul(zero, a) == MAX_PLUS.zero)

    @SETTINGS
    @given(x=st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_scalar_identities(self, x):
        assert max(x, MAX_PLUS.zero) == x  # ⊕ identity
        assert x + MAX_PLUS.one == x  # ⊗ identity
