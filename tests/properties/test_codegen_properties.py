"""Property-based suite for the generated-kernel pipeline (requires
Hypothesis; skipped cleanly without it).

The emitter's legality contract says: any bijective permutation of the
R0 reduction indices ``(s, k)``, at any candidate column tile, is a
legal schedule — and because ⊕ is commutative and every candidate is
combined exactly once, *every* legal schedule must produce the same
scores as the reference engine.  These properties draw schedules and
tiles rather than enumerating them, so a future third loop order or
tile shape is covered the day it is added:

* any drawn (legal schedule, tile) engine run equals the memoized
  recursion oracle and is bit-identical to ``numpy-batched`` tables
  under max-plus;
* any drawn time map that is *not* a unit-coefficient permutation is
  rejected by the legality check.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property-based suite needs the hypothesis package"
)
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.engine import make_engine  # noqa: E402
from repro.core.reference import bpmax_recursive, prepare_inputs  # noqa: E402
from repro.kernels.codegen_backend import (  # noqa: E402
    clear_codegen_memory_cache,
    make_pinned_backend,
)
from repro.polyhedral.codegen.vectorize import (  # noqa: E402
    CODEGEN_SCHEDULES,
    is_legal_schedule,
)
from repro.polyhedral.schedule import Schedule  # noqa: E402

SETTINGS = settings(max_examples=25, deadline=None)

#: short RNA strands; lengths small enough for the recursion oracle
rna = st.text(alphabet="ACGU", min_size=1, max_size=6)

#: every legal schedule the emitter can lower: a named permutation of
#: the reduction indices (s, k)
legal_schedule = st.sampled_from([ks.name for ks in CODEGEN_SCHEDULES])

#: candidate column tiles, including widths beyond the strand length
#: (the emitted loop clamps the tile to the window)
tile = st.sampled_from([0, 2, 8, 16])


@pytest.fixture(autouse=True)
def isolated_codegen_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("BPMAX_CODEGEN_CACHE", str(tmp_path))
    clear_codegen_memory_cache()
    yield
    clear_codegen_memory_cache()


def _full_tables(engine):
    n = engine.inputs.n
    return {
        (i1, j1): np.array(engine.table.inner(i1, j1), copy=True)
        for i1 in range(n)
        for j1 in range(i1, n)
    }


@pytest.mark.filterwarnings("ignore::hypothesis.errors.HypothesisWarning")
class TestAnyLegalScheduleMatchesReference:
    @SETTINGS
    @given(seq1=rna, seq2=rna, schedule=legal_schedule, wj=tile)
    def test_matches_oracle_and_batched_tables(self, seq1, seq2, schedule, wj):
        inp = prepare_inputs(seq1, seq2)
        backend = make_pinned_backend(schedule, wj)
        gen = make_engine(inp, variant="batched", backend=backend)
        ref = make_engine(inp, variant="batched")
        score = gen.run()
        assert score == bpmax_recursive(inp)
        assert score == ref.run()
        expected = _full_tables(ref)
        got = _full_tables(gen)
        for key, block in expected.items():
            np.testing.assert_array_equal(got[key], block, err_msg=str(key))

    @SETTINGS
    @given(seq1=rna, seq2=rna, schedule=legal_schedule, wj=tile)
    def test_logsumexp_close_to_reference(self, seq1, seq2, schedule, wj):
        inp = prepare_inputs(seq1, seq2, semiring="logsumexp")
        backend = make_pinned_backend(schedule, wj)
        got = make_engine(inp, variant="batched", backend=backend).run()
        ref = make_engine(inp, variant="batched").run()
        assert got == pytest.approx(ref, abs=1e-9)


class TestLegalityIsAPermutationCheck:
    @SETTINGS
    @given(
        exprs=st.lists(
            st.sampled_from(["s", "k", "s + k", "2*k", "k + 1", "0"]),
            min_size=2,
            max_size=2,
        )
    )
    def test_legal_iff_unit_permutation(self, exprs):
        text = f"(s, k -> {exprs[0]}, {exprs[1]})"
        sched = Schedule.parse("R0", text)
        assert is_legal_schedule(sched) == (sorted(exprs) == ["k", "s"])
