"""Differential fuzzing across every engine x backend x thread count.

One random problem, every registered execution configuration: all must
produce the bit-identical score AND the identical logical R0-R4 op
counters (the counters are incremented from closed forms per window, so
they are part of the equivalence contract — a configuration that skips
or duplicates work is caught even if its score happens to agree).

The same matrix runs under the ``logsumexp`` semiring against the
recursive BPPart reference — there the contract is the corpus
tolerance (1e-9), not bit-identity, because ``logaddexp`` rounds under
reassociation; and max-plus-only backends (fourrussians, numba) must
resolve to a semiring-capable fallback and *still* agree.  The
max-plus bit-identity test doubles as the refactor guard: engines are
semiring-parametric now, and for max-plus the parametric path must
dispatch to the identical kernels.

Failures are reproducible: the ``fuzz_rng`` fixture prints its derived
seed, and ``BPMAX_TEST_SEED`` replays the suite-wide stream.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bppart import bppart_recursive
from repro.core.engine import ENGINES, make_engine
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.kernels import available_backends
from repro.observe import collecting
from repro.rna.sequence import RnaSequence

NUCS = "ACGU"


def _random_pair(rng: np.random.Generator) -> tuple[RnaSequence, RnaSequence]:
    n = int(rng.integers(2, 7))
    m = int(rng.integers(2, 7))
    mk = lambda k: RnaSequence("".join(rng.choice(list(NUCS), size=k)))
    return mk(n), mk(m)


def _configs():
    """Every runnable (variant, engine_kwargs) configuration."""
    out = [("baseline", {})]
    backends = available_backends()
    for variant in ENGINES:
        if variant == "baseline":
            continue
        for backend in backends:
            for threads in (1, 2):
                out.append((variant, {"backend": backend, "threads": threads}))
    return out


CONFIGS = _configs()


@pytest.mark.parametrize("round_idx", range(3))
def test_all_configs_bit_identical_scores_and_counters(fuzz_rng, round_idx):
    rng = np.random.default_rng(fuzz_rng.integers(0, 2**63 - 1) + round_idx)
    seq1, seq2 = _random_pair(rng)
    inp = prepare_inputs(seq1, seq2)
    oracle = bpmax_recursive(inp)

    results = []
    for variant, kwargs in CONFIGS:
        with collecting() as c:
            score = make_engine(inp, variant, **kwargs).run()
        results.append((variant, kwargs, score, c.op_counts(), c.cells))

    ref_variant, ref_kwargs, ref_score, ref_ops, ref_cells = results[0]
    assert ref_score == oracle, f"baseline disagrees with oracle on {seq1}/{seq2}"
    for variant, kwargs, score, ops, cells in results[1:]:
        label = f"{variant} {kwargs} on ({seq1!s}, {seq2!s})"
        assert score == ref_score, f"score mismatch: {label}"
        assert ops == ref_ops, f"op-counter mismatch: {label}"
        assert cells == ref_cells, f"cell-counter mismatch: {label}"


@pytest.mark.parametrize("round_idx", range(3))
def test_logsumexp_configs_agree_with_bppart_reference(fuzz_rng, round_idx):
    """Every vectorized config reproduces the recursive BPPart value
    within the corpus tolerance under the logsumexp semiring."""
    rng = np.random.default_rng(fuzz_rng.integers(0, 2**63 - 1) + 7000 + round_idx)
    seq1, seq2 = _random_pair(rng)
    inp = prepare_inputs(seq1, seq2, semiring="logsumexp")
    ref = bppart_recursive(inp)

    for variant, kwargs in CONFIGS:
        if variant == "baseline":  # scalar reference engine is max-plus only
            continue
        score = make_engine(inp, variant, **kwargs).run()
        label = f"{variant} {kwargs} on ({seq1!s}, {seq2!s})"
        assert math.isclose(score, ref, rel_tol=1e-9, abs_tol=1e-9), (
            f"logsumexp mismatch: {label}: engine {score!r} vs reference {ref!r}"
        )


@pytest.mark.parametrize("round_idx", range(2))
def test_maxplus_unchanged_by_explicit_semiring(fuzz_rng, round_idx):
    """Passing semiring='max-plus' explicitly is bit-identical to the
    historical default path on every config."""
    rng = np.random.default_rng(fuzz_rng.integers(0, 2**63 - 1) + 9000 + round_idx)
    seq1, seq2 = _random_pair(rng)
    implicit = prepare_inputs(seq1, seq2)
    explicit = prepare_inputs(seq1, seq2, semiring="max-plus")
    for variant, kwargs in CONFIGS:
        a = make_engine(implicit, variant, **kwargs).run()
        b = make_engine(explicit, variant, **kwargs).run()
        assert a == b, f"{variant} {kwargs} on ({seq1!s}, {seq2!s})"


def test_maxplus_only_backend_falls_back_with_structured_note(fuzz_rng):
    """A max-plus-only backend requested for a logsumexp run resolves to
    a capable fallback and records why."""
    rng = np.random.default_rng(fuzz_rng.integers(0, 2**63 - 1))
    seq1, seq2 = _random_pair(rng)
    inp = prepare_inputs(seq1, seq2, semiring="logsumexp")
    ref = bppart_recursive(inp)
    engine = make_engine(inp, "batched", backend="fourrussians")
    score = engine.run()
    assert math.isclose(score, ref, rel_tol=1e-9, abs_tol=1e-9)
    note = engine.backend_note
    assert note is not None and note["requested"] == "fourrussians"
    assert "logsumexp" in note["reason"]
    assert engine.backend.name == note["resolved"]
    assert "logsumexp" in engine.backend.semirings


def test_config_matrix_covers_every_backend_and_engine():
    variants = {v for v, _ in CONFIGS}
    assert variants == set(ENGINES)
    used_backends = {kw["backend"] for _, kw in CONFIGS if "backend" in kw}
    assert used_backends == set(available_backends())
    threads = {kw.get("threads") for _, kw in CONFIGS if kw}
    assert {1, 2} <= threads
