"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_run_prints_score(self, capsys):
        assert main(["run", "GCGC", "GCGC", "--variant", "hybrid"]) == 0
        out = capsys.readouterr().out
        assert "score" in out and "hybrid" in out

    def test_run_with_structure(self, capsys):
        assert main(["run", "GGG", "CCC", "--structure"]) == 0
        out = capsys.readouterr().out
        assert "strand1" in out and "inter" in out

    def test_fold(self, capsys):
        assert main(["fold", "GGGCCC"]) == 0
        out = capsys.readouterr().out
        assert "score : 9" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hybrid-tiled" in out and "fig13" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "Roofline" in out and "DRAM" in out

    def test_experiment_unknown(self):
        with pytest.raises(ValueError, match="unknown"):
            main(["experiment", "fig99"])

    def test_bad_variant_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "GC", "GC", "--variant", "bogus"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestScanCommand:
    def test_scan_prints_windows(self, capsys):
        from repro.cli import main as cli_main

        assert (
            cli_main(
                [
                    "scan",
                    "CUCC",
                    "GGAGGAGGAGGA",
                    "--window",
                    "6",
                    "--stride",
                    "3",
                    "--top",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "best window" in out
        assert "gain" in out

    def test_scan_bad_variant(self):
        import pytest as _pytest

        from repro.cli import main as cli_main

        with _pytest.raises(SystemExit):
            cli_main(["scan", "GC", "GCGC", "--variant", "nope"])


class TestFastaAndCsv:
    def test_run_from_fasta(self, tmp_path, capsys):
        fasta = tmp_path / "pair.fasta"
        fasta.write_text(">a\nGCGC\n>b\nGCGC\n")
        assert main(["run", str(fasta), "--fasta"]) == 0
        assert "score" in capsys.readouterr().out

    def test_run_fasta_needs_two_records(self, tmp_path):
        fasta = tmp_path / "one.fasta"
        fasta.write_text(">a\nGCGC\n")
        with pytest.raises(ValueError, match="two records"):
            main(["run", str(fasta), "--fasta"])

    def test_run_without_second_seq_rejected(self):
        with pytest.raises(ValueError, match="two sequences"):
            main(["run", "GCGC"])

    def test_experiment_csv_output(self, tmp_path, capsys):
        assert main(["experiment", "fig11", "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "fig11.csv"
        assert csv_file.exists()
        assert "attainable_gflops" in csv_file.read_text()
