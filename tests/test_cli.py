"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.robust.errors import BpmaxError


class TestCli:
    def test_run_prints_score(self, capsys):
        assert main(["run", "GCGC", "GCGC", "--variant", "hybrid"]) == 0
        out = capsys.readouterr().out
        assert "score" in out and "hybrid" in out

    def test_run_with_structure(self, capsys):
        assert main(["run", "GGG", "CCC", "--structure"]) == 0
        out = capsys.readouterr().out
        assert "strand1" in out and "inter" in out

    def test_fold(self, capsys):
        assert main(["fold", "GGGCCC"]) == 0
        out = capsys.readouterr().out
        assert "score : 9" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hybrid-tiled" in out and "fig13" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "Roofline" in out and "DRAM" in out

    def test_experiment_unknown(self):
        with pytest.raises(ValueError, match="unknown"):
            main(["experiment", "fig99"])

    def test_bad_variant_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "GC", "GC", "--variant", "bogus"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestScanCommand:
    def test_scan_prints_windows(self, capsys):
        from repro.cli import main as cli_main

        assert (
            cli_main(
                [
                    "scan",
                    "CUCC",
                    "GGAGGAGGAGGA",
                    "--window",
                    "6",
                    "--stride",
                    "3",
                    "--top",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "best window" in out
        assert "gain" in out

    def test_scan_bad_variant(self):
        import pytest as _pytest

        from repro.cli import main as cli_main

        with _pytest.raises(SystemExit):
            cli_main(["scan", "GC", "GCGC", "--variant", "nope"])

    def test_scan_reports_cache_hits_on_periodic_target(self, capsys):
        from repro.cli import main as cli_main

        assert (
            cli_main(["scan", "CUCC", "GGAGGA" * 4, "--window", "6", "--stride", "6"])
            == 0
        )
        out = capsys.readouterr().out
        assert "(3 served from cache)" in out

    def test_scan_semiring_logsumexp(self, capsys):
        from repro.cli import main as cli_main

        assert (
            cli_main(
                [
                    "scan",
                    "CUCC",
                    "GGAGGAGGAGGA",
                    "--window",
                    "6",
                    "--stride",
                    "3",
                    "--semiring",
                    "log-sum-exp",
                ]
            )
            == 0
        )
        assert "best window" in capsys.readouterr().out

    def test_scan_unknown_semiring_is_one_line_error(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["scan", "GC", "GCGC", "--semiring", "nope"]) == 2
        assert "semiring" in capsys.readouterr().err


class TestSemiringFlags:
    def test_run_semiring_logsumexp_scores_higher(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["run", "GGGG", "CCCC"]) == 0
        mp = float(capsys.readouterr().out.split()[2])
        assert cli_main(["run", "GGGG", "CCCC", "--semiring", "logsumexp"]) == 0
        lse = float(capsys.readouterr().out.split()[2])
        assert lse > mp == 12.0

    def test_run_semiring_rejects_baseline_and_structure(self, capsys):
        from repro.cli import main as cli_main

        assert (
            cli_main(
                ["run", "GC", "GC", "--semiring", "logsumexp", "--variant", "baseline"]
            )
            == 2
        )
        assert "max-plus only" in capsys.readouterr().err
        assert (
            cli_main(["run", "GC", "GC", "--semiring", "logsumexp", "--structure"])
            == 2
        )
        assert "argmax" in capsys.readouterr().err

    def test_submit_emits_semiring_only_when_nondefault(self, capsys):
        import json

        from repro.cli import main as cli_main

        assert cli_main(["submit", "GC", "GC", "--semiring", "log-sum-exp"]) == 0
        req = json.loads(capsys.readouterr().out)
        assert req["semiring"] == "logsumexp"  # canonicalized
        assert cli_main(["submit", "GC", "GC"]) == 0
        assert "semiring" not in json.loads(capsys.readouterr().out)

    def test_backends_renders_semirings_column(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "semirings: max-plus,logsumexp" in out
        assert "semirings: max-plus\n" in out  # fourrussians/numba stay exact-only


class TestFastaAndCsv:
    def test_run_from_fasta(self, tmp_path, capsys):
        fasta = tmp_path / "pair.fasta"
        fasta.write_text(">a\nGCGC\n>b\nGCGC\n")
        assert main(["run", str(fasta), "--fasta"]) == 0
        assert "score" in capsys.readouterr().out

    def test_run_fasta_needs_two_records(self, tmp_path, capsys):
        fasta = tmp_path / "one.fasta"
        fasta.write_text(">a\nGCGC\n")
        assert main(["run", str(fasta), "--fasta"]) == 2
        assert "two records" in capsys.readouterr().err

    def test_run_fasta_two_records_debug_raises(self, tmp_path):
        fasta = tmp_path / "one.fasta"
        fasta.write_text(">a\nGCGC\n")
        with pytest.raises(BpmaxError, match="two records"):
            main(["--debug", "run", str(fasta), "--fasta"])

    def test_run_without_second_seq_rejected(self, capsys):
        assert main(["run", "GCGC"]) == 2
        assert "two sequences" in capsys.readouterr().err

    def test_experiment_csv_output(self, tmp_path, capsys):
        assert main(["experiment", "fig11", "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "fig11.csv"
        assert csv_file.exists()
        assert "attainable_gflops" in csv_file.read_text()


class TestFaultTolerance:
    def test_checkpoint_then_resume_round_trip(self, tmp_path, capsys):
        ckpt = str(tmp_path / "run.npz")
        assert main(["run", "GCGCUU", "ACGGCU", "--checkpoint", ckpt]) == 0
        first = capsys.readouterr().out
        assert main(["run", "GCGCUU", "ACGGCU", "--checkpoint", ckpt, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed" in second
        # the resumed run reproduces the original score line verbatim
        score = next(l for l in first.splitlines() if "score" in l)
        assert score in second

    def test_resume_without_checkpoint_file_ok(self, tmp_path, capsys):
        ckpt = str(tmp_path / "missing.npz")
        assert main(["run", "GCGC", "GCGC", "--checkpoint", ckpt, "--resume"]) == 0
        assert "resumed" not in capsys.readouterr().out

    def test_stale_checkpoint_exits_2(self, tmp_path, capsys):
        ckpt = str(tmp_path / "run.npz")
        assert main(["run", "GCGCUU", "ACGGCU", "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        assert main(["run", "AUAUAU", "UGGAAU", "--checkpoint", ckpt, "--resume"]) == 2
        assert "stale" in capsys.readouterr().err

    def test_deadline_exceeded_exits_2(self, capsys):
        assert main(["run", "GCGCUU", "ACGGCU", "--deadline", "1e-12"]) == 2
        assert "deadline" in capsys.readouterr().err

    def test_invalid_nucleotide_exits_2(self, capsys):
        assert main(["run", "GCXC", "GCGC"]) == 2
        err = capsys.readouterr().err
        assert "invalid nucleotide" in err and "'X'" in err

    def test_unknown_fallback_rejected(self, capsys):
        assert main(["run", "GC", "GC", "--fallback", "warp"]) == 2
        assert "fallback" in capsys.readouterr().err

    def test_debug_reraises_traceback(self):
        with pytest.raises(BpmaxError):
            main(["--debug", "run", "GCXC", "GCGC"])
