"""Tests for the bundled demonstration pairs."""

import pytest

from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.core.windowed import scan_windows
from repro.rna.datasets import DEMO_PAIRS, demo_pair, list_demo_pairs


class TestRegistry:
    def test_three_pairs(self):
        assert len(list_demo_pairs()) == 3

    def test_lookup(self):
        short, target = demo_pair("copA-copT")
        assert len(short) < len(target)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown demo pair"):
            demo_pair("nope")

    def test_all_valid_rna(self):
        for short, target in DEMO_PAIRS.values():
            assert set(short.seq) <= set("ACGU")
            assert set(target.seq) <= set("ACGU")


class TestBiologicalShape:
    @pytest.mark.parametrize("name", sorted(DEMO_PAIRS))
    def test_pair_scores_positive(self, name):
        short, target = demo_pair(name)
        inp = prepare_inputs(short, target.reversed())
        assert bpmax_recursive(inp) > 0

    @pytest.mark.parametrize("name", sorted(DEMO_PAIRS))
    def test_planted_site_is_best_window(self, name):
        """The complementary site sits at offset 10 in every target."""
        short, target = demo_pair(name)
        res = scan_windows(
            short, target, window=len(short), stride=1, variant="hybrid"
        )
        assert abs(res.best.start - 10) <= 2

    @pytest.mark.parametrize("name", sorted(DEMO_PAIRS))
    def test_seed_mostly_unstructured(self, name):
        """Regulator seeds carry little self-structure (by construction)."""
        short, _ = demo_pair(name)
        inp = prepare_inputs(short, "A")
        assert float(inp.s1[0, -1]) <= 2.0
