"""Tests for the nucleotide alphabet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rna.alphabet import (
    CANONICAL_PAIRS,
    InvalidSequenceError,
    can_pair,
    decode,
    encode,
    normalize,
    pair_strength,
)

RNA = st.text(alphabet="ACGU", min_size=0, max_size=50)


class TestNormalize:
    def test_uppercases(self):
        assert normalize("acgu") == "ACGU"

    def test_dna_thymine_maps_to_uracil(self):
        assert normalize("ACGT") == "ACGU"

    def test_strips_whitespace(self):
        assert normalize("  ACGU \n") == "ACGU"

    def test_rejects_invalid_characters(self):
        with pytest.raises(InvalidSequenceError, match="invalid nucleotide"):
            normalize("ACGX")

    def test_rejects_digits(self):
        with pytest.raises(InvalidSequenceError):
            normalize("AC1U")

    def test_empty_is_valid(self):
        assert normalize("") == ""


class TestEncodeDecode:
    def test_known_codes(self):
        assert list(encode("ACGU")) == [0, 1, 2, 3]

    def test_dtype(self):
        assert encode("ACGU").dtype == np.int8

    @given(RNA)
    def test_roundtrip(self, seq):
        assert decode(encode(seq)) == seq


class TestPairing:
    @pytest.mark.parametrize(
        "a,b,weight",
        [("G", "C", 3), ("A", "U", 2), ("G", "U", 1), ("C", "G", 3), ("U", "A", 2)],
    )
    def test_canonical_weights(self, a, b, weight):
        assert can_pair(a, b)
        assert pair_strength(a, b) == weight

    @pytest.mark.parametrize("a,b", [("A", "A"), ("A", "G"), ("C", "U"), ("C", "C")])
    def test_non_pairs(self, a, b):
        assert not can_pair(a, b)
        assert pair_strength(a, b) == 0

    def test_pairs_symmetric(self):
        for pair in CANONICAL_PAIRS:
            chars = sorted(pair)
            a, b = chars[0], chars[-1]
            assert pair_strength(a, b) == pair_strength(b, a)

    def test_lowercase_accepted(self):
        assert can_pair("g", "c")
