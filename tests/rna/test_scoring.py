"""Tests for the weighted base-pair scoring model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rna.alphabet import encode
from repro.rna.scoring import DEFAULT_MODEL, ScoringModel

RNA = st.text(alphabet="ACGU", min_size=1, max_size=24)


class TestScoreTable:
    def test_default_weights(self):
        codes = encode("GCAU")
        t = DEFAULT_MODEL.score_table(codes)
        assert t[0, 1] == 3.0  # G-C
        assert t[2, 3] == 2.0  # A-U
        assert t[0, 3] == 1.0  # G-U
        assert t[0, 2] == 0.0  # G-A cannot pair

    def test_dtype_float32(self):
        assert DEFAULT_MODEL.score_table(encode("ACGU")).dtype == np.float32

    @given(RNA)
    def test_symmetric(self, seq):
        t = DEFAULT_MODEL.score_table(encode(seq))
        assert np.array_equal(t, t.T)

    def test_min_loop_masks_near_diagonal(self):
        model = ScoringModel(min_loop=3)
        codes = encode("GCGC" * 3)
        t = model.score_table(codes)
        n = len(codes)
        for i in range(n):
            for j in range(i, min(i + 4, n)):
                assert t[i, j] == 0.0

    def test_min_loop_zero_allows_adjacent(self):
        t = DEFAULT_MODEL.score_table(encode("GC"))
        assert t[0, 1] == 3.0

    def test_negative_min_loop_rejected(self):
        with pytest.raises(ValueError, match="min_loop"):
            ScoringModel(min_loop=-1)


class TestIscore:
    def test_iscore_uses_same_weights_by_default(self):
        c1, c2 = encode("GA"), encode("CU")
        t = DEFAULT_MODEL.iscore_table(c1, c2)
        assert t[0, 0] == 3.0  # G-C
        assert t[1, 1] == 2.0  # A-U
        assert t[1, 0] == 0.0  # A-C

    def test_custom_inter_weights(self):
        model = ScoringModel(inter_weights={frozenset("GC"): 10.0})
        t = model.iscore_table(encode("G"), encode("C"))
        assert t[0, 0] == 10.0
        # intramolecular weights unchanged
        assert model.score("G", "C") == 3.0

    def test_scalar_helpers(self):
        assert DEFAULT_MODEL.score("a", "u") == 2.0
        assert DEFAULT_MODEL.iscore("g", "u") == 1.0

    @given(RNA, RNA)
    def test_iscore_shape(self, a, b):
        t = DEFAULT_MODEL.iscore_table(encode(a), encode(b))
        assert t.shape == (len(a), len(b))
        assert (t >= 0).all()
