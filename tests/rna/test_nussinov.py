"""Tests for weighted Nussinov folding (the S tables)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rna.nussinov import (
    nussinov,
    nussinov_reference,
    nussinov_traceback,
    pairs_to_dotbracket,
)
from repro.rna.scoring import DEFAULT_MODEL, ScoringModel
from repro.rna.sequence import RnaSequence, random_sequence

RNA = st.text(alphabet="ACGU", min_size=1, max_size=20)


class TestAgainstReference:
    @given(RNA)
    @settings(max_examples=60, deadline=None)
    def test_vectorized_matches_reference(self, seq):
        assert np.allclose(nussinov(seq), nussinov_reference(seq))

    def test_longer_random_sequences(self):
        for seed in range(5):
            s = random_sequence(40, seed)
            assert np.allclose(nussinov(s), nussinov_reference(s))

    def test_min_loop_model(self):
        model = ScoringModel(min_loop=3)
        s = random_sequence(25, 3)
        assert np.allclose(nussinov(s, model), nussinov_reference(s, model))


class TestKnownValues:
    def test_single_base(self):
        assert nussinov("A").shape == (1, 1)
        assert nussinov("A")[0, 0] == 0.0

    def test_gc_pair(self):
        assert nussinov("GC")[0, 1] == 3.0

    def test_non_pair(self):
        assert nussinov("AA")[0, 1] == 0.0

    def test_hairpin(self):
        # GGGCCC folds into 3 GC pairs = 9 under min_loop=0
        assert nussinov("GGGCCC")[0, 5] == 9.0

    def test_au_stack(self):
        assert nussinov("AAUU")[0, 3] == 4.0

    def test_lower_triangle_zero(self):
        s = nussinov("GCAU")
        assert s[2, 1] == 0.0 and s[3, 0] == 0.0


class TestInvariants:
    @given(RNA)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_window(self, seq):
        """Widening the window never decreases the score."""
        s = nussinov(seq)
        n = len(seq)
        for i in range(n):
            for j in range(i + 1, n):
                assert s[i, j] >= s[i + 1, j] - 1e-6
                assert s[i, j] >= s[i, j - 1] - 1e-6

    @given(RNA)
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_max_pairs(self, seq):
        """Score <= 3 * floor(window/2) (every pair weighs at most 3)."""
        s = nussinov(seq)
        n = len(seq)
        for i in range(n):
            for j in range(i, n):
                assert s[i, j] <= 3 * ((j - i + 1) // 2) + 1e-6

    @given(RNA)
    @settings(max_examples=30, deadline=None)
    def test_superadditive_over_splits(self, seq):
        """S[i,j] >= S[i,k] + S[k+1,j] for every split."""
        s = nussinov(seq)
        n = len(seq)
        for i in range(n):
            for j in range(i + 1, n):
                for k in range(i, j):
                    assert s[i, j] >= s[i, k] + s[k + 1, j] - 1e-5


class TestTraceback:
    @given(RNA)
    @settings(max_examples=40, deadline=None)
    def test_pairs_reproduce_score(self, seq):
        s = nussinov(seq)
        pairs = nussinov_traceback(seq)
        codes = RnaSequence(seq).codes
        w = DEFAULT_MODEL.score_table(codes)
        total = sum(float(w[i, j]) for i, j in pairs)
        expected = float(s[0, len(seq) - 1]) if len(seq) > 1 else 0.0
        assert total == pytest.approx(expected, abs=1e-4)

    @given(RNA)
    @settings(max_examples=40, deadline=None)
    def test_pairs_non_crossing(self, seq):
        pairs = nussinov_traceback(seq)
        for a, b in pairs:
            for c, d in pairs:
                if (a, b) < (c, d):
                    # nested or disjoint, never interleaved
                    assert not (a < c < b < d)

    def test_dotbracket_rendering(self):
        assert pairs_to_dotbracket(4, [(0, 3), (1, 2)]) == "(())"

    def test_dotbracket_conflict_rejected(self):
        with pytest.raises(ValueError, match="conflicts"):
            pairs_to_dotbracket(4, [(0, 3), (0, 2)])

    def test_dotbracket_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            pairs_to_dotbracket(3, [(0, 3)])
