"""Tests for RNA sequence objects and FASTA I/O."""

import io

import numpy as np
import pytest

from repro.rna.alphabet import InvalidSequenceError
from repro.rna.sequence import (
    RnaSequence,
    random_pair,
    random_sequence,
    read_fasta,
    write_fasta,
)


class TestRnaSequence:
    def test_normalizes_on_construction(self):
        s = RnaSequence("acgt")
        assert s.seq == "ACGU"

    def test_len_and_indexing(self):
        s = RnaSequence("ACGU")
        assert len(s) == 4
        assert s[0] == "A"
        assert s[1:3] == "CG"

    def test_codes_cached(self):
        s = RnaSequence("ACGU")
        assert list(s.codes) == [0, 1, 2, 3]

    def test_reversed(self):
        assert RnaSequence("ACGU").reversed().seq == "UGCA"

    def test_invalid_raises(self):
        with pytest.raises(InvalidSequenceError):
            RnaSequence("ACGZ")

    def test_iteration(self):
        assert list(RnaSequence("GC")) == ["G", "C"]

    def test_from_codes_roundtrip(self):
        s = RnaSequence("GUACGU")
        assert RnaSequence.from_codes(s.codes).seq == s.seq


class TestRandomGeneration:
    def test_deterministic_with_seed(self):
        assert random_sequence(30, 5).seq == random_sequence(30, 5).seq

    def test_length(self):
        assert len(random_sequence(17, 0)) == 17

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            random_sequence(0, 0)

    def test_empty_strand_rejected(self):
        with pytest.raises(InvalidSequenceError, match="non-empty"):
            RnaSequence("")

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            random_sequence(-1, 0)

    def test_gc_content_extremes(self):
        all_gc = random_sequence(200, 0, gc_content=1.0)
        assert set(all_gc.seq) <= {"G", "C"}
        no_gc = random_sequence(200, 0, gc_content=0.0)
        assert set(no_gc.seq) <= {"A", "U"}

    def test_gc_content_out_of_range(self):
        with pytest.raises(ValueError, match="gc_content"):
            random_sequence(10, 0, gc_content=1.5)

    def test_random_pair_lengths(self):
        a, b = random_pair(5, 9, 1)
        assert (len(a), len(b)) == (5, 9)

    def test_random_pair_independent(self):
        a, b = random_pair(50, 50, 1)
        assert a.seq != b.seq

    def test_gc_content_statistics(self):
        rng = np.random.default_rng(0)
        s = random_sequence(5000, rng, gc_content=0.7)
        frac = sum(c in "GC" for c in s.seq) / len(s)
        assert 0.65 < frac < 0.75


class TestFasta:
    def test_roundtrip(self, tmp_path):
        seqs = [RnaSequence("ACGU", name="a"), RnaSequence("GGCC" * 30, name="b")]
        path = tmp_path / "x.fasta"
        write_fasta(seqs, path)
        back = read_fasta(path)
        assert [s.name for s in back] == ["a", "b"]
        assert [s.seq for s in back] == [s.seq for s in seqs]

    def test_wraps_long_lines(self, tmp_path):
        path = tmp_path / "x.fasta"
        write_fasta([RnaSequence("A" * 200, name="long")], path, width=70)
        lines = path.read_text().splitlines()
        assert max(len(l) for l in lines) <= 70

    def test_parse_literal_text(self):
        recs = read_fasta(">x\nACGU\nGGCC\n>y\nUUAA\n")
        assert recs[0].seq == "ACGUGGCC"
        assert recs[1].name == "y"

    def test_parse_file_object(self):
        recs = read_fasta(io.StringIO(">z\nACGU\n"))
        assert recs[0].seq == "ACGU"

    def test_missing_header_raises(self):
        with pytest.raises(ValueError, match="header"):
            read_fasta(io.StringIO("ACGU\n"))

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            read_fasta("/nonexistent/path.fasta")
