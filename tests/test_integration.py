"""End-to-end integration tests across subsystem boundaries."""

import runpy
from pathlib import Path

import numpy as np
import pytest

from repro import bpmax
from repro.core.alpha_model import bpmax_system, target_mapping_for
from repro.core.distributed import DistributedBPMax
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.core.windowed import scan_windows
from repro.parallel.mpi import ClusterSpec
from repro.polyhedral.codegen import compile_schedule
from repro.rna.datasets import demo_pair
from repro.rna.sequence import read_fasta, write_fasta, RnaSequence

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestFastaToStructure:
    def test_fasta_roundtrip_to_structure(self, tmp_path):
        """FASTA file -> engines -> traceback -> weight consistency."""
        path = tmp_path / "pair.fasta"
        write_fasta(
            [RnaSequence("GCGCUU", name="a"), RnaSequence("AAGCGC", name="b")],
            path,
        )
        a, b = read_fasta(path)
        result = bpmax(a, b, structure=True)
        assert result.structure.weight(result.inputs) == pytest.approx(result.score)


class TestAlphaToExecution:
    def test_published_schedule_pipeline(self):
        """equations -> mapping directives -> generated code -> oracle,
        for the paper's hybrid schedule, end to end."""
        short, target = demo_pair("dsrA-rpoS")
        q = RnaSequence(short[:3])
        t = RnaSequence(target[:4])
        inp = prepare_inputs(q, t)
        fn, src = compile_schedule(
            bpmax_system(include_s=False), target_mapping_for("hybrid"), "bp"
        )
        out = fn(
            {"N": inp.n, "M": inp.m},
            {
                "score1": inp.score1,
                "score2": inp.score2,
                "iscore": inp.iscore,
                "S1": inp.s1,
                "S2": inp.s2,
            },
        )
        assert out["F"][0, inp.n - 1, 0, inp.m - 1] == pytest.approx(
            bpmax_recursive(inp)
        )
        assert "heapq" in src


class TestScanAndDistribute:
    def test_demo_pair_scan_agrees_with_distributed(self):
        """The windowed scanner's best window scores identically under
        the distributed executor."""
        short, target = demo_pair("oxyS-fhlA")
        res = scan_windows(short, target, window=len(short), stride=3,
                           variant="hybrid")
        best = res.best
        piece = RnaSequence(target[best.start : best.start + res.window]).reversed()
        inp = prepare_inputs(short, piece)
        rep = DistributedBPMax(inp, ClusterSpec(ranks=3)).run()
        assert rep.score == pytest.approx(best.score)


class TestExamplesRun:
    """Every shipped example executes cleanly (bitrot guard)."""

    @pytest.mark.parametrize(
        "name",
        ["quickstart", "ensemble_analysis", "schedule_exploration"],
    )
    def test_example_main(self, name, capsys):
        module = runpy.run_path(str(EXAMPLES / f"{name}.py"), run_name="example")
        module["main"]()
        assert capsys.readouterr().out  # produced output, raised nothing

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["srna_target_scan", "performance_study"])
    def test_slow_examples(self, name, capsys):
        module = runpy.run_path(str(EXAMPLES / f"{name}.py"), run_name="example")
        module["main"]()
        assert capsys.readouterr().out


class TestCrossEngineAtScale:
    def test_all_paths_agree_on_one_workload(self):
        """One (5, 7) workload through every computational path."""
        s1, s2 = RnaSequence("GCAUG"), RnaSequence("CAUGCAU")
        inp = prepare_inputs(s1, s2)
        oracle = bpmax_recursive(inp)
        scores = {
            "api-tiled": bpmax(s1, s2, tile=(2, 2, 0)).score,
            "api-baseline": bpmax(s1, s2, variant="baseline").score,
            "distributed": DistributedBPMax(inp, ClusterSpec(ranks=2)).run().score,
        }
        from repro.polyhedral.alpha import Interpreter

        it = Interpreter(
            bpmax_system(include_s=True),
            {"N": 5, "M": 7},
            {"score1": inp.score1, "score2": inp.score2, "iscore": inp.iscore},
        )
        scores["interpreter"] = it.value("F", 0, 4, 0, 6)
        for name, score in scores.items():
            assert score == pytest.approx(oracle), name
