"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import prepare_inputs
from repro.rna.sequence import random_pair


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_inputs():
    """A tiny (4, 5) BPMax input pair, deterministic."""
    s1, s2 = random_pair(4, 5, 42)
    return prepare_inputs(s1, s2)


@pytest.fixture
def medium_inputs():
    """A (5, 8) BPMax input pair, deterministic."""
    s1, s2 = random_pair(5, 8, 7)
    return prepare_inputs(s1, s2)
