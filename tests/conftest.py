"""Shared fixtures for the test suite.

Randomness policy: every randomized test draws from a generator seeded
from one suite-wide seed, ``BPMAX_TEST_SEED`` (default 12345), shown in
the pytest header.  Fuzz-style tests use :func:`fuzz_rng`, which derives
a per-test seed from the suite seed and the test's node id and prints
it, so any failure is reproducible by exporting the printed seed.
"""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.core.reference import prepare_inputs
from repro.rna.sequence import random_pair

TEST_SEED = int(os.environ.get("BPMAX_TEST_SEED", "12345"))


def pytest_report_header(config) -> str:
    return f"bpmax test seed: {TEST_SEED} (override with BPMAX_TEST_SEED=<int>)"


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(TEST_SEED)


@pytest.fixture
def fuzz_rng(request) -> np.random.Generator:
    """Per-test deterministic generator for fuzz-style tests.

    The derived seed is printed so a failure report shows exactly how to
    reproduce it: ``BPMAX_TEST_SEED=<suite seed>`` replays the whole
    suite, and the printed pair identifies this test's stream.
    """
    derived = zlib.crc32(request.node.nodeid.encode())
    print(f"fuzz seed: suite={TEST_SEED} derived={derived} "
          f"({request.node.nodeid})")
    return np.random.default_rng([TEST_SEED, derived])


@pytest.fixture
def small_inputs():
    """A tiny (4, 5) BPMax input pair, deterministic."""
    s1, s2 = random_pair(4, 5, 42)
    return prepare_inputs(s1, s2)


@pytest.fixture
def medium_inputs():
    """A (5, 8) BPMax input pair, deterministic."""
    s1, s2 = random_pair(5, 8, 7)
    return prepare_inputs(s1, s2)
