"""Shared fixtures for the test suite.

Randomness policy: every randomized test draws from a generator seeded
from one suite-wide seed, ``BPMAX_TEST_SEED`` (default 12345), shown in
the pytest header.  Fuzz-style tests use :func:`fuzz_rng`, which derives
a per-test seed from the suite seed and the test's node id and prints
it, so any failure is reproducible by exporting the printed seed.
"""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.core.reference import prepare_inputs
from repro.rna.sequence import random_pair

TEST_SEED = int(os.environ.get("BPMAX_TEST_SEED", "12345"))

# -- Hypothesis profiles -------------------------------------------------------
#
# Property tests run under a *named* profile so local exploration and CI
# are reproducible independently:
#
#   bpmax-ci   bounded examples, no per-example deadline (CI boxes are
#              noisy), fully derandomized — a red CI run replays
#              identically on every machine, and the suite seed
#              (BPMAX_TEST_SEED) stays the single knob for the repo's
#              own fuzz streams (see :func:`fuzz_rng` below);
#   bpmax-dev  the exploring default for local runs.
#
# Selection: HYPOTHESIS_PROFILE wins, otherwise CI in the environment
# picks bpmax-ci, otherwise bpmax-dev.  Guarded so the suite still
# collects in minimal environments without hypothesis installed.
try:
    from hypothesis import HealthCheck, settings as _hyp_settings

    _hyp_settings.register_profile(
        "bpmax-ci",
        max_examples=50,
        deadline=None,
        derandomize=True,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    _hyp_settings.register_profile("bpmax-dev", deadline=None)
    _hyp_settings.load_profile(
        os.environ.get(
            "HYPOTHESIS_PROFILE",
            "bpmax-ci" if os.environ.get("CI") else "bpmax-dev",
        )
    )
    _HYP_PROFILE = _hyp_settings().__class__._current_profile
except ImportError:  # pragma: no cover - hypothesis ships with the test extra
    _HYP_PROFILE = "unavailable"


def pytest_report_header(config) -> str:
    return (
        f"bpmax test seed: {TEST_SEED} (override with BPMAX_TEST_SEED=<int>); "
        f"hypothesis profile: {_HYP_PROFILE}"
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(TEST_SEED)


@pytest.fixture
def fuzz_rng(request) -> np.random.Generator:
    """Per-test deterministic generator for fuzz-style tests.

    The derived seed is printed so a failure report shows exactly how to
    reproduce it: ``BPMAX_TEST_SEED=<suite seed>`` replays the whole
    suite, and the printed pair identifies this test's stream.
    """
    derived = zlib.crc32(request.node.nodeid.encode())
    print(f"fuzz seed: suite={TEST_SEED} derived={derived} "
          f"({request.node.nodeid})")
    return np.random.default_rng([TEST_SEED, derived])


@pytest.fixture
def small_inputs():
    """A tiny (4, 5) BPMax input pair, deterministic."""
    s1, s2 = random_pair(4, 5, 42)
    return prepare_inputs(s1, s2)


@pytest.fixture
def medium_inputs():
    """A (5, 8) BPMax input pair, deterministic."""
    s1, s2 = random_pair(5, 8, 7)
    return prepare_inputs(s1, s2)
