"""End-to-end fault-tolerance tests: checkpoint/resume, fallback, deadlines."""

import pytest

from repro.core.api import bpmax
from repro.core.engine import make_engine
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.robust.checkpoint import CheckpointManager
from repro.robust.errors import CheckpointError, DeadlineExceeded, EngineFailure
from repro.robust.faults import FaultPlan
from repro.rna.sequence import random_pair


@pytest.fixture
def strands():
    return random_pair(6, 7, 21)


@pytest.fixture
def clean_score(strands):
    s1, s2 = strands
    return bpmax(s1, s2, variant="baseline").score


class TestCheckpointResume:
    @pytest.mark.parametrize(
        "variant, crash",
        [
            ("coarse", (2, 4)),  # diagonal order: diagonals 0-1 checkpointed
            ("hybrid", (1, 3)),  # bottom-up order: diagonal 0 checkpointed
            ("hybrid-tiled", (1, 3)),
        ],
    )
    def test_crash_resume_bit_identical(
        self, tmp_path, strands, clean_score, variant, crash
    ):
        s1, s2 = strands
        path = tmp_path / "run.npz"
        plan = FaultPlan(crash_windows=[crash])
        with pytest.raises(EngineFailure, match="injected crash"):
            bpmax(s1, s2, variant=variant, checkpoint=path, faults=plan)
        assert path.exists(), "a partial checkpoint must survive the crash"

        res = bpmax(s1, s2, variant=variant, checkpoint=path, resume=True)
        assert res.resumed_windows > 0
        assert res.score == clean_score  # bit-identical, not approx

    def test_resume_skips_restored_windows(self, tmp_path, strands, clean_score):
        """Resuming with a crash plan still succeeds: the crashed window
        lies inside the restored prefix and is never re-executed."""
        s1, s2 = strands
        path = tmp_path / "run.npz"
        bpmax(s1, s2, variant="coarse", checkpoint=path)  # full run, full table
        plan = FaultPlan(crash_windows=[(0, 0)])
        res = bpmax(
            s1, s2, variant="coarse", checkpoint=path, resume=True, faults=plan
        )
        assert res.score == clean_score
        assert plan.fired == set()  # (0, 0) was restored, never recomputed

    def test_resume_without_file_starts_fresh(self, tmp_path, strands, clean_score):
        s1, s2 = strands
        res = bpmax(
            s1, s2, variant="coarse", checkpoint=tmp_path / "none.npz", resume=True
        )
        assert res.resumed_windows == 0
        assert res.score == clean_score

    def test_stale_checkpoint_rejected(self, tmp_path, strands):
        s1, s2 = strands
        path = tmp_path / "run.npz"
        bpmax(s1, s2, variant="coarse", checkpoint=path)
        o1, o2 = random_pair(6, 7, 909)  # same shape, different bases
        with pytest.raises(CheckpointError, match="stale"):
            bpmax(o1, o2, variant="coarse", checkpoint=path, resume=True)

    def test_checkpoint_manager_instance_accepted(self, tmp_path, strands):
        s1, s2 = strands
        inputs = prepare_inputs(s1, s2)
        ckpt = CheckpointManager(tmp_path / "run.npz", inputs, variant="coarse")
        res = bpmax(s1, s2, variant="coarse", checkpoint=ckpt)
        assert res.score == pytest.approx(bpmax_recursive(inputs))
        assert ckpt.saves > 0


class TestGracefulDegradation:
    def test_fallback_to_baseline(self, strands, clean_score):
        s1, s2 = strands
        plan = FaultPlan(crash_windows=[(0, 3)])
        res = bpmax(s1, s2, variant="hybrid-tiled", fallback=("baseline",), faults=plan)
        assert res.variant == "baseline"
        assert res.degraded_from == ("hybrid-tiled",)
        assert res.score == clean_score

    def test_no_degradation_recorded_on_clean_run(self, strands):
        s1, s2 = strands
        res = bpmax(s1, s2, variant="hybrid", fallback=("baseline",))
        assert res.variant == "hybrid"
        assert res.degraded_from == ()

    def test_chain_exhaustion_raises(self, strands):
        s1, s2 = strands
        plan = FaultPlan(crash_windows=[(0, 3), (1, 3)])
        with pytest.raises(EngineFailure, match="fallback chain failed"):
            bpmax(s1, s2, variant="hybrid", fallback=("fine",), faults=plan)

    def test_unknown_fallback_rejected(self, strands):
        s1, s2 = strands
        with pytest.raises(ValueError, match="variant"):
            bpmax(s1, s2, fallback=("warp",))

    def test_retry_same_variant(self, strands, clean_score):
        s1, s2 = strands
        plan = FaultPlan(crash_windows=[(1, 2)])
        res = bpmax(s1, s2, variant="coarse", retries=1, faults=plan)
        assert res.variant == "coarse"
        assert res.degraded_from == ()  # retried, never degraded
        assert res.score == clean_score

    def test_make_engine_resilient(self, strands):
        s1, s2 = strands
        inputs = prepare_inputs(s1, s2)
        engine = make_engine(inputs, variant="hybrid", fallback=("baseline",))
        engine.run(faults=FaultPlan(crash_windows=[(2, 3)]))
        assert engine.variant == "baseline"
        assert engine.degraded_from == ("hybrid",)


class TestDeadline:
    def test_deadline_exceeded_raises(self, strands):
        s1, s2 = strands
        with pytest.raises(DeadlineExceeded):
            bpmax(s1, s2, variant="coarse", deadline=1e-12)

    def test_deadline_not_masked_by_fallback(self, strands):
        """A spent budget must not trigger degradation to a slower engine."""
        s1, s2 = strands
        with pytest.raises(DeadlineExceeded):
            bpmax(s1, s2, variant="coarse", fallback=("baseline",), deadline=1e-12)
