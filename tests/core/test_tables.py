"""Tests for the F-table storage."""

import numpy as np
import pytest

from repro.core.tables import FTable, MEMORY_LAYOUTS


class TestFTable:
    def test_alloc_and_get(self):
        t = FTable(3, 4)
        g = t.alloc(0, 2)
        g[1, 3] = 7.0
        assert t.get(0, 2, 1, 3) == 7.0

    def test_windows_diagonal_order(self):
        t = FTable(3, 2)
        ws = list(t.windows())
        assert ws == [(0, 0), (1, 1), (2, 2), (0, 1), (1, 2), (0, 2)]

    def test_unallocated_window_raises(self):
        t = FTable(3, 3)
        with pytest.raises(KeyError, match="not computed"):
            t.inner(0, 1)

    def test_out_of_range_window(self):
        t = FTable(3, 3)
        with pytest.raises(IndexError, match="outer"):
            t.alloc(2, 1)
        with pytest.raises(IndexError, match="outer"):
            t.alloc(0, 3)

    def test_out_of_range_inner(self):
        t = FTable(2, 3)
        t.alloc(0, 1)
        with pytest.raises(IndexError, match="inner"):
            t.get(0, 1, 2, 1)

    def test_set_inner_shape_checked(self):
        t = FTable(2, 3)
        with pytest.raises(ValueError, match="inner matrix"):
            t.set_inner(0, 0, np.zeros((2, 2), dtype=np.float32))

    def test_free(self):
        t = FTable(2, 2)
        t.alloc(0, 1)
        t.free(0, 1)
        assert not t.has(0, 1)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            FTable(0, 3)

    def test_invalid_layout(self):
        with pytest.raises(ValueError, match="layout"):
            FTable(2, 2, layout="option3")


class TestMemoryAccounting:
    def test_allocated_vs_touched(self):
        """The paper's §IV-B-c point: the box allocates ~2x what the
        triangular computation touches per window (4x over the 4-D box)."""
        t = FTable(4, 10)
        for w in t.windows():
            t.alloc(*w)
        ratio = t.bytes_allocated() / t.bytes_touched()
        assert 1.7 < ratio < 2.0

    def test_full_allocation_is_box(self):
        t = FTable(4, 10)
        assert t.full_allocation_bytes() == 10 * 10 * 4 * 10  # T1(4)=10 windows


class TestLayouts:
    def test_option1_physical_is_logical(self):
        t = FTable(2, 4, layout="option1")
        g = t.alloc(0, 1)
        g[0, 3] = 5.0
        assert t.physical(0, 1)[0, 3] == 5.0

    def test_option2_skews_rows(self):
        t = FTable(2, 4, layout="option2")
        g = t.alloc(0, 1)
        g[1, 3] = 9.0
        phys = t.physical(0, 1)
        assert phys[1, 2] == 9.0  # column j2 - i2

    def test_option2_diagonal_in_column_zero(self):
        t = FTable(2, 4, layout="option2")
        g = t.alloc(0, 0)
        for i in range(4):
            g[i, i] = float(i)
        phys = t.physical(0, 0)
        assert np.allclose(phys[:, 0], np.arange(4.0))

    def test_layouts_registry(self):
        assert MEMORY_LAYOUTS == ("option1", "option2")
