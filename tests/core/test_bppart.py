"""Tests for the BPPart-style partition functions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bppart import (
    beta_from_celsius,
    correlation_study,
    duplex_partition,
    ensemble_stats,
    partition_exact,
    single_strand_partition,
)
from repro.core.enumerate import (
    enumerate_duplexes,
    enumerate_foldings,
    enumerate_structures,
    structure_weight,
)
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.rna.sequence import random_pair

TINY = st.text(alphabet="ACGU", min_size=1, max_size=4)
SMALL = st.text(alphabet="ACGU", min_size=1, max_size=7)


class TestTemperature:
    def test_reference_betas(self):
        assert beta_from_celsius(37.0) == pytest.approx(1.622, rel=1e-3)
        assert beta_from_celsius(-180.0) == pytest.approx(5.402, rel=1e-3)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(ValueError, match="absolute zero"):
            beta_from_celsius(-300.0)


class TestSingleStrand:
    @given(SMALL)
    @settings(max_examples=30, deadline=None)
    def test_counting_matches_enumeration(self, seq):
        """beta = 0 turns the partition function into a structure count —
        equality with the enumeration certifies the DP unambiguous."""
        inp = prepare_inputs(seq, "A")
        q = single_strand_partition(inp.score1, beta=0.0)
        folds = enumerate_foldings(inp.score1, inp.n)
        assert q[0, inp.n - 1] == pytest.approx(len(folds))

    @given(SMALL)
    @settings(max_examples=20, deadline=None)
    def test_boltzmann_matches_enumeration(self, seq):
        inp = prepare_inputs(seq, "A")
        beta = 1.0
        q = single_strand_partition(inp.score1, beta)
        expected = sum(
            math.exp(beta * sum(float(inp.score1[i, j]) for i, j in fold))
            for fold in enumerate_foldings(inp.score1, inp.n)
        )
        assert q[0, inp.n - 1] == pytest.approx(expected, rel=1e-9)

    def test_z_dominates_mfe(self):
        inp = prepare_inputs("GGGCCC", "A")
        beta = 1.0
        q = single_strand_partition(inp.score1, beta)
        assert q[0, 5] >= math.exp(beta * float(inp.s1[0, 5]))

    def test_empty_windows_are_one(self):
        inp = prepare_inputs("GC", "A")
        q = single_strand_partition(inp.score1, 1.0)
        assert q[1, 0] == 1.0


class TestDuplex:
    @given(TINY, TINY)
    @settings(max_examples=25, deadline=None)
    def test_counting_matches_enumeration(self, a, b):
        inp = prepare_inputs(a, b)
        z = duplex_partition(inp, beta=0.0)
        assert z == pytest.approx(len(enumerate_duplexes(inp)))

    @given(TINY, TINY)
    @settings(max_examples=20, deadline=None)
    def test_boltzmann_matches_enumeration(self, a, b):
        inp = prepare_inputs(a, b)
        beta = 0.7
        z = duplex_partition(inp, beta)
        expected = sum(
            math.exp(beta * sum(float(inp.iscore[i, j]) for i, j in d))
            for d in enumerate_duplexes(inp)
        )
        assert z == pytest.approx(expected, rel=1e-9)

    def test_no_pairs_gives_one(self):
        inp = prepare_inputs("AA", "GG")
        assert duplex_partition(inp, 1.0) == pytest.approx(1.0)


class TestJointPartition:
    @given(TINY, TINY)
    @settings(max_examples=15, deadline=None)
    def test_z_bounds(self, a, b):
        """exp(beta * MFE) <= Z <= count * exp(beta * MFE)."""
        inp = prepare_inputs(a, b)
        beta = 1.0
        z = partition_exact(inp, beta)
        mfe = bpmax_recursive(inp)
        count = len(enumerate_structures(inp))
        assert math.exp(beta * mfe) <= z + 1e-9
        assert z <= count * math.exp(beta * mfe) + 1e-9

    def test_joint_z_exceeds_component_zs(self):
        """The joint ensemble contains the duplex-only and fold-only
        sub-ensembles."""
        inp = prepare_inputs("GCG", "CGC")
        beta = 1.0
        z = partition_exact(inp, beta)
        assert z >= duplex_partition(inp, beta) - 1e-9
        q1 = single_strand_partition(inp.score1, beta)[0, inp.n - 1]
        q2 = single_strand_partition(inp.score2, beta)[0, inp.m - 1]
        assert z >= q1 * q2 - 1e-6

    def test_low_temperature_concentrates_on_optimum(self):
        inp = prepare_inputs("GCAU", "AUGC")
        cold = ensemble_stats(inp, beta_from_celsius(-180.0))
        warm = ensemble_stats(inp, beta_from_celsius(37.0))
        assert cold.mfe_probability > warm.mfe_probability
        assert cold.expected_weight > warm.expected_weight
        assert cold.mfe_weight == warm.mfe_weight  # optimum is T-independent

    def test_free_energy_below_minus_mfe(self):
        """-RT ln Z <= -MFE (the ensemble can only lower free energy)."""
        inp = prepare_inputs("GGC", "GCC")
        st_ = ensemble_stats(inp, 1.0)
        assert st_.free_energy <= -st_.mfe_weight + 1e-9


class TestCorrelationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return correlation_study(n_samples=25, lengths=(3, 4), rng=3)

    def test_strong_positive_correlation(self, study):
        """The paper's motivation: BPMax tracks the thermodynamics."""
        for r in study:
            assert r.pearson > 0.8
            assert r.spearman > 0.7

    def test_colder_correlates_higher(self, study):
        cold = next(r for r in study if r.temperature_c == -180.0)
        warm = next(r for r in study if r.temperature_c == 37.0)
        assert cold.pearson >= warm.pearson

    def test_deterministic_with_seed(self):
        a = correlation_study(n_samples=8, lengths=(3, 3), rng=5)
        b = correlation_study(n_samples=8, lengths=(3, 3), rng=5)
        assert a[0].pearson == pytest.approx(b[0].pearson)


class TestPairProbabilities:
    from repro.core.bppart import pair_probabilities  # noqa: F401

    def test_probabilities_in_unit_interval(self):
        from repro.core.bppart import pair_probabilities

        inp = prepare_inputs("GCA", "UGC")
        probs = pair_probabilities(inp, 1.0)
        for d in (probs.intra1, probs.intra2, probs.inter):
            for v in d.values():
                assert 0.0 <= v <= 1.0

    def test_base_paired_probability_at_most_one(self):
        from repro.core.bppart import pair_probabilities

        inp = prepare_inputs("GCAU", "AUGC")
        probs = pair_probabilities(inp, 1.5)
        for i in range(inp.n):
            assert probs.strand1_paired(i) <= 1.0 + 1e-9
        for j in range(inp.m):
            assert probs.strand2_paired(j) <= 1.0 + 1e-9

    def test_cold_ensemble_pins_mfe_pairs(self):
        """At very low temperature every optimal-structure pair has
        probability near 1 when the optimum is unique."""
        from repro.core.bppart import pair_probabilities

        inp = prepare_inputs("G", "C")
        probs = pair_probabilities(inp, beta_from_celsius(-180.0))
        assert probs.inter[(0, 0)] > 0.99

    def test_strong_pair_more_probable_than_weak(self):
        from repro.core.bppart import pair_probabilities

        inp = prepare_inputs("GA", "CU")  # G-C (3) vs A-U (2), independent
        probs = pair_probabilities(inp, 1.0)
        assert probs.inter[(0, 0)] > probs.inter[(1, 1)]


class TestLogsumexpReference:
    """bppart_recursive: the log-sum-exp transcription of bpmax_recursive."""

    def test_requires_logsumexp_inputs(self):
        inp = prepare_inputs("GC", "GC")  # max-plus
        with pytest.raises(ValueError, match="logsumexp"):
            from repro.core.bppart import bppart_recursive

            bppart_recursive(inp)

    @given(TINY, TINY)
    @settings(max_examples=20, deadline=None)
    def test_dominates_maxplus_score(self, a, b):
        """The log-partition value upper-bounds the best-path score —
        ⊕ only ever adds derivation mass over the argmax path."""
        from repro.core.bppart import bppart_recursive

        mp = bpmax_recursive(prepare_inputs(a, b))
        lse = bppart_recursive(prepare_inputs(a, b, semiring="logsumexp"))
        assert lse >= mp - 1e-9

    def test_matches_engine_within_corpus_tolerance(self):
        from repro.core.api import bpmax
        from repro.core.bppart import bppart_recursive

        ref = bppart_recursive(
            prepare_inputs("GCGCUUCG", "CGAAGCGC", semiring="logsumexp")
        )
        for variant in ("hybrid", "hybrid-tiled", "batched"):
            got = bpmax(
                "GCGCUUCG", "CGAAGCGC", variant=variant, semiring="logsumexp"
            ).score
            assert got == pytest.approx(ref, rel=1e-9, abs=1e-9), variant


class TestBppartWrapper:
    def test_is_bpmax_under_logsumexp(self):
        from repro.core.api import bpmax
        from repro.core.bppart import bppart

        a = bppart("GCGC", "CGCG")
        b = bpmax("GCGC", "CGCG", semiring="logsumexp")
        assert a.score == b.score
        assert a.inputs.semiring == "logsumexp"

    def test_forwards_engine_kwargs(self):
        from repro.core.bppart import bppart

        res = bppart("GGGG", "CCCC", variant="batched", backend="tiled")
        assert res.variant == "batched"
        assert res.score > 12.0  # exceeds the max-plus score

    def test_structure_rejected(self):
        from repro.core.bppart import bppart

        with pytest.raises(ValueError, match="argmax"):
            bppart("GC", "GC", structure=True)


class TestSuboptimal:
    def test_best_first_and_contains_optimum(self):
        from repro.core.bppart import suboptimal_structures

        inp = prepare_inputs("GCG", "CGC")
        subopt = suboptimal_structures(inp, delta=2.0)
        weights = [w for w, _ in subopt]
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == pytest.approx(bpmax_recursive(inp))

    def test_window_widens_with_delta(self):
        from repro.core.bppart import suboptimal_structures

        inp = prepare_inputs("GCAU", "AUGC")
        small = suboptimal_structures(inp, delta=0.0)
        large = suboptimal_structures(inp, delta=3.0)
        assert len(large) >= len(small)

    def test_all_within_delta(self):
        from repro.core.bppart import suboptimal_structures

        inp = prepare_inputs("GCA", "UGC")
        delta = 1.5
        subopt = suboptimal_structures(inp, delta)
        best = subopt[0][0]
        assert all(w >= best - delta - 1e-6 for w, _ in subopt)

    def test_negative_delta_rejected(self):
        from repro.core.bppart import suboptimal_structures

        inp = prepare_inputs("GC", "GC")
        with pytest.raises(ValueError, match="delta"):
            suboptimal_structures(inp, -1.0)
