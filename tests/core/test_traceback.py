"""Tests for interaction-structure recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import prepare_inputs
from repro.core.traceback import traceback
from repro.core.vectorized import VectorizedBPMax
from repro.rna.sequence import random_pair

RNA = st.text(alphabet="ACGU", min_size=1, max_size=7)


def _structure(a, b):
    inp = prepare_inputs(a, b)
    eng = VectorizedBPMax(inp, variant="hybrid", tile=(2, 2, 0))
    score = eng.run()
    return inp, score, traceback(inp, eng.table)


class TestWeightConsistency:
    @given(RNA, RNA)
    @settings(max_examples=40, deadline=None)
    def test_structure_weight_equals_score(self, a, b):
        inp, score, struct = _structure(a, b)
        assert struct.weight(inp) == pytest.approx(score, abs=1e-3)

    def test_known_duplex(self):
        inp, score, struct = _structure("GGGG", "CCCC")
        assert score == 12.0
        assert len(struct.inter) == 4
        assert not struct.pairs1 and not struct.pairs2

    def test_known_hairpins(self):
        """Strongly self-complementary strands fold intramolecularly."""
        inp, score, struct = _structure("GGGCCC", "AAAUUU")
        assert struct.weight(inp) == pytest.approx(score)
        assert score >= 9 + 6  # 3 GC + 3 AU pairs at least


class TestStructureValidity:
    @given(RNA, RNA)
    @settings(max_examples=30, deadline=None)
    def test_each_base_pairs_at_most_once(self, a, b):
        _, _, struct = _structure(a, b)
        used1 = [i for p in struct.pairs1 for i in p] + [i for i, _ in struct.inter]
        used2 = [i for p in struct.pairs2 for i in p] + [j for _, j in struct.inter]
        assert len(used1) == len(set(used1))
        assert len(used2) == len(set(used2))

    @given(RNA, RNA)
    @settings(max_examples=30, deadline=None)
    def test_intramolecular_pairs_non_crossing(self, a, b):
        _, _, struct = _structure(a, b)
        for pairs in (struct.pairs1, struct.pairs2):
            for x, y in pairs:
                for u, v in pairs:
                    if (x, y) < (u, v):
                        assert not (x < u < y < v)

    @given(RNA, RNA)
    @settings(max_examples=30, deadline=None)
    def test_intermolecular_pairs_non_crossing(self, a, b):
        """BPMax forbids crossing interactions: the (i1, i2) pairs must be
        simultaneously monotone."""
        _, _, struct = _structure(a, b)
        inter = sorted(struct.inter)
        for (a1, a2), (b1, b2) in zip(inter, inter[1:]):
            assert a1 < b1
            assert a2 < b2

    @given(RNA, RNA)
    @settings(max_examples=20, deadline=None)
    def test_pairs_in_range(self, a, b):
        _, _, struct = _structure(a, b)
        for i, j in struct.pairs1:
            assert 0 <= i < j < len(a)
        for i, j in struct.pairs2:
            assert 0 <= i < j < len(b)
        for i1, i2 in struct.inter:
            assert 0 <= i1 < len(a) and 0 <= i2 < len(b)


class TestDotBracket:
    def test_marks_inter_with_star(self):
        _, _, struct = _structure("G", "C")
        db1, db2 = struct.dotbracket()
        assert db1 == "*" and db2 == "*"

    def test_lengths(self):
        _, _, struct = _structure("GCGC", "AUAU")
        db1, db2 = struct.dotbracket()
        assert len(db1) == 4 and len(db2) == 4

    def test_larger_pair(self):
        s1, s2 = random_pair(6, 9, 11)
        inp = prepare_inputs(s1, s2)
        eng = VectorizedBPMax(inp, variant="hybrid")
        score = eng.run()
        struct = traceback(inp, eng.table)
        assert struct.weight(inp) == pytest.approx(score, abs=1e-3)
