"""Tests for the vectorized BPMax engines — cross-implementation equality
is the heart of the reproduction's correctness story."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ENGINES, make_engine
from repro.core.reference import BaselineBPMax, bpmax_recursive, prepare_inputs
from repro.core.vectorized import VARIANT_CONFIGS, VectorizedBPMax
from repro.rna.scoring import ScoringModel
from repro.rna.sequence import random_pair

RNA = st.text(alphabet="ACGU", min_size=1, max_size=6)
VARIANTS = list(VARIANT_CONFIGS)


class TestScoreEquality:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_matches_oracle_small(self, small_inputs, variant):
        expected = bpmax_recursive(small_inputs)
        got = VectorizedBPMax(small_inputs, variant=variant, tile=(2, 2, 0)).run()
        assert got == pytest.approx(expected)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_matches_oracle_medium(self, medium_inputs, variant):
        expected = bpmax_recursive(medium_inputs)
        got = VectorizedBPMax(medium_inputs, variant=variant, tile=(4, 2, 0)).run()
        assert got == pytest.approx(expected)

    @given(RNA, RNA, st.sampled_from(VARIANTS))
    @settings(max_examples=30, deadline=None)
    def test_property_random_sequences(self, a, b, variant):
        inp = prepare_inputs(a, b)
        expected = bpmax_recursive(inp)
        got = VectorizedBPMax(inp, variant=variant, tile=(2, 2, 2)).run()
        assert got == pytest.approx(expected)

    def test_larger_random_pair_all_variants_agree(self):
        s1, s2 = random_pair(6, 12, 77)
        inp = prepare_inputs(s1, s2)
        scores = {
            v: VectorizedBPMax(inp, variant=v, tile=(4, 4, 0)).run() for v in VARIANTS
        }
        assert len(set(round(s, 3) for s in scores.values())) == 1
        assert scores["hybrid"] == pytest.approx(BaselineBPMax(inp).run())

    def test_min_loop_model(self):
        model = ScoringModel(min_loop=3)
        s1, s2 = random_pair(5, 9, 3)
        inp = prepare_inputs(s1, s2, model)
        got = VectorizedBPMax(inp, variant="hybrid-tiled", tile=(4, 2, 0)).run()
        assert got == pytest.approx(bpmax_recursive(inp))


class TestFullTableEquality:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_every_cell_matches(self, small_inputs, variant):
        _, table = bpmax_recursive(small_inputs, full_table=True)
        eng = VectorizedBPMax(small_inputs, variant=variant, tile=(2, 2, 0))
        eng.run()
        for key, v in table.items():
            assert eng.table.get(*key) == pytest.approx(v), key


class TestThreads:
    def test_threaded_r0_matches_serial(self, medium_inputs):
        serial = VectorizedBPMax(medium_inputs, variant="hybrid").run()
        threaded = VectorizedBPMax(medium_inputs, variant="hybrid", threads=3).run()
        assert threaded == pytest.approx(serial)

    def test_threaded_tiled(self, medium_inputs):
        expected = bpmax_recursive(medium_inputs)
        got = VectorizedBPMax(
            medium_inputs, variant="hybrid-tiled", threads=2, tile=(3, 2, 0)
        ).run()
        assert got == pytest.approx(expected)


class TestConfiguration:
    def test_unknown_variant(self, small_inputs):
        with pytest.raises(ValueError, match="variant"):
            VectorizedBPMax(small_inputs, variant="mega")

    def test_unknown_kernel_override(self, small_inputs):
        with pytest.raises(ValueError, match="kernel"):
            VectorizedBPMax(small_inputs, kernel="nope")

    def test_unknown_order_override(self, small_inputs):
        with pytest.raises(ValueError, match="order"):
            VectorizedBPMax(small_inputs, order="zigzag")

    def test_variant_presets(self, small_inputs):
        eng = VectorizedBPMax(small_inputs, variant="coarse")
        assert eng.order == "diagonal"
        assert eng.granularity == "triangle"
        eng = VectorizedBPMax(small_inputs, variant="hybrid-tiled")
        assert eng.kernel_name == "tiled"

    def test_order_override_wins(self, small_inputs):
        eng = VectorizedBPMax(small_inputs, variant="coarse", order="bottomup")
        assert eng.order == "bottomup"


class TestEngineRegistry:
    def test_registry_contents(self):
        assert set(ENGINES) == {
            "baseline",
            "coarse",
            "fine",
            "hybrid",
            "hybrid-tiled",
            "batched",
        }

    def test_make_engine_baseline(self, small_inputs):
        eng = make_engine(small_inputs, "baseline")
        assert isinstance(eng, BaselineBPMax)

    def test_make_engine_rejects_baseline_options(self, small_inputs):
        with pytest.raises(TypeError, match="options"):
            make_engine(small_inputs, "baseline", tile=(2, 2, 0))

    def test_make_engine_unknown(self, small_inputs):
        with pytest.raises(ValueError, match="unknown"):
            make_engine(small_inputs, "quantum")

    def test_all_registered_engines_agree(self, small_inputs):
        expected = bpmax_recursive(small_inputs)
        for name in ENGINES:
            kwargs = {} if name == "baseline" else {"tile": (2, 2, 0)}
            assert make_engine(small_inputs, name, **kwargs).run() == pytest.approx(
                expected
            ), name
