"""Legality and executable-codegen tests for the published schedules
(Tables I-V): the central methodological claims of the paper."""

import numpy as np
import pytest

from repro.core.alpha_model import (
    SCHEDULE_TABLES,
    bpmax_system,
    dmp_system,
    schedules_for,
    target_mapping_for,
)
from repro.core.dmp import dmp_reference, random_triangles
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.polyhedral.codegen import compile_schedule
from repro.polyhedral.dependence import check_all, check_legality
from repro.polyhedral.schedule import Schedule
from repro.rna.sequence import random_pair

PARAMS = {"N": 3, "M": 4}


@pytest.fixture(scope="module")
def bpmax_deps():
    return bpmax_system(include_s=False).dependences()


@pytest.fixture(scope="module")
def dmp_deps():
    return dmp_system().dependences()


class TestLegality:
    @pytest.mark.parametrize("variant", ["fine", "coarse", "hybrid"])
    def test_bpmax_schedules_legal(self, bpmax_deps, variant):
        vs = schedules_for(variant)
        scheds, ready = vs.checker_schedules()
        violations = check_all(
            bpmax_deps, scheds, PARAMS, producer_schedules=ready
        )
        assert violations == [], f"{variant}: {violations[:3]}"

    def test_dmp_schedule_legal(self, dmp_deps):
        vs = schedules_for("dmp")
        scheds, ready = vs.checker_schedules()
        assert check_all(dmp_deps, scheds, PARAMS, producer_schedules=ready) == []

    def test_hybrid_requires_n_le_m(self, bpmax_deps):
        """Table IV separates groups with the constant M at dim 2, so it
        assumes N <= M (documented in alpha_model)."""
        vs = schedules_for("hybrid")
        scheds, ready = vs.checker_schedules()
        assert check_all(
            bpmax_deps, scheds, {"N": 2, "M": 5}, producer_schedules=ready
        ) == []

    def test_broken_schedule_is_caught(self, bpmax_deps):
        """Sanity: the checker is not vacuous — reversing F's window order
        must produce violations."""
        vs = schedules_for("coarse")
        scheds, ready = vs.checker_schedules()
        bad = dict(scheds)
        bad["F"] = Schedule.parse(
            "F",
            "(i1,j1,i2,j2 -> 1, i1-j1, i1, j1, 0-i2, j2, j2)",  # reversed diag
            vs.body["F"].parallel_dims,
        )
        violations = check_all(bpmax_deps, bad, PARAMS, producer_schedules=ready)
        assert violations

    def test_fine_grain_without_row_guard_is_illegal(self, bpmax_deps):
        """Making R1 row-parallel (dim 4 = -i2 parallel) breaks the
        dependence on other rows — the paper's reason fine-grain 'is only
        valid for R0, R3, R4'."""
        vs = schedules_for("fine")
        scheds, ready = vs.checker_schedules()
        bad = dict(scheds)
        # move R1's row index into the parallel dimension
        bad["R1"] = Schedule.parse(
            "R1",
            "(i1,j1,i2,j2,k2 -> 1, 0-i1, j1, j1, 0, 0-i2, k2, j2)",
            [5],
        )
        bad_ready = dict(ready)
        bad_ready["R1"] = Schedule.parse(
            "R1",
            "(i1,j1,i2,j2 -> 1, 0-i1, j1, j1, 0, 0-i2, j2-1, j2)",
            [5],
        )
        violations = check_all(
            bpmax_deps, bad, PARAMS, producer_schedules=bad_ready
        )
        assert violations, "row-parallel R1 should violate intra-row reads"

    def test_all_tables_registered(self):
        assert set(SCHEDULE_TABLES) == {"dmp", "fine", "coarse", "hybrid"}

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown"):
            schedules_for("table-ix")


class TestScheduledExecution:
    """Run the generated code for each schedule table and compare against
    the recursive oracle — the end-to-end 'AlphaZ flow' test."""

    @pytest.fixture(scope="class")
    def workload(self):
        s1, s2 = random_pair(3, 4, 21)
        inp = prepare_inputs(s1, s2)
        score, table = bpmax_recursive(inp, full_table=True)
        inputs = {
            "score1": inp.score1,
            "score2": inp.score2,
            "iscore": inp.iscore,
            "S1": inp.s1,
            "S2": inp.s2,
        }
        return inp, inputs, table

    @pytest.mark.parametrize("variant", ["fine", "coarse", "hybrid"])
    def test_generated_code_correct(self, workload, variant):
        inp, inputs, table = workload
        sys_ = bpmax_system(include_s=False)
        fn, src = compile_schedule(
            sys_, target_mapping_for(variant), func_name=f"bp_{variant}"
        )
        out = fn({"N": inp.n, "M": inp.m}, inputs)["F"]
        for key, v in table.items():
            assert out[key] == pytest.approx(v), (variant, key)

    def test_dmp_generated_code_correct(self):
        tr = random_triangles(3, 4, 2)
        ref = dmp_reference(tr)
        fn, _ = compile_schedule(
            dmp_system(), target_mapping_for("dmp", "dmp"), func_name="d"
        )
        out = fn({"N": 3, "M": 4}, {"T": np.stack(tr)})["F"]
        for (i1, j1), mat in ref.items():
            for i2 in range(4):
                for j2 in range(i2, 4):
                    v, g = mat[i2, j2], out[i1, j1, i2, j2]
                    if np.isneginf(v):
                        assert np.isneginf(g)
                    else:
                        assert g == pytest.approx(float(v))

    def test_dmp_tiled_subsystem_correct(self):
        """Table V's tiled band, isolated as the paper's subsystem."""
        tr = random_triangles(3, 5, 9)
        ref = dmp_reference(tr)
        tm = target_mapping_for("dmp", "dmp")
        tm.set_tiling("R0", (0, 0, 0, 2, 2, 0))
        tm.set_tiling("F", (0, 0, 0, 2, 2, 0))
        fn, src = compile_schedule(dmp_system(), tm, func_name="dt")
        out = fn({"N": 3, "M": 5}, {"T": np.stack(tr)})["F"]
        assert "_tt3" in src and "_tt4" in src
        for (i1, j1), mat in ref.items():
            for i2 in range(5):
                for j2 in range(i2, 5):
                    v, g = mat[i2, j2], out[i1, j1, i2, j2]
                    if np.isneginf(v):
                        assert np.isneginf(g)
                    else:
                        assert g == pytest.approx(float(v))
