"""Tests for windowed BPMax scanning."""

import pytest

from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.core.windowed import scan_windows
from repro.rna.alphabet import CANONICAL_PAIRS
from repro.rna.sequence import RnaSequence, random_sequence


def _revcomp(seq: str) -> str:
    comp = {"A": "U", "U": "A", "G": "C", "C": "G"}
    return "".join(comp[c] for c in reversed(seq))


class TestScan:
    def test_window_starts_and_stride(self):
        res = scan_windows("GC", "A" * 30, window=10, stride=5, variant="hybrid")
        assert [h.start for h in res.hits] == [0, 5, 10, 15, 20]

    def test_window_clamped_to_target(self):
        res = scan_windows("GC", "GCGC", window=100, variant="hybrid")
        assert res.window == 4
        assert len(res.hits) == 1

    def test_scores_match_direct_engine(self):
        query, target = "CUCC", "GGAGGAAA"
        res = scan_windows(query, target, window=4, stride=4, variant="hybrid",
                           antiparallel=False)
        for hit in res.hits:
            piece = target[hit.start : hit.start + 4]
            expected = bpmax_recursive(prepare_inputs(query, piece))
            assert hit.score == pytest.approx(expected)

    def test_antiparallel_reverses_window(self):
        query, target = "CUCC", "GGAGAAAA"
        res = scan_windows(query, target, window=4, stride=4)
        expected = bpmax_recursive(prepare_inputs(query, target[:4][::-1]))
        assert res.hits[0].score == pytest.approx(expected)

    def test_gain_is_score_minus_independent(self):
        res = scan_windows("GCGC", "GCGCGC", window=6, variant="hybrid")
        hit = res.hits[0]
        inp = prepare_inputs("GCGC", RnaSequence("GCGCGC").reversed())
        assert hit.gain == pytest.approx(
            hit.score - float(inp.s1[0, -1] + inp.s2[0, -1])
        )


class TestSiteLocation:
    def test_planted_site_found(self):
        """A perfect complementary site must win by interaction gain."""
        query = "CUCCUCCACC"  # pyrimidine-rich: no self structure
        site = _revcomp(query)
        left = random_sequence(30, 0).seq
        right = random_sequence(30, 1).seq
        target = left + site + right
        res = scan_windows(query, target, window=len(site), stride=2)
        assert abs(res.best.start - 30) <= len(site) // 2

    def test_top_k_ordering(self):
        res = scan_windows("GC", "GCAUGCAUGCAU", window=4, stride=2, variant="hybrid")
        top = res.top(3)
        assert len(top) == 3
        assert top[0].gain >= top[1].gain >= top[2].gain

    def test_best_on_empty_hits_impossible(self):
        res = scan_windows("GC", "AU", window=2, variant="hybrid")
        assert res.best is not None


class TestValidation:
    def test_empty_query_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            scan_windows("", "ACGU")

    def test_bad_stride(self):
        with pytest.raises(ValueError, match="stride"):
            scan_windows("GC", "ACGU", stride=0)

    def test_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            scan_windows("GC", "ACGU", window=-1)

    def test_bad_variant(self):
        with pytest.raises(ValueError, match="variant"):
            scan_windows("GC", "ACGU", variant="warp")

    def test_bad_topk(self):
        res = scan_windows("GC", "ACGUACGU", window=4, variant="hybrid")
        with pytest.raises(ValueError, match="k must be"):
            res.top(0)


class TestServedScan:
    """scan_windows_served: the serve-layer sweep behind ``bpmax scan``."""

    def test_matches_direct_scan_bit_identically(self):
        from repro.core.windowed import scan_windows_served

        direct = scan_windows("CUCC", "GGAGGACCUUGGAGGA", window=6, stride=3)
        served = scan_windows_served("CUCC", "GGAGGACCUUGGAGGA", window=6, stride=3)
        assert [(h.start, h.score, h.gain) for h in direct.hits] == [
            (h.start, h.score, h.gain) for h in served.hits
        ]
        assert served.best.start == direct.best.start

    def test_identical_windows_come_from_cache(self):
        from repro.core.windowed import scan_windows_served

        # a periodic target: every stride-aligned window has the same
        # content, so all but the first must be cache hits
        res = scan_windows_served("CUCC", "GGAGGA" * 5, window=6, stride=6)
        assert len(res.hits) == 5
        assert not res.hits[0].cached
        assert all(h.cached for h in res.hits[1:])
        assert len({(h.score, h.gain) for h in res.hits}) == 1

    def test_logsumexp_sweep_gains_differ_from_maxplus(self):
        from repro.core.windowed import scan_windows_served

        mp = scan_windows_served("CUCC", "GGAGGACCUUGGAGGA", window=6, stride=3)
        lse = scan_windows_served(
            "CUCC", "GGAGGACCUUGGAGGA", window=6, stride=3, semiring="logsumexp"
        )
        assert [h.start for h in mp.hits] == [h.start for h in lse.hits]
        # log-partition values strictly exceed best-path scores here
        assert all(a.score < b.score for a, b in zip(mp.hits, lse.hits))

    def test_semiring_threads_through_direct_scan(self):
        res = scan_windows(
            "GC", "GCGCGC", window=4, stride=2, variant="hybrid",
            semiring="logsumexp",
        )
        assert all(h.score > 0 for h in res.hits)
