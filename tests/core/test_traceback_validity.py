"""Structure-validity contract for traceback, via the public API.

``test_traceback.py`` checks the traceback walker against one engine on
fuzzed inputs.  This module pins the *contract* a recovered structure
must satisfy regardless of which engine filled the table:

* chemically admissible pairs only — every reported pair has strictly
  positive weight in the scoring model (no A-G, no zero-weight pairs);
* each base participates in at most one pair, intra- or intermolecular;
* intramolecular pairs are nested (pseudoknot-free) per strand;
* intermolecular pairs are simultaneously monotone (non-crossing);
* the structure re-scores to the engine's optimum **exactly** — no
  tolerance: with integer-valued weights the sum must be bit-identical.

It runs over the golden corpus (the same curated pairs the conformance
manifest pins) plus a deterministic fuzz sweep, across engine variants.
"""

from __future__ import annotations

import pytest

from repro.core.api import bpmax
from repro.core.reference import prepare_inputs
from repro.golden import GOLDEN_CASES
from repro.rna.scoring import DEFAULT_MODEL
from repro.rna.sequence import random_pair

#: engines whose tables feed traceback in these tests; baseline is
#: covered separately on small inputs (it is slow on 24-mers)
VARIANTS = ("coarse", "fine", "hybrid", "hybrid-tiled", "batched")

#: corpus entries that can score at all (skip nothing — unpairable
#: cases must produce a valid *empty* structure)
CASES = [(c.name, c.seq1, c.seq2) for c in GOLDEN_CASES]


def _assert_valid(seq1: str, seq2: str, struct, score: float) -> None:
    """Assert every clause of the structure contract."""
    inputs = prepare_inputs(seq1, seq2, DEFAULT_MODEL)
    n, m = inputs.n, inputs.m

    # pairs in range and correctly oriented
    for i, j in struct.pairs1:
        assert 0 <= i < j < n
    for i, j in struct.pairs2:
        assert 0 <= i < j < m
    for i1, i2 in struct.inter:
        assert 0 <= i1 < n and 0 <= i2 < m

    # admissible pairs only: strictly positive weight in the model
    for i, j in struct.pairs1:
        assert inputs.score1[i, j] > 0, f"strand-1 pair ({i},{j}) has no weight"
    for i, j in struct.pairs2:
        assert inputs.score2[i, j] > 0, f"strand-2 pair ({i},{j}) has no weight"
    for i1, i2 in struct.inter:
        assert inputs.iscore[i1, i2] > 0, f"inter pair ({i1},{i2}) has no weight"

    # each base pairs at most once (across intra and inter)
    used1 = [i for p in struct.pairs1 for i in p] + [i for i, _ in struct.inter]
    used2 = [j for p in struct.pairs2 for j in p] + [j for _, j in struct.inter]
    assert len(used1) == len(set(used1)), "strand-1 base reused"
    assert len(used2) == len(set(used2)), "strand-2 base reused"

    # intramolecular pairs nested per strand
    for pairs in (struct.pairs1, struct.pairs2):
        s = sorted(pairs)
        for a in range(len(s)):
            for b in range(a + 1, len(s)):
                (x, y), (u, v) = s[a], s[b]
                assert not (x < u < y < v), f"crossing pairs {s[a]} / {s[b]}"

    # intermolecular pairs simultaneously monotone
    inter = sorted(struct.inter)
    for (a1, a2), (b1, b2) in zip(inter, inter[1:]):
        assert a1 < b1 and a2 < b2, f"crossing interactions {inter}"

    # exact re-scoring: the structure's weight IS the optimum
    assert struct.weight(inputs) == score


class TestGoldenCorpusStructures:
    @pytest.mark.parametrize("name,seq1,seq2", CASES, ids=[c[0] for c in CASES])
    def test_structure_valid_and_rescores(self, name, seq1, seq2):
        res = bpmax(seq1, seq2, structure=True)
        _assert_valid(seq1, seq2, res.structure, res.score)

    def test_unpairable_structure_is_empty(self):
        res = bpmax("AAAAAA", "AAAAAA", structure=True)
        assert res.score == 0.0
        assert not res.structure.pairs1
        assert not res.structure.pairs2
        assert not res.structure.inter

    def test_known_duplex_is_all_inter(self):
        res = bpmax("GGGG", "CCCC", structure=True)
        assert res.score == 12.0
        assert sorted(res.structure.inter) == [(0, 0), (1, 1), (2, 2), (3, 3)]
        assert not res.structure.pairs1 and not res.structure.pairs2


class TestAcrossEngines:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_every_engine_yields_valid_structure(self, variant):
        for name, seq1, seq2 in CASES:
            if max(len(seq1), len(seq2)) > 16:
                continue  # keep the sweep quick; big cases covered above
            res = bpmax(seq1, seq2, variant=variant, structure=True)
            _assert_valid(seq1, seq2, res.structure, res.score)

    def test_baseline_on_small_inputs(self):
        for seq1, seq2 in [("GGGG", "CCCC"), ("GCAU", "AUGC"), ("G", "C")]:
            res = bpmax(seq1, seq2, variant="baseline", structure=True)
            _assert_valid(seq1, seq2, res.structure, res.score)


class TestFuzzedStructures:
    def test_random_pairs_rescore_exactly(self, fuzz_rng):
        for _ in range(25):
            n = int(fuzz_rng.integers(1, 15))
            m = int(fuzz_rng.integers(1, 15))
            seed = int(fuzz_rng.integers(0, 2**31))
            s1, s2 = random_pair(n, m, seed)
            res = bpmax(str(s1), str(s2), structure=True)
            _assert_valid(str(s1), str(s2), res.structure, res.score)
