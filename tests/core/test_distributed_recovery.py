"""Self-healing tests for the distributed executor: rank death, lost messages."""

import pytest

from repro.core.distributed import DistributedBPMax
from repro.core.reference import bpmax_recursive
from repro.parallel.mpi import ClusterSpec
from repro.robust.errors import RankFailure
from repro.robust.faults import FaultPlan


def _cluster(ranks):
    return ClusterSpec(ranks=ranks)


class TestRankDeath:
    def test_kill_one_of_four_recovers(self, medium_inputs):
        """Acceptance: one injected rank death, correct score, recovery
        visible in the report."""
        plan = FaultPlan(rank_deaths=[(1, 2)])  # rank 1 dies at wavefront 2
        rep = DistributedBPMax(medium_inputs, _cluster(4), faults=plan).run()
        assert rep.score == pytest.approx(bpmax_recursive(medium_inputs))
        assert rep.dead_ranks == (1,)
        # rank 1 owned row 1; windows (1,1) and (1,2) lived only in its
        # memory and had to be recomputed by the adopting survivor
        assert rep.recovered_windows == 2
        assert rep.ranks == 4

    def test_two_deaths_still_complete(self, medium_inputs):
        plan = FaultPlan(rank_deaths=[(1, 1), (3, 3)])
        rep = DistributedBPMax(medium_inputs, _cluster(4), faults=plan).run()
        assert rep.score == pytest.approx(bpmax_recursive(medium_inputs))
        assert rep.dead_ranks == (1, 3)
        assert rep.recovered_windows > 0

    def test_orphan_rows_remap_to_survivors(self, medium_inputs):
        plan = FaultPlan(rank_deaths=[(0, 1)])
        d = DistributedBPMax(medium_inputs, _cluster(2), faults=plan)
        rep = d.run()
        assert rep.score == pytest.approx(bpmax_recursive(medium_inputs))
        # every row the dead rank 0 owned now resolves to the survivor
        for i1 in range(medium_inputs.n):
            assert d.owner(i1) == 1

    def test_all_ranks_dead_raises(self, small_inputs):
        plan = FaultPlan(rank_deaths=[(0, 1), (1, 1)])
        with pytest.raises(RankFailure, match="no surviving ranks"):
            DistributedBPMax(small_inputs, _cluster(2), faults=plan).run()

    def test_death_is_deterministic(self, medium_inputs):
        def report():
            plan = FaultPlan(rank_deaths=[(1, 2)])
            return DistributedBPMax(medium_inputs, _cluster(4), faults=plan).run()

        a, b = report(), report()
        assert (a.score, a.recovered_windows, a.retries) == (
            b.score,
            b.recovered_windows,
            b.retries,
        )


class TestMessageLoss:
    def test_dropped_triangle_retried(self, medium_inputs):
        plan = FaultPlan(message_drops=[(1, 0)])  # one loss on the 1 -> 0 edge
        rep = DistributedBPMax(medium_inputs, _cluster(2), faults=plan).run()
        assert rep.score == pytest.approx(bpmax_recursive(medium_inputs))
        assert rep.retries == 1
        assert rep.redundant_bytes > 0

    def test_clean_run_reports_no_recovery(self, medium_inputs):
        rep = DistributedBPMax(medium_inputs, _cluster(2)).run()
        assert rep.retries == 0
        assert rep.recovered_windows == 0
        assert rep.redundant_bytes == 0
        assert rep.dead_ranks == ()

    def test_persistent_loss_gives_up(self, medium_inputs):
        plan = FaultPlan(message_drops=[(1, 0)] * 8)
        d = DistributedBPMax(medium_inputs, _cluster(2), faults=plan, max_retries=1)
        with pytest.raises(RankFailure, match="giving up"):
            d.run()

    def test_rate_based_drops_recovered(self, medium_inputs):
        plan = FaultPlan(seed=5, message_drop_rate=0.2)
        rep = DistributedBPMax(medium_inputs, _cluster(3), faults=plan).run()
        assert rep.score == pytest.approx(bpmax_recursive(medium_inputs))
        assert rep.redundant_bytes == rep.retries * medium_inputs.m * medium_inputs.m * 4

    def test_negative_max_retries_rejected(self, small_inputs):
        with pytest.raises(ValueError, match="max_retries"):
            DistributedBPMax(small_inputs, _cluster(2), max_retries=-1)
