"""Tests for the structure-space enumeration oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumerate import (
    EMPTY,
    Structure,
    enumerate_duplexes,
    enumerate_foldings,
    enumerate_structures,
    structure_weight,
)
from repro.core.reference import bpmax_recursive, prepare_inputs

TINY = st.text(alphabet="ACGU", min_size=1, max_size=4)


class TestStructure:
    def test_union(self):
        a = Structure(pairs1=frozenset([(0, 1)]))
        b = Structure(inter=frozenset([(2, 0)]))
        u = a.union(b)
        assert u.size == 2

    def test_empty(self):
        assert EMPTY.size == 0

    def test_weight(self):
        inp = prepare_inputs("GC", "GC")
        s = Structure(pairs1=frozenset([(0, 1)]))
        assert structure_weight(s, inp) == 3.0


class TestEnumerationAgainstBpmax:
    """The central first-principles check: the optimum over the explicit
    structure space equals the DP score."""

    @given(TINY, TINY)
    @settings(max_examples=25, deadline=None)
    def test_max_weight_equals_bpmax(self, a, b):
        inp = prepare_inputs(a, b)
        structures = enumerate_structures(inp)
        best = max(structure_weight(s, inp) for s in structures)
        assert best == pytest.approx(bpmax_recursive(inp), abs=1e-4)

    def test_empty_structure_always_present(self):
        inp = prepare_inputs("GA", "CU")
        assert EMPTY in enumerate_structures(inp)

    def test_known_duplex_space(self):
        """G vs C: only the empty structure and the single inter pair."""
        inp = prepare_inputs("G", "C")
        structures = enumerate_structures(inp)
        assert len(structures) == 2
        assert max(s.size for s in structures) == 1

    def test_no_pairing_possible(self):
        inp = prepare_inputs("AA", "GG")
        assert enumerate_structures(inp) == {EMPTY}

    @given(TINY, TINY)
    @settings(max_examples=15, deadline=None)
    def test_all_structures_valid(self, a, b):
        """Every enumerated structure satisfies the hard constraints."""
        inp = prepare_inputs(a, b)
        for s in enumerate_structures(inp):
            used1 = [i for p in s.pairs1 for i in p] + [i for i, _ in s.inter]
            used2 = [i for p in s.pairs2 for i in p] + [j for _, j in s.inter]
            assert len(used1) == len(set(used1)), "strand-1 base reused"
            assert len(used2) == len(set(used2)), "strand-2 base reused"
            inter = sorted(s.inter)
            for (a1, a2), (b1, b2) in zip(inter, inter[1:]):
                assert a1 < b1 and a2 < b2, "crossing intermolecular pairs"
            for pairs in (s.pairs1, s.pairs2):
                ordered = sorted(pairs)
                for x, y in ordered:
                    for u, v in ordered:
                        if (x, y) < (u, v):
                            assert not (x < u < y < v), "crossing intra pairs"


class TestSubspaces:
    def test_foldings_count_gc_pairable(self):
        """GC: {} and {(0,1)}."""
        inp = prepare_inputs("GC", "A")
        assert len(enumerate_foldings(inp.score1, 2)) == 2

    def test_foldings_unpairable(self):
        inp = prepare_inputs("AAAA", "G")
        assert enumerate_foldings(inp.score1, 4) == frozenset([frozenset()])

    def test_duplexes_monotone(self):
        inp = prepare_inputs("GG", "CC")
        for matching in enumerate_duplexes(inp):
            pairs = sorted(matching)
            for (a1, a2), (b1, b2) in zip(pairs, pairs[1:]):
                assert a1 < b1 and a2 < b2

    def test_duplexes_count_2x2(self):
        """GG vs CC: {}, 4 singles, (0,0)+(1,1) -> 6 matchings."""
        inp = prepare_inputs("GG", "CC")
        assert len(enumerate_duplexes(inp)) == 6

    def test_subspaces_within_joint_space(self):
        inp = prepare_inputs("GCG", "CGC")
        joint = enumerate_structures(inp)
        for fold in enumerate_foldings(inp.score1, inp.n):
            assert Structure(pairs1=fold) in joint
        for dup in enumerate_duplexes(inp):
            assert Structure(inter=dup) in joint
