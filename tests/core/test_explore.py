"""Tests for automatic schedule exploration (§IV-A automated)."""

import pytest

from repro.core.explore import dmp_candidates, explore_dmp_schedules


@pytest.fixture(scope="module")
def results():
    return explore_dmp_schedules()


class TestCandidateFamily:
    def test_twelve_candidates(self):
        """2 outer orders x 3! inner permutations."""
        assert len(dmp_candidates()) == 12

    def test_names_unique(self):
        names = [c.name for c in dmp_candidates()]
        assert len(set(names)) == 12

    def test_vectorizable_classification(self):
        """Exactly the j2-innermost third of the family vectorizes."""
        cands = dmp_candidates()
        vec = [c for c in cands if c.vectorizable]
        assert len(vec) == 4
        assert all(c.innermost == "j2" for c in vec)


class TestExploration:
    def test_every_inner_order_is_legal(self, results):
        """§IV-A: 'The inner three dimensions of the R0 can be in any
        order since they do not have any dependencies.'"""
        assert all(c.legal for c in results)
        assert all(c.violations == 0 for c in results)

    def test_papers_choice_ranks_first(self, results):
        """The published Table-I style schedule — j2 innermost — wins."""
        best = results[0]
        assert best.vectorizable
        assert best.innermost == "j2"

    def test_unvectorizable_ranked_far_below(self, results):
        best = results[0].predicted_gflops
        worst = results[-1].predicted_gflops
        assert best > 20 * worst

    def test_outer_orders_nearly_equal(self, results):
        """Fig. 13: minor difference between diagonal and bottom-up."""
        vec = [c for c in results if c.vectorizable]
        by_outer = {}
        for c in vec:
            by_outer.setdefault(c.outer, c.predicted_gflops)
        ratio = by_outer["diagonal"] / by_outer["bottomup"]
        assert 0.9 < ratio < 1.0

    def test_schedules_have_matching_ranks(self, results):
        for c in results:
            assert c.body.rank == c.f_schedule.rank == c.init.rank == 6
