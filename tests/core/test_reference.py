"""Tests for the reference BPMax implementations (oracle + baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import BaselineBPMax, bpmax_recursive, prepare_inputs
from repro.rna.scoring import ScoringModel
from repro.rna.sequence import RnaSequence, random_pair

RNA = st.text(alphabet="ACGU", min_size=1, max_size=6)


class TestPrepareInputs:
    def test_shapes(self, small_inputs):
        assert small_inputs.score1.shape == (4, 4)
        assert small_inputs.score2.shape == (5, 5)
        assert small_inputs.iscore.shape == (4, 5)
        assert small_inputs.s1.shape == (4, 4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            prepare_inputs("", "ACGU")

    def test_accepts_strings_and_sequences(self):
        a = prepare_inputs("GC", "AU")
        b = prepare_inputs(RnaSequence("GC"), RnaSequence("AU"))
        assert np.allclose(a.iscore, b.iscore)


class TestOracleKnownValues:
    def test_single_bases_pair(self):
        """Two single complementary bases: one intermolecular pair."""
        inp = prepare_inputs("G", "C")
        assert bpmax_recursive(inp) == 3.0

    def test_single_bases_no_pair(self):
        inp = prepare_inputs("A", "G")
        assert bpmax_recursive(inp) == 0.0

    def test_independent_folds_lower_bound(self):
        """F >= S1 + S2 always (the independent-fold term)."""
        inp = prepare_inputs("GGGCCC", "AAUU")
        score = bpmax_recursive(inp)
        assert score >= inp.s1[0, -1] + inp.s2[0, -1]

    def test_pure_intermolecular_duplex(self):
        """GGGG vs CCCC: no intramolecular pairs possible, 4 GC pairs."""
        inp = prepare_inputs("GGGG", "CCCC")
        assert bpmax_recursive(inp) == 12.0

    def test_hand_computed_2x2(self):
        """GC vs GC: best is the G-C pair in each strand? No -
        intramolecular G-C (3) in strand1 + same in strand2 = 6; the
        crossing-free intermolecular alternative G*C + C*G = 6 too."""
        inp = prepare_inputs("GC", "GC")
        assert bpmax_recursive(inp) == 6.0

    def test_full_table_conventions(self):
        inp = prepare_inputs("GCA", "AUG")
        score, table = bpmax_recursive(inp, full_table=True)
        # 1x1 windows equal iscore
        for i1 in range(3):
            for i2 in range(3):
                assert table[(i1, i1, i2, i2)] == inp.iscore[i1, i2]
        assert score == table[(0, 2, 0, 2)]


class TestBaseline:
    @given(RNA, RNA)
    @settings(max_examples=25, deadline=None)
    def test_matches_oracle(self, a, b):
        inp = prepare_inputs(a, b)
        assert BaselineBPMax(inp).run() == pytest.approx(bpmax_recursive(inp))

    def test_full_table_matches_oracle(self, small_inputs):
        score, table = bpmax_recursive(small_inputs, full_table=True)
        engine = BaselineBPMax(small_inputs)
        engine.run()
        for key, v in table.items():
            assert engine.table.get(*key) == pytest.approx(v)

    def test_min_loop_model(self):
        model = ScoringModel(min_loop=3)
        s1, s2 = random_pair(4, 6, 9)
        inp = prepare_inputs(s1, s2, model)
        assert BaselineBPMax(inp).run() == pytest.approx(bpmax_recursive(inp))


class TestInvariants:
    @given(RNA, RNA)
    @settings(max_examples=25, deadline=None)
    def test_score_nonnegative(self, a, b):
        assert bpmax_recursive(prepare_inputs(a, b)) >= 0

    @given(RNA, RNA)
    @settings(max_examples=20, deadline=None)
    def test_at_least_independent_folds(self, a, b):
        inp = prepare_inputs(a, b)
        assert bpmax_recursive(inp) >= inp.s1[0, -1] + inp.s2[0, -1] - 1e-5

    @given(RNA, RNA)
    @settings(max_examples=15, deadline=None)
    def test_monotone_under_extension(self, a, b):
        """Appending a base never lowers the optimum."""
        base = bpmax_recursive(prepare_inputs(a, b))
        ext = bpmax_recursive(prepare_inputs(a + "A", b))
        assert ext >= base - 1e-5

    @given(RNA, RNA)
    @settings(max_examples=15, deadline=None)
    def test_bounded_by_pair_budget(self, a, b):
        """Every base participates in at most one pair of weight <= 3."""
        score = bpmax_recursive(prepare_inputs(a, b))
        assert score <= 3 * ((len(a) + len(b)) // 2) + 1e-6

    def test_window_superadditivity(self, small_inputs):
        """F[0, n-1, 0, m-1] >= F-split combinations (R0 feasibility)."""
        score, table = bpmax_recursive(small_inputs, full_table=True)
        n, m = small_inputs.n, small_inputs.m
        for k1 in range(n - 1):
            for k2 in range(m - 1):
                combo = table[(0, k1, 0, k2)] + table[(k1 + 1, n - 1, k2 + 1, m - 1)]
                assert score >= combo - 1e-5
