"""Tests for the public convenience API."""

import pytest

from repro import ENGINES, bpmax, fold
from repro.core.api import BpmaxResult
from repro.rna.scoring import ScoringModel
from repro.rna.sequence import RnaSequence


class TestBpmax:
    def test_basic_score(self):
        result = bpmax("GCGC", "GCGC", variant="hybrid")
        assert isinstance(result, BpmaxResult)
        assert result.score > 0
        assert (result.n, result.m) == (4, 4)

    def test_all_variants_agree(self):
        scores = {
            v: bpmax("GCAU", "AUGCU", variant=v, **({} if v == "baseline" else {"tile": (2, 2, 0)})).score
            for v in ENGINES
        }
        assert len({round(s, 3) for s in scores.values()}) == 1

    def test_structure_attached(self):
        result = bpmax("GGG", "CCC", structure=True)
        assert result.structure is not None
        assert result.structure.weight(result.inputs) == pytest.approx(result.score)

    def test_structure_off_by_default(self):
        assert bpmax("GC", "GC").structure is None

    def test_accepts_rnasequence(self):
        r = bpmax(RnaSequence("GC"), RnaSequence("GC"))
        assert r.score == 6.0

    def test_custom_model(self):
        heavy_gc = ScoringModel(pair_weights={frozenset("GC"): 10.0})
        assert bpmax("G", "C", model=heavy_gc).score == 10.0

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="variant"):
            bpmax("GC", "GC", variant="warp")

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            bpmax("", "GC")

    def test_doctest_example(self):
        assert bpmax("GCGCUUCG", "CGAAGCGC").score > 0


class TestFold:
    def test_hairpin(self):
        score, db = fold("GGGCCC")
        assert score == 9.0
        assert db.count("(") == db.count(")") == 3

    def test_single_base(self):
        score, db = fold("A")
        assert score == 0.0 and db == "."

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            fold("")

    def test_dotbracket_length(self):
        _, db = fold("GCAUGCAU")
        assert len(db) == 8
