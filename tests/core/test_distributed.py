"""Tests for the distributed BPMax executor (MPI future work)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributed import DistributedBPMax
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.parallel.mpi import ClusterSpec
from repro.rna.sequence import random_pair


def _cluster(ranks):
    return ClusterSpec(ranks=ranks)


class TestCorrectness:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 5, 8])
    def test_score_matches_oracle(self, medium_inputs, ranks):
        rep = DistributedBPMax(medium_inputs, _cluster(ranks)).run()
        assert rep.score == pytest.approx(bpmax_recursive(medium_inputs))

    @given(st.integers(2, 5), st.integers(2, 6), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_property_random_inputs(self, n, m, ranks):
        s1, s2 = random_pair(n, m, n * 31 + m)
        inp = prepare_inputs(s1, s2)
        rep = DistributedBPMax(inp, _cluster(ranks)).run()
        assert rep.score == pytest.approx(bpmax_recursive(inp))

    def test_single_rank_no_messages(self, small_inputs):
        rep = DistributedBPMax(small_inputs, _cluster(1)).run()
        assert rep.messages == 0
        assert rep.bytes_sent == 0


class TestDecomposition:
    def test_owner_block_cyclic(self, small_inputs):
        d = DistributedBPMax(small_inputs, _cluster(3))
        assert [d.owner(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_messages_grow_with_ranks(self, medium_inputs):
        m2 = DistributedBPMax(medium_inputs, _cluster(2)).run().messages
        m4 = DistributedBPMax(medium_inputs, _cluster(4)).run().messages
        assert m4 >= m2

    def test_bytes_match_triangle_size(self, medium_inputs):
        d = DistributedBPMax(medium_inputs, _cluster(2))
        rep = d.run()
        m = medium_inputs.m
        # payloads are full bounding boxes of the inner matrices
        assert rep.bytes_sent == rep.messages * m * m * 4


class TestProjection:
    def test_projection_skips_numerics(self, small_inputs):
        rep = DistributedBPMax(
            small_inputs, _cluster(4), execute=False, m_effective=512
        ).run()
        assert math.isnan(rep.score)
        assert rep.makespan_s > 0

    def test_paper_scale_strong_scaling(self):
        """At 16 x 2500 the projection must show real speedup that
        saturates as the wavefront narrows (Amdahl + communication)."""
        s1, s2 = random_pair(16, 4, 9)
        inp = prepare_inputs(s1, s2)
        speedups = {}
        for ranks in (1, 2, 4, 8, 16):
            rep = DistributedBPMax(
                inp, _cluster(ranks), execute=False, m_effective=2500
            ).run()
            speedups[ranks] = rep.speedup
        assert speedups[1] == pytest.approx(1.0, rel=0.05)
        assert speedups[2] > 1.5
        assert speedups[4] > speedups[2]
        assert speedups[8] > speedups[4]
        # efficiency decays monotonically
        effs = [speedups[p] / p for p in (1, 2, 4, 8, 16)]
        assert effs == sorted(effs, reverse=True)

    def test_slow_network_hurts(self):
        s1, s2 = random_pair(12, 4, 10)
        inp = prepare_inputs(s1, s2)
        fast = ClusterSpec(ranks=4, bandwidth_bytes_per_s=12.5e9)
        slow = ClusterSpec(ranks=4, bandwidth_bytes_per_s=0.125e9)
        t_fast = DistributedBPMax(inp, fast, execute=False, m_effective=2048).run()
        t_slow = DistributedBPMax(inp, slow, execute=False, m_effective=2048).run()
        assert t_slow.makespan_s > t_fast.makespan_s

    def test_invalid_m_effective(self, small_inputs):
        with pytest.raises(ValueError, match="m_effective"):
            DistributedBPMax(small_inputs, _cluster(2), m_effective=0)
