"""Tests for the standalone double max-plus computation (eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dmp import (
    DMP_KERNELS,
    DoubleMaxPlus,
    dmp_flops,
    dmp_reference,
    random_triangles,
)
from repro.machine.counters import flops_r0


def _triu_equal(a, b, m):
    iu = np.triu_indices(m)
    av, bv = a[iu], b[iu]
    both_inf = np.isneginf(av) & np.isneginf(bv)
    return np.allclose(av[~both_inf], bv[~both_inf])


@pytest.fixture(scope="module")
def case():
    tr = random_triangles(4, 6, 0)
    return tr, dmp_reference(tr)


class TestReference:
    def test_diagonal_windows_are_inputs(self, case):
        tr, ref = case
        for i in range(4):
            assert np.array_equal(ref[(i, i)], tr[i])

    def test_single_split_window(self, case):
        """F[0,1] = T0 (x) shifted T1 by hand."""
        tr, ref = case
        m = 6
        got = ref[(0, 1)]
        for i2 in range(m):
            for j2 in range(i2, m):
                best = -np.inf
                for k2 in range(i2, j2):
                    best = max(best, tr[0][i2, k2] + tr[1][k2 + 1, j2])
                if np.isneginf(best):
                    assert np.isneginf(got[i2, j2])
                else:
                    assert got[i2, j2] == pytest.approx(best)

    def test_empty_inner_reduction_is_neg_inf(self, case):
        _, ref = case
        assert np.isneginf(ref[(0, 1)][2, 2])


class TestEngines:
    @pytest.mark.parametrize("kernel", list(DMP_KERNELS))
    @pytest.mark.parametrize("order", ["diagonal", "bottomup"])
    def test_all_configurations_match_reference(self, case, kernel, order):
        tr, ref = case
        eng = DoubleMaxPlus(
            [t.copy() for t in tr], kernel=kernel, order=order, tile=(2, 3, 0)
        )
        got = eng.run()
        for key, mat in ref.items():
            assert _triu_equal(mat, got[key], 6), key

    @given(st.integers(2, 5), st.integers(2, 6), st.integers(0, 99))
    @settings(max_examples=15, deadline=None)
    def test_property_random_sizes(self, n, m, seed):
        tr = random_triangles(n, m, seed)
        ref = dmp_reference(tr)
        eng = DoubleMaxPlus([t.copy() for t in tr], kernel="vectorized")
        got = eng.run()
        for key, mat in ref.items():
            assert _triu_equal(mat, got[key], m), key

    def test_result_requires_run(self, case):
        tr, _ = case
        eng = DoubleMaxPlus([t.copy() for t in tr])
        with pytest.raises(RuntimeError, match="run"):
            eng.result()

    def test_result_after_run(self, case):
        tr, ref = case
        eng = DoubleMaxPlus([t.copy() for t in tr])
        eng.run()
        assert _triu_equal(eng.result(), ref[(0, 3)], 6)

    def test_monotone_in_k1(self):
        """More splits can only raise values (max over more terms)."""
        tr = random_triangles(4, 5, 3)
        f = dmp_reference(tr)
        iu = np.triu_indices(5, k=1)
        # F[0,2] includes the split options of F[0,1] extended; compare a
        # 3-window chain value against a 2-window chain lower bound
        chain2 = f[(0, 1)]
        chain3 = f[(0, 2)]
        # not pointwise comparable in general, but max over the triangle
        # of the longer chain must reach at least some finite value
        assert np.isfinite(chain3[iu]).any() or np.isneginf(chain2[iu]).all()


class TestValidation:
    def test_flops_delegates_to_counters(self):
        assert dmp_flops(5, 7) == flops_r0(5, 7)

    def test_unknown_kernel(self, case):
        tr, _ = case
        with pytest.raises(ValueError, match="kernel"):
            DoubleMaxPlus(tr, kernel="magic")

    def test_unknown_order(self, case):
        tr, _ = case
        with pytest.raises(ValueError, match="order"):
            DoubleMaxPlus(tr, order="spiral")

    def test_empty_triangles(self):
        with pytest.raises(ValueError, match="at least one"):
            DoubleMaxPlus([])

    def test_mismatched_shapes(self):
        tr = [np.zeros((3, 3), dtype=np.float32), np.zeros((4, 4), dtype=np.float32)]
        with pytest.raises(ValueError, match="share"):
            DoubleMaxPlus(tr)

    def test_random_triangles_validation(self):
        with pytest.raises(ValueError):
            random_triangles(0, 3)

    def test_random_triangles_lower_is_neg_inf(self):
        (t,) = random_triangles(1, 4, 0)
        assert np.isneginf(t[2, 0])
        assert np.isfinite(t[0, 2])
