"""Tests for the mini-Alpha BPMax model (the methodology reproduction)."""

import numpy as np
import pytest

from repro.core.alpha_model import bpmax_system, dmp_system, nussinov_system
from repro.core.dmp import dmp_reference, random_triangles
from repro.core.reference import bpmax_recursive, prepare_inputs
from repro.polyhedral.alpha import Interpreter, normalize, parse_system
from repro.rna.nussinov import nussinov
from repro.rna.sequence import random_pair


class TestBpmaxSystem:
    def test_validates(self):
        bpmax_system(include_s=True).validate()
        bpmax_system(include_s=False).validate()

    def test_variable_inventory(self):
        sys_ = bpmax_system(include_s=False)
        names = {d.name for d in sys_.inputs}
        assert {"S1", "S2", "score1", "score2", "iscore"} <= names
        assert {eq.var for eq in sys_.equations} == {"R0", "R1", "R2", "R3", "R4", "F"}

    def test_interpreter_matches_oracle(self):
        s1, s2 = random_pair(3, 4, 5)
        inp = prepare_inputs(s1, s2)
        sys_ = bpmax_system(include_s=True)
        it = Interpreter(
            sys_,
            {"N": inp.n, "M": inp.m},
            {"score1": inp.score1, "score2": inp.score2, "iscore": inp.iscore},
        )
        score, table = bpmax_recursive(inp, full_table=True)
        for key, v in table.items():
            assert it.value("F", *key) == pytest.approx(v), key

    def test_s_tables_match_nussinov(self):
        s1, s2 = random_pair(4, 5, 8)
        inp = prepare_inputs(s1, s2)
        it = Interpreter(
            bpmax_system(include_s=True),
            {"N": inp.n, "M": inp.m},
            {"score1": inp.score1, "score2": inp.score2, "iscore": inp.iscore},
        )
        expected = nussinov(s2)
        for i in range(inp.m):
            for j in range(i, inp.m):
                assert it.value("S2", i, j) == pytest.approx(expected[i, j])

    def test_scheduled_variant_takes_s_as_input(self):
        sys_ = bpmax_system(include_s=False)
        s1, s2 = random_pair(3, 3, 2)
        inp = prepare_inputs(s1, s2)
        it = Interpreter(
            sys_,
            {"N": 3, "M": 3},
            {
                "score1": inp.score1,
                "score2": inp.score2,
                "iscore": inp.iscore,
                "S1": inp.s1,
                "S2": inp.s2,
            },
        )
        assert it.value("F", 0, 2, 0, 2) == pytest.approx(bpmax_recursive(inp))

    def test_normalization_preserves_semantics(self):
        s1, s2 = random_pair(3, 3, 4)
        inp = prepare_inputs(s1, s2)
        sys_ = bpmax_system(include_s=True)
        norm = normalize(sys_)
        inputs = {"score1": inp.score1, "score2": inp.score2, "iscore": inp.iscore}
        a = Interpreter(sys_, {"N": 3, "M": 3}, inputs).value("F", 0, 2, 0, 2)
        b = Interpreter(norm, {"N": 3, "M": 3}, inputs).value("F", 0, 2, 0, 2)
        assert a == pytest.approx(b)

    def test_reduction_count_matches_paper(self):
        """BPMax has exactly five reductions (paper §IV-B)."""
        from repro.polyhedral.alpha.ast import Reduce

        sys_ = bpmax_system(include_s=False)
        reductions = [eq for eq in sys_.equations if isinstance(eq.body, Reduce)]
        assert len(reductions) == 5


class TestDmpSystem:
    def test_matches_dmp_reference(self):
        tr = random_triangles(3, 4, 6)
        ref = dmp_reference(tr)
        it = Interpreter(dmp_system(), {"N": 3, "M": 4}, {"T": np.stack(tr)})
        for (i1, j1), mat in ref.items():
            for i2 in range(4):
                for j2 in range(i2, 4):
                    got = it.value("F", i1, j1, i2, j2)
                    if np.isneginf(mat[i2, j2]):
                        assert np.isneginf(got)
                    else:
                        assert got == pytest.approx(float(mat[i2, j2]))


class TestNussinovSystem:
    def test_matches_fast_implementation(self):
        from repro.rna.scoring import DEFAULT_MODEL

        s1, _ = random_pair(6, 2, 13)
        score = DEFAULT_MODEL.score_table(s1.codes)
        it = Interpreter(nussinov_system(), {"N": 6}, {"score": score})
        expected = nussinov(s1)
        for i in range(6):
            for j in range(i, 6):
                assert it.value("S", i, j) == pytest.approx(expected[i, j])
