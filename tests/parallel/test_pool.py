"""Tests for the real thread-pool runner."""

import threading
import time

import numpy as np
import pytest

from repro.parallel.pool import ParallelRunner
from repro.robust.errors import EngineFailure
from repro.robust.faults import FaultPlan


class TestParallelRunner:
    def test_map_ordered(self):
        with ParallelRunner(3) as pool:
            assert pool.map(lambda x: x * x, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_single_thread_path(self):
        with ParallelRunner(1) as pool:
            assert pool.map(lambda x: x + 1, [0, 1]) == [1, 2]

    def test_parallel_for_covers_range(self):
        hits = np.zeros(20, dtype=int)
        lock = threading.Lock()

        def body(i):
            with lock:
                hits[i] += 1

        with ParallelRunner(4) as pool:
            pool.parallel_for(body, 20)
        assert (hits == 1).all()

    def test_parallel_for_zero(self):
        with ParallelRunner(2) as pool:
            pool.parallel_for(lambda i: None, 0)

    def test_negative_n_rejected(self):
        with ParallelRunner(2) as pool:
            with pytest.raises(ValueError):
                pool.parallel_for(lambda i: None, -1)

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError, match="threads"):
            ParallelRunner(0)

    def test_close_idempotent(self):
        pool = ParallelRunner(2)
        pool.close()
        pool.close()

    def test_numpy_work_in_threads(self):
        """Row-parallel max-plus update via the pool matches serial."""
        rng = np.random.default_rng(0)
        a = rng.random((8, 16)).astype(np.float32)
        b = rng.random(16).astype(np.float32)
        serial = np.maximum(a, b)
        out = a.copy()

        def row(i):
            np.maximum(out[i], b, out=out[i])

        with ParallelRunner(4) as pool:
            pool.parallel_for(row, 8)
        assert np.allclose(out, serial)


class TestFailureSemantics:
    def test_map_after_close_raises(self):
        pool = ParallelRunner(2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(lambda x: x, [1, 2])

    def test_map_after_close_raises_inline_path(self):
        pool = ParallelRunner(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(lambda x: x, [1])

    def test_worker_exception_cancels_queued_work(self):
        executed = []
        lock = threading.Lock()

        def task(i):
            if i == 0:
                time.sleep(0.02)
                raise ValueError("boom")
            time.sleep(0.002)
            with lock:
                executed.append(i)

        with ParallelRunner(2) as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.map(task, range(200))
        # the failure cancelled the still-queued tail of the map
        assert len(executed) < 199

    def test_first_error_in_task_order_wins(self):
        def task(i):
            raise KeyError(i)

        with ParallelRunner(3) as pool:
            with pytest.raises(KeyError) as exc:
                pool.map(task, range(10))
        assert exc.value.args == (0,)

    def test_injected_worker_crash(self):
        plan = FaultPlan(worker_crashes=[3])
        with ParallelRunner(2, faults=plan) as pool:
            with pytest.raises(EngineFailure, match="task 3"):
                pool.map(lambda x: x, range(8))
        # crash-once: a fresh map over the same plan completes
        with ParallelRunner(2, faults=plan) as pool:
            assert pool.map(lambda x: x, range(8)) == list(range(8))
