"""Tests for middle serialization of OSP-like reductions (§IV-C-a)."""

import networkx as nx
import pytest

from repro.parallel.osp import (
    osp_chain_graph,
    osp_middle_serialized_graph,
    speedup_comparison,
)
from repro.parallel.wavefront import simulate_dag


class TestChainGraph:
    def test_is_a_chain(self):
        g = osp_chain_graph(10)
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 9
        assert nx.dag_longest_path_length(g) == 9

    def test_one_thread_active(self):
        """The paper's complaint: 'only one thread stays active'."""
        res = simulate_dag(osp_chain_graph(32), threads=6)
        assert res.utilization == pytest.approx(1 / 6, abs=0.01)
        assert res.speedup == pytest.approx(1.0)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            osp_chain_graph(0)


class TestMiddleSerialized:
    def test_is_acyclic(self):
        g = osp_middle_serialized_graph(64, 8)
        assert nx.is_directed_acyclic_graph(g)

    def test_accumulations_within_round_independent(self):
        """acc tasks of different destination blocks share no edges."""
        g = osp_middle_serialized_graph(32, 4)
        a = ("acc", 3, 0)
        b = ("acc", 4, 0)
        assert not nx.has_path(g, a, b) and not nx.has_path(g, b, a)

    def test_mid_waits_for_all_accumulations(self):
        g = osp_middle_serialized_graph(32, 4)
        preds = set(g.predecessors(("mid", 5)))
        assert preds == {("acc", 5, s) for s in range(5)}

    def test_invalid_block(self):
        with pytest.raises(ValueError, match="block"):
            osp_middle_serialized_graph(8, 0)


class TestRecoveredParallelism:
    def test_utilization_recovers(self):
        """Middle serialization lifts utilization from ~1/P toward 1."""
        stats = speedup_comparison(m=256, block=16, threads=6)
        assert stats["chain_utilization"] < 0.2
        assert stats["ms_utilization"] > 0.5

    def test_parallel_speedup_over_chain_grows_with_width(self):
        narrow = speedup_comparison(m=64, block=8, threads=6)
        wide = speedup_comparison(m=512, block=16, threads=6)
        assert wide["ms_utilization"] >= narrow["ms_utilization"]

    def test_single_thread_no_benefit(self):
        """With one thread the transformation only adds work."""
        stats = speedup_comparison(m=128, block=8, threads=1)
        assert stats["ms_makespan"] >= stats["chain_makespan"]
