"""Tests for the OMP-style loop schedulers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.omp import (
    SCHEDULERS,
    Chunk,
    dynamic_schedule,
    guided_schedule,
    simulate_makespan,
    static_schedule,
)


def triangle_cost(n):
    """BPMax-like shrinking-wavefront costs: task i costs n - i."""
    return lambda i: float(n - i)


def _covers(chunks, n):
    seen = []
    for c in chunks:
        seen.extend(c.indices)
    return sorted(seen) == list(range(n))


class TestChunkCoverage:
    @given(st.integers(0, 60), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_static_partitions_exactly(self, n, p):
        assert _covers(static_schedule(n, p), n)

    @given(st.integers(0, 60), st.integers(1, 8), st.integers(1, 7))
    @settings(max_examples=50, deadline=None)
    def test_static_with_chunk_partitions(self, n, p, chunk):
        assert _covers(static_schedule(n, p, chunk), n)

    @given(st.integers(0, 60), st.integers(1, 8), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_dynamic_partitions(self, n, p, chunk):
        assert _covers(dynamic_schedule(n, p, chunk=chunk), n)

    @given(st.integers(0, 60), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_guided_partitions(self, n, p):
        assert _covers(guided_schedule(n, p), n)

    @given(st.integers(0, 40), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_threads_in_range(self, n, p):
        for name, sched in SCHEDULERS.items():
            for c in sched(n, p):
                assert 0 <= c.thread < p, name


class TestGuidedShape:
    def test_chunks_shrink(self):
        sizes = [c.stop - c.start for c in guided_schedule(1000, 4)]
        assert sizes[0] > sizes[-1]
        assert sizes[0] == 1000 // 8


class TestMakespan:
    def test_uniform_costs_balanced(self):
        chunks = static_schedule(100, 4)
        ms = simulate_makespan(chunks, lambda i: 1.0, 4)
        assert ms == pytest.approx(25.0)

    def test_dynamic_beats_static_on_imbalance(self):
        """The paper's §IV-C-d finding: dynamic > static for BPMax's
        shrinking triangles."""
        n, p = 64, 6
        cost = triangle_cost(n)
        ms_static = simulate_makespan(static_schedule(n, p), cost, p)
        ms_dynamic = simulate_makespan(dynamic_schedule(n, p, cost), cost, p)
        assert ms_dynamic < ms_static

    def test_dynamic_close_to_lower_bound(self):
        n, p = 64, 6
        cost = triangle_cost(n)
        total = sum(cost(i) for i in range(n))
        ms = simulate_makespan(dynamic_schedule(n, p, cost), cost, p)
        assert ms <= total / p * 1.25

    def test_guided_between(self):
        n, p = 64, 6
        cost = triangle_cost(n)
        ms_g = simulate_makespan(guided_schedule(n, p, cost), cost, p)
        ms_s = simulate_makespan(static_schedule(n, p), cost, p)
        assert ms_g <= ms_s

    def test_invalid_thread_assignment_caught(self):
        with pytest.raises(ValueError, match="invalid thread"):
            simulate_makespan([Chunk(0, 2, 5)], lambda i: 1.0, 2)


class TestValidation:
    def test_empty_chunk_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Chunk(3, 3, 0)

    def test_zero_threads_rejected(self):
        for sched in SCHEDULERS.values():
            with pytest.raises(ValueError):
                sched(10, 0)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            static_schedule(-1, 2)

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            static_schedule(10, 2, 0)
        with pytest.raises(ValueError):
            dynamic_schedule(10, 2, chunk=-1)

    def test_short_cost_sequence_rejected(self):
        with pytest.raises(ValueError, match="entries"):
            dynamic_schedule(10, 2, cost=[1.0, 2.0])
