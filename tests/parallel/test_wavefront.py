"""Tests for the DAG list-scheduling simulator."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.wavefront import (
    simulate_dag,
    triangle_task_graph,
    wavefront_levels,
)


def chain(n):
    g = nx.DiGraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def independent(n):
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    return g


class TestSimulator:
    def test_chain_has_no_parallelism(self):
        res = simulate_dag(chain(10), threads=4)
        assert res.makespan == pytest.approx(10.0)
        assert res.speedup == pytest.approx(1.0)

    def test_independent_tasks_scale(self):
        res = simulate_dag(independent(12), threads=4)
        assert res.makespan == pytest.approx(3.0)
        assert res.speedup == pytest.approx(4.0)

    def test_respects_dependences(self):
        g = nx.DiGraph([(0, 2), (1, 2)])
        res = simulate_dag(g, threads=2)
        assert res.start_times[2] >= max(res.finish_times[0], res.finish_times[1])

    @given(st.integers(2, 20), st.integers(1, 6), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_random_dags_respect_order(self, n, p, seed):
        g = nx.gnp_random_graph(n, 0.3, seed=seed, directed=True)
        dag = nx.DiGraph((u, v) for u, v in g.edges if u < v)
        dag.add_nodes_from(range(n))
        res = simulate_dag(dag, threads=p)
        for u, v in dag.edges:
            assert res.start_times[v] >= res.finish_times[u] - 1e-9

    @given(st.integers(1, 15), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, n, p):
        res = simulate_dag(independent(n), threads=p)
        # classic list-scheduling bounds
        assert res.makespan >= n / p - 1e-9
        assert res.makespan <= (n / p) + 1 + 1e-9

    def test_costs_mapping(self):
        g = independent(3)
        res = simulate_dag(g, threads=1, cost={0: 5.0, 1: 1.0, 2: 2.0})
        assert res.makespan == pytest.approx(8.0)

    def test_cyclic_rejected(self):
        g = nx.DiGraph([(0, 1), (1, 0)])
        with pytest.raises(ValueError, match="acyclic"):
            simulate_dag(g, threads=1)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            simulate_dag(independent(1), threads=1, cost={0: -1.0})

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError, match="threads"):
            simulate_dag(independent(1), threads=0)


class TestTriangleGraph:
    def test_dependence_structure(self):
        """Triangle (i1, j1) depends on west and south (paper Fig. 4)."""
        g = triangle_task_graph(4)
        assert ((0, 1), (0, 2)) in g.edges  # west
        assert ((1, 2), (0, 2)) in g.edges  # south

    def test_node_count(self):
        assert triangle_task_graph(5).number_of_nodes() == 15

    def test_wavefront_levels_are_antidiagonals(self):
        g = triangle_task_graph(4)
        levels = wavefront_levels(g)
        assert sorted(levels[0]) == [(0, 0), (1, 1), (2, 2), (3, 3)]
        assert len(levels) == 4

    def test_row_granularity_has_more_tasks(self):
        coarse = triangle_task_graph(4, "triangle")
        fine = triangle_task_graph(4, "row")
        assert fine.number_of_nodes() == 4 * coarse.number_of_nodes()

    def test_fine_grain_speedup_advantage(self):
        """Row-level tasks expose more parallelism on the same DAG shape."""
        p = 6
        coarse = simulate_dag(triangle_task_graph(8, "triangle"), p)
        fine = simulate_dag(triangle_task_graph(8, "row"), p, cost=lambda t: 0.25)
        assert fine.utilization >= coarse.utilization

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            triangle_task_graph(0)
        with pytest.raises(ValueError, match="granularity"):
            triangle_task_graph(3, "block")
