"""Tests for the simulated message-passing cluster."""

import numpy as np
import pytest

from repro.parallel.mpi import ClusterSpec, CommStats, SimComm


@pytest.fixture
def comm():
    return SimComm(ClusterSpec(ranks=4, rank_flops=1e9, latency_s=1e-6,
                               bandwidth_bytes_per_s=1e9))


class TestClusterSpec:
    def test_transfer_time_alpha_beta(self):
        spec = ClusterSpec(ranks=2, latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert spec.transfer_time(0) == pytest.approx(1e-6)
        assert spec.transfer_time(10**9) == pytest.approx(1 + 1e-6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ClusterSpec(ranks=0)
        with pytest.raises(ValueError):
            ClusterSpec(ranks=2, latency_s=0)


class TestPointToPoint:
    def test_payload_delivered(self, comm):
        data = np.arange(10, dtype=np.float32)
        comm.send(data, source=0, dest=1)
        got = comm.recv(source=0, dest=1)
        assert np.array_equal(got, data)

    def test_receiver_waits_for_sender(self, comm):
        comm.compute(0, seconds=5.0)
        comm.send(np.zeros(1), source=0, dest=1)
        comm.recv(source=0, dest=1)
        assert comm.clock[1] >= 5.0

    def test_fast_receiver_not_delayed_backwards(self, comm):
        comm.compute(1, seconds=9.0)
        comm.send(np.zeros(1), source=0, dest=1)
        comm.recv(source=0, dest=1)
        assert comm.clock[1] == pytest.approx(9.0)

    def test_fifo_ordering_between_pair(self, comm):
        comm.send("a", source=0, dest=1)
        comm.send("b", source=0, dest=1)
        assert comm.recv(source=0, dest=1) == "a"
        assert comm.recv(source=0, dest=1) == "b"

    def test_self_send_rejected(self, comm):
        with pytest.raises(ValueError, match="itself"):
            comm.send(1, source=2, dest=2)

    def test_recv_before_send_errors(self, comm):
        with pytest.raises(RuntimeError, match="before send"):
            comm.recv(source=0, dest=1)

    def test_stats_accumulate(self, comm):
        comm.send(np.zeros(100, dtype=np.float32), source=0, dest=1)
        comm.recv(source=0, dest=1)
        assert comm.stats.messages == 1
        assert comm.stats.bytes_sent == 400

    def test_bad_rank_rejected(self, comm):
        with pytest.raises(ValueError, match="out of range"):
            comm.compute(9)


class TestCollectives:
    def test_barrier_synchronizes(self, comm):
        comm.compute(2, seconds=3.0)
        comm.barrier()
        assert all(c == comm.clock[0] for c in comm.clock)
        assert comm.clock[0] >= 3.0

    def test_bcast_advances_everyone(self, comm):
        payload = comm.bcast(np.zeros(1000, dtype=np.float64), root=0)
        assert payload.shape == (1000,)
        assert min(comm.clock) > 0

    def test_allgather_returns_all(self, comm):
        out = comm.allgather([10, 20, 30, 40])
        assert out == [10, 20, 30, 40]
        assert comm.stats.collectives == 1

    def test_allgather_arity_checked(self, comm):
        with pytest.raises(ValueError, match="contributions"):
            comm.allgather([1, 2])


class TestCompute:
    def test_flops_advance_clock(self, comm):
        comm.compute(0, flops=2e9)
        assert comm.clock[0] == pytest.approx(2.0)

    def test_negative_work_rejected(self, comm):
        with pytest.raises(ValueError):
            comm.compute(0, flops=-1)

    def test_makespan(self, comm):
        comm.compute(3, seconds=7.0)
        assert comm.makespan == pytest.approx(7.0)
