"""Unit tests for the serving request/result objects and JSONL parsing."""

from __future__ import annotations

import json

import pytest

from repro.robust.errors import BpmaxError
from repro.rna.scoring import DEFAULT_MODEL, ScoringModel
from repro.serve.request import (
    ServeResult,
    SubmitRequest,
    batch_key,
    cache_key,
    parse_request_line,
    request_from_dict,
    scoring_fingerprint,
)


class TestScoringFingerprint:
    def test_stable_across_calls(self):
        assert scoring_fingerprint(DEFAULT_MODEL) == scoring_fingerprint(DEFAULT_MODEL)

    def test_insertion_order_independent(self):
        a = ScoringModel(
            pair_weights={frozenset("GC"): 3.0, frozenset("AU"): 2.0}
        )
        b = ScoringModel(
            pair_weights={frozenset("AU"): 2.0, frozenset("GC"): 3.0}
        )
        assert scoring_fingerprint(a) == scoring_fingerprint(b)

    def test_different_weights_differ(self):
        tweaked = ScoringModel(pair_weights={frozenset("GC"): 4.0})
        assert scoring_fingerprint(tweaked) != scoring_fingerprint(DEFAULT_MODEL)

    def test_format(self):
        fp = scoring_fingerprint(DEFAULT_MODEL)
        assert len(fp) == 12
        int(fp, 16)  # pure hex


class TestSubmitRequestValidation:
    def test_defaults(self):
        r = SubmitRequest("GGGG", "CCCC")
        assert r.variant == "hybrid-tiled"
        assert r.backend is None and not r.structure
        assert r.retries == 0 and r.fallback == () and r.deadline_s is None

    def test_unknown_variant_rejected(self):
        with pytest.raises(BpmaxError, match="unknown variant"):
            SubmitRequest("G", "C", variant="warp-drive")

    def test_unknown_fallback_rejected(self):
        with pytest.raises(BpmaxError, match="unknown fallback"):
            SubmitRequest("G", "C", fallback=("warp-drive",))

    def test_negative_retries_rejected(self):
        with pytest.raises(BpmaxError, match="retries"):
            SubmitRequest("G", "C", retries=-1)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(BpmaxError, match="deadline"):
            SubmitRequest("G", "C", deadline_s=0.0)


class TestKeys:
    def test_cache_key_normalizes_sequences(self):
        a = cache_key(SubmitRequest("gcau", "AUGC"))
        b = cache_key(SubmitRequest("GCAU", "augc"))
        assert a == b

    def test_cache_key_normalizes_dna(self):
        assert cache_key(SubmitRequest("GCTT", "AAGC")) == cache_key(
            SubmitRequest("GCUU", "AAGC")
        )

    def test_cache_key_ignores_variant(self):
        # the engine-equivalence contract makes the answer variant-free
        a = cache_key(SubmitRequest("GGGG", "CCCC", variant="coarse"))
        b = cache_key(SubmitRequest("GGGG", "CCCC", variant="batched"))
        assert a == b

    def test_cache_key_includes_backend(self):
        a = cache_key(SubmitRequest("GGGG", "CCCC"))
        b = cache_key(SubmitRequest("GGGG", "CCCC", backend="numpy"))
        assert a != b

    def test_batch_key_groups_by_shape_and_variant(self):
        k1 = batch_key(SubmitRequest("GGGG", "CCCC"))
        k2 = batch_key(SubmitRequest("AUAU", "UAUA"))  # same 4x4 shape
        k3 = batch_key(SubmitRequest("GGGGG", "CCCC"))  # 5x4
        k4 = batch_key(SubmitRequest("GGGG", "CCCC", variant="coarse"))
        assert k1 == k2
        assert k1 != k3
        assert k1 != k4

    def test_invalid_sequence_raises(self):
        with pytest.raises(BpmaxError):
            cache_key(SubmitRequest("GXG", "CCC"))


class TestServeResult:
    def test_ok_property(self):
        assert ServeResult("a", "G", "C", score=3.0).ok
        assert not ServeResult("a", "G", "C", error="boom").ok

    def test_json_round_trip(self):
        r = ServeResult(
            "a", "GGGG", "CCCC", score=12.0, variant="hybrid-tiled",
            cached=True, batch=7, wall_s=0.0012345678,
        )
        data = json.loads(r.to_json())
        assert data["id"] == "a" and data["ok"] is True
        assert data["score"] == 12.0 and data["cached"] is True
        assert data["batch"] == 7
        assert data["wall_s"] == round(0.0012345678, 6)

    def test_error_result_serializes(self):
        r = ServeResult("b", "", "C", error="empty", error_type="InvalidSequenceError")
        data = json.loads(r.to_json())
        assert data["ok"] is False
        assert data["score"] is None
        assert data["error_type"] == "InvalidSequenceError"


class TestRequestFromDict:
    def test_minimal(self):
        r = request_from_dict({"seq1": "G", "seq2": "C"})
        assert r.seq1 == "G" and r.variant == "hybrid-tiled"

    def test_full(self):
        r = request_from_dict(
            {
                "id": "x",
                "seq1": "GGGG",
                "seq2": "CCCC",
                "variant": "batched",
                "backend": "numpy",
                "structure": True,
                "deadline": 2,
                "retries": 1,
                "fallback": ["hybrid", "coarse"],
            }
        )
        assert r.id == "x" and r.variant == "batched" and r.backend == "numpy"
        assert r.structure and r.deadline_s == 2.0 and r.retries == 1
        assert r.fallback == ("hybrid", "coarse")

    def test_fallback_comma_string(self):
        r = request_from_dict({"seq1": "G", "seq2": "C", "fallback": "hybrid, coarse"})
        assert r.fallback == ("hybrid", "coarse")

    def test_unknown_key_rejected(self):
        with pytest.raises(BpmaxError, match="unknown key"):
            request_from_dict({"seq1": "G", "seq2": "C", "sequence3": "A"})

    def test_missing_required_key(self):
        with pytest.raises(BpmaxError, match="seq2"):
            request_from_dict({"seq1": "G"})

    def test_non_string_sequence_rejected(self):
        with pytest.raises(BpmaxError, match="must be a string"):
            request_from_dict({"seq1": "G", "seq2": 42})

    def test_non_numeric_deadline_rejected(self):
        with pytest.raises(BpmaxError, match="deadline"):
            request_from_dict({"seq1": "G", "seq2": "C", "deadline": "soon"})


class TestParseRequestLine:
    def test_blank_and_comment_lines_skip(self):
        assert parse_request_line("") is None
        assert parse_request_line("   \n") is None
        assert parse_request_line("# a comment") is None

    def test_parses_and_autonames(self):
        r = parse_request_line('{"seq1": "G", "seq2": "C"}', lineno=3)
        assert r is not None and r.id == "line3"

    def test_explicit_id_kept(self):
        r = parse_request_line('{"seq1": "G", "seq2": "C", "id": "mine"}', lineno=3)
        assert r.id == "mine"

    def test_invalid_json_names_line(self):
        with pytest.raises(BpmaxError, match="line 7"):
            parse_request_line("{not json", lineno=7)

    def test_array_line_rejected(self):
        with pytest.raises(BpmaxError, match="JSON object"):
            parse_request_line('["G", "C"]', lineno=1)
