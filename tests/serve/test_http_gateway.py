"""End-to-end harness for the HTTP gateway over the sharded tier.

Boots the real server on an ephemeral port and drives it over real
sockets (marked ``http``; deselect with ``-m 'not http'``):

* **scenario replay** — every stress scenario named by the acceptance
  criteria (bursty, deadline-storm, poisoned, worker-kill, overload-2x)
  replayed with paced arrivals through ``POST /v1/fold``; asserts zero
  hung connections, every shed/failure a structured JSON envelope with
  the correct status, and accepted scores bit-identical to in-process
  answers (plus a log-sum-exp replay within 1e-9);
* **golden corpus over HTTP** — manifest-v2 cases round-tripped through
  ``/v1/fold`` under both semirings against their pins;
* **worker death mid-``/v1/batch``** — the fires-once kill sites of the
  worker-kill scenario must surface as structured ``WorkerFailure``
  stream lines, never a truncated stream or hung connection (regression
  for the future-resolution race fixed alongside this suite — see
  test_resolution_order.py for the scheduler-level half);
* **streaming semantics** — lines flush per-resolved-future, and the
  ``max_inflight`` window bounds per-connection in-flight work;
* **retry convergence** — the retry-aware client converges on the
  overload-2x scenario without a single unstructured failure;
* **CLI lifecycle** — ``bpmax serve --http`` in a subprocess serves
  ``bpmax submit --url`` and drains cleanly on SIGTERM.
"""

from __future__ import annotations

import http.client
import json
import math
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path

import pytest

from repro.core.api import bpmax
from repro.robust.errors import BpmaxError
from repro.serve import (
    BatchScheduler,
    GatewayClient,
    GatewayStatusError,
    HttpGateway,
    ServeResult,
    ShardScheduler,
)
from repro.serve.request import request_wire_dict
from repro.serve.scenarios import default_seed, generate, get_scenario

pytestmark = pytest.mark.http

# generous heartbeat bounds so loaded CI machines never misdiagnose a
# healthy worker (same convention as test_shard.py)
HB_TIMEOUT = 20.0

#: error codes a request may legitimately fail with over HTTP: the
#: structured serving errors plus the gateway's own protocol codes
STRUCTURED_CODES = {
    "AdmissionRejected",
    "DeadlineExceeded",
    "RequestCancelled",
    "WorkerFailure",
    "InvalidSequenceError",
    "EngineFailure",
    "ServerDraining",
    "GatewayTimeout",
}

LOGSUMEXP_TOL = 1e-9


def _expected_scores(timed, semiring: str = "max-plus") -> dict:
    """In-process golden answers for every servable pair."""
    expected: dict[tuple[str, str], float] = {}
    for t in timed:
        pair = (t.request.seq1, t.request.seq2)
        if pair not in expected:
            try:
                expected[pair] = bpmax(*pair, semiring=semiring).score
            except BpmaxError:
                pass  # poisoned; must come back as a structured error
    return expected


def _replay_over_http(
    gateway: HttpGateway,
    timed,
    expected: dict,
    semiring: str = "max-plus",
    max_retries: int = 0,
    join_timeout_s: float = 120.0,
):
    """Replay paced arrivals through POST /v1/fold, one thread each.

    Returns ``(ok_results, error_envelopes)`` after asserting the
    no-hung-connections and structured-error halves of the contract.
    """
    outcomes: list[tuple[object, dict | GatewayStatusError]] = []
    lock = threading.Lock()
    t0 = time.perf_counter()

    def one(t):
        client = GatewayClient(gateway.url(), timeout_s=60.0,
                               max_retries=max_retries)
        delay = t.at_s - (time.perf_counter() - t0)
        if delay > 0:
            time.sleep(delay)
        try:
            result = client.fold(request_wire_dict(t.request))
        except GatewayStatusError as exc:
            result = exc
        with lock:
            outcomes.append((t.request, result))

    threads = [
        threading.Thread(target=one, args=(t,), daemon=True) for t in timed
    ]
    for th in threads:
        th.start()
    deadline = time.monotonic() + join_timeout_s
    for th in threads:
        th.join(timeout=max(0.1, deadline - time.monotonic()))
    hung = sum(1 for th in threads if th.is_alive())
    assert hung == 0, f"{hung} HTTP connections never completed"
    assert len(outcomes) == len(timed)

    ok, errors = [], []
    for req, result in outcomes:
        if isinstance(result, GatewayStatusError):
            # every failure is a structured envelope with a correct status
            assert result.envelope, f"{req.id}: no JSON envelope ({result})"
            err = result.envelope["error"]
            assert err["code"] in STRUCTURED_CODES, (req.id, err)
            assert result.status == err["status"]
            assert result.status in (400, 429, 500, 503, 504), (req.id, err)
            if result.status in (429, 503):
                assert isinstance(err.get("retry_after_s"), (int, float))
                assert math.isfinite(err["retry_after_s"])
            errors.append((req, result))
        else:
            assert result["ok"] is True, (req.id, result)
            want = expected.get((req.seq1, req.seq2))
            assert want is not None, f"{req.id}: accepted a poisoned pair"
            if semiring == "max-plus":
                assert result["score"] == want, (req.id, result["score"], want)
            else:
                assert result["score"] == pytest.approx(
                    want, abs=LOGSUMEXP_TOL, rel=LOGSUMEXP_TOL
                )
            ok.append((req, result))
    return ok, errors


# ---------------------------------------------------------------------------
# scenario replay over real sockets


@pytest.fixture(scope="module")
def shard_gateway():
    """One fault-free 2-shard tier shared by the fault-free replays."""
    with ShardScheduler(
        shards=2, queue_limit=64, heartbeat_timeout_s=HB_TIMEOUT
    ) as sched:
        with HttpGateway(sched) as gw:
            yield gw


@pytest.mark.parametrize("name", ["bursty", "deadline-storm", "poisoned"])
def test_scenario_replay_over_http(shard_gateway, name):
    timed = generate(get_scenario(name), seed=default_seed())
    expected = _expected_scores(timed)
    ok, errors = _replay_over_http(shard_gateway, timed, expected)
    assert len(ok) + len(errors) == len(timed)
    if name == "poisoned":
        poisoned = [e for _req, e in errors if e.code == "InvalidSequenceError"]
        assert poisoned, "no poisoned request surfaced its 400"
        assert all(e.status == 400 for e in poisoned)
    if name == "deadline-storm":
        stormed = [e for _req, e in errors if e.code == "DeadlineExceeded"]
        assert stormed, "a deadline storm with no deadline sheds"
        assert all(e.status == 503 for e in stormed)


def test_scenario_replay_logsumexp_within_1e9(shard_gateway):
    timed = generate(
        get_scenario("bursty"), seed=default_seed(), semiring="logsumexp"
    )
    expected = _expected_scores(timed, semiring="logsumexp")
    ok, errors = _replay_over_http(
        shard_gateway, timed, expected, semiring="logsumexp"
    )
    assert len(ok) + len(errors) == len(timed)
    assert ok, "log-sum-exp replay accepted nothing"


def test_worker_kill_scenario_over_http():
    scn = get_scenario("worker-kill")
    seed = default_seed()
    timed = generate(scn, seed=seed)
    expected = _expected_scores(timed)
    with ShardScheduler(
        shards=2,
        queue_limit=64,
        faults=scn.fault_plan(seed),
        heartbeat_timeout_s=HB_TIMEOUT,
    ) as sched:
        with HttpGateway(sched) as gw:
            ok, errors = _replay_over_http(gw, timed, expected)
            assert len(ok) + len(errors) == len(timed)
            health = gw.health()[1]
            stats = health["scheduler"]
        assert stats["deaths"] >= 1  # the fires-once kill sites fired
        assert stats["respawns"] >= 1
    # with the default re-route budget the victims are re-served, so
    # every outcome is an exact score or a structured shed — either way
    # nothing unstructured leaked (asserted inside the replay)


def test_overload_2x_retry_client_converges():
    """Acceptance: the retry-aware client converges on overload-2x —
    every request eventually accepted with an exact score, no
    unstructured failure, honoring Retry-After on 429/503."""
    scn = get_scenario("overload-2x")
    seed = default_seed()
    timed = generate(scn, seed=seed)
    expected = _expected_scores(timed)
    retries_seen = []
    outcomes = []
    lock = threading.Lock()
    with ShardScheduler(
        shards=2,
        queue_limit=16,  # small bound so admission actually pushes back
        faults=scn.fault_plan(seed),
        heartbeat_timeout_s=HB_TIMEOUT,
    ) as sched:
        with HttpGateway(sched, min_retry_after_s=0.02) as gw:
            t0 = time.perf_counter()

            def one(t):
                # the retry budget must outlast the storm: a 2x-capacity
                # burst drains over several seconds, and each 429's
                # Retry-After hint is a fraction of that
                client = GatewayClient(
                    gw.url(), timeout_s=60.0, max_retries=60, max_sleep_s=1.0
                )
                delay = t.at_s - (time.perf_counter() - t0)
                if delay > 0:
                    time.sleep(delay)
                result = client.fold(request_wire_dict(t.request))
                with lock:
                    outcomes.append((t.request, result))
                    retries_seen.append(client.retries_performed)

            threads = [
                threading.Thread(target=one, args=(t,), daemon=True)
                for t in timed
            ]
            for th in threads:
                th.start()
            deadline = time.monotonic() + 180.0
            for th in threads:
                th.join(timeout=max(0.1, deadline - time.monotonic()))
            assert not any(th.is_alive() for th in threads), "hung connections"
    assert len(outcomes) == len(timed)
    for req, result in outcomes:
        assert result["ok"] is True, (req.id, result)
        assert result["score"] == expected[(req.seq1, req.seq2)]


# ---------------------------------------------------------------------------
# golden corpus over HTTP (both semirings, pinned tolerance policy)


def _manifest_cases(limit: int = 8, max_len: int = 16):
    path = Path(__file__).resolve().parents[1] / "golden" / "manifest.json"
    manifest = json.loads(path.read_text())
    assert manifest["version"] == 2
    picked = []
    for name in sorted(manifest["cases"]):
        case = manifest["cases"][name]
        if case["n"] <= max_len and case["m"] <= max_len:
            picked.append((name, case))
        if len(picked) >= limit:
            break
    assert picked, "no manifest cases small enough to round-trip"
    return picked


def test_golden_corpus_over_http(shard_gateway):
    client = GatewayClient(shard_gateway.url(), timeout_s=60.0)
    checked = 0
    for name, case in _manifest_cases():
        for semiring, pin in sorted(case["semirings"].items()):
            result = client.fold({
                "seq1": case["seq1"],
                "seq2": case["seq2"],
                "id": f"golden-{name}-{semiring}",
                "semiring": semiring,
            })
            assert result["ok"] is True, (name, semiring, result)
            if pin["exact"]:
                assert result["score"] == pin["value"], (name, semiring)
            else:
                assert result["score"] == pytest.approx(
                    pin["value"], abs=pin["atol"], rel=pin["rtol"]
                ), (name, semiring)
            checked += 1
    assert checked >= 16  # 8 cases x 2 semirings


# ---------------------------------------------------------------------------
# worker death mid-/v1/batch: structured WorkerFailure line, never a
# truncated stream (regression for the resolution-order race)


def test_worker_kill_mid_batch_stream_yields_worker_failure_line():
    scn = get_scenario("worker-kill")
    seed = default_seed()
    timed = generate(scn, seed=seed)
    expected = _expected_scores(timed)
    with ShardScheduler(
        shards=2,
        queue_limit=len(timed),
        max_reroutes=0,  # no compensation: the death must surface
        faults=scn.fault_plan(seed),
        heartbeat_timeout_s=HB_TIMEOUT,
    ) as sched:
        with HttpGateway(sched, max_inflight=len(timed)) as gw:
            client = GatewayClient(gw.url(), timeout_s=120.0)
            lines = list(client.batch(
                request_wire_dict(t.request) for t in timed
            ))
    # the stream is complete: one line per request, no truncation
    assert len(lines) == len(timed)
    by_id = {line["id"]: line for line in lines}
    assert set(by_id) == {t.request.id for t in timed}
    failures = [l for l in lines if not l["ok"]]
    codes = {l["error"]["code"] for l in failures}
    assert "WorkerFailure" in codes, codes
    for line in failures:
        err = line["error"]
        assert err["code"] in STRUCTURED_CODES, err
        assert err["status"] in (400, 429, 500, 503, 504)
    for line in lines:
        if line["ok"]:
            pair = (line["seq1"], line["seq2"])
            assert line["score"] == expected[pair]


# ---------------------------------------------------------------------------
# streaming semantics: per-line flushing and the backpressure window,
# proven deterministically against a manually-resolved scheduler


class _ManualScheduler:
    """Futures resolve only when the test says so."""

    def __init__(self):
        self.futs: dict[str, Future] = {}
        self.stats = {"completed": 0, "submitted": 0}

    def submit(self, req) -> Future:
        fut: Future = Future()
        self.futs[req.id] = fut
        return fut

    def resolve(self, rid: str, score: float = 1.0) -> None:
        fut = self.futs[rid]
        fut.set_result(ServeResult(
            id=rid, seq1="GG", seq2="CC", score=score, variant="hybrid-tiled"
        ))

    def close(self) -> None:
        for fut in self.futs.values():
            if not fut.done():
                fut.set_result(ServeResult(
                    id="?", seq1="GG", seq2="CC",
                    error="closed", error_type="RequestCancelled",
                ))


def _wait_for(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


def test_batch_lines_flush_as_futures_resolve():
    sched = _ManualScheduler()
    with HttpGateway(sched) as gw:
        conn = http.client.HTTPConnection(gw.host, gw.port, timeout=30.0)
        try:
            body = (
                b'{"seq1":"GG","seq2":"CC","id":"a"}\n'
                b'{"seq1":"GG","seq2":"CC","id":"b"}\n'
            )
            conn.request("POST", "/v1/batch", body=body)
            resp = conn.getresponse()
            assert resp.status == 200
            _wait_for(lambda: {"a", "b"} <= set(sched.futs))
            # resolve b first: the stream must deliver it immediately,
            # while a is still unresolved — resolution order, not
            # submission order, drives the flushes
            sched.resolve("b", score=2.0)
            first = json.loads(resp.readline())
            assert first["id"] == "b" and first["score"] == 2.0
            assert not sched.futs["a"].done()
            sched.resolve("a", score=1.0)
            second = json.loads(resp.readline())
            assert second["id"] == "a"
            assert resp.readline() == b""  # clean end of stream
        finally:
            conn.close()


def test_batch_backpressure_window_bounds_inflight():
    sched = _ManualScheduler()
    with HttpGateway(sched, max_inflight=2) as gw:
        conn = http.client.HTTPConnection(gw.host, gw.port, timeout=30.0)
        try:
            body = b"".join(
                json.dumps({"seq1": "GG", "seq2": "CC", "id": f"r{i}"}).encode()
                + b"\n"
                for i in range(5)
            )
            conn.request("POST", "/v1/batch", body=body)
            resp = conn.getresponse()
            assert resp.status == 200
            _wait_for(lambda: len(sched.futs) == 2)
            time.sleep(0.1)  # window full: r2..r4 must stay unsubmitted
            assert sorted(sched.futs) == ["r0", "r1"]
            sched.resolve("r0")
            line = json.loads(resp.readline())
            assert line["id"] == "r0"
            _wait_for(lambda: "r2" in sched.futs)  # slot freed -> next in
            assert len(sched.futs) == 3
            for rid in ("r1", "r2", "r3", "r4"):
                _wait_for(lambda rid=rid: rid in sched.futs)
                sched.resolve(rid)
            got = {json.loads(resp.readline())["id"] for _ in range(4)}
            assert got == {"r1", "r2", "r3", "r4"}
            assert resp.readline() == b""
        finally:
            conn.close()


# ---------------------------------------------------------------------------
# CLI lifecycle: serve --http boots, serves submit --url, drains on SIGTERM


def test_cli_serve_http_sigterm_drain(tmp_path):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--http", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert "listening on http://" in banner, banner
        url = banner.split("listening on ")[1].split()[0]
        out = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "GGGG", "CCCC",
             "--id", "cli-1", "--url", url],
            capture_output=True, env=env, text=True, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        result = json.loads(out.stdout)
        assert result["ok"] is True
        assert result["id"] == "cli-1"
        assert result["score"] == 12.0
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        assert rc == 0
        assert "draining" in proc.stderr.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def test_cli_submit_url_reports_structured_request_failure():
    with BatchScheduler(workers=1, max_delay_s=0.001) as sched:
        with HttpGateway(sched) as gw:
            env = dict(os.environ)
            src = str(Path(__file__).resolve().parents[2] / "src")
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            out = subprocess.run(
                [sys.executable, "-m", "repro", "submit", "GX!!ZZ", "CCCC",
                 "--url", gw.url()],
                capture_output=True, env=env, text=True, timeout=60,
            )
            assert out.returncode == 2
            assert "InvalidSequenceError" in out.stderr
