"""Unit tests for the content-addressed LRU result cache."""

from __future__ import annotations

import pytest

from repro.observe import collecting
from repro.serve.cache import CachedAnswer, ResultCache

ANSWER = CachedAnswer(score=12.0, variant="hybrid-tiled")


class TestLruSemantics:
    def test_get_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", ANSWER)
        assert cache.get("k") == ANSWER
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", ANSWER)
        cache.put("b", ANSWER)
        assert cache.get("a") is not None  # refresh a
        cache.put("c", ANSWER)  # evicts b, not a
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        cache.put("a", ANSWER)
        cache.put("b", ANSWER)
        cache.put("a", CachedAnswer(score=1.0, variant="coarse"))  # replace
        cache.put("c", ANSWER)  # evicts b
        assert "a" in cache and "b" not in cache
        assert cache.get("a").score == 1.0

    def test_len_bounded_by_capacity(self):
        cache = ResultCache(capacity=3)
        for i in range(10):
            cache.put(i, ANSWER)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_clear(self):
        cache = ResultCache(capacity=3)
        cache.put("a", ANSWER)
        cache.clear()
        assert len(cache) == 0 and "a" not in cache


class TestCapacityZero:
    def test_disables_storage(self):
        cache = ResultCache(capacity=0)
        cache.put("k", ANSWER)
        assert len(cache) == 0
        assert cache.get("k") is None
        assert cache.stats.inserts == 0 and cache.stats.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=-1)


class TestStructureAwareness:
    def test_structureless_entry_misses_structure_request(self):
        cache = ResultCache()
        cache.put("k", ANSWER)  # no structure attached
        assert cache.get("k", need_structure=True) is None
        assert cache.stats.misses == 1

    def test_structured_entry_serves_both(self):
        cache = ResultCache()
        rich = CachedAnswer(
            score=12.0, variant="hybrid-tiled",
            structure={"strand1": "****", "strand2": "****", "inter": []},
        )
        cache.put("k", rich)
        assert cache.get("k", need_structure=True) == rich
        assert cache.get("k", need_structure=False) == rich


class TestStats:
    def test_hit_rate(self):
        cache = ResultCache()
        assert cache.stats.hit_rate() == 0.0
        cache.put("k", ANSWER)
        cache.get("k")
        cache.get("nope")
        assert cache.stats.hit_rate() == 0.5
        d = cache.stats.as_dict()
        assert d["hits"] == 1 and d["misses"] == 1 and d["hit_rate"] == 0.5

    def test_observe_counters_mirrored(self):
        cache = ResultCache(capacity=1)
        with collecting() as c:
            cache.get("k")  # miss
            cache.put("k", ANSWER)
            cache.get("k")  # hit
            cache.put("k2", ANSWER)  # evicts k
        assert c.cache_misses == 1
        assert c.cache_hits == 1
        assert c.cache_evictions == 1

    def test_no_collector_is_fine(self):
        cache = ResultCache()
        cache.get("k")
        cache.put("k", ANSWER)  # must not raise without an active collector

    def test_repr(self):
        cache = ResultCache(capacity=8)
        cache.put("k", ANSWER)
        assert "capacity=8" in repr(cache) and "size=1" in repr(cache)
