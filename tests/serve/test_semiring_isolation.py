"""Semiring isolation in the serving layer (regression guard).

A max-plus score and a log-partition value are different quantities for
the same sequences; before the semiring joined :func:`cache_key`, a
warm cache could silently serve one for the other.  These tests pin the
fix at every level: the key itself, batch grouping, the in-process
:class:`BatchScheduler` and the multi-process :class:`ShardScheduler`
(whose consistent-hash routing derives from the cache key).
"""

from __future__ import annotations

import math

import pytest

from repro.robust.errors import BpmaxError
from repro.serve.request import SubmitRequest, batch_key, cache_key
from repro.serve.scheduler import BatchScheduler

SEQ1, SEQ2 = "GCGCUUCG", "CGAAGCGC"


def _pair(**common) -> tuple[SubmitRequest, SubmitRequest]:
    """The same problem under each semiring."""
    mp = SubmitRequest(SEQ1, SEQ2, id="mp", semiring="max-plus", **common)
    lse = SubmitRequest(SEQ1, SEQ2, id="lse", semiring="logsumexp", **common)
    return mp, lse


class TestKeys:
    def test_cache_keys_differ_by_semiring_only(self):
        mp, lse = _pair()
        kmp, klse = cache_key(mp), cache_key(lse)
        assert kmp != klse
        assert [a for a, b in zip(kmp, klse) if a != b] == ["max-plus"]

    def test_aliases_share_one_key(self):
        a = SubmitRequest(SEQ1, SEQ2, semiring="logsumexp")
        b = SubmitRequest(SEQ1, SEQ2, semiring="log-sum-exp")
        assert cache_key(a) == cache_key(b)
        assert a.semiring == b.semiring == "logsumexp"

    def test_batch_keys_differ_so_workspaces_are_not_shared(self):
        # mixed-algebra requests must not share a Workspace: the
        # semiring fixes its scratch dtype (float32 vs float64)
        mp, lse = _pair()
        assert batch_key(mp) != batch_key(lse)

    def test_unknown_semiring_rejected_at_submit(self):
        with pytest.raises(BpmaxError, match="semiring"):
            SubmitRequest(SEQ1, SEQ2, semiring="min-plus")
        with pytest.raises(BpmaxError, match="semiring"):
            SubmitRequest(SEQ1, SEQ2, semiring="nope")


class TestBatchSchedulerIsolation:
    def test_warm_maxplus_cache_never_serves_logsumexp(self):
        mp, lse = _pair()
        with BatchScheduler(cache=64) as sched:
            [first] = sched.serve_all([mp])
            [second] = sched.serve_all([lse])  # warm cache, other algebra
            [third] = sched.serve_all(
                [SubmitRequest(SEQ1, SEQ2, id="mp2", semiring="max-plus")]
            )
        assert first.ok and second.ok and third.ok
        assert not second.cached, "logsumexp answered from a max-plus entry"
        assert second.score != first.score
        assert second.score > first.score  # log-partition adds mass
        # the cache still works within one semiring
        assert third.cached and third.score == first.score

    def test_warm_logsumexp_cache_never_serves_maxplus(self):
        mp, lse = _pair()
        with BatchScheduler(cache=64) as sched:
            [first] = sched.serve_all([lse])
            [second] = sched.serve_all([mp])
        assert first.ok and second.ok
        assert not second.cached, "max-plus answered from a logsumexp entry"
        assert second.score != first.score

    def test_mixed_workload_one_call(self):
        # both semirings of the same pair in a single serve_all: they
        # must neither coalesce nor cross-batch
        mp, lse = _pair()
        with BatchScheduler(cache=64) as sched:
            results = sched.serve_all([mp, lse, mp, lse])
            stats = sched.stats.as_dict()
        scores = {r.id: r.score for r in results}
        assert all(r.ok for r in results)
        assert scores["mp"] != scores["lse"]
        # duplicates coalesce within a semiring; across semirings the
        # requests stay distinct work in distinct (dtype-safe) batches
        assert stats["coalesced"] == 2
        assert stats["batched_requests"] == 2


class TestShardSchedulerIsolation:
    def test_sharded_tier_keeps_semirings_apart(self):
        from repro.serve.shard import ShardScheduler

        mp, lse = _pair()
        with ShardScheduler(shards=2, cache_size=64) as sched:
            [r_mp] = sched.serve_all([mp])
            [r_lse] = sched.serve_all([lse])  # same sequences, warm shards
            [r_mp2] = sched.serve_all(
                [SubmitRequest(SEQ1, SEQ2, id="mp2", semiring="max-plus")]
            )
        assert r_mp.ok and r_lse.ok and r_mp2.ok
        assert not r_lse.cached, "logsumexp served from a max-plus shard entry"
        assert r_lse.score != r_mp.score
        assert r_mp2.cached and r_mp2.score == r_mp.score

    def test_sharded_scores_match_inprocess_tier(self):
        from repro.serve.shard import ShardScheduler

        mp, lse = _pair()
        with BatchScheduler(cache=0) as sched:
            local = {r.id: r.score for r in sched.serve_all([mp, lse])}
        with ShardScheduler(shards=2, cache_size=0) as sched:
            remote = {r.id: r.score for r in sched.serve_all([mp, lse])}
        assert remote["mp"] == local["mp"]  # exact semiring: bit-identical
        assert math.isclose(
            remote["lse"], local["lse"], rel_tol=1e-9, abs_tol=1e-9
        )
