"""Tests for the seeded stress-scenario library.

The contract under test: every generated workload is a pure function of
``(scenario, seed)``, seeded through the suite-wide ``BPMAX_TEST_SEED``
convention, so any stress failure replays from one printed integer.
"""

from __future__ import annotations

import pytest

from repro.serve.request import PRIORITY_CLASSES, SubmitRequest, cache_key
from repro.serve.scenarios import (
    SCENARIOS,
    Scenario,
    default_seed,
    generate,
    get_scenario,
    scaled,
    scenario_seed,
)
from repro.robust.errors import BpmaxError


def _signature(timed):
    return [
        (t.at_s, t.request.seq1, t.request.seq2, t.request.priority,
         t.request.deadline_s)
        for t in timed
    ]


class TestSeeding:
    def test_default_seed_reads_env(self, monkeypatch):
        monkeypatch.setenv("BPMAX_TEST_SEED", "777")
        assert default_seed() == 777
        assert scenario_seed("steady")[0] == 777

    def test_scenario_streams_are_name_salted(self):
        assert scenario_seed("steady", 1) != scenario_seed("bursty", 1)
        assert scenario_seed("steady", 1)[0] == scenario_seed("bursty", 1)[0]

    def test_same_seed_same_workload(self):
        for name in ("steady", "bursty", "heavy-tail", "poisoned"):
            scn = get_scenario(name)
            assert _signature(generate(scn, seed=42)) == _signature(
                generate(scn, seed=42)
            ), name

    def test_different_seeds_differ(self):
        scn = get_scenario("bursty")
        assert _signature(generate(scn, seed=1)) != _signature(
            generate(scn, seed=2)
        )

    def test_env_seed_threads_through_generate(self, monkeypatch):
        scn = get_scenario("steady")
        monkeypatch.setenv("BPMAX_TEST_SEED", "101")
        a = _signature(generate(scn))
        monkeypatch.setenv("BPMAX_TEST_SEED", "102")
        b = _signature(generate(scn))
        monkeypatch.setenv("BPMAX_TEST_SEED", "101")
        again = _signature(generate(scn))
        assert a == again
        assert a != b


class TestGeneration:
    def test_request_count_and_ordering(self):
        scn = get_scenario("steady")
        timed = generate(scn, seed=5)
        assert len(timed) == scn.requests
        ats = [t.at_s for t in timed]
        assert ats == sorted(ats)
        assert all(0.0 <= a <= scn.duration_s + 0.01 for a in ats)

    def test_sizes_respect_ranges(self):
        scn = get_scenario("bursty-small")
        for t in generate(scn, seed=9):
            assert scn.n_range[0] <= len(t.request.seq1) <= scn.n_range[1]
            assert scn.m_range[0] <= len(t.request.seq2) <= scn.m_range[1]

    def test_heavy_tail_bounded_by_cap(self):
        scn = get_scenario("heavy-tail")
        sizes = [len(t.request.seq1) for t in generate(scn, seed=3)]
        assert max(sizes) <= scn.tail_cap

    def test_priority_mix_draws_valid_classes(self):
        scn = get_scenario("bursty")
        classes = {t.request.priority for t in generate(scn, seed=4)}
        assert classes <= set(PRIORITY_CLASSES)
        assert len(classes) > 1  # the mix actually mixes

    def test_poisoned_requests_fail_cache_key(self):
        scn = get_scenario("poisoned")
        timed = generate(scn, seed=6)
        poisoned = [t for t in timed if t.request.seq1 == "XX!!XX"]
        assert poisoned, "poison rate of 0.10 over 64 requests drew none"
        with pytest.raises(BpmaxError):
            cache_key(poisoned[0].request)

    def test_deadline_storm_carries_deadlines(self):
        scn = get_scenario("deadline-storm")
        timed = generate(scn, seed=8)
        assert all(t.request.deadline_s == scn.deadline_s for t in timed)

    def test_request_kw_overrides(self):
        scn = get_scenario("steady")
        timed = generate(scn, seed=2, variant="batched")
        assert all(t.request.variant == "batched" for t in timed)


class TestFaultPlans:
    def test_fault_free_scenarios_have_no_plan(self):
        assert get_scenario("steady").fault_plan() is None

    def test_kill_scenarios_compile_their_sites(self):
        scn = get_scenario("worker-kill")
        plan = scn.fault_plan(seed=1)
        assert plan is not None
        assert plan.shard_kills == frozenset(scn.shard_kills)
        assert plan.shard_fault(0, 3) == "kill"
        assert plan.shard_fault(0, 3) is None  # fires once

    def test_without_shard_strips_sites(self):
        plan = get_scenario("worker-kill").fault_plan(seed=1)
        stripped = plan.without_shard(0)
        assert stripped.shard_fault(0, 3) is None
        assert stripped.shard_fault(1, 5) == "kill"


class TestLibrary:
    def test_acceptance_scenarios_are_checked_in(self):
        for needed in ("steady", "bursty", "deadline-storm", "poisoned",
                       "worker-kill", "overload-2x", "bursty-small"):
            assert needed in SCENARIOS

    def test_get_scenario_names_available_on_miss(self):
        with pytest.raises(KeyError, match="steady"):
            get_scenario("no-such-scenario")

    def test_scaled_stretches_horizon_and_deadline(self):
        scn = get_scenario("deadline-storm")
        slow = scaled(scn, 10.0)
        assert slow.duration_s == pytest.approx(scn.duration_s * 10)
        assert slow.deadline_s == pytest.approx(scn.deadline_s * 10)
        with pytest.raises(ValueError):
            scaled(scn, 0.0)

    def test_validation_rejects_bad_mix(self):
        with pytest.raises(ValueError, match="priority_mix"):
            Scenario("x", "bad", priority_mix={"batch": 0.5})
        with pytest.raises(ValueError, match="priority"):
            Scenario("x", "bad", priority_mix={"urgent": 1.0})
        with pytest.raises(ValueError, match="burstiness"):
            Scenario("x", "bad", burstiness=1.5)
