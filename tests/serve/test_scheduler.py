"""Unit tests for the adaptive batch scheduler."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.api import bpmax
from repro.observe import collecting
from repro.rna.sequence import random_pair
from repro.serve.cache import ResultCache
from repro.serve.request import SubmitRequest
from repro.serve.scheduler import BatchScheduler


def _requests(pairs, **kw):
    return [SubmitRequest(a, b, id=f"r{i}", **kw) for i, (a, b) in enumerate(pairs)]


@pytest.fixture
def pairs(fuzz_rng):
    out = []
    for _ in range(12):
        n = int(fuzz_rng.integers(2, 12))
        m = int(fuzz_rng.integers(2, 12))
        s1, s2 = random_pair(n, m, int(fuzz_rng.integers(0, 2**31)))
        out.append((str(s1), str(s2)))
    return out


class TestCorrectness:
    def test_scores_match_direct_bpmax(self, pairs):
        with BatchScheduler(max_batch=4, max_delay_s=0.005) as sched:
            results = sched.serve_all(_requests(pairs))
        for (a, b), r in zip(pairs, results):
            assert r.ok, r.error
            assert r.score == bpmax(a, b).score

    def test_results_in_input_order(self, pairs):
        reqs = _requests(pairs)
        with BatchScheduler() as sched:
            results = sched.serve_all(reqs)
        assert [r.id for r in results] == [q.id for q in reqs]

    def test_structure_requests_carry_structure(self):
        with BatchScheduler() as sched:
            (r,) = sched.serve_all([SubmitRequest("GGGG", "CCCC", structure=True)])
        assert r.ok and r.structure is not None
        assert set(r.structure) == {"strand1", "strand2", "inter"}

    def test_variant_and_backend_respected(self):
        reqs = [
            SubmitRequest("GGGG", "CCCC", id="a", variant="coarse"),
            SubmitRequest("GGGG", "CCCC", id="b", variant="batched", backend="numpy"),
        ]
        with BatchScheduler(cache=0) as sched:
            results = sched.serve_all(reqs)
        assert all(r.ok and r.score == 12.0 for r in results)


class TestCachingAndCoalescing:
    def test_repeat_submissions_are_deduplicated(self):
        reqs = _requests([("GGGG", "CCCC")] * 6)
        with BatchScheduler() as sched:
            results = sched.serve_all(reqs)
            stats = sched.stats
        assert all(r.ok and r.score == 12.0 for r in results)
        # exactly one fresh computation; the rest coalesced or cache-hit
        fresh = [r for r in results if not r.cached]
        assert len(fresh) == 1
        assert stats.coalesced + stats.cache["hits"] == 5
        assert stats.batched_requests == 1

    def test_second_round_hits_cache(self):
        with BatchScheduler() as sched:
            sched.serve_all(_requests([("GCAU", "AUGC")]))
            (r2,) = sched.serve_all(_requests([("GCAU", "AUGC")]))
            stats = sched.stats
        assert r2.cached and r2.batch == -1
        assert stats.cache["hits"] == 1

    def test_normalized_duplicates_share_one_computation(self):
        reqs = [
            SubmitRequest("GGGG", "CCCC", id="ua"),
            SubmitRequest("gggg", "cccc", id="lc"),
            SubmitRequest("GGGG", "CCCC", id="ub"),
        ]
        with BatchScheduler() as sched:
            results = sched.serve_all(reqs)
            stats = sched.stats
        assert all(r.score == 12.0 for r in results)
        assert stats.batched_requests == 1

    def test_structure_follower_not_coalesced_onto_plain_primary(self):
        reqs = [
            SubmitRequest("GGGG", "CCCC", id="plain"),
            SubmitRequest("GGGG", "CCCC", id="rich", structure=True),
        ]
        with BatchScheduler() as sched:
            results = sched.serve_all(reqs)
        by_id = {r.id: r for r in results}
        assert by_id["plain"].structure is None
        assert by_id["rich"].structure is not None

    def test_external_cache_shared_between_schedulers(self):
        cache = ResultCache(capacity=16)
        with BatchScheduler(cache=cache) as s1:
            s1.serve_all(_requests([("GGGG", "CCCC")]))
        with BatchScheduler(cache=cache) as s2:
            (r,) = s2.serve_all(_requests([("GGGG", "CCCC")]))
        assert r.cached

    def test_cache_zero_disables_reuse(self):
        with BatchScheduler(cache=0) as sched:
            sched.serve_all(_requests([("GGGG", "CCCC")]))
            (r,) = sched.serve_all(_requests([("GGGG", "CCCC")]))
        assert not r.cached


class TestBatching:
    def test_same_shape_requests_share_a_batch(self):
        same_shape = [("GGGG", "CCCC"), ("AUAU", "UAUA"), ("GCGC", "AAAA")]
        with BatchScheduler(max_batch=3, max_delay_s=5.0) as sched:
            results = sched.serve_all(_requests(same_shape))
            stats = sched.stats
        assert {r.batch for r in results} == {1}
        assert stats.batches == 1 and stats.max_batch_size == 3

    def test_size_watermark_dispatches_without_flush(self):
        with BatchScheduler(max_batch=2, max_delay_s=60.0) as sched:
            futs = [
                sched.submit(SubmitRequest("GGGG", "CCCC", id="a")),
                sched.submit(SubmitRequest("AUAU", "UAUA", id="b")),
            ]
            # no flush: the size watermark alone must dispatch this batch
            results = [f.result(timeout=30) for f in futs]
        assert all(r.ok for r in results)

    def test_latency_watermark_dispatches_without_flush(self):
        with BatchScheduler(max_batch=1000, max_delay_s=0.02) as sched:
            fut = sched.submit(SubmitRequest("GGGG", "CCCC"))
            r = fut.result(timeout=30)
        assert r.ok and r.score == 12.0

    def test_different_shapes_split_batches(self):
        reqs = _requests([("GGGG", "CCCC"), ("GGGGG", "CCCCC")])
        with BatchScheduler(max_batch=16) as sched:
            results = sched.serve_all(reqs)
            stats = sched.stats
        assert results[0].batch != results[1].batch
        assert stats.batches == 2


class TestRobustness:
    def test_poisoned_member_does_not_stall_batch(self):
        reqs = [
            SubmitRequest("GGGG", "CCCC", id="good1"),
            SubmitRequest("", "CCCC", id="empty"),
            SubmitRequest("GXGG", "CCCC", id="badchar"),
            SubmitRequest("AUAU", "UAUA", id="good2"),
        ]
        with BatchScheduler() as sched:
            results = sched.serve_all(reqs)
            stats = sched.stats
        by_id = {r.id: r for r in results}
        assert by_id["good1"].ok and by_id["good2"].ok
        assert not by_id["empty"].ok
        assert by_id["badchar"].error_type == "InvalidSequenceError"
        assert stats.errors == 2 and stats.completed == 4

    def test_deadline_expired_while_queued(self):
        with BatchScheduler(max_batch=1000, max_delay_s=0.2) as sched:
            fut = sched.submit(
                SubmitRequest("GGGG", "CCCC", id="late", deadline_s=0.01)
            )
            time.sleep(0.05)  # let the budget lapse before dispatch
            sched.flush()
            r = fut.result(timeout=30)
        assert not r.ok
        assert r.error_type == "DeadlineExceeded"

    def test_generous_deadline_succeeds(self):
        with BatchScheduler() as sched:
            (r,) = sched.serve_all(
                [SubmitRequest("GGGG", "CCCC", deadline_s=30.0)]
            )
        assert r.ok and r.score == 12.0

    def test_errors_are_not_cached(self):
        with BatchScheduler() as sched:
            sched.serve_all([SubmitRequest("", "C", id="bad")])
            stats = sched.stats
        assert stats.cache["inserts"] == 0


class TestLifecycle:
    def test_submit_after_close_raises(self):
        sched = BatchScheduler()
        sched.close()
        with pytest.raises(RuntimeError, match="closed"):
            sched.submit(SubmitRequest("G", "C"))

    def test_close_is_idempotent(self):
        sched = BatchScheduler()
        sched.close()
        sched.close()

    def test_drain_waits_for_outstanding(self):
        with BatchScheduler(max_delay_s=0.001) as sched:
            futs = [sched.submit(r) for r in _requests([("GGGG", "CCCC")] * 3)]
            sched.drain()
            assert all(f.done() for f in futs)

    def test_stats_snapshot_is_detached(self):
        with BatchScheduler() as sched:
            sched.serve_all(_requests([("GGGG", "CCCC")]))
            snap = sched.stats
            snap.submitted = 999
            assert sched.stats.submitted == 1


class TestAsyncAdapters:
    def test_submit_async(self):
        async def go(sched):
            return await sched.submit_async(SubmitRequest("GGGG", "CCCC"))

        with BatchScheduler() as sched:
            r = asyncio.run(go(sched))
        assert r.ok and r.score == 12.0

    def test_serve_all_async_preserves_order(self, pairs):
        reqs = _requests(pairs[:6])

        async def go(sched):
            return await sched.serve_all_async(reqs)

        with BatchScheduler() as sched:
            results = asyncio.run(go(sched))
        assert [r.id for r in results] == [q.id for q in reqs]
        for (a, b), r in zip(pairs[:6], results):
            assert r.ok and r.score == bpmax(a, b).score


class TestObserveIntegration:
    def test_serving_counters_collected(self):
        with collecting() as c:
            with BatchScheduler() as sched:
                sched.serve_all(_requests([("GGGG", "CCCC")] * 3))
        assert c.requests_served == 3
        assert c.batches_dispatched == 1
        assert c.cache_misses >= 1


class TestCancellation:
    """close()/drain() semantics: a queued request always *resolves* —
    with its answer or a structured cancellation — never hangs."""

    def test_cancel_pending_resolves_queued_futures(self):
        sched = BatchScheduler(max_batch=1000, max_delay_s=60.0, workers=1)
        futs = [
            sched.submit(SubmitRequest("GGGG", "CCCC", id="a")),
            sched.submit(SubmitRequest("AUAUGG", "CCAUAU", id="b")),
        ]
        cancelled = sched.cancel_pending()
        assert cancelled == 2
        for f in futs:
            r = f.result(timeout=5)
            assert not r.ok
            assert r.error_type == "RequestCancelled"
        sched.close()

    def test_cancel_pending_covers_followers(self):
        sched = BatchScheduler(max_batch=1000, max_delay_s=60.0, workers=1)
        primary = sched.submit(SubmitRequest("GGGG", "CCCC", id="p"))
        follower = sched.submit(SubmitRequest("GGGG", "CCCC", id="f"))
        assert sched.cancel_pending() == 2
        for f in (primary, follower):
            assert f.result(timeout=5).error_type == "RequestCancelled"
        sched.close()

    def test_close_cancel_true_sheds_queued_work(self):
        sched = BatchScheduler(max_batch=1000, max_delay_s=60.0, workers=1)
        futs = [
            sched.submit(r)
            for r in _requests([("GGGG", "CCCC"), ("AUAU", "UAUA")])
        ]
        sched.close(cancel=True)
        results = [f.result(timeout=5) for f in futs]
        assert all(r.error_type == "RequestCancelled" for r in results)
        from repro.robust.errors import BpmaxError, RequestCancelled

        assert issubclass(RequestCancelled, BpmaxError)

    def test_close_default_still_completes_queued_work(self):
        sched = BatchScheduler(max_batch=1000, max_delay_s=60.0, workers=1)
        fut = sched.submit(SubmitRequest("GGGG", "CCCC", id="x"))
        sched.close()
        r = fut.result(timeout=30)
        assert r.ok and r.score == 12.0

    def test_cancelled_results_are_not_cached(self):
        sched = BatchScheduler(max_batch=1000, max_delay_s=60.0, workers=1)
        sched.submit(SubmitRequest("GGGG", "CCCC", id="a"))
        sched.cancel_pending()
        stats = sched.stats
        sched.close()
        assert stats.cache["inserts"] == 0


class TestFaultPlanPoisoning:
    """Satellite: a request whose engine run crashes (deterministically,
    via FaultPlan) fails only its own ServeResult."""

    def test_injected_crash_fails_only_its_request(self):
        from repro.robust import FaultPlan

        windows = [(i, j) for i in range(16) for j in range(16)]
        reqs = [
            SubmitRequest("GGGG", "CCCC", id="good1"),
            SubmitRequest(
                "GGGG",
                "CCCA",
                id="poisoned",
                faults=FaultPlan(seed=3, crash_windows=windows),
            ),
            SubmitRequest("AUAU", "UAUA", id="good2"),
        ]
        with BatchScheduler(cache=0) as sched:
            results = sched.serve_all(reqs)
            stats = sched.stats
        by_id = {r.id: r for r in results}
        assert by_id["good1"].ok and by_id["good1"].score == 12.0
        assert by_id["good2"].ok
        assert not by_id["poisoned"].ok
        assert by_id["poisoned"].error_type == "EngineFailure"
        assert stats.errors == 1 and stats.completed == 3

    def test_injected_crash_recovers_with_retry(self):
        from repro.robust import FaultPlan

        # one crash site, fired once: the retry's run sails past it
        with BatchScheduler(cache=0) as sched:
            (r,) = sched.serve_all(
                [
                    SubmitRequest(
                        "GGGG",
                        "CCCC",
                        id="flaky",
                        retries=1,
                        faults=FaultPlan(seed=3, crash_windows=[(1, 1)]),
                    )
                ]
            )
        assert r.ok and r.score == 12.0  # crash fires once; the retry lands
