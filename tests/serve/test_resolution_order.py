"""Regression: future delivery happens-before drain() returns.

Both schedulers used to decrement ``_outstanding`` and notify drain
waiters *before* calling ``future.set_result()``.  ``drain()`` (and so
``close()``) could then return while the last futures were still
undelivered — a gateway flushing a ``/v1/batch`` stream on drain would
close the connection with the final lines unwritten (a truncated
stream), and the worker-kill e2e test could miss its ``WorkerFailure``
line.  The fix resolves the claim flag under the lock, delivers, and
only then does the accounting that wakes drain().

These tests pin the ordering deterministically: a future subclass whose
``set_result`` dawdles makes the old ordering fail every time (drain
returns mid-sleep with futures not yet done) while the fixed ordering
cannot — drain's wake-up is now causally after the last delivery.
"""

from __future__ import annotations

import time
from concurrent.futures import Future

import pytest

import repro.serve.scheduler as scheduler_mod
import repro.serve.shard as shard_mod
from repro.serve import BatchScheduler, ShardScheduler, SubmitRequest

HB_TIMEOUT = 20.0


class _DawdlingFuture(Future):
    """Delivery takes a visible amount of wall time."""

    def set_result(self, result) -> None:
        time.sleep(0.05)
        super().set_result(result)


def test_batch_scheduler_drain_implies_futures_done(monkeypatch):
    class DawdlingPending(scheduler_mod._Pending):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.future = _DawdlingFuture()

    monkeypatch.setattr(scheduler_mod, "_Pending", DawdlingPending)
    with BatchScheduler(workers=2, max_delay_s=0.001, cache=0) as sched:
        futures = [
            sched.submit(SubmitRequest("GGGG", "CCCC", id=f"r{i}"))
            for i in range(6)
        ]
        sched.drain()
        undelivered = [i for i, fut in enumerate(futures) if not fut.done()]
        assert not undelivered, (
            f"drain() returned with futures {undelivered} not yet delivered"
        )


def test_batch_scheduler_drain_covers_coalesced_followers(monkeypatch):
    class DawdlingPending(scheduler_mod._Pending):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.future = _DawdlingFuture()

    monkeypatch.setattr(scheduler_mod, "_Pending", DawdlingPending)
    # identical requests coalesce onto one primary; followers fan out
    # inside the same _resolve call and must also precede drain's return
    with BatchScheduler(workers=1, max_delay_s=0.05, cache=0) as sched:
        futures = [
            sched.submit(SubmitRequest("GCGC", "GCGC", id=f"dup{i}"))
            for i in range(4)
        ]
        sched.drain()
        assert all(fut.done() for fut in futures)


@pytest.mark.slow
def test_shard_scheduler_drain_implies_futures_done(monkeypatch):
    class DawdlingTask(shard_mod._Task):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.future = _DawdlingFuture()

    monkeypatch.setattr(shard_mod, "_Task", DawdlingTask)
    with ShardScheduler(
        shards=1, cache_size=0, heartbeat_timeout_s=HB_TIMEOUT
    ) as sched:
        futures = [
            sched.submit(SubmitRequest("GGGG", "CCCC", id=f"r{i}"))
            for i in range(6)
        ]
        assert sched.drain(timeout=60.0)
        undelivered = [i for i, fut in enumerate(futures) if not fut.done()]
        assert not undelivered, (
            f"drain() returned with futures {undelivered} not yet delivered"
        )
