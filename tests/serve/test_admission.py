"""Unit tests for the admission controller (pure policy, no queues)."""

from __future__ import annotations

import pytest

from repro.robust.errors import AdmissionRejected, DeadlineExceeded
from repro.serve.admission import AdmissionController, priority_rank
from repro.serve.request import PRIORITY_CLASSES


class TestPriorityRank:
    def test_interactive_most_urgent(self):
        ranks = [priority_rank(c) for c in PRIORITY_CLASSES]
        assert ranks == sorted(ranks)
        assert priority_rank("interactive") < priority_rank("batch")
        assert priority_rank("batch") < priority_rank("scan")


class TestClassCaps:
    def test_interactive_gets_full_queue(self):
        ctl = AdmissionController(queue_limit=64)
        assert ctl.class_cap("interactive") == 64

    def test_lower_classes_capped_below_limit(self):
        ctl = AdmissionController(queue_limit=64)
        assert ctl.class_cap("batch") == 48
        assert ctl.class_cap("scan") == 32

    def test_cap_never_below_one(self):
        ctl = AdmissionController(queue_limit=1)
        for c in PRIORITY_CLASSES:
            assert ctl.class_cap(c) == 1


class TestAdmitOrShed:
    def test_empty_queue_admits_everything(self):
        ctl = AdmissionController(queue_limit=8)
        for c in PRIORITY_CLASSES:
            assert ctl.admit(c, depth=0) is None
        assert ctl.stats.admitted == 3
        assert ctl.stats.shed == 0

    def test_graduated_shedding_scan_first(self):
        """As a queue fills, scan sheds first, then batch, interactive last."""
        ctl = AdmissionController(queue_limit=8)
        depth = ctl.class_cap("scan")  # 4
        assert isinstance(ctl.admit("scan", depth), AdmissionRejected)
        assert ctl.admit("batch", depth) is None
        assert ctl.admit("interactive", depth) is None
        depth = ctl.class_cap("batch")  # 6
        assert isinstance(ctl.admit("batch", depth), AdmissionRejected)
        assert ctl.admit("interactive", depth) is None
        assert isinstance(ctl.admit("interactive", 8), AdmissionRejected)

    def test_rejection_is_returned_not_raised(self):
        ctl = AdmissionController(queue_limit=1)
        verdict = ctl.admit("scan", depth=5)
        assert isinstance(verdict, AdmissionRejected)
        assert "queue full" in str(verdict)

    def test_expired_deadline_shed_at_admission(self):
        ctl = AdmissionController(queue_limit=8)
        verdict = ctl.admit("interactive", depth=0, deadline_remaining_s=-0.1)
        assert isinstance(verdict, DeadlineExceeded)
        assert ctl.stats.shed_deadline == 1

    def test_infeasible_deadline_shed_when_wait_estimated(self):
        ctl = AdmissionController(queue_limit=8, est_wait_s=1.0)
        verdict = ctl.admit("batch", depth=5, deadline_remaining_s=2.0)
        assert isinstance(verdict, DeadlineExceeded)
        assert "infeasible" in str(verdict)

    def test_feasible_deadline_admitted(self):
        ctl = AdmissionController(queue_limit=8, est_wait_s=0.1)
        assert ctl.admit("batch", depth=2, deadline_remaining_s=5.0) is None

    def test_no_wait_estimate_disables_feasibility_check(self):
        ctl = AdmissionController(queue_limit=8, est_wait_s=0.0)
        assert ctl.admit("batch", depth=5, deadline_remaining_s=1e-9) is None


class TestStats:
    def test_shed_counters_split_by_cause_and_class(self):
        ctl = AdmissionController(queue_limit=2)
        ctl.admit("scan", depth=0)
        ctl.admit("scan", depth=2)
        ctl.admit("batch", depth=0, deadline_remaining_s=-1.0)
        d = ctl.stats.as_dict()
        assert d["admitted"] == 1
        assert d["shed"] == 2
        assert d["shed_queue_full"] == 1
        assert d["shed_deadline"] == 1
        assert d["shed_by_class"] == {"interactive": 0, "batch": 1, "scan": 1}

    def test_shed_errors_derive_from_bpmax_error(self):
        from repro.robust.errors import BpmaxError

        ctl = AdmissionController(queue_limit=1)
        assert isinstance(ctl.admit("scan", depth=9), BpmaxError)
        assert isinstance(
            ctl.admit("scan", depth=0, deadline_remaining_s=-1.0), BpmaxError
        )


class TestValidation:
    def test_queue_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="queue_limit"):
            AdmissionController(queue_limit=0)

    def test_est_wait_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="est_wait_s"):
            AdmissionController(est_wait_s=-1.0)
