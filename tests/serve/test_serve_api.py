"""Unit tests for the `serve_many` convenience entry point."""

from __future__ import annotations

import pytest

from repro import serve_many
from repro.core.api import bpmax
from repro.serve.request import SubmitRequest
from repro.serve.scheduler import BatchScheduler


class TestTupleInput:
    def test_plain_pairs(self):
        pairs = [("GGGG", "CCCC"), ("GCAU", "AUGC")]
        results = serve_many(pairs)
        assert [r.id for r in results] == ["req0", "req1"]
        for (a, b), r in zip(pairs, results):
            assert r.ok and r.score == bpmax(a, b).score

    def test_structure_flag_applies_to_all(self):
        results = serve_many([("GGGG", "CCCC")], structure=True)
        assert results[0].structure is not None

    def test_variant_applies_to_all(self):
        results = serve_many([("GGGG", "CCCC")], variant="coarse")
        assert results[0].ok and results[0].score == 12.0


class TestRequestInput:
    def test_submit_requests_pass_through(self):
        reqs = [
            SubmitRequest("GGGG", "CCCC", id="a", variant="batched"),
            SubmitRequest("GCAU", "AUGC", id="b"),
        ]
        results = serve_many(reqs)
        assert [r.id for r in results] == ["a", "b"]
        assert all(r.ok for r in results)

    def test_mixed_inputs(self):
        results = serve_many([("GGGG", "CCCC"), SubmitRequest("GCAU", "AUGC", id="x")])
        assert [r.id for r in results] == ["req0", "x"]

    def test_empty_input(self):
        assert serve_many([]) == []


class TestSchedulerReuse:
    def test_external_scheduler_stays_open(self):
        with BatchScheduler() as sched:
            serve_many([("GGGG", "CCCC")], scheduler=sched)
            # the scheduler must survive for a second round, cache warm
            results = serve_many([("GGGG", "CCCC")], scheduler=sched)
            assert results[0].cached
            assert sched.stats.submitted == 2

    def test_knobs_forwarded_to_owned_scheduler(self):
        results = serve_many(
            [("GGGG", "CCCC")] * 3, max_batch=2, max_delay_s=0.001, workers=1, cache=0
        )
        assert all(r.ok and r.score == 12.0 for r in results)


class TestErrorPaths:
    def test_poisoned_entry_fails_alone(self):
        results = serve_many([("GGGG", "CCCC"), ("", "CCCC")])
        assert results[0].ok
        assert not results[1].ok
        assert results[1].error_type == "InvalidSequenceError"

    def test_bad_variant_raises_upfront(self):
        with pytest.raises(Exception, match="unknown variant"):
            serve_many([("G", "C")], variant="warp-drive")
