"""Protocol conformance for the HTTP gateway (repro.serve.http).

Table-driven request/response pins: every malformed input — bad JSON,
unknown semiring, oversized body, missing fields, wrong method or path —
maps to an exact status code and the one stable error-envelope shape.
These tests freeze the wire contract; breaking one means breaking every
deployed client, so change them only with a protocol version bump.

The suite runs against a real server on an ephemeral port (marked
``http``: deselect with ``-m 'not http'`` in sandboxes without
sockets).  The backing scheduler is the in-process batch tier — fast to
boot, and the protocol surface under test is tier-independent; the
sharded tier's HTTP behavior is covered by test_http_gateway.py.
"""

from __future__ import annotations

import http.client
import json
import math
from concurrent.futures import Future

import pytest

from repro.serve import (
    BatchScheduler,
    GatewayClient,
    GatewayStatusError,
    HttpGateway,
    ServeResult,
    SubmitRequest,
)
from repro.serve.http import RETRYABLE_STATUS, STATUS_BY_ERROR, error_envelope

pytestmark = pytest.mark.http

MAX_BODY = 64 * 1024


# ---------------------------------------------------------------------------
# plumbing


def _call(
    gateway,
    method: str,
    path: str,
    body: bytes | None = None,
    headers: dict | None = None,
    timeout: float = 30.0,
):
    """One raw round-trip -> (status, headers, decoded-or-None, raw)."""
    conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
        try:
            decoded = json.loads(raw.decode())
        except json.JSONDecodeError:
            decoded = None
        return resp.status, resp.headers, decoded, raw
    finally:
        conn.close()


def assert_envelope(body: dict, status: int, code: str | None = None) -> None:
    """Pin the stable error-envelope shape."""
    assert sorted(body) == ["error", "id", "ok"]
    assert body["ok"] is False
    assert isinstance(body["id"], str)
    err = body["error"]
    assert err["status"] == status
    assert isinstance(err["message"], str) and err["message"]
    if code is not None:
        assert err["code"] == code
    if status in RETRYABLE_STATUS:
        assert isinstance(err["retry_after_s"], (int, float))
        assert math.isfinite(err["retry_after_s"])
        assert err["retry_after_s"] > 0
        assert set(err) == {"code", "message", "status", "retry_after_s"}
    else:
        assert set(err) == {"code", "message", "status"}


@pytest.fixture(scope="module")
def gateway():
    with BatchScheduler(workers=2, max_delay_s=0.002) as sched:
        with HttpGateway(sched, max_body_bytes=MAX_BODY) as gw:
            yield gw


# ---------------------------------------------------------------------------
# table-driven conformance: one row per malformed input


def _req(obj) -> bytes:
    return json.dumps(obj).encode()


CONFORMANCE = [
    # (name, method, path, body, expected_status, expected_code)
    ("fold-bad-json", "POST", "/v1/fold", b"{nope", 400, "BpmaxError"),
    ("fold-non-object", "POST", "/v1/fold", b"[1,2]", 400, "BpmaxError"),
    (
        "fold-missing-seq2",
        "POST", "/v1/fold", _req({"seq1": "GGGG"}),
        400, "BpmaxError",
    ),
    (
        "fold-non-string-seq",
        "POST", "/v1/fold", _req({"seq1": "GGGG", "seq2": 7}),
        400, "BpmaxError",
    ),
    (
        "fold-unknown-key",
        "POST", "/v1/fold", _req({"seq1": "GG", "seq2": "CC", "bogus": 1}),
        400, "BpmaxError",
    ),
    (
        "fold-unknown-semiring",
        "POST", "/v1/fold",
        _req({"seq1": "GG", "seq2": "CC", "semiring": "tropical-typo"}),
        400, "BpmaxError",
    ),
    (
        "fold-unknown-variant",
        "POST", "/v1/fold",
        _req({"seq1": "GG", "seq2": "CC", "variant": "nope"}),
        400, "BpmaxError",
    ),
    (
        "fold-bad-priority",
        "POST", "/v1/fold",
        _req({"seq1": "GG", "seq2": "CC", "priority": "urgent"}),
        400, "BpmaxError",
    ),
    (
        "fold-negative-deadline",
        "POST", "/v1/fold",
        _req({"seq1": "GG", "seq2": "CC", "deadline": -1}),
        400, "BpmaxError",
    ),
    (
        "fold-invalid-sequence",
        "POST", "/v1/fold", _req({"seq1": "GX!!ZZ", "seq2": "CCCC"}),
        400, "InvalidSequenceError",
    ),
    ("fold-wrong-method", "GET", "/v1/fold", None, 405, "MethodNotAllowed"),
    ("batch-wrong-method", "GET", "/v1/batch", None, 405, "MethodNotAllowed"),
    ("healthz-wrong-method", "POST", "/healthz", b"{}", 405, "MethodNotAllowed"),
    ("metrics-wrong-method", "POST", "/metrics", b"{}", 405, "MethodNotAllowed"),
    ("unknown-path", "GET", "/v2/fold", None, 404, "NotFound"),
    ("unknown-path-post", "POST", "/fold", b"{}", 404, "NotFound"),
    ("batch-empty-body", "POST", "/v1/batch", b"", 400, "BpmaxError"),
    ("batch-only-comments", "POST", "/v1/batch", b"# nothing\n\n", 400, "BpmaxError"),
]


@pytest.mark.parametrize(
    "name,method,path,body,status,code",
    CONFORMANCE,
    ids=[row[0] for row in CONFORMANCE],
)
def test_conformance_table(gateway, name, method, path, body, status, code):
    got_status, headers, decoded, raw = _call(gateway, method, path, body=body)
    assert got_status == status, raw
    assert headers.get("Content-Type") == "application/json"
    assert decoded is not None, raw
    assert_envelope(decoded, status, code)


def test_oversized_body_is_413_without_reading(gateway):
    body = b" " * (MAX_BODY + 1)
    status, headers, decoded, _raw = _call(gateway, "POST", "/v1/fold", body=body)
    assert status == 413
    assert_envelope(decoded, 413, "PayloadTooLarge")
    assert headers.get("Connection") == "close"


def test_missing_content_length_is_411(gateway):
    # http.client always sends Content-Length for POST, so speak raw
    # bytes to actually omit the header
    import socket as socket_mod

    with socket_mod.create_connection(
        (gateway.host, gateway.port), timeout=10.0
    ) as sock:
        sock.sendall(
            b"POST /v1/fold HTTP/1.1\r\nHost: gateway\r\n\r\n"
        )
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"411" in head.splitlines()[0]
    decoded = json.loads(body.decode())
    assert_envelope(decoded, 411, "LengthRequired")


def test_zero_content_length_fold_is_400(gateway):
    # http.client's POST with body=None arrives as Content-Length: 0,
    # which is an empty (invalid-JSON) body, not a protocol violation
    status, _headers, decoded, _raw = _call(gateway, "POST", "/v1/fold", body=None)
    assert status == 400
    assert_envelope(decoded, 400, "BpmaxError")


def test_fold_error_envelope_echoes_request_id(gateway):
    status, _h, decoded, _raw = _call(
        gateway, "POST", "/v1/fold",
        body=_req({"seq1": "GX!!ZZ", "seq2": "CCCC", "id": "poisoned-1"}),
    )
    assert status == 400
    # validation fails at submit; the scheduler still attributes the
    # failure to the caller's id
    assert decoded["id"] == "poisoned-1"
    assert decoded["error"]["code"] == "InvalidSequenceError"


# ---------------------------------------------------------------------------
# happy paths and endpoint payload shapes


def test_fold_ok_result_shape(gateway):
    status, headers, decoded, _raw = _call(
        gateway, "POST", "/v1/fold",
        body=_req({"seq1": "GGGG", "seq2": "CCCC", "id": "ok-1"}),
    )
    assert status == 200
    assert headers.get("Content-Type") == "application/json"
    assert decoded["ok"] is True
    assert decoded["id"] == "ok-1"
    assert decoded["score"] == 12.0
    # the 200 body is the full ServeResult wire object, same as JSONL serve
    assert set(decoded) == {
        "id", "ok", "seq1", "seq2", "score", "variant", "cached", "batch",
        "shard", "wall_s", "structure", "degraded_from", "error", "error_type",
    }


def test_batch_streams_one_line_per_request(gateway):
    body = b"\n".join([
        _req({"seq1": "GCGC", "seq2": "GCGC", "id": "b1"}),
        b"# a comment line",
        b"",
        _req({"seq1": "AAAA", "seq2": "UUUU", "id": "b2"}),
        b"{broken json",
        _req({"seq1": "GG!!", "seq2": "CC", "id": "b3"}),
    ]) + b"\n"
    status, headers, _decoded, raw = _call(gateway, "POST", "/v1/batch", body=body)
    assert status == 200
    assert headers.get("Content-Type") == "application/x-ndjson"
    lines = [json.loads(l) for l in raw.decode().splitlines() if l.strip()]
    # 4 request lines (comments/blanks are free), every one answered
    assert len(lines) == 4
    by_id = {l["id"]: l for l in lines}
    assert by_id["b1"]["ok"] is True and by_id["b1"]["score"] == 12.0
    assert by_id["b2"]["ok"] is True and by_id["b2"]["score"] == 8.0
    assert_envelope(by_id["b3"], 400, "InvalidSequenceError")
    # the malformed line reports under its line number with a 400 envelope
    assert_envelope(by_id["line5"], 400, "BpmaxError")


def test_healthz_shape(gateway):
    status, _h, decoded, _raw = _call(gateway, "GET", "/healthz")
    assert status == 200
    assert decoded["status"] == "ok"
    assert decoded["tier"] == "batch"
    assert decoded["uptime_s"] >= 0
    assert "scheduler" in decoded and "completed" in decoded["scheduler"]


def test_metrics_shape(gateway):
    status, _h, decoded, _raw = _call(gateway, "GET", "/metrics")
    assert status == 200
    assert set(decoded) >= {"uptime_s", "http", "observe", "scheduler"}
    http_stats = decoded["http"]
    assert http_stats["requests"] >= 1
    assert "by_status" in http_stats
    # the gateway's process-wide observe collector sees scheduler counters
    assert "requests_served" in decoded["observe"]
    assert decoded["observe"]["requests_served"] >= 1


# ---------------------------------------------------------------------------
# deterministic status mapping for shed/failed results (stub scheduler):
# every structured error code pins to its HTTP status, and retryable
# statuses always carry a finite Retry-After


class _StubScheduler:
    """Resolves every submit instantly with a canned error result."""

    def __init__(self, error_type: str):
        self.error_type = error_type
        self.stats = {
            "completed": 50,
            "submitted": 53,
            "queue_depth_by_class": {"interactive": 0, "batch": 3, "scan": 0},
        }

    def submit(self, req: SubmitRequest) -> Future:
        fut: Future = Future()
        fut.set_result(ServeResult(
            id=req.id, seq1=req.seq1, seq2=req.seq2,
            error=f"stubbed {self.error_type}", error_type=self.error_type,
        ))
        return fut

    def close(self) -> None:
        pass


@pytest.mark.parametrize(
    "error_type,status",
    sorted(STATUS_BY_ERROR.items()),
    ids=[code for code, _ in sorted(STATUS_BY_ERROR.items())],
)
def test_error_code_to_status_mapping(error_type, status):
    with HttpGateway(_StubScheduler(error_type)) as gw:
        got_status, headers, decoded, _raw = _call(
            gw, "POST", "/v1/fold", body=_req({"seq1": "GG", "seq2": "CC", "id": "x"}),
        )
        assert got_status == status
        assert_envelope(decoded, status, error_type)
        assert decoded["id"] == "x"
        if status in RETRYABLE_STATUS:
            retry_after = float(headers["Retry-After"])
            assert math.isfinite(retry_after) and retry_after > 0
            assert decoded["error"]["retry_after_s"] == pytest.approx(
                retry_after, abs=1e-3
            )
        else:
            assert headers.get("Retry-After") is None


def test_unknown_error_code_maps_to_500():
    with HttpGateway(_StubScheduler("SomethingNovel")) as gw:
        status, _h, decoded, _raw = _call(
            gw, "POST", "/v1/fold", body=_req({"seq1": "GG", "seq2": "CC"}),
        )
        assert status == 500
        assert_envelope(decoded, 500, "SomethingNovel")


def test_retry_after_reflects_queue_drain_estimate():
    stub = _StubScheduler("AdmissionRejected")
    with HttpGateway(stub) as gw:
        # depth 3, ~50 completed over a tiny uptime -> clamped to the
        # floor; all that matters for the contract is finite and positive
        hint = gw.retry_after_s()
        assert math.isfinite(hint)
        assert gw.min_retry_after_s <= hint <= gw.max_retry_after_s
        # a cold tier (nothing completed) still yields a finite hint
        stub.stats = {"completed": 0, "submitted": 0, "queue_depth_by_class": {}}
        hint = gw.retry_after_s()
        assert math.isfinite(hint) and hint > 0


# ---------------------------------------------------------------------------
# drain semantics


def test_draining_gateway_rejects_new_work_with_503():
    with BatchScheduler(workers=1, max_delay_s=0.001) as sched:
        gw = HttpGateway(sched).start()
        try:
            status, _h, decoded, _raw = _call(
                gw, "POST", "/v1/fold", body=_req({"seq1": "GG", "seq2": "CC"}),
            )
            assert status == 200
            gw.drain(timeout=10.0)
            # the listening socket is gone: new connections are refused
            with pytest.raises(OSError):
                _call(gw, "POST", "/v1/fold",
                      body=_req({"seq1": "GG", "seq2": "CC"}), timeout=2.0)
            status_code, payload = gw.health()
            assert status_code == 503
            assert payload["status"] == "draining"
        finally:
            gw.close()


def test_envelope_helper_shape_is_pinned():
    env = error_envelope("AdmissionRejected", "queue full", 429,
                         id="r9", retry_after_s=0.25)
    assert env == {
        "ok": False,
        "id": "r9",
        "error": {
            "code": "AdmissionRejected",
            "message": "queue full",
            "status": 429,
            "retry_after_s": 0.25,
        },
    }
    assert_envelope(env, 429, "AdmissionRejected")


# ---------------------------------------------------------------------------
# client-side conformance: the retry policy is part of the protocol


def test_client_raises_structured_error_on_4xx(gateway):
    client = GatewayClient(gateway.url(), max_retries=0)
    with pytest.raises(GatewayStatusError) as exc_info:
        client.fold({"seq1": "GX!!", "seq2": "CC"})
    err = exc_info.value
    assert err.status == 400
    assert err.code == "InvalidSequenceError"


def test_client_retries_429_honoring_retry_after():
    class _FlakyScheduler(_StubScheduler):
        def __init__(self):
            super().__init__("AdmissionRejected")
            self.calls = 0

        def submit(self, req):
            self.calls += 1
            if self.calls < 3:  # shed twice, then accept
                return super().submit(req)
            fut: Future = Future()
            fut.set_result(ServeResult(
                id=req.id, seq1=req.seq1, seq2=req.seq2, score=12.0,
                variant="hybrid-tiled",
            ))
            return fut

    sched = _FlakyScheduler()
    with HttpGateway(sched, min_retry_after_s=0.01) as gw:
        client = GatewayClient(gw.url(), max_retries=4)
        result = client.fold({"seq1": "GGGG", "seq2": "CCCC", "id": "rt"})
        assert result["ok"] is True and result["score"] == 12.0
        assert sched.calls == 3
        assert client.retries_performed == 2


def test_client_does_not_retry_non_retryable_status():
    sched = _StubScheduler("WorkerFailure")
    with HttpGateway(sched) as gw:
        client = GatewayClient(gw.url(), max_retries=5)
        with pytest.raises(GatewayStatusError) as exc_info:
            client.fold({"seq1": "GG", "seq2": "CC"})
        assert exc_info.value.status == 500
        assert client.retries_performed == 0


def test_client_transport_error_is_structured():
    from repro.serve import GatewayUnavailable

    # grab a port nothing listens on by binding and closing it
    import socket as socket_mod

    s = socket_mod.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    client = GatewayClient(f"http://127.0.0.1:{port}", timeout_s=2.0)
    with pytest.raises(GatewayUnavailable):
        client.fold({"seq1": "GG", "seq2": "CC"})
