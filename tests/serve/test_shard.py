"""Tests for the sharded multi-process serving tier.

Each ``ShardScheduler`` start spawns real worker processes (~1s), so the
tests batch several assertions per scheduler.  Fault injection uses the
deterministic ``FaultPlan`` shard sites — the same mechanism the stress
benchmark and the CI smoke job replay — so every recovery path here is
reproducible, not racy.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.api import bpmax
from repro.observe import collecting
from repro.robust import FaultPlan
from repro.robust.errors import (
    AdmissionRejected,
    BpmaxError,
    RequestCancelled,
)
from repro.serve import ShardScheduler, SubmitRequest, route_key
from repro.serve.request import cache_key

MANIFEST = Path(__file__).parent.parent / "golden" / "manifest.json"

#: generous heartbeat bound: worker spawn can take a second or two under
#: a loaded CI runner, and heartbeat staleness must not misfire there
HB_TIMEOUT = 20.0


def _golden_cases(max_len: int = 16, limit: int = 8):
    """Small golden-corpus cases with their pinned (bit-exact) scores."""
    cases = json.loads(MANIFEST.read_text())["cases"]
    picked = [
        (c["seq1"], c["seq2"], c["score"])
        for c in cases.values()
        if len(c["seq1"]) <= max_len and len(c["seq2"]) <= max_len
    ]
    assert len(picked) >= limit
    return picked[:limit]


class TestRouting:
    def test_route_key_is_stable_content_hash(self):
        a = SubmitRequest("GGGG", "CCCC")
        b = SubmitRequest("gggg", "cccc", id="other")  # normalizes equal
        c = SubmitRequest("GGGG", "CCCA")
        assert route_key(a) == route_key(b)
        assert route_key(a) != route_key(c)

    def test_identical_content_routes_to_one_shard(self):
        with ShardScheduler(shards=3, heartbeat_timeout_s=HB_TIMEOUT) as s:
            req = SubmitRequest("GCAUGC", "AUGCAU")
            shard = s.route(req)
            assert shard in (0, 1, 2)
            assert all(s.route(req) == shard for _ in range(5))
            # different variants share the answer's content address
            alt = SubmitRequest("GCAUGC", "AUGCAU", variant="batched")
            assert cache_key(req) == cache_key(alt)
            assert s.route(alt) == shard


class TestRoundTrip:
    def test_scores_cache_and_lifecycle(self):
        pairs = [("GGGG", "CCCC"), ("GCAUGC", "AUGCAU"), ("AAGGUUCC", "GGAACCUU")]
        s = ShardScheduler(shards=2, heartbeat_timeout_s=HB_TIMEOUT)
        try:
            results = s.serve_all(
                [SubmitRequest(a, b, id=f"r{i}") for i, (a, b) in enumerate(pairs)]
            )
            for (a, b), r in zip(pairs, results):
                assert r.ok, r.error
                assert r.score == bpmax(a, b).score
                assert r.shard >= 0
            # a repeat hits the worker-local cache shard (same routing)
            (again,) = s.serve_all([SubmitRequest(*pairs[0], id="again")])
            assert again.ok and again.cached
            assert again.shard == results[0].shard
            # invalid sequences fail fast with a structured error
            (bad,) = s.serve_all([SubmitRequest("XX!!XX", "CCCC", id="bad")])
            assert not bad.ok and bad.error_type == "InvalidSequenceError"
            st = s.stats
            assert st["submitted"] == 5
            assert st["completed"] == 5
            assert st["errors"] == 1
            assert st["deaths"] == 0
            assert {"admission", "latency", "workers", "queue_depth_by_class"} <= set(st)
        finally:
            s.close()
        s.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            s.submit(SubmitRequest("GGGG", "CCCC"))

    def test_unknown_priority_rejected_at_submit(self):
        with pytest.raises(BpmaxError, match="priority"):
            SubmitRequest("GGGG", "CCCC", priority="urgent")


class TestWorkerDeathRecovery:
    def test_kill_mid_stream_keeps_answers_bit_identical(self):
        """Satellite 4: a worker dies mid-batch; after respawn every
        accepted answer still matches the golden corpus bit for bit."""
        cases = _golden_cases()
        plan = FaultPlan(seed=11, shard_kills=[(0, 2), (1, 3)])
        with collecting() as counters:
            with ShardScheduler(
                shards=2,
                faults=plan,
                heartbeat_timeout_s=HB_TIMEOUT,
            ) as s:
                results = s.serve_all(
                    [
                        SubmitRequest(a, b, id=f"g{i}")
                        for i, (a, b, _score) in enumerate(cases)
                    ]
                )
                st = s.stats
        for (a, b, score), r in zip(cases, results):
            assert r.ok, f"{r.id}: {r.error}"
            assert r.score == score, (a, b)
        assert st["deaths"] >= 1
        assert st["respawns"] >= 1
        # the self-healing counters surface through repro.observe
        assert counters.worker_deaths >= 1
        assert counters.worker_respawns >= 1
        assert counters.requests_served >= len(cases)

    def test_hang_detection_reroutes(self):
        plan = FaultPlan(seed=5, shard_hangs=[(0, 1)])
        with ShardScheduler(
            shards=2,
            faults=plan,
            hang_timeout_s=2.0,
            heartbeat_timeout_s=HB_TIMEOUT,
        ) as s:
            results = s.serve_all(
                [
                    SubmitRequest(a, b, id=f"h{i}")
                    for i, (a, b) in enumerate(
                        [("GGGGCCC", "GGGCCCC"), ("GCAUGCA", "UGCAUGC"), ("GGGG", "CCCC")]
                    )
                ]
            )
            st = s.stats
        for r in results:
            assert r.ok, r.error
        assert st["deaths"] >= 1  # the wedged worker was declared dead
        assert st["respawns"] >= 1


class TestOverloadShedding:
    def test_queue_full_sheds_with_structured_errors(self):
        """A wedged worker backs the queue up; beyond the class cap new
        arrivals shed immediately with AdmissionRejected — and close()
        resolves everything still queued, never stranding a future."""
        plan = FaultPlan(seed=9, shard_hangs=[(0, 1)])
        s = ShardScheduler(
            shards=1,
            queue_limit=4,  # scan cap = 2
            pipeline_depth=1,
            faults=plan,
            hang_timeout_s=60.0,  # stay wedged for the whole test
            heartbeat_timeout_s=HB_TIMEOUT,
        )
        try:
            wedge = s.submit(SubmitRequest("GGGG", "CCCC", id="wedge"))
            futs = [
                s.submit(SubmitRequest("GCAUGC", "AUGCAU", id=f"q{i}", priority="scan"))
                for i in range(5)
            ]
            shed = [f.result(timeout=10) for f in futs if f.done()]
            assert shed, "queue overflow shed nothing"
            for r in shed:
                assert not r.ok
                assert r.error_type == "AdmissionRejected"
                assert "queue full" in r.error
            assert s.stats["shed"] == len(shed)
        finally:
            s.close(cancel=True, timeout=10.0)
        # every future resolved: shed, cancelled, or (wedge) rerouted-or-
        # cancelled — zero hung futures is the whole point
        for f in [wedge, *futs]:
            r = f.result(timeout=10)
            assert r.ok or r.error_type in {
                "AdmissionRejected",
                "RequestCancelled",
                "WorkerFailure",
            }

    def test_expired_deadline_shed_at_admission(self):
        with ShardScheduler(shards=1, heartbeat_timeout_s=HB_TIMEOUT) as s:
            # deadline_s must be positive at construction; a microscopic
            # budget is expired by the time admission examines it
            r = s.submit(
                SubmitRequest("GGGGCCCC", "GGGGCCCC", id="dl", deadline_s=1e-9)
            ).result(timeout=10)
            assert not r.ok
            assert r.error_type == "DeadlineExceeded"
            assert s.stats["admission"]["shed_deadline"] >= 1


class TestDegradedFallback:
    def test_pool_collapse_degrades_to_in_process(self):
        """With no respawn budget, the only shard's death fails the pool
        and requests complete in-process (shard == -2) — degraded, not
        dead, and still bit-exact."""
        plan = FaultPlan(seed=13, shard_kills=[(0, 1)])
        with ShardScheduler(
            shards=1,
            max_respawns=0,
            faults=plan,
            heartbeat_timeout_s=HB_TIMEOUT,
        ) as s:
            first = s.submit(SubmitRequest("GGGG", "CCCC", id="die"))
            r1 = first.result(timeout=30)
            results = s.serve_all(
                [SubmitRequest("GCAUGC", "AUGCAU", id="after")]
            )
            st = s.stats
        assert st["deaths"] >= 1
        assert st["respawns"] == 0
        assert s.degraded
        # the request that rode the dying worker was replayed somewhere
        # safe; everything afterwards runs in-process
        assert r1.ok and r1.score == bpmax("GGGG", "CCCC").score
        (r2,) = results
        assert r2.ok and r2.score == bpmax("GCAUGC", "AUGCAU").score
        assert r2.shard == -2
        assert st["degraded_requests"] >= 1


class TestCancellation:
    def test_close_cancel_resolves_queued_with_request_cancelled(self):
        plan = FaultPlan(seed=21, shard_hangs=[(0, 1)])
        s = ShardScheduler(
            shards=1,
            queue_limit=32,
            pipeline_depth=1,
            faults=plan,
            hang_timeout_s=60.0,
            heartbeat_timeout_s=HB_TIMEOUT,
        )
        wedge = s.submit(SubmitRequest("GGGG", "CCCC", id="wedge"))
        queued = [
            s.submit(SubmitRequest("GCAUGC", "AUGCAU", id=f"q{i}"))
            for i in range(3)
        ]
        s.close(cancel=True, timeout=10.0)
        for f in queued:
            r = f.result(timeout=10)
            assert not r.ok
            assert r.error_type == "RequestCancelled"
            assert isinstance(RequestCancelled(""), BpmaxError)
        r = wedge.result(timeout=10)
        assert not r.ok  # cancelled or failed, but resolved
