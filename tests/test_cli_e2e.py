"""End-to-end CLI tests: real subprocesses, real exit codes.

The in-process tests in ``test_cli.py`` exercise ``main()`` directly;
these spawn ``python -m repro`` the way a user (or a pipeline) would, so
they also cover argument parsing, stdout/stderr separation, JSONL piping
through stdin, and the exit-code contract (0 ok, 2 structured error).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[1] / "src")


def run_cli(*args: str, stdin: str | None = None, env: dict | None = None):
    """Run ``python -m repro <args>`` and return the completed process."""
    full_env = {**os.environ, "PYTHONPATH": SRC, **(env or {})}
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=120,
        env=full_env,
    )


class TestRun:
    def test_run_and_exit_zero(self):
        p = run_cli("run", "GGGG", "CCCC")
        assert p.returncode == 0
        assert "score" in p.stdout and "12" in p.stdout

    def test_backend_selection(self):
        p = run_cli("run", "GGGG", "CCCC", "--variant", "batched",
                    "--backend", "numpy")
        assert p.returncode == 0 and "12" in p.stdout

    def test_unknown_backend_exits_two(self):
        p = run_cli("run", "GGGG", "CCCC", "--backend", "fpga")
        assert p.returncode == 2
        assert "error" in p.stderr.lower()

    def test_invalid_sequence_exits_two(self):
        p = run_cli("run", "GXGG", "CCCC")
        assert p.returncode == 2
        assert "error" in p.stderr.lower()

    def test_backends_listing(self):
        p = run_cli("backends")
        assert p.returncode == 0 and "numpy" in p.stdout
        assert "capabilities:" in p.stdout

    def test_tiled_backend_selection_threaded(self):
        p = run_cli("run", "GGGG", "CCCC", "--variant", "batched",
                    "--backend", "tiled", "--threads", "2")
        assert p.returncode == 0 and "12" in p.stdout


class TestTune:
    def test_tune_writes_cache(self, tmp_path):
        cache = tmp_path / "autotune.json"
        p = run_cli("tune", "--n", "8", "--m", "6", "--threads", "2",
                    "--repeats", "1",
                    env={"BPMAX_TUNE_CACHE": str(cache)})
        assert p.returncode == 0
        assert "best" in p.stdout and cache.exists()
        data = json.loads(cache.read_text())
        assert data["version"] == 1 and data["entries"]

    def test_tune_no_persist(self, tmp_path):
        cache = tmp_path / "autotune.json"
        p = run_cli("tune", "--n", "6", "--m", "5", "--repeats", "1",
                    "--candidates", "1,6", "--no-persist",
                    env={"BPMAX_TUNE_CACHE": str(cache)})
        assert p.returncode == 0 and not cache.exists()

    def test_tune_bad_candidates_exits_two(self):
        p = run_cli("tune", "--n", "6", "--m", "5", "--candidates", "0,99")
        assert p.returncode == 2 and "error" in p.stderr.lower()


class TestMetricsAndReport:
    def test_metrics_out_then_report(self, tmp_path):
        out = tmp_path / "metrics.json"
        p = run_cli("run", "GGGG", "CCCC", "--metrics-out", str(out))
        assert p.returncode == 0 and out.exists()
        rep = run_cli("report", str(out))
        assert rep.returncode == 0 and rep.stdout.strip()

    def test_report_on_missing_file_exits_two(self, tmp_path):
        p = run_cli("report", str(tmp_path / "nope.json"))
        assert p.returncode == 2


class TestServe:
    def _lines(self, *objs: dict) -> str:
        return "\n".join(json.dumps(o) for o in objs) + "\n"

    def test_serve_from_stdin(self):
        stdin = self._lines(
            {"seq1": "GGGG", "seq2": "CCCC", "id": "a"},
            {"seq1": "GCAU", "seq2": "AUGC", "id": "b"},
        )
        p = run_cli("serve", "-", stdin=stdin)
        assert p.returncode == 0
        results = [json.loads(line) for line in p.stdout.splitlines()]
        assert [r["id"] for r in results] == ["a", "b"]
        assert results[0]["score"] == 12.0 and results[0]["ok"]

    def test_serve_from_file_with_out_and_stats(self, tmp_path):
        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(
            "# demo workload\n\n"
            + self._lines(
                {"seq1": "GGGG", "seq2": "CCCC", "id": "a"},
                {"seq1": "GGGG", "seq2": "CCCC", "id": "dup"},
            )
        )
        out = tmp_path / "out.jsonl"
        p = run_cli("serve", str(reqs), "--out", str(out), "--stats")
        assert p.returncode == 0
        results = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(results) == 2
        assert all(r["score"] == 12.0 for r in results)
        assert "serve:" in p.stderr  # stats land on stderr, results in the file

    def test_serve_poisoned_line_degrades_not_dies(self):
        stdin = self._lines(
            {"seq1": "GGGG", "seq2": "CCCC", "id": "good"},
            {"seq1": "", "seq2": "CCCC", "id": "bad"},
        )
        p = run_cli("serve", "-", stdin=stdin)
        assert p.returncode == 0  # without --strict the service reports, not fails
        by_id = {r["id"]: r for r in map(json.loads, p.stdout.splitlines())}
        assert by_id["good"]["ok"] and not by_id["bad"]["ok"]

    def test_serve_strict_exits_two_on_failures(self):
        stdin = self._lines({"seq1": "", "seq2": "CCCC", "id": "bad"})
        p = run_cli("serve", "-", "--strict", stdin=stdin)
        assert p.returncode == 2

    def test_serve_malformed_jsonl_exits_two(self):
        p = run_cli("serve", "-", stdin="{broken\n")
        assert p.returncode == 2
        assert "line 1" in p.stderr

    def test_serve_empty_input_exits_two(self):
        p = run_cli("serve", "-", stdin="# only comments\n")
        assert p.returncode == 2

    def test_serve_sharded_tier(self, tmp_path):
        out = tmp_path / "out.jsonl"
        stdin = self._lines(
            {"seq1": "GGGG", "seq2": "CCCC", "id": "a"},
            {"seq1": "GCAUGC", "seq2": "AUGCAU", "id": "b",
             "priority": "interactive"},
            {"seq1": "GGGG", "seq2": "CCCC", "id": "dup"},
        )
        p = run_cli("serve", "-", "--shards", "2", "--queue-limit", "8",
                    "--out", str(out), "--stats", stdin=stdin)
        assert p.returncode == 0
        results = {r["id"]: r for line in out.read_text().splitlines()
                   for r in [json.loads(line)]}
        assert results["a"]["ok"] and results["a"]["score"] == 12.0
        assert results["b"]["ok"] and results["b"]["score"] == 15.0
        assert results["a"]["shard"] >= 0
        # identical content routes to one shard and reuses its cache
        assert results["dup"]["shard"] == results["a"]["shard"]
        assert results["dup"]["cached"]
        stats = json.loads(p.stderr.split("serve: ", 1)[1])
        assert stats["deaths"] == 0 and stats["admission"]["admitted"] == 3

    def test_serve_sharded_bad_flags_exit_two(self):
        stdin = self._lines({"seq1": "G", "seq2": "C"})
        p = run_cli("serve", "-", "--shards", "-1", stdin=stdin)
        assert p.returncode == 2
        p = run_cli("serve", "-", "--shards", "2", "--queue-limit", "0",
                    stdin=stdin)
        assert p.returncode == 2

    def test_serve_missing_file_exits_two(self, tmp_path):
        p = run_cli("serve", str(tmp_path / "missing.jsonl"))
        assert p.returncode == 2


class TestSubmitServePipeline:
    def test_submit_output_feeds_serve(self, tmp_path):
        reqs = tmp_path / "reqs.jsonl"
        for seqs in (("GGGG", "CCCC"), ("GCAU", "AUGC")):
            p = run_cli("submit", *seqs, "--out", str(reqs))
            assert p.returncode == 0
        p = run_cli("serve", str(reqs))
        assert p.returncode == 0
        results = [json.loads(line) for line in p.stdout.splitlines()]
        assert len(results) == 2 and all(r["ok"] for r in results)

    def test_submit_emits_one_json_line(self):
        p = run_cli("submit", "GGGG", "CCCC", "--id", "x", "--deadline", "5",
                    "--fallback", "hybrid,coarse")
        assert p.returncode == 0
        data = json.loads(p.stdout)
        assert data == {
            "seq1": "GGGG", "seq2": "CCCC", "id": "x",
            "deadline": 5.0, "fallback": ["hybrid", "coarse"],
        }

    def test_submit_priority_round_trips_through_serve(self, tmp_path):
        p = run_cli("submit", "GGGG", "CCCC", "--id", "vip",
                    "--priority", "interactive")
        assert p.returncode == 0
        assert json.loads(p.stdout)["priority"] == "interactive"
        p = run_cli("serve", "-", stdin=p.stdout)
        assert p.returncode == 0
        assert json.loads(p.stdout)["ok"]

    def test_submit_bad_fallback_exits_two(self):
        p = run_cli("submit", "G", "C", "--fallback", "warp-drive")
        assert p.returncode == 2


class TestGolden:
    def test_golden_verifies_checked_in_manifest(self):
        p = run_cli("golden")
        assert p.returncode == 0
        assert "conform" in p.stdout

    def test_golden_regen_refused_under_ci(self, tmp_path):
        p = run_cli(
            "golden", "--regen", "--manifest", str(tmp_path / "m.json"),
            env={"CI": "true"},
        )
        assert p.returncode == 2
        assert "refusing" in p.stderr
        assert not (tmp_path / "m.json").exists()

    def test_golden_detects_tampered_manifest(self, tmp_path):
        from repro.golden import default_manifest_path

        data = json.loads(default_manifest_path().read_text())
        data["cases"]["gc-only-4"]["score"] = 999.0
        tampered = tmp_path / "m.json"
        tampered.write_text(json.dumps(data))
        p = run_cli("golden", "--manifest", str(tampered))
        assert p.returncode == 2
        assert "MISMATCH" in p.stderr


class TestUsageErrors:
    def test_no_command_is_usage_error(self):
        p = run_cli()
        assert p.returncode == 2  # argparse usage error

    def test_unknown_variant_is_usage_error(self):
        p = run_cli("run", "G", "C", "--variant", "bogus")
        assert p.returncode == 2
