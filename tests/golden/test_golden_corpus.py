"""Golden-corpus conformance: every engine × backend × semiring.

The manifest (``manifest.json``, checked in next to this file) pins one
value *per semiring* per curated pair — each with its tolerance policy
— and one structured-error type per invalid input.  These tests hold
every engine variant and every registered kernel backend to those
pins under each pin's own contract: max-plus **exactly** (float
equality, no tolerance), log-sum-exp within its pinned 1e-9
``atol``/``rtol`` — and hold the serving layer to the same contract,
cached and uncached.

Regenerating the pins is deliberately manual: ``bpmax golden --regen``
(refused under CI, see test below); the regen cross-checks fresh
log-sum-exp pins against the recursive BPPart reference.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro.core.api import bpmax, serve_many
from repro.golden import (
    CROSSCHECK_MAX_LEN,
    ERROR_CASES,
    GOLDEN_CASES,
    MANIFEST_SEMIRINGS,
    MANIFEST_VERSION,
    TOLERANCES,
    load_manifest,
    regen_manifest,
    verify_manifest,
)
from repro.kernels import BACKENDS
from repro.robust.errors import BpmaxError, InvalidSequenceError
from repro.serve.request import SubmitRequest, scoring_fingerprint
from repro.rna.scoring import DEFAULT_MODEL

MANIFEST = Path(__file__).parent / "manifest.json"

#: engine configurations held to the manifest: every variant, and the
#: batched variant once per registered backend (unavailable backends
#: fall back transparently and must *still* conform)
ENGINE_CONFIGS = [
    ("coarse", None),
    ("fine", None),
    ("hybrid", None),
    ("hybrid-tiled", None),
    ("batched", None),
] + [("batched", name) for name in sorted(BACKENDS)]

#: the scalar reference engine is held to the pins on the cases it can
#: finish quickly; the vectorized engines cover the rest
BASELINE_MAX_LEN = 12


@pytest.fixture(scope="module")
def manifest() -> dict:
    return load_manifest(MANIFEST)


class TestManifest:
    def test_manifest_is_checked_in(self):
        assert MANIFEST.exists(), (
            "tests/golden/manifest.json is missing; run 'bpmax golden --regen' "
            "locally and commit the result"
        )

    def test_version_and_model_fingerprint(self, manifest):
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["model"] == scoring_fingerprint(DEFAULT_MODEL)

    def test_manifest_covers_whole_corpus(self, manifest):
        assert set(manifest["cases"]) == {c.name for c in GOLDEN_CASES}
        assert set(manifest["errors"]) == {name for name, *_ in ERROR_CASES}

    def test_corpus_has_curated_coverage(self):
        """The corpus keeps its required shape classes (guards future edits)."""
        names = {c.name for c in GOLDEN_CASES}
        assert {"gc-only-4", "wobble-heavy-12", "len1-pairable"} <= names
        assert any(c.n != c.m for c in GOLDEN_CASES), "needs asymmetric cases"
        assert any(c.n == 1 or c.m == 1 for c in GOLDEN_CASES), "needs length-1"
        assert {name for name, *_ in ERROR_CASES} >= {"empty-seq1", "empty-seq2"}

    def test_every_case_pins_every_semiring_with_policy(self, manifest):
        """Each case carries one pin per semiring, stamped atol/rtol/exact."""
        for name, pin in manifest["cases"].items():
            assert set(pin["semirings"]) == set(MANIFEST_SEMIRINGS), name
            for sr_name, sr_pin in pin["semirings"].items():
                atol, rtol = TOLERANCES[sr_name]
                assert sr_pin["atol"] == atol and sr_pin["rtol"] == rtol, name
                assert sr_pin["exact"] == (atol == rtol == 0.0), name
                assert isinstance(sr_pin["value"], float), name
            # the top-level score mirrors the exact max-plus pin
            assert pin["score"] == pin["semirings"]["max-plus"]["value"], name
            # a log-partition value can only add mass over the best path
            assert (
                pin["semirings"]["logsumexp"]["value"]
                >= pin["semirings"]["max-plus"]["value"]
            ), name


class TestConformance:
    @pytest.mark.parametrize("semiring", MANIFEST_SEMIRINGS)
    @pytest.mark.parametrize(
        "variant,backend",
        ENGINE_CONFIGS,
        ids=[f"{v}+{b}" if b else v for v, b in ENGINE_CONFIGS],
    )
    def test_engine_matches_manifest(self, variant, backend, semiring):
        problems = verify_manifest(
            MANIFEST, variant=variant, backend=backend, semirings=(semiring,)
        )
        assert problems == []

    def test_baseline_matches_manifest_on_small_cases(self, manifest):
        checked = 0
        for case in GOLDEN_CASES:
            if max(case.n, case.m) > BASELINE_MAX_LEN:
                continue
            got = bpmax(case.seq1, case.seq2, variant="baseline").score
            assert got == manifest["cases"][case.name]["score"], case.name
            checked += 1
        assert checked >= 8  # the corpus must keep enough baseline-sized cases

    def test_error_cases_raise_pinned_types(self, manifest):
        for name, seq1, seq2, _ in ERROR_CASES:
            pinned = manifest["errors"][name]["error"]
            with pytest.raises(BpmaxError) as exc_info:
                bpmax(seq1, seq2)
            assert type(exc_info.value).__name__ == pinned, name
            assert isinstance(exc_info.value, InvalidSequenceError)

    def test_logsumexp_pins_match_recursive_bppart(self, manifest):
        """Pinned log-partition values come from the same quantity the
        recursive BPPart reference computes (small cases: the reference
        is O(n^2 m^2) memoized Python)."""
        from repro.core.bppart import bppart_recursive
        from repro.core.reference import prepare_inputs

        atol, rtol = TOLERANCES["logsumexp"]
        checked = 0
        for case in GOLDEN_CASES:
            if max(case.n, case.m) > CROSSCHECK_MAX_LEN:
                continue
            ref = bppart_recursive(
                prepare_inputs(case.seq1, case.seq2, semiring="logsumexp")
            )
            pin = manifest["cases"][case.name]["semirings"]["logsumexp"]["value"]
            assert math.isclose(ref, pin, rel_tol=rtol, abs_tol=atol), case.name
            checked += 1
        assert checked >= 8  # keep enough reference-sized cases


class TestServingConformance:
    """The serving layer is held to the same pins as the engines."""

    def test_serve_many_matches_manifest(self, manifest):
        # each pair twice: the second copy must come back (coalesced or
        # cached) with the identical pinned score
        requests = [
            SubmitRequest(c.seq1, c.seq2, id=f"{c.name}#{k}")
            for k in range(2)
            for c in GOLDEN_CASES
        ]
        results = serve_many(requests, workers=2)
        by_name = {c.name: manifest["cases"][c.name]["score"] for c in GOLDEN_CASES}
        for r in results:
            assert r.ok, (r.id, r.error)
            assert r.score == by_name[r.id.rsplit("#", 1)[0]], r.id
        assert any(r.cached for r in results)

    def test_serve_many_logsumexp_within_pinned_tolerance(self, manifest):
        requests = [
            SubmitRequest(c.seq1, c.seq2, id=c.name, semiring="logsumexp")
            for c in GOLDEN_CASES
        ]
        results = serve_many(requests, workers=2)
        for r in results:
            assert r.ok, (r.id, r.error)
            pin = manifest["cases"][r.id]["semirings"]["logsumexp"]
            assert math.isclose(
                r.score, pin["value"], rel_tol=pin["rtol"], abs_tol=pin["atol"]
            ), r.id

    def test_poisoned_corpus_requests_fail_cleanly(self):
        requests = [SubmitRequest(seq1, seq2, id=name) for name, seq1, seq2, _ in ERROR_CASES]
        requests.append(SubmitRequest("GGGG", "CCCC", id="good"))
        results = serve_many(requests)
        by_id = {r.id: r for r in results}
        assert by_id["good"].ok and by_id["good"].score == 12.0
        for name, *_ , pinned in ERROR_CASES:
            assert not by_id[name].ok
            assert by_id[name].error_type == pinned


class TestRegenGuard:
    def test_regen_refuses_under_ci(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CI", "true")
        with pytest.raises(BpmaxError, match="refusing"):
            regen_manifest(tmp_path / "manifest.json")
        assert not (tmp_path / "manifest.json").exists()

    def test_regen_outside_ci_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.delenv("CI", raising=False)
        monkeypatch.delenv("GITHUB_ACTIONS", raising=False)
        p = regen_manifest(tmp_path / "manifest.json")
        fresh = load_manifest(p)
        pinned = load_manifest(MANIFEST)
        assert fresh["cases"] == pinned["cases"], (
            "freshly computed scores differ from the checked-in manifest"
        )
        assert fresh["errors"] == pinned["errors"]
