"""OpenMP-style loop schedulers: static, dynamic and guided.

The paper finds that "OMP dynamic-schedule works better than the static
and guided-schedule due to an imbalanced workload" (§IV-C-d): BPMax's
triangles shrink as the wavefront advances, so equal-sized static chunks
leave threads idle.  These schedulers reproduce the three OpenMP policies
as deterministic chunk-assignment algorithms plus a makespan simulator,
so the claim is testable without OpenMP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Chunk",
    "static_schedule",
    "dynamic_schedule",
    "guided_schedule",
    "simulate_makespan",
    "SCHEDULERS",
]


@dataclass(frozen=True)
class Chunk:
    """A contiguous range of iterations assigned to one thread."""

    start: int
    stop: int  # exclusive
    thread: int

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(f"empty chunk [{self.start}, {self.stop})")

    @property
    def indices(self) -> range:
        return range(self.start, self.stop)


def static_schedule(
    n: int, threads: int, chunk: int | None = None
) -> list[Chunk]:
    """OpenMP ``schedule(static[, chunk])``: round-robin fixed chunks."""
    _check(n, threads)
    if n == 0:
        return []
    if chunk is None:
        chunk = -(-n // threads)  # one block per thread
    if chunk <= 0:
        raise ValueError(f"chunk must be > 0, got {chunk}")
    out: list[Chunk] = []
    t = 0
    for start in range(0, n, chunk):
        out.append(Chunk(start, min(start + chunk, n), t % threads))
        t += 1
    return out


def dynamic_schedule(
    n: int,
    threads: int,
    cost: Callable[[int], float] | Sequence[float] | None = None,
    chunk: int = 1,
) -> list[Chunk]:
    """OpenMP ``schedule(dynamic[, chunk])``: chunks grabbed by the thread
    that finishes earliest (simulated with the given per-iteration costs).
    """
    _check(n, threads)
    if chunk <= 0:
        raise ValueError(f"chunk must be > 0, got {chunk}")
    costs = _costs(n, cost)
    finish = np.zeros(threads)
    out: list[Chunk] = []
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        t = int(np.argmin(finish))
        finish[t] += float(np.sum(costs[start:stop]))
        out.append(Chunk(start, stop, t))
    return out


def guided_schedule(
    n: int,
    threads: int,
    cost: Callable[[int], float] | Sequence[float] | None = None,
    min_chunk: int = 1,
) -> list[Chunk]:
    """OpenMP ``schedule(guided)``: exponentially shrinking chunks,
    each grabbed by the earliest-finishing thread."""
    _check(n, threads)
    if min_chunk <= 0:
        raise ValueError(f"min_chunk must be > 0, got {min_chunk}")
    costs = _costs(n, cost)
    finish = np.zeros(threads)
    out: list[Chunk] = []
    start = 0
    while start < n:
        remaining = n - start
        size = max(min_chunk, remaining // (2 * threads) or 1)
        stop = min(start + size, n)
        t = int(np.argmin(finish))
        finish[t] += float(np.sum(costs[start:stop]))
        out.append(Chunk(start, stop, t))
        start = stop
    return out


def simulate_makespan(
    chunks: Sequence[Chunk],
    cost: Callable[[int], float] | Sequence[float],
    threads: int,
) -> float:
    """Parallel completion time of a chunk assignment.

    Chunks assigned to the same thread execute in list order; threads run
    concurrently, so the makespan is the maximum per-thread total.
    """
    n = max((c.stop for c in chunks), default=0)
    costs = _costs(n, cost)
    totals = np.zeros(threads)
    for c in chunks:
        if not 0 <= c.thread < threads:
            raise ValueError(f"chunk {c} assigned to invalid thread")
        totals[c.thread] += float(np.sum(costs[c.start : c.stop]))
    return float(totals.max(initial=0.0))


def _check(n: int, threads: int) -> None:
    if n < 0:
        raise ValueError(f"iteration count must be >= 0, got {n}")
    if threads <= 0:
        raise ValueError(f"thread count must be > 0, got {threads}")


def _costs(
    n: int, cost: Callable[[int], float] | Sequence[float] | None
) -> np.ndarray:
    if cost is None:
        return np.ones(n)
    if callable(cost):
        return np.array([float(cost(i)) for i in range(n)])
    arr = np.asarray(cost, dtype=float)
    if len(arr) < n:
        raise ValueError(f"cost sequence has {len(arr)} entries, need {n}")
    return arr[:n]


SCHEDULERS = {
    "static": static_schedule,
    "dynamic": dynamic_schedule,
    "guided": guided_schedule,
}
