"""Multi-thread execution of dependence DAGs: simulated and real.

The coarse-grain / fine-grain / hybrid parallelization styles of the
paper differ in *what a thread grabs*: a whole inner triangle, a row of a
triangle, or a mix.  With one physical core available we simulate the
thread-level behaviour: an event-driven list scheduler executes a task
DAG on ``P`` virtual workers, each task with a given cost, respecting
dependences — yielding makespans, utilization and the load-imbalance
effects the paper reports (e.g. fine-grain leaves all but one thread
idle on R1/R2-style chains).

:func:`execute_dag` is the *real* counterpart: the same dependence-
counting policy, but dispatching actual task bodies onto a
:class:`~repro.parallel.pool.ParallelRunner` — the scheduler behind the
tiled wavefront backend (:mod:`repro.kernels.tiled_backend`).
"""

from __future__ import annotations

import heapq
import time as _time
from concurrent.futures import FIRST_COMPLETED, wait as _fut_wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable, Mapping

import networkx as nx

from ..observe.tracer import trace

if TYPE_CHECKING:  # pragma: no cover
    from .pool import ParallelRunner

__all__ = [
    "SimResult",
    "DagStats",
    "simulate_dag",
    "execute_dag",
    "wavefront_levels",
    "triangle_task_graph",
]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated parallel execution."""

    makespan: float
    total_work: float
    threads: int
    start_times: dict[Hashable, float]
    finish_times: dict[Hashable, float]
    thread_of: dict[Hashable, int]

    @property
    def speedup(self) -> float:
        """Parallel speedup over sequential execution of the same work."""
        return self.total_work / self.makespan if self.makespan > 0 else 1.0

    @property
    def utilization(self) -> float:
        """Fraction of thread-time spent doing work."""
        return self.total_work / (self.makespan * self.threads) if self.makespan else 1.0


def simulate_dag(
    graph: nx.DiGraph,
    threads: int,
    cost: Callable[[Hashable], float] | Mapping[Hashable, float] | None = None,
) -> SimResult:
    """List-schedule ``graph`` on ``threads`` virtual workers.

    Ready tasks are dispatched to idle workers in deterministic (sorted)
    order; a task becomes ready when all predecessors finished.  This is
    greedy list scheduling — the same policy an OpenMP dynamic loop over
    a wavefront implements.
    """
    if threads <= 0:
        raise ValueError(f"threads must be > 0, got {threads}")
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("task graph must be acyclic")

    def task_cost(t: Hashable) -> float:
        if cost is None:
            return 1.0
        c = cost(t) if callable(cost) else cost[t]
        if c < 0:
            raise ValueError(f"negative cost for task {t!r}")
        return float(c)

    indeg = {t: graph.in_degree(t) for t in graph.nodes}
    ready = sorted((t for t, d in indeg.items() if d == 0), key=repr)
    worker_free = [0.0] * threads
    # event heap of (finish_time, seq, task, worker)
    events: list[tuple[float, int, Hashable, int]] = []
    seq = 0
    start: dict[Hashable, float] = {}
    finish: dict[Hashable, float] = {}
    thread_of: dict[Hashable, int] = {}
    now = 0.0

    def dispatch() -> None:
        nonlocal seq
        while ready:
            w = min(range(threads), key=lambda i: worker_free[i])
            if worker_free[w] > now and events:
                break
            t = ready.pop(0)
            s = max(now, worker_free[w])
            c = task_cost(t)
            start[t] = s
            finish[t] = s + c
            thread_of[t] = w
            worker_free[w] = s + c
            heapq.heappush(events, (s + c, seq, t, w))
            seq += 1

    with trace(
        "wavefront.simulate", tasks=graph.number_of_nodes(), threads=threads
    ):
        dispatch()
        while events:
            now, _, done, _ = heapq.heappop(events)
            for succ in graph.successors(done):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
            ready.sort(key=repr)
            dispatch()

    if len(finish) != graph.number_of_nodes():
        raise RuntimeError("scheduler failed to execute every task")
    total = sum(task_cost(t) for t in graph.nodes)
    return SimResult(
        makespan=max(finish.values(), default=0.0),
        total_work=total,
        threads=threads,
        start_times=start,
        finish_times=finish,
        thread_of=thread_of,
    )


@dataclass(frozen=True)
class DagStats:
    """Outcome of one real dependence-DAG execution."""

    tasks: int
    rounds: int
    idle_ns: int
    wall_s: float


def execute_dag(
    graph: nx.DiGraph,
    runner: "ParallelRunner",
    task_fn: Callable[[Hashable], Any],
    on_complete: Callable[[Hashable, Any], None] | None = None,
    key: Callable[[Hashable], Any] | None = None,
) -> DagStats:
    """Execute a dependence DAG for real on a :class:`ParallelRunner`.

    Dependence counting: a task is submitted once all its predecessors
    completed, with at most ``runner.threads`` tasks in flight; ready
    tasks dispatch in deterministic (``key``-sorted) order — the same
    greedy list-scheduling policy :func:`simulate_dag` models.  With
    ``threads == 1`` the runner resolves each submit inline, so this
    degenerates to a deterministic sequential topological execution with
    no executor machinery at all.

    ``on_complete(task, result)`` runs on the *coordinating* thread as
    each task retires, in completion order — the safe place for counter
    updates and checkpoint bookkeeping that must not race with workers.

    The first task exception cancels all not-yet-submitted work, drains
    tasks already in flight, and is re-raised.  ``idle_ns`` accumulates
    coordinator wait time while at least one worker slot was empty (the
    scheduler's exposed dependence stalls).
    """
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("task graph must be acyclic")
    sort_key = repr if key is None else key
    indeg = {t: graph.in_degree(t) for t in graph.nodes}
    ready = sorted((t for t, d in indeg.items() if d == 0), key=sort_key)
    in_flight: dict[Any, Hashable] = {}
    tasks = rounds = idle_ns = 0
    error: BaseException | None = None
    t_start = _time.perf_counter()
    with trace(
        "wavefront.execute", tasks=graph.number_of_nodes(), threads=runner.threads
    ):
        while ready or in_flight:
            while ready and len(in_flight) < runner.threads and error is None:
                t = ready.pop(0)
                in_flight[runner.submit(task_fn, t)] = t
            if not in_flight:
                break  # error path with nothing left running
            starved = len(in_flight) < runner.threads
            t0 = _time.perf_counter_ns()
            done, _ = _fut_wait(list(in_flight), return_when=FIRST_COMPLETED)
            if starved:
                idle_ns += _time.perf_counter_ns() - t0
            rounds += 1
            newly: list[Hashable] = []
            for fut in done:
                t = in_flight.pop(fut)
                exc = fut.exception()
                if exc is not None:
                    if error is None:
                        error = exc
                    continue
                tasks += 1
                if on_complete is not None:
                    on_complete(t, fut.result())
                for succ in graph.successors(t):
                    indeg[succ] -= 1
                    if indeg[succ] == 0:
                        newly.append(succ)
            if newly and error is None:
                ready.extend(newly)
                ready.sort(key=sort_key)
    if error is not None:
        raise error
    if tasks != graph.number_of_nodes():
        raise RuntimeError("scheduler failed to execute every task")
    return DagStats(
        tasks=tasks,
        rounds=rounds,
        idle_ns=idle_ns,
        wall_s=_time.perf_counter() - t_start,
    )


def wavefront_levels(graph: nx.DiGraph) -> list[list[Hashable]]:
    """Partition a DAG into wavefronts (longest-path levels)."""
    levels: dict[Hashable, int] = {}
    for t in nx.topological_sort(graph):
        levels[t] = 1 + max((levels[p] for p in graph.predecessors(t)), default=-1)
    out: list[list[Hashable]] = [[] for _ in range(max(levels.values(), default=-1) + 1)]
    for t, lv in levels.items():
        out[lv].append(t)
    return out


def triangle_task_graph(n: int, granularity: str = "triangle") -> nx.DiGraph:
    """Task DAG of BPMax's outer triangle computation.

    Each task is one inner triangle ``(i1, j1)`` (coarse-grain) or one
    row of it (fine-grain surrogate); triangle ``(i1, j1)`` depends on its
    west ``(i1, j1-1)`` and south ``(i1+1, j1)`` neighbours (paper Fig. 4).
    """
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    if granularity not in ("triangle", "row"):
        raise ValueError(f"granularity must be 'triangle' or 'row', got {granularity!r}")
    g = nx.DiGraph()
    for i1 in range(n):
        for j1 in range(i1, n):
            g.add_node((i1, j1))
            if j1 - 1 >= i1:
                g.add_edge((i1, j1 - 1), (i1, j1))
            if i1 + 1 <= j1:
                g.add_edge((i1 + 1, j1), (i1, j1))
    if granularity == "row":
        # split each triangle task into one task per strand-2 row block;
        # rows of one triangle are mutually independent (fine-grain)
        rg = nx.DiGraph()
        for i1, j1 in g.nodes:
            for r in range(4):
                rg.add_node((i1, j1, r))
        for u, v in g.edges:
            for ru in range(4):
                for rv in range(4):
                    rg.add_edge((*u, ru), (*v, rv))
        return rg
    return g
