"""Real thread-pool execution for NumPy kernels.

NumPy releases the GIL inside ufunc loops, so row-level fine-grain
parallelism maps onto a :class:`~concurrent.futures.ThreadPoolExecutor`.
On this reproduction's single-core host the pool mainly demonstrates the
code path; thread-scaling *curves* come from the simulator
(:mod:`repro.parallel.wavefront`) and the perf model.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ParallelRunner"]


class ParallelRunner:
    """A reusable worker pool with OpenMP-flavoured helpers."""

    def __init__(self, threads: int = 1) -> None:
        if threads <= 0:
            raise ValueError(f"threads must be > 0, got {threads}")
        self.threads = threads
        self._pool = ThreadPoolExecutor(max_workers=threads) if threads > 1 else None

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item (ordered results)."""
        if self._pool is None:
            return [fn(x) for x in items]
        return list(self._pool.map(fn, items))

    def parallel_for(self, fn: Callable[[int], None], n: int) -> None:
        """``#pragma omp parallel for`` over ``range(n)``."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self.map(fn, range(n))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
