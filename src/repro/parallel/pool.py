"""Real thread-pool execution for NumPy kernels.

NumPy releases the GIL inside ufunc loops, so row-level fine-grain
parallelism maps onto a :class:`~concurrent.futures.ThreadPoolExecutor`.
On this reproduction's single-core host the pool mainly demonstrates the
code path; thread-scaling *curves* come from the simulator
(:mod:`repro.parallel.wavefront`) and the perf model.

Failure semantics: a worker exception cancels all still-queued tasks of
the same ``map`` call and re-raises the first failure (in task order) —
no silently half-completed maps — and using a pool after ``close()``
raises a clear error instead of degrading to serial execution.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from ..observe.tracer import trace

if TYPE_CHECKING:  # pragma: no cover
    from ..robust.faults import FaultPlan

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ParallelRunner"]


class ParallelRunner:
    """A reusable worker pool with OpenMP-flavoured helpers.

    Parameters
    ----------
    threads: worker count; 1 runs inline without an executor.
    faults: optional :class:`~repro.robust.faults.FaultPlan` polled
        (via ``pool_task``) before each mapped task — the injection
        point the fault-recovery tests and benchmarks use.
    """

    def __init__(self, threads: int = 1, faults: "FaultPlan | None" = None) -> None:
        if threads <= 0:
            raise ValueError(f"threads must be > 0, got {threads}")
        self.threads = threads
        self._faults = faults
        self._closed = False
        self._pool = ThreadPoolExecutor(max_workers=threads) if threads > 1 else None

    def _run_task(self, fn: Callable[[T], R], index: int, item: T) -> R:
        if self._faults is not None:
            self._faults.pool_task(index)
        return fn(item)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item (ordered results).

        The first worker exception cancels every not-yet-started task
        and is re-raised; tasks already running finish on their own.
        """
        if self._closed:
            raise RuntimeError(
                "ParallelRunner is closed; create a new pool (or use it as a "
                "context manager) instead of reusing a shut-down one"
            )
        items = list(items)
        with trace("pool.map", tasks=len(items), threads=self.threads):
            if self._pool is None:
                # inline path: an exception naturally cancels the remainder
                return [self._run_task(fn, i, x) for i, x in enumerate(items)]
            futures = [
                self._pool.submit(self._run_task, fn, i, x)
                for i, x in enumerate(items)
            ]
            results: list[R] = []
            error: BaseException | None = None
            for fut in futures:
                if error is not None:
                    fut.cancel()
                    continue
                try:
                    results.append(fut.result())
                except BaseException as exc:
                    error = exc
            if error is not None:
                raise error
            return results

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Fire-and-forget one task; the returned future resolves with
        its result (or exception).

        The serving layer's dispatcher uses this to overlap batch
        executions.  With ``threads == 1`` the task runs inline and the
        future comes back already resolved, preserving the pool's
        no-hidden-concurrency contract.
        """
        if self._closed:
            raise RuntimeError(
                "ParallelRunner is closed; create a new pool (or use it as a "
                "context manager) instead of reusing a shut-down one"
            )
        if self._pool is None:
            fut: "Future[R]" = Future()
            try:
                fut.set_result(fn(*args))
            except BaseException as exc:
                fut.set_exception(exc)
            return fut
        return self._pool.submit(fn, *args)

    def parallel_for(self, fn: Callable[[int], None], n: int) -> None:
        """``#pragma omp parallel for`` over ``range(n)``."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self.map(fn, range(n))

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
