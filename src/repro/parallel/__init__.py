"""Execution substrate: OMP-style schedulers, DAG simulator, thread pool."""

from .omp import (
    SCHEDULERS,
    Chunk,
    dynamic_schedule,
    guided_schedule,
    simulate_makespan,
    static_schedule,
)
from .mpi import ClusterSpec, CommStats, SimComm
from .osp import osp_chain_graph, osp_middle_serialized_graph, speedup_comparison
from .pool import ParallelRunner
from .wavefront import SimResult, simulate_dag, triangle_task_graph, wavefront_levels

__all__ = [
    "SCHEDULERS",
    "Chunk",
    "dynamic_schedule",
    "guided_schedule",
    "simulate_makespan",
    "static_schedule",
    "ClusterSpec",
    "CommStats",
    "SimComm",
    "osp_chain_graph",
    "osp_middle_serialized_graph",
    "speedup_comparison",
    "ParallelRunner",
    "SimResult",
    "simulate_dag",
    "triangle_task_graph",
    "wavefront_levels",
]
