"""Middle serialization for OSP-like reductions (paper §IV-C-a).

"R1 and R2 are not easy to parallelize.  These are optimum string
parenthesization (OSP)-like computations that require further
transformation like middle serialization.  If we use the fine-grain
parallelism without such transformation, only one thread stays active,
leading to lower CPU resource utilization."

An OSP-like pass over one row computes, left to right,

    G[j] = max( base[j], max_{k < j} G[k] + w[k, j] )

— every cell depends on *all* earlier cells, so the naive task graph is
a chain and fine-grain threading leaves one thread active.  *Middle
serialization* restructures the accumulation: the row is cut into
blocks; within a round, every block's cells accumulate contributions
from already-final blocks **in parallel**, and only the serialized
"middle" pass (the intra-block chain) runs sequentially.  Parallel work
grows from O(1) to O(P) per round at the cost of one extra sweep.

This module builds both task graphs and exposes the transformation so
the claim is measurable with the list-scheduling simulator: utilization
jumps from ~1/P to near 1 for wide rows.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["osp_chain_graph", "osp_middle_serialized_graph", "speedup_comparison"]


def osp_chain_graph(m: int) -> nx.DiGraph:
    """The naive task graph of one OSP-like row: a dependence chain.

    Task ``j`` finalises cell j and needs every earlier cell — which the
    chain edge ``j-1 -> j`` already enforces transitively.
    """
    if m <= 0:
        raise ValueError(f"row length must be > 0, got {m}")
    g = nx.DiGraph()
    g.add_nodes_from(range(m))
    g.add_edges_from((j - 1, j) for j in range(1, m))
    return g


def osp_middle_serialized_graph(m: int, block: int) -> nx.DiGraph:
    """The middle-serialized task graph of the same row.

    Nodes are ``("mid", b)`` — the serialized intra-block pass of block
    ``b`` — and ``("acc", b, s)`` — block ``b`` accumulating the
    contributions of the earlier, already-final block ``s``.  Edges:

    * ``("mid", b)`` needs every accumulation into ``b``;
    * ``("acc", b, s)`` needs ``("mid", s)`` (the source must be final);
    * accumulations into different blocks are independent — that is the
      recovered parallelism.
    """
    if m <= 0:
        raise ValueError(f"row length must be > 0, got {m}")
    if block <= 0:
        raise ValueError(f"block must be > 0, got {block}")
    blocks = -(-m // block)
    g = nx.DiGraph()
    for b in range(blocks):
        g.add_node(("mid", b))
        for s in range(b):
            g.add_node(("acc", b, s))
            g.add_edge(("mid", s), ("acc", b, s))
            g.add_edge(("acc", b, s), ("mid", b))
    return g


def speedup_comparison(m: int, block: int, threads: int) -> dict[str, float]:
    """Simulated utilization of chain vs middle-serialized execution.

    Costs: one chain task = 1 unit of work per cell; one accumulation
    task covers ``block`` cells' worth of updates against one source
    block (``block`` units); a ``mid`` pass is ``block`` units.  Total
    work is comparable (the serialization roughly doubles it), but the
    parallel makespan collapses.
    """
    from .wavefront import simulate_dag

    chain = simulate_dag(osp_chain_graph(m), threads)
    ms_graph = osp_middle_serialized_graph(m, block)

    def cost(task) -> float:
        return float(block)

    ms = simulate_dag(ms_graph, threads, cost=cost)
    return {
        "chain_makespan": chain.makespan,
        "chain_utilization": chain.utilization,
        "ms_makespan": ms.makespan,
        "ms_utilization": ms.utilization,
        "ms_speedup_over_chain": chain.makespan / ms.makespan
        if ms.makespan
        else 1.0,
    }
