"""Simulated message-passing cluster (the paper's MPI future work).

The conclusion plans to "distribute the computation over a cluster using
MPI".  No cluster (or mpi4py) is available here, so this module provides
a deterministic discrete-event *simulator* of a small cluster with the
standard alpha-beta communication model:

    t(message) = latency + bytes / bandwidth

Each rank has a local clock; point-to-point sends synchronize the
receiver's clock (a receive completes no earlier than the send's
completion), and collectives are built from point-to-point rounds.
Computation advances a rank's clock by ``flops / rank_flops``.

The API intentionally mirrors mpi4py's communicator surface (``send`` /
``recv`` / ``bcast`` / ``allgather`` / ``barrier``) so a real-MPI port is
mechanical; payloads are real Python/NumPy objects, which lets
:mod:`repro.core.distributed` validate the decomposition numerically
while the clocks produce the projected timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..robust.errors import MessageLost, RankFailure

if TYPE_CHECKING:  # pragma: no cover
    from ..robust.faults import FaultPlan

__all__ = ["ClusterSpec", "SimComm", "CommStats"]


@dataclass(frozen=True)
class ClusterSpec:
    """Cluster performance parameters.

    Defaults model a small commodity cluster of the paper's 6-core nodes:
    per-node effective max-plus throughput from the perf model's tiled
    kernel (~117 GFLOPS) and 100 Gb/s interconnect.  ``timeout_s`` is the
    failure-detection budget: how long a receiver waits before declaring
    a message lost (and how long survivors spend noticing a dead rank).
    """

    ranks: int
    rank_flops: float = 117e9
    latency_s: float = 2e-6
    bandwidth_bytes_per_s: float = 12.5e9
    timeout_s: float = 1e-4

    def __post_init__(self) -> None:
        if self.ranks <= 0:
            raise ValueError(f"ranks must be > 0, got {self.ranks}")
        if (
            min(
                self.rank_flops,
                self.latency_s,
                self.bandwidth_bytes_per_s,
                self.timeout_s,
            )
            <= 0
        ):
            raise ValueError("cluster parameters must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Alpha-beta cost of one message."""
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass
class CommStats:
    """Aggregate communication accounting."""

    messages: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    drops: int = 0
    rank_deaths: int = 0

    def record(self, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += nbytes


#: mailbox tombstone marking a message dropped in flight
_DROPPED = object()


def _payload_bytes(payload) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(p) for p in payload) + 8 * len(payload)
    return 64  # pickled-scalar estimate


class SimComm:
    """A simulated communicator over ``spec.ranks`` ranks.

    All ranks live in one process; the caller drives them (typically in
    a loop over ranks per superstep).  Clocks only move forward.

    Fault modes (both driven by an optional
    :class:`~repro.robust.faults.FaultPlan`): a send may be **dropped**
    in flight — the matching ``recv`` waits out ``spec.timeout_s`` and
    raises :class:`MessageLost` so the caller can re-send — and a rank
    may be **killed** (:meth:`kill`), after which any operation touching
    it raises :class:`RankFailure`.
    """

    def __init__(self, spec: ClusterSpec, faults: "FaultPlan | None" = None) -> None:
        self.spec = spec
        self.faults = faults
        self.clock = [0.0] * spec.ranks
        self.alive = [True] * spec.ranks
        self.stats = CommStats()
        self._mailbox: dict[tuple[int, int, int], tuple[float, object]] = {}
        self._send_seq: dict[tuple[int, int], int] = {}
        self._recv_seq: dict[tuple[int, int], int] = {}

    # -- mpi4py-flavoured surface -----------------------------------------

    def Get_size(self) -> int:
        return self.spec.ranks

    def alive_ranks(self) -> list[int]:
        return [r for r in range(self.spec.ranks) if self.alive[r]]

    def kill(self, rank: int) -> None:
        """Kill a rank: its clock freezes and its mailbox slots die.

        Survivors spend ``spec.timeout_s`` detecting the failure (the
        per-wavefront timeout of the self-healing executor).
        """
        self._check(rank)
        if not self.alive[rank]:
            return
        self.alive[rank] = False
        self.stats.rank_deaths += 1
        for r in self.alive_ranks():
            self.clock[r] += self.spec.timeout_s

    def compute(self, rank: int, flops: float = 0.0, seconds: float = 0.0) -> None:
        """Advance a rank's clock by compute work."""
        self._check(rank)
        if flops < 0 or seconds < 0:
            raise ValueError("work must be non-negative")
        self.clock[rank] += flops / self.spec.rank_flops + seconds

    def send(self, payload, source: int, dest: int, tag: int | None = None) -> None:
        """Non-blocking-ish send: enqueue with its completion time."""
        self._check(source)
        self._check(dest)
        self._check_alive(source)
        self._check_alive(dest)
        if source == dest:
            raise ValueError(f"rank {source} sending to itself")
        nbytes = _payload_bytes(payload)
        self.stats.record(nbytes)
        if tag is None:
            seq = self._send_seq.get((source, dest), 0)
            self._send_seq[(source, dest)] = seq + 1
            tag = -1 - seq
        done = self.clock[source] + self.spec.transfer_time(nbytes)
        self.clock[source] = done  # eager/rendezvous-style send
        if self.faults is not None and self.faults.drop_message(source, dest):
            self.stats.drops += 1
            self._mailbox[(source, dest, tag)] = (done, _DROPPED)
        else:
            self._mailbox[(source, dest, tag)] = (done, payload)

    def recv(self, source: int, dest: int, tag: int | None = None):
        """Blocking receive: the receiver waits for the message."""
        self._check(source)
        self._check(dest)
        if tag is None:
            seq = self._recv_seq.get((source, dest), 0)
            self._recv_seq[(source, dest)] = seq + 1
            tag = -1 - seq
        key = (source, dest, tag)
        if key not in self._mailbox:
            raise RuntimeError(
                f"rank {dest} receiving from {source} (tag {tag}) before send"
            )
        done, payload = self._mailbox.pop(key)
        if payload is _DROPPED:
            # the receiver waits out its timeout before declaring loss
            self.clock[dest] = max(self.clock[dest], done) + self.spec.timeout_s
            raise MessageLost(f"message {source} -> {dest} (tag {tag}) lost in flight")
        self.clock[dest] = max(self.clock[dest], done)
        return payload

    def barrier(self) -> None:
        """Synchronize the clocks of surviving ranks (tree barrier)."""
        alive = self.alive_ranks()
        if not alive:
            raise RankFailure("barrier with no surviving ranks")
        rounds = int(np.ceil(np.log2(max(len(alive), 2))))
        t = max(self.clock[r] for r in alive) + 2 * rounds * self.spec.latency_s
        for r in alive:
            self.clock[r] = t
        self.stats.collectives += 1

    def bcast(self, payload, root: int):
        """Binomial-tree broadcast; returns the payload (shared process)."""
        self._check(root)
        nbytes = _payload_bytes(payload)
        rounds = int(np.ceil(np.log2(max(self.spec.ranks, 2))))
        cost = rounds * self.spec.transfer_time(nbytes)
        t = self.clock[root] + cost
        for r in range(self.spec.ranks):
            self.clock[r] = max(self.clock[r], t)
        self.stats.collectives += 1
        self.stats.bytes_sent += nbytes * max(self.spec.ranks - 1, 0)
        return payload

    def allgather(self, contributions: list) -> list:
        """Ring allgather of per-rank payloads; returns the full list."""
        if len(contributions) != self.spec.ranks:
            raise ValueError(
                f"allgather needs {self.spec.ranks} contributions, "
                f"got {len(contributions)}"
            )
        per = max(_payload_bytes(p) for p in contributions)
        steps = self.spec.ranks - 1
        cost = steps * self.spec.transfer_time(per)
        t = max(self.clock) + cost
        self.clock = [t] * self.spec.ranks
        self.stats.collectives += 1
        self.stats.bytes_sent += per * steps * self.spec.ranks
        return list(contributions)

    # -- reporting -----------------------------------------------------------

    @property
    def makespan(self) -> float:
        return max(self.clock)

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.spec.ranks:
            raise ValueError(f"rank {rank} out of range for {self.spec.ranks} ranks")

    def _check_alive(self, rank: int) -> None:
        if not self.alive[rank]:
            raise RankFailure(f"rank {rank} is dead")
