"""Workload definitions for the paper's evaluation section.

The paper's workloads pair a short outer sequence with a long inner one
(e.g. Fig. 18 uses 16 x 2500); model-projected sweeps use the published
scale while wall-clock workloads use sizes a pure-Python/NumPy substrate
can run in seconds (the *ratios* between variants are what transfers).
"""

from __future__ import annotations

__all__ = [
    "OUTER_N",
    "MODEL_SWEEP_M",
    "WALLCLOCK_DMP",
    "WALLCLOCK_BPMAX",
    "TILE_SHAPES_FIG18",
    "CHUNK_SWEEP_FIG12",
    "PAPER_ANCHORS",
]

#: outer (short) strand length used throughout the evaluation
OUTER_N = 16

#: inner-strand lengths for model-projected curves (Figs. 13-16)
MODEL_SWEEP_M = (256, 512, 1024, 1536, 2048, 2500, 3072, 4096)

#: (n, m) pairs small enough for real wall-clock kernel comparisons
WALLCLOCK_DMP = ((4, 24), (4, 48), (6, 64))

#: (n, m) pairs for real wall-clock full-program comparisons
WALLCLOCK_BPMAX = ((4, 24), (4, 32), (5, 40))

#: (i2, k2, j2) tile shapes of Fig. 18 (0 = untiled); the paper's
#: presentation shapes are (32,4,N) and (64,16,N), cubic shapes do badly
TILE_SHAPES_FIG18 = (
    (16, 2, 0),
    (32, 4, 0),
    (64, 16, 0),
    (128, 8, 0),
    (32, 32, 32),
    (64, 64, 64),
    (128, 128, 128),
    (64, 4, 256),
)

#: per-thread chunk sizes (bytes) for the Fig. 12 micro-benchmark sweep
CHUNK_SWEEP_FIG12 = tuple(2 ** k for k in range(10, 25))  # 1 KiB .. 16 MiB

#: the published numbers we calibrate/compare against (paper section V)
PAPER_ANCHORS = {
    "maxplus_peak_gflops": 346.0,
    "l1_roof_gflops": 329.0,
    "stream_6t_gflops": 120.0,
    "stream_12t_gflops": 240.0,
    "dmp_tiled_gflops": 117.0,
    "dmp_speedup_vs_base": 178.0,
    "bpmax_tiled_gflops": 76.0,
    "bpmax_speedup_vs_base": 100.0,
    "smt_gain_tiled": (1.03, 1.05),
    "tile_best_vs_generic": 0.10,
}
