"""Shared experiment harness: timing, GFLOPS accounting, text tables."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["Measurement", "measure", "ExperimentResult", "format_table"]


@dataclass(frozen=True)
class Measurement:
    """One timed run with optional FLOP accounting."""

    label: str
    seconds: float
    flops: int | None = None

    @property
    def gflops(self) -> float | None:
        if self.flops is None or self.seconds <= 0:
            return None
        return self.flops / self.seconds / 1e9


def measure(
    fn: Callable[[], object],
    label: str = "",
    flops: int | None = None,
    repeats: int = 1,
) -> Measurement:
    """Best-of-``repeats`` wall-clock measurement of ``fn``."""
    if repeats <= 0:
        raise ValueError(f"repeats must be > 0, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return Measurement(label=label, seconds=best, flops=flops)


@dataclass
class ExperimentResult:
    """One regenerated paper table/figure: rows of named columns."""

    experiment: str  # e.g. "fig13"
    title: str
    columns: tuple[str, ...]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def add(self, **values) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row missing columns {sorted(missing)}")
        self.rows.append(values)

    def column(self, name: str) -> list:
        if name not in self.columns:
            raise KeyError(name)
        return [r[name] for r in self.rows]

    def render(self) -> str:
        lines = [f"== {self.experiment}: {self.title} =="]
        if self.notes:
            lines.append(f"   {self.notes}")
        lines.append(format_table(self.columns, self.rows))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The rows as CSV text (header + one line per row)."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=list(self.columns))
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row[c] for c in self.columns})
        return buf.getvalue()

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_csv())


def _fmt(v) -> str:
    if isinstance(v, float):
        if v != v:
            return "nan"
        if abs(v) >= 1000 or (abs(v) < 0.01 and v != 0):
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


def format_table(columns: Sequence[str], rows: Iterable[dict]) -> str:
    """Render rows as a fixed-width text table."""
    rows = list(rows)
    cells = [[_fmt(r[c]) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
        for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([header, sep, *body])
