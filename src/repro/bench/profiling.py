"""Profiling helpers: "no optimization without measuring".

The optimization workflow this reproduction follows (and the paper
practices with hardware counters) starts from profiles.  These helpers
wrap :mod:`cProfile` for the BPMax engines so a user can see where the
time goes — e.g. that the R1/R2 finishing loops dominate the optimized
engine on this substrate, exactly the component the paper identifies as
the program-level bottleneck.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Callable

__all__ = ["ProfileReport", "profile_call"]


@dataclass(frozen=True)
class ProfileReport:
    """Condensed cProfile output."""

    total_seconds: float
    total_calls: int
    top: tuple[tuple[str, float], ...]  # (function, cumulative seconds)
    text: str

    def cumulative_of(self, substring: str) -> float:
        """Cumulative seconds of the first top entry matching a name."""
        for name, seconds in self.top:
            if substring in name:
                return seconds
        return 0.0


def profile_call(fn: Callable[[], object], top: int = 15) -> ProfileReport:
    """Profile one call; return the condensed report.

    Parameters
    ----------
    fn: zero-argument callable to profile (e.g. ``engine.run``).
    top: number of hottest functions (by cumulative time) to keep.
    """
    if top <= 0:
        raise ValueError(f"top must be > 0, got {top}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    stats.print_stats(top)
    text = stream.getvalue()

    entries: list[tuple[str, float]] = []
    for func, (cc, nc, tt, ct, callers) in stats.stats.items():  # type: ignore[attr-defined]
        name = f"{func[0]}:{func[1]}({func[2]})"
        entries.append((name, ct))
    entries.sort(key=lambda e: -e[1])
    return ProfileReport(
        total_seconds=stats.total_tt,  # type: ignore[attr-defined]
        total_calls=stats.total_calls,  # type: ignore[attr-defined]
        top=tuple(entries[:top]),
        text=text,
    )
