"""Experiment harness: regenerate every table and figure of the paper."""

from .figures import EXPERIMENTS, run_experiment
from .harness import ExperimentResult, Measurement, format_table, measure
from .profiling import ProfileReport, profile_call
from .workloads import (
    CHUNK_SWEEP_FIG12,
    MODEL_SWEEP_M,
    OUTER_N,
    PAPER_ANCHORS,
    TILE_SHAPES_FIG18,
    WALLCLOCK_BPMAX,
    WALLCLOCK_DMP,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentResult",
    "Measurement",
    "format_table",
    "measure",
    "ProfileReport",
    "profile_call",
    "CHUNK_SWEEP_FIG12",
    "MODEL_SWEEP_M",
    "OUTER_N",
    "PAPER_ANCHORS",
    "TILE_SHAPES_FIG18",
    "WALLCLOCK_BPMAX",
    "WALLCLOCK_DMP",
]
