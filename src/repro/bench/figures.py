"""One generator per paper table/figure (the per-experiment index of
DESIGN.md).  Each returns an :class:`~repro.bench.harness.ExperimentResult`
whose rows are the series the paper plots; ``benchmarks/`` wraps these in
pytest-benchmark entries and EXPERIMENTS.md records paper-vs-measured.

Model-projected rows use the calibrated :class:`~repro.machine.PerfModel`
(see DESIGN.md's substitution table: no 6-core Xeon is available here);
wall-clock rows measure the real NumPy/pure-Python engines at substrate
scale.
"""

from __future__ import annotations

import numpy as np

from ..core.alpha_model import (
    bpmax_system,
    dmp_system,
    schedules_for,
    target_mapping_for,
)
from ..core.dmp import DoubleMaxPlus, dmp_flops, random_triangles
from ..core.engine import make_engine
from ..core.reference import prepare_inputs
from ..machine.counters import bpmax_breakdown, flops_r0
from ..machine.perfmodel import BPMAX_VARIANTS, DMP_VARIANTS, PerfModel
from ..machine.roofline import MAXPLUS_STREAM_AI, Roofline
from ..machine.specs import XEON_E2278G, XEON_E5_1650V4
from ..polyhedral.codegen import (
    count_loc,
    generate_schedule_code,
    generate_write_code,
)
from ..polyhedral.dependence import check_all
from ..rna.sequence import random_pair
from ..semiring.microbench import StreamBenchmark
from .harness import ExperimentResult, measure
from .workloads import (
    CHUNK_SWEEP_FIG12,
    MODEL_SWEEP_M,
    OUTER_N,
    TILE_SHAPES_FIG18,
    WALLCLOCK_BPMAX,
    WALLCLOCK_DMP,
)

__all__ = ["EXPERIMENTS", "run_experiment"]

_DEFAULT_TILE = (64, 16, 0)


def fig01_summary() -> ExperimentResult:
    """Fig. 1 — optimization-result overview on both Xeons (model)."""
    res = ExperimentResult(
        "fig01",
        "BPMax summary: GFLOPS and speedup, hybrid-tiled vs original",
        ("machine", "m", "base_gflops", "tiled_gflops", "speedup", "peak_fraction"),
        notes="paper: >100x, 76 GFLOPS ~ 1/4..1/5 of peak; E-2278G same or better",
    )
    for machine in (XEON_E5_1650V4, XEON_E2278G):
        pm = PerfModel(machine)
        for m in (1024, 2048):
            base = pm.predict_bpmax("base", OUTER_N, m)
            tiled = pm.predict_bpmax("hybrid-tiled", OUTER_N, m, tile=_DEFAULT_TILE)
            res.add(
                machine=machine.name,
                m=m,
                base_gflops=base.gflops,
                tiled_gflops=tiled.gflops,
                speedup=tiled.speedup_over(base),
                peak_fraction=tiled.gflops / (machine.maxplus_peak_flops() / 1e9),
            )
    return res


def fig11_roofline() -> ExperimentResult:
    """Fig. 11 — roofline of the Xeon E5-1650v4."""
    rl = Roofline(XEON_E5_1650V4, threads=6)
    res = ExperimentResult(
        "fig11",
        "Roofline (6 threads): attainable GFLOPS per level",
        ("level", "ridge_ai", "maxplus_ai", "attainable_gflops", "bound"),
        notes=f"theoretical max-plus peak {rl.peak_gflops:.0f} GFLOPS; "
        "paper expects ~329 GFLOPS at the L1 roof for AI = 1/6",
    )
    for level in rl.levels():
        pt = rl.attainable(MAXPLUS_STREAM_AI, level)
        res.add(
            level=level,
            ridge_ai=rl.ridge_point(level),
            maxplus_ai=MAXPLUS_STREAM_AI,
            attainable_gflops=pt.attainable_gflops,
            bound=pt.bound,
        )
    return res


def fig12_microbench(measured: bool = True) -> ExperimentResult:
    """Fig. 12 — the Y = max(a+X, Y) micro-benchmark."""
    pm = PerfModel()
    res = ExperimentResult(
        "fig12",
        "Stream micro-benchmark GFLOPS vs per-thread chunk size",
        ("chunk_bytes", "model_6t", "model_12t", "measured_1t"),
        notes="paper: up to 120 GFLOPS at 6 threads, 240 at 12",
    )
    for chunk in CHUNK_SWEEP_FIG12:
        measured_1t = float("nan")
        if measured and chunk <= 2 ** 22:
            n_elems = max(chunk // 4, 1)
            bench = StreamBenchmark(n_elems, iterations=4, threads=1)
            measured_1t = bench.run().gflops
        res.add(
            chunk_bytes=chunk,
            model_6t=pm.predict_stream(chunk, 6),
            model_12t=pm.predict_stream(chunk, 12),
            measured_1t=measured_1t,
        )
    return res


def fig13_dmp_perf() -> ExperimentResult:
    """Fig. 13 — double max-plus GFLOPS per schedule (model)."""
    pm = PerfModel()
    res = ExperimentResult(
        "fig13",
        "Double max-plus GFLOPS by schedule, 6 threads (model)",
        ("m",) + DMP_VARIANTS,
        notes="paper: tiled reaches 117 GFLOPS = 97% of the stream target",
    )
    for m in MODEL_SWEEP_M:
        row = {"m": m}
        for v in DMP_VARIANTS:
            row[v] = pm.predict_dmp(v, OUTER_N, m, tile=_DEFAULT_TILE).gflops
        res.add(**row)
    return res


def fig14_dmp_speedup() -> ExperimentResult:
    """Fig. 14 — double max-plus speedup over the original (model)."""
    pm = PerfModel()
    res = ExperimentResult(
        "fig14",
        "Double max-plus speedup over base, 6 threads (model)",
        ("m",) + tuple(v for v in DMP_VARIANTS if v != "base"),
        notes="paper: ~178x for the tiled kernel",
    )
    for m in MODEL_SWEEP_M:
        base = pm.predict_dmp("base", OUTER_N, m)
        row = {"m": m}
        for v in DMP_VARIANTS:
            if v == "base":
                continue
            row[v] = pm.predict_dmp(v, OUTER_N, m, tile=_DEFAULT_TILE).speedup_over(base)
        res.add(**row)
    return res


def fig13_dmp_wallclock() -> ExperimentResult:
    """Fig. 13 companion — real wall-clock kernel comparison."""
    res = ExperimentResult(
        "fig13w",
        "Double max-plus wall-clock GFLOPS (this substrate)",
        ("n", "m", "naive", "scalar_k_inner", "vectorized", "tiled"),
        notes="NumPy = SIMD surrogate; ratios, not absolutes, transfer",
    )
    for n, m in WALLCLOCK_DMP:
        tr = random_triangles(n, m, 0)
        flops = dmp_flops(n, m)
        row = {"n": n, "m": m}
        for label, kernel in (
            ("naive", "naive"),
            ("scalar_k_inner", "scalar-k-inner"),
            ("vectorized", "vectorized"),
            ("tiled", "tiled"),
        ):
            eng = DoubleMaxPlus(
                [t.copy() for t in tr], kernel=kernel, tile=(16, 4, 0)
            )
            meas = measure(eng.run, label, flops=flops)
            row[label] = meas.gflops
        res.add(**row)
    return res


def fig15_bpmax_perf() -> ExperimentResult:
    """Fig. 15 — BPMax GFLOPS per program version (model)."""
    pm = PerfModel()
    res = ExperimentResult(
        "fig15",
        "BPMax GFLOPS by program version, 6 threads (model)",
        ("m",) + BPMAX_VARIANTS,
        notes="paper: tiled hybrid ~76 GFLOPS at moderate sizes",
    )
    for m in MODEL_SWEEP_M:
        row = {"m": m}
        for v in BPMAX_VARIANTS:
            row[v] = pm.predict_bpmax(v, OUTER_N, m, tile=_DEFAULT_TILE).gflops
        res.add(**row)
    return res


def fig16_bpmax_speedup() -> ExperimentResult:
    """Fig. 16 — BPMax speedup over the original program (model)."""
    pm = PerfModel()
    res = ExperimentResult(
        "fig16",
        "BPMax speedup over the original program (model)",
        ("m",) + tuple(v for v in BPMAX_VARIANTS if v != "base"),
        notes="paper: ~100x for longer sequences with 6 threads",
    )
    for m in MODEL_SWEEP_M:
        base = pm.predict_bpmax("base", OUTER_N, m)
        row = {"m": m}
        for v in BPMAX_VARIANTS:
            if v == "base":
                continue
            row[v] = pm.predict_bpmax(v, OUTER_N, m, tile=_DEFAULT_TILE).speedup_over(
                base
            )
        res.add(**row)
    return res


def fig15_bpmax_wallclock() -> ExperimentResult:
    """Fig. 15/16 companion — real wall-clock program comparison."""
    res = ExperimentResult(
        "fig15w",
        "BPMax wall-clock seconds and speedup (this substrate)",
        ("n", "m", "baseline_s", "hybrid_s", "tiled_s", "speedup_tiled"),
        notes="pure-Python baseline vs NumPy engines",
    )
    for n, m in WALLCLOCK_BPMAX:
        s1, s2 = random_pair(n, m, 123)
        inp = prepare_inputs(s1, s2)
        t_base = measure(lambda: make_engine(inp, "baseline").run(), "base").seconds
        t_hyb = measure(lambda: make_engine(inp, "hybrid").run(), "hybrid").seconds
        t_til = measure(
            lambda: make_engine(inp, "hybrid-tiled", tile=(8, 4, 0)).run(), "tiled"
        ).seconds
        res.add(
            n=n,
            m=m,
            baseline_s=t_base,
            hybrid_s=t_hyb,
            tiled_s=t_til,
            speedup_tiled=t_base / t_til,
        )
    return res


def fig17_hyperthreading() -> ExperimentResult:
    """Fig. 17 — SMT effect on the tiled double max-plus (model)."""
    pm = PerfModel()
    res = ExperimentResult(
        "fig17",
        "Tiled double max-plus: 6 vs 12 threads (model)",
        ("m", "gflops_6t", "gflops_12t", "smt_gain"),
        notes="paper: minimal (3-5%) improvement from hyper-threading",
    )
    for m in MODEL_SWEEP_M:
        g6 = pm.predict_dmp("tiled", OUTER_N, m, 6, tile=_DEFAULT_TILE).gflops
        g12 = pm.predict_dmp("tiled", OUTER_N, m, 12, tile=_DEFAULT_TILE).gflops
        res.add(m=m, gflops_6t=g6, gflops_12t=g12, smt_gain=g12 / g6)
    return res


def fig18_tile_shapes(measured: bool = True) -> ExperimentResult:
    """Fig. 18 — tile-shape sweep at the paper's 16 x 2500 workload."""
    pm = PerfModel()
    res = ExperimentResult(
        "fig18",
        "Tile shape (i2 x k2 x j2) effect on double max-plus",
        ("tile", "model_gflops_16x2500", "wallclock_gflops_small"),
        notes="paper: cubic tiles poor; best shapes leave j2 untiled; "
        "~10% best-vs-generic gap",
    )
    tr = random_triangles(4, 64, 0) if measured else None
    flops = dmp_flops(4, 64)
    for tile in TILE_SHAPES_FIG18:
        wall = float("nan")
        if measured:
            small = tuple(min(t, 64) if t else 0 for t in tile)
            eng = DoubleMaxPlus([t.copy() for t in tr], kernel="tiled", tile=small)
            wall = measure(eng.run, str(tile), flops=flops).gflops or float("nan")
        res.add(
            tile=f"{tile[0]}x{tile[1]}x{tile[2] or 'N'}",
            model_gflops_16x2500=pm.predict_dmp(
                "tiled", OUTER_N, 2500, tile=tile
            ).gflops,
            wallclock_gflops_small=wall,
        )
    return res


def tables_schedules() -> ExperimentResult:
    """Tables I-IV — legality report for every published schedule."""
    res = ExperimentResult(
        "tables1-4",
        "Published schedules: machine-checked legality",
        ("variant", "paper_table", "rank", "parallel_dim", "dependences", "violations"),
        notes="checked by exhaustive enumeration at N=3, M=4",
    )
    params = {"N": 3, "M": 4}
    deps_bpmax = bpmax_system(include_s=False).dependences()
    deps_dmp = dmp_system().dependences()
    for variant in ("dmp", "fine", "coarse", "hybrid"):
        vs = schedules_for(variant)
        deps = deps_dmp if variant == "dmp" else deps_bpmax
        scheds, ready = vs.checker_schedules()
        viol = check_all(deps, scheds, params, producer_schedules=ready)
        res.add(
            variant=variant,
            paper_table=vs.table,
            rank=next(iter(scheds.values())).rank,
            parallel_dim=vs.parallel_dim if vs.parallel_dim is not None else "-",
            dependences=len(deps),
            violations=len(viol),
        )
    return res


def table6_loc() -> ExperimentResult:
    """Table VI — auto-generated code statistics."""
    res = ExperimentResult(
        "table6",
        "Generated-code LOC per program version",
        ("implementation", "loc", "loops", "statements"),
        notes="paper (C): base 140, DMP 150, BPMax ~1200, tiled ~1400; "
        "ordering and growth, not absolutes, transfer",
    )
    sys_dmp = dmp_system()
    sys_bpmax = bpmax_system(include_s=False)
    sources = {
        "BPMax base (writeC)": generate_write_code(bpmax_system(True), "bpmax_base"),
        "Double max-plus (scheduled)": generate_schedule_code(
            sys_dmp, target_mapping_for("dmp", "dmp"), "dmp_sched"
        ),
        "BPMax fine (scheduled)": generate_schedule_code(
            sys_bpmax, target_mapping_for("fine"), "bpmax_fine"
        ),
        "BPMax coarse (scheduled)": generate_schedule_code(
            sys_bpmax, target_mapping_for("coarse"), "bpmax_coarse"
        ),
        "BPMax hybrid (scheduled)": generate_schedule_code(
            sys_bpmax, target_mapping_for("hybrid"), "bpmax_hybrid"
        ),
    }
    tiled_tm = target_mapping_for("dmp", "dmp")
    tiled_tm.set_tiling("R0", (0, 0, 0, 8, 8, 0))
    tiled_tm.set_tiling("F", (0, 0, 0, 8, 8, 0))
    sources["Double max-plus tiled (scheduled)"] = generate_schedule_code(
        sys_dmp, tiled_tm, "dmp_tiled"
    )
    # the production window kernels the `generated` backend compiles —
    # the same schedule -> code pipeline, emitted vectorized instead of
    # statement-per-point, so they land far below the scheduled programs
    from ..polyhedral.codegen.vectorize import generate_window_kernel

    sources["Window kernel kmajor (vectorized)"] = generate_window_kernel(
        "kmajor", 0
    )
    sources["Window kernel smajor (vectorized)"] = generate_window_kernel(
        "smajor", 0
    )
    sources["Window kernel kmajor tiled (vectorized)"] = generate_window_kernel(
        "kmajor", 16
    )
    for name, src in sources.items():
        stats = count_loc(name, src)
        res.add(
            implementation=name,
            loc=stats.code_lines,
            loops=stats.loop_count,
            statements=stats.statement_functions,
        )
    return res


def real_speedup() -> ExperimentResult:
    """§V headline on this substrate: optimized vs baseline wall clock.

    Two granularities, as in the paper: the R0 kernel alone (where the
    paper reports ~178x and this substrate exceeds 100x once the work is
    large enough to amortize call overhead) and the whole program (whose
    speedup grows with the inner length exactly as Fig. 16 shows).
    """
    res = ExperimentResult(
        "real-speedup",
        "Measured speedup, optimized vs pure-Python baseline",
        ("scope", "n", "m", "baseline_s", "optimized_s", "speedup"),
        notes="the >100x headline, on our Python substrate",
    )
    # kernel-level: one window's max-plus product chain (eq. 4)
    for n, m in ((3, 96), (3, 160)):
        tr = random_triangles(n, m, 5)
        base = DoubleMaxPlus([t.copy() for t in tr], kernel="naive")
        tiled = DoubleMaxPlus([t.copy() for t in tr], kernel="tiled", tile=(32, 4, 0))
        t_base = measure(base.run, "naive").seconds
        t_opt = measure(tiled.run, "tiled").seconds
        res.add(
            scope="R0 kernel",
            n=n,
            m=m,
            baseline_s=t_base,
            optimized_s=t_opt,
            speedup=t_base / t_opt,
        )
    # program-level: full BPMax
    for n, m in ((4, 32), (4, 64)):
        s1, s2 = random_pair(n, m, 7)
        inp = prepare_inputs(s1, s2)
        t_base = measure(lambda: make_engine(inp, "baseline").run(), "base").seconds
        t_opt = measure(
            lambda: make_engine(inp, "hybrid-tiled", tile=(16, 4, 0)).run(), "opt"
        ).seconds
        res.add(
            scope="full BPMax",
            n=n,
            m=m,
            baseline_s=t_base,
            optimized_s=t_opt,
            speedup=t_base / t_opt,
        )
    return res


def work_breakdown() -> ExperimentResult:
    """§V-C analysis: where the FLOPs go (R1/R2 limit the whole program)."""
    res = ExperimentResult(
        "breakdown",
        "BPMax FLOP breakdown by component",
        ("n", "m", "r0_pct", "r1r2_pct", "r3r4_pct", "cells_pct"),
        notes="paper: R3/R4 almost free; R1/R2 dominate the gap to 117 GFLOPS",
    )
    for n, m in ((16, 1024), (16, 2048), (16, 4096), (64, 1024)):
        wk = bpmax_breakdown(n, m)
        res.add(
            n=n,
            m=m,
            r0_pct=100 * wk.r0 / wk.total,
            r1r2_pct=100 * wk.r1r2 / wk.total,
            r3r4_pct=100 * wk.r3r4 / wk.total,
            cells_pct=100 * wk.cells / wk.total,
        )
    return res


def correlation() -> ExperimentResult:
    """§I motivation — BPMax vs. thermodynamic ensembles.

    The paper motivates BPMax by its correlation with full thermodynamic
    models (Pearson 0.904 at -180 C and 0.836 at 37 C vs piRNA).  We
    reproduce the analysis exactly at small scale: BPMax score against
    the exact ensemble free energy over the enumerated structure space.
    """
    from ..core.bppart import correlation_study

    res = ExperimentResult(
        "correlation",
        "BPMax score vs exact ensemble -dG (random pairs)",
        ("temperature_c", "beta", "pearson", "spearman", "samples"),
        notes="paper (piRNA vs BPMax): 0.904 at -180C, 0.836 at 37C; "
        "colder ensembles correlate higher",
    )
    for r in correlation_study(n_samples=40, lengths=(4, 5), rng=11):
        res.add(
            temperature_c=r.temperature_c,
            beta=r.beta,
            pearson=r.pearson,
            spearman=r.spearman,
            samples=r.n_samples,
        )
    return res


def mpi_scaling() -> ExperimentResult:
    """Conclusion future work — MPI distribution across a cluster.

    Projects strong scaling of the wavefront-distributed BPMax at the
    paper's 16 x 2500 workload on a simulated cluster of tiled-kernel
    nodes (117 GFLOPS each, 100 Gb/s interconnect).
    """
    from ..core.distributed import DistributedBPMax
    from ..parallel.mpi import ClusterSpec

    res = ExperimentResult(
        "mpi-scaling",
        "Simulated MPI strong scaling, BPMax 16 x 2500",
        ("ranks", "makespan_s", "speedup", "efficiency", "gbytes_comm"),
        notes="future work of the paper's conclusion; wavefront width "
        "(N - d1) bounds parallelism, triangles are the messages",
    )
    s1, s2 = random_pair(OUTER_N, 4, 9)
    inp = prepare_inputs(s1, s2)
    for ranks in (1, 2, 4, 8, 16):
        rep = DistributedBPMax(
            inp, ClusterSpec(ranks=ranks), execute=False, m_effective=2500
        ).run()
        res.add(
            ranks=ranks,
            makespan_s=rep.makespan_s,
            speedup=rep.speedup,
            efficiency=rep.efficiency,
            gbytes_comm=rep.bytes_sent / 1e9,
        )
    return res


def future_work() -> ExperimentResult:
    """Conclusion §VI ablations — register tiling and R1/R2 tiling.

    Projects the two remaining optimizations the paper plans: a register
    micro-kernel lifting the R0 kernel from bandwidth-bound to
    compute-bound, and tiling R1/R2 so the full program escapes the
    long-sequence DRAM collapse.  A real (NumPy surrogate) register
    kernel is measured alongside.
    """
    from ..core.dmp import DoubleMaxPlus, dmp_flops, random_triangles

    pm = PerfModel()
    res = ExperimentResult(
        "future-work",
        "Conclusion ablations: register tiling and R1/R2 tiling (model)",
        (
            "m",
            "dmp_tiled",
            "dmp_register",
            "dmp_bound",
            "bpmax_tiled",
            "bpmax_r12_tiled",
        ),
        notes="paper §VI: register tiling should make the kernel "
        "compute-bound; R1/R2 tiling should lift the 76-GFLOPS program cap",
    )
    for m in (512, 1024, 2048, 4096):
        r = pm.predict_dmp("register-tiled", OUTER_N, m, tile=_DEFAULT_TILE)
        res.add(
            m=m,
            dmp_tiled=pm.predict_dmp("tiled", OUTER_N, m, tile=_DEFAULT_TILE).gflops,
            dmp_register=r.gflops,
            dmp_bound=r.bound,
            bpmax_tiled=pm.predict_bpmax(
                "hybrid-tiled", OUTER_N, m, tile=_DEFAULT_TILE
            ).gflops,
            bpmax_r12_tiled=pm.predict_bpmax(
                "hybrid-tiled-r12", OUTER_N, m, tile=_DEFAULT_TILE
            ).gflops,
        )
    return res


def schedule_exploration() -> ExperimentResult:
    """§IV-A automated — explore the schedule design space.

    Generates every (outer order x inner permutation) candidate the
    paper enumerates by hand, legality-checks each against the extracted
    dependences, and ranks the survivors with the perf model.  The
    published choice (j2 innermost) must rank first.
    """
    from ..core.explore import explore_dmp_schedules

    res = ExperimentResult(
        "explore",
        "Double max-plus schedule exploration (12 candidates)",
        ("candidate", "legal", "vectorizable", "predicted_gflops"),
        notes="paper: any inner order is legal; k2 innermost prohibits "
        "vectorization; outer orders nearly equivalent",
    )
    for c in explore_dmp_schedules():
        res.add(
            candidate=c.name,
            legal=c.legal,
            vectorizable=c.vectorizable,
            predicted_gflops=c.predicted_gflops or float("nan"),
        )
    return res


def gpu_compare() -> ExperimentResult:
    """§II related work — the CPU-vs-GPU trade-off, quantified.

    Gildemaster's GPU library wins while the F table fits device memory;
    beyond that, windowing and PCIe transfers erode the advantage — "it
    is crucial to speed up the algorithm on the CPU".
    """
    from ..machine.gpu import GpuWindowedModel

    gm = GpuWindowedModel()
    res = ExperimentResult(
        "gpu-compare",
        "Windowed GPU vs tiled CPU on the DMP kernel (model)",
        ("n", "m", "fits_device", "windows", "gpu_s", "transfer_pct", "cpu_s", "gpu_speedup"),
        notes="related work: GPU limited to windows by device memory; "
        "transfer costs erode its advantage past capacity",
    )
    for n, m in ((16, 1024), (16, 2500), (64, 2500), (256, 2500)):
        c = gm.compare(n, m)
        res.add(
            n=n,
            m=m,
            fits_device=c.fits_device,
            windows=c.windows_needed,
            gpu_s=c.gpu_total_s,
            transfer_pct=100 * c.transfer_fraction,
            cpu_s=c.cpu_total_s,
            gpu_speedup=c.gpu_speedup_over_cpu,
        )
    return res


#: experiment id -> generator
EXPERIMENTS = {
    "correlation": correlation,
    "mpi-scaling": mpi_scaling,
    "future-work": future_work,
    "explore": schedule_exploration,
    "gpu-compare": gpu_compare,
    "fig01": fig01_summary,
    "fig11": fig11_roofline,
    "fig12": fig12_microbench,
    "fig13": fig13_dmp_perf,
    "fig13w": fig13_dmp_wallclock,
    "fig14": fig14_dmp_speedup,
    "fig15": fig15_bpmax_perf,
    "fig15w": fig15_bpmax_wallclock,
    "fig16": fig16_bpmax_speedup,
    "fig17": fig17_hyperthreading,
    "fig18": fig18_tile_shapes,
    "tables1-4": tables_schedules,
    "table6": table6_loc,
    "real-speedup": real_speedup,
    "breakdown": work_breakdown,
}


def run_experiment(name: str) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    try:
        gen = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return gen()
