"""Exact work counts for BPMax components.

All GFLOPS numbers in the paper count one max-plus operation as 2 FLOPs
(one add + one max).  The counts below are exact closed forms over the
triangular iteration spaces:

* ``T1(n) = n(n+1)/2`` — windows ``(i, j)`` with ``0 <= i <= j < n``;
* ``K1(n) = (n-1)n(n+1)/6`` — split triples ``(i, k, j)`` with
  ``0 <= i <= k < j < n``.

Component op counts (max-plus operations, multiply by 2 for FLOPs):

=========  ==========================  =============================
term       iteration space             ops
=========  ==========================  =============================
R0         (i1,k1,j1) x (i2,k2,j2)     K1(N) * K1(M)
R1, R2     (i1,j1) x (i2,k2,j2)        T1(N) * K1(M)   each
R3, R4     (i1,k1,j1) x (i2,j2)        K1(N) * T1(M)   each
S1         (i,k,j) splits + closures   K1(N) + 2*T1(N)
S2         likewise                    K1(M) + 2*T1(M)
F cells    (i1,j1) x (i2,j2)           ~6 per cell (closures + H max)
=========  ==========================  =============================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "t1",
    "k1",
    "flops_r0",
    "flops_r1r2",
    "flops_r3r4",
    "flops_s_tables",
    "flops_cells",
    "flops_bpmax_total",
    "WorkBreakdown",
    "bpmax_breakdown",
    "bytes_f_table",
    "bytes_inner_triangle",
]

BYTES_F32 = 4


def t1(n: int) -> int:
    """Number of windows (i, j), 0 <= i <= j < n."""
    return n * (n + 1) // 2


def k1(n: int) -> int:
    """Number of split triples (i, k, j), 0 <= i <= k < j < n."""
    return (n - 1) * n * (n + 1) // 6 if n >= 2 else 0


def flops_r0(n: int, m: int) -> int:
    """FLOPs of the double max-plus reduction R0."""
    return 2 * k1(n) * k1(m)


def flops_r1r2(n: int, m: int) -> int:
    """FLOPs of R1 + R2 (the two k2 reductions)."""
    return 2 * 2 * t1(n) * k1(m)


def flops_r3r4(n: int, m: int) -> int:
    """FLOPs of R3 + R4 (the two k1 reductions)."""
    return 2 * 2 * k1(n) * t1(m)


def flops_s_tables(n: int, m: int) -> int:
    """FLOPs of the two single-strand Nussinov tables."""
    return 2 * (k1(n) + 2 * t1(n)) + 2 * (k1(m) + 2 * t1(m))


def flops_cells(n: int, m: int) -> int:
    """FLOPs of the per-cell combination (closures + H assembly)."""
    return 2 * 6 * t1(n) * t1(m)


def flops_bpmax_total(n: int, m: int) -> int:
    """Total FLOPs of one BPMax run."""
    return (
        flops_r0(n, m)
        + flops_r1r2(n, m)
        + flops_r3r4(n, m)
        + flops_s_tables(n, m)
        + flops_cells(n, m)
    )


@dataclass(frozen=True)
class WorkBreakdown:
    """FLOPs per BPMax component for one (N, M)."""

    n: int
    m: int
    r0: int
    r1r2: int
    r3r4: int
    cells: int
    s_tables: int

    @property
    def total(self) -> int:
        return self.r0 + self.r1r2 + self.r3r4 + self.cells + self.s_tables

    @property
    def r0_fraction(self) -> float:
        return self.r0 / self.total


def bpmax_breakdown(n: int, m: int) -> WorkBreakdown:
    """Exact FLOP breakdown for sequence lengths ``n`` (outer), ``m`` (inner)."""
    if n < 1 or m < 1:
        raise ValueError(f"sequence lengths must be >= 1, got {n}, {m}")
    return WorkBreakdown(
        n=n,
        m=m,
        r0=flops_r0(n, m),
        r1r2=flops_r1r2(n, m),
        r3r4=flops_r3r4(n, m),
        cells=flops_cells(n, m),
        s_tables=flops_s_tables(n, m),
    )


def bytes_inner_triangle(m: int) -> int:
    """Storage of one inner triangle F[i1,j1,.,.] in float32 (paper: the
    Theta(M^2) working set that reaches 16 MB at M = 2048)."""
    return t1(m) * BYTES_F32


def bytes_f_table(n: int, m: int) -> int:
    """Storage of the full triangular F table in float32."""
    return t1(n) * t1(m) * BYTES_F32
