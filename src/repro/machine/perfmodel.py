"""Analytic performance model reproducing the paper's measured curves.

With no 6-core Xeon available, multi-thread GFLOPS projections (Figs. 12
to 18 and Fig. 1) come from a bandwidth/locality model of each schedule
variant, **calibrated against the paper's own published measurements**:

* the Algorithm-3 micro-benchmark achieves 120 GFLOPS with 6 threads and
  240 with 12 (Fig. 12) against a ~334 GFLOPS theoretical L1 roof — an
  *effective* bandwidth factor of ~0.36 (0.72 with SMT, which doubles the
  memory-level parallelism) applied to every cache level;
* DRAM efficiency ~0.8 of the 76.8 GB/s spec (STREAM-like);
* the tiled R0 kernel reaches 117 GFLOPS = 97 % of the micro-benchmark
  target (§V-B) — in the model it becomes L1-bound after tiling;
* the original baseline implies ~0.65 GFLOPS (117 / the reported 178x),
  modelled as a scalar dependent-max chain with a strided unvectorizable
  inner reduction (`base_cycles_per_op` ≈ an L3-latency-dominated access
  per operation, no memory-level parallelism).

Traffic accounting (per max-plus op = 2 FLOPs, float32, so 1 element
access = 2 bytes/FLOP):

* every vectorized variant executes ``Y[j] = max(a + X[j], Y[j])``:
  3 L1 accesses/op → **6 bytes/FLOP of L1 traffic** (AI = 1/6, Fig. 11);
* the streamed operand ``X`` (a row of the second triangle) is fetched
  from wherever that triangle resides — L1/L2 block when tiled, LLC when
  the triangles fit, DRAM otherwise — at ``2/ti`` bytes/FLOP for an
  ``i2``-tile extent ``ti`` (untiled: ti = 1);
* the accumulator block is refetched once per ``k2`` tile: ``4/tk``
  bytes/FLOP from its residence level (untiled: the row stays in L1 for
  the whole ``k2`` loop, so this term vanishes);
* coarse-grain parallelization gives each thread a private triangle set,
  multiplying the LLC footprint by the thread count and (once spilled)
  driving six independent DRAM streams whose interference costs a
  further contention factor;
* time = max over levels of traffic/effective-bandwidth vs. FLOPs/peak;
  component times add across R0 / R1R2 / R3R4 / cell updates.

Every constant is a named, documented :class:`Calibration` field, and
the qualitative claims of the paper (who wins, the long-sequence
collapse, the 3-5 % SMT gain for tiled R0, the ~10 % best-vs-generic
tile gap, the crossovers in Figs. 13-16) are asserted by unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import BYTES_F32, bpmax_breakdown, flops_r0
from .specs import MachineSpec, XEON_E5_1650V4

__all__ = [
    "Calibration",
    "PredictedPerf",
    "PerfModel",
    "DMP_VARIANTS",
    "BPMAX_VARIANTS",
]

#: Double max-plus (R0 kernel) schedule variants, paper Figs. 13/14.
DMP_VARIANTS = ("base", "coarse", "fine-diagonal", "fine-ltr", "tiled")

#: Full-program variants, paper Figs. 15/16.
BPMAX_VARIANTS = ("base", "coarse", "fine", "hybrid", "hybrid-tiled")

#: Future-work variants from the paper's conclusion (§VI): register-level
#: tiling of the kernel, and tiling applied to R1/R2.
FUTURE_DMP_VARIANTS = ("register-tiled",)
FUTURE_BPMAX_VARIANTS = ("hybrid-tiled-r12",)


@dataclass(frozen=True)
class Calibration:
    """Effective-bandwidth and penalty factors (anchored to Figs. 12-17)."""

    cache_efficiency: float = 0.36  # 120 measured / 334 theoretical (6 thr)
    cache_efficiency_smt: float = 0.72  # 240 GFLOPS at 12 threads (Fig. 12)
    dram_efficiency: float = 0.80  # STREAM-like fraction of 76.8 GB/s
    llc_usable_fraction: float = 0.80  # conflict misses shave the 15 MB
    base_cycles_per_op: float = 66.0  # strided scalar chain: ~L3 latency/op
    coarse_contention: float = 0.5  # P independent DRAM streams interfere
    short_stream_cycles: float = 48.0  # vector ramp cost when j2 is tiled
    smt_tiled_gain: float = 1.04  # Fig. 17: 3-5 % from hyper-threading
    diag_order_penalty: float = 1.05  # Fig. 13: diagonal vs bottom-up gap
    r34_surcharge: float = 0.10  # R3/R4 "almost free" alongside R0 (§V-C)


@dataclass(frozen=True)
class PredictedPerf:
    """One model prediction."""

    variant: str
    n: int
    m: int
    threads: int
    seconds: float
    gflops: float
    bound: str  # which level/limit dominates

    def speedup_over(self, other: "PredictedPerf") -> float:
        return other.seconds / self.seconds


class PerfModel:
    """Schedule-variant performance projection for one machine."""

    def __init__(
        self,
        machine: MachineSpec = XEON_E5_1650V4,
        calibration: Calibration = Calibration(),
    ) -> None:
        self.machine = machine
        self.cal = calibration

    # -- effective bandwidths ------------------------------------------------

    def _eff(self, threads: int) -> float:
        """Cache-bandwidth efficiency (SMT doubles memory-level parallelism)."""
        if threads > self.machine.cores:
            return self.cal.cache_efficiency_smt
        return self.cal.cache_efficiency

    def bw(self, level: str, threads: int) -> float:
        """Effective bytes/sec of a level at ``threads``."""
        if level == "DRAM":
            return self.machine.dram_bandwidth_bytes_per_sec * self.cal.dram_efficiency
        raw = self.machine.level_bandwidth(level, min(threads, self.machine.cores))
        return raw * self._eff(threads)

    def _llc_bytes(self) -> float:
        return self.machine.llc.size_bytes * self.cal.llc_usable_fraction

    # -- micro-benchmark (Fig. 12) ---------------------------------------------

    def predict_stream(self, chunk_bytes: int, threads: int) -> float:
        """GFLOPS of Algorithm 3 for a per-thread chunk of ``chunk_bytes``.

        L1-bound while the two per-thread arrays fit in L1, then
        L2/L3/DRAM bound — the staircase of Fig. 12.
        """
        if chunk_bytes <= 0 or threads <= 0:
            raise ValueError("chunk_bytes and threads must be > 0")
        working = 2 * chunk_bytes  # the X and Y arrays
        level = "DRAM"
        for cache in self.machine.caches:
            per_thread = cache.size_bytes
            if cache.name == "L3":
                per_thread = self._llc_bytes() / max(
                    1, min(threads, self.machine.cores)
                )
            if working <= per_thread:
                level = cache.name
                break
        flops_per_byte = 2.0 / (3 * BYTES_F32)  # AI of the stream pattern
        return self.bw(level, threads) * flops_per_byte / 1e9

    # -- double max-plus kernel (Figs. 13/14/17/18) -----------------------------

    def _triangle_bytes(self, m: int) -> float:
        """Touched storage of one inner triangle (memory-map option 1)."""
        return m * (m + 1) / 2 * BYTES_F32

    def _untiled_x_level(self, m: int, private_sets: int) -> str:
        """Residence of the streamed operand for untiled kernels.

        ``private_sets`` concurrent triangle-triples must co-reside in the
        LLC (1 for fine-grain, thread count for coarse-grain).
        """
        demand = private_sets * 3 * self._triangle_bytes(m)
        return "L3" if demand <= self._llc_bytes() else "DRAM"

    def predict_dmp(
        self,
        variant: str,
        n: int,
        m: int,
        threads: int | None = None,
        tile: tuple[int, int, int] = (32, 4, 0),
    ) -> PredictedPerf:
        """Predict the standalone double max-plus computation.

        ``n`` is the outer (short) sequence length, ``m`` the inner one;
        ``tile`` is the paper's (i2 x k2 x j2) shape with 0 = untiled.
        """
        threads = threads or self.machine.cores
        if threads <= 0:
            raise ValueError(f"threads must be > 0, got {threads}")
        w = float(flops_r0(n, m))
        if w == 0:
            raise ValueError(f"no R0 work for lengths ({n}, {m})")
        mach = self.machine

        if variant == "base":
            # scalar, k2 innermost: one latency-exposed strided access per op
            active = min(threads, mach.cores)
            rate = active * mach.freq_hz * 2.0 / self.cal.base_cycles_per_op
            return self._result(variant, n, m, threads, w, w / rate, "scalar-chain")

        if variant == "coarse":
            # private triangles per thread: LLC spills P times earlier and,
            # once spilled, the accumulator triangle also streams from DRAM
            x_level = self._untiled_x_level(m, min(threads, mach.cores))
            times = {"L1": 6.0 * w / self.bw("L1", threads)}
            if x_level == "DRAM":
                dram_bpf = 2.0 + 4.0  # X stream + accumulator read/write
                dram_bw = self.bw("DRAM", threads) * self.cal.coarse_contention
                times["DRAM"] = dram_bpf * w / dram_bw
            else:
                times["L3"] = 2.0 * w / self.bw("L3", threads)
            times["peak"] = w / mach.maxplus_peak_flops(threads)
            bound = max(times, key=times.get)  # type: ignore[arg-type]
            return self._result(variant, n, m, threads, w, times[bound], bound)

        if variant in ("fine-diagonal", "fine-ltr"):
            # all threads share one triangle triple; accumulator rows stay
            # in L1 across the k2 loop, only the X stream leaves L1
            x_level = self._untiled_x_level(m, 1)
            times = {
                "L1": 6.0 * w / self.bw("L1", threads),
                x_level: 2.0 * w / self.bw(x_level, threads),
                "peak": w / mach.maxplus_peak_flops(threads),
            }
            bound = max(times, key=times.get)  # type: ignore[arg-type]
            penalty = (
                self.cal.diag_order_penalty if variant == "fine-diagonal" else 1.0
            )
            return self._result(
                variant, n, m, threads, w, times[bound] * penalty, bound
            )

        if variant == "tiled":
            return self._predict_dmp_tiled(n, m, threads, tile)

        if variant == "register-tiled":
            return self._predict_dmp_register(n, m, threads, tile)

        raise ValueError(
            f"unknown DMP variant {variant!r}; use one of "
            f"{DMP_VARIANTS + FUTURE_DMP_VARIANTS}"
        )

    def _predict_dmp_register(
        self,
        n: int,
        m: int,
        threads: int,
        tile: tuple[int, int, int],
        reg: tuple[int, int] = (4, 4),
    ) -> PredictedPerf:
        """Future work §VI: a register micro-kernel on top of the cache tile.

        Holding an (ri x rj) accumulator block in registers serves the
        ``Y`` read/write and reuses each ``X`` vector load ``ri`` times,
        cutting L1 traffic from 6 bytes/FLOP to roughly
        ``2/rj + 2/ri + 2/ri`` — enough to lift the L1 roof above the
        compute peak ("make the program compute-bound").  A documented
        85 % issue efficiency caps the resulting compute-bound rate.
        """
        ri, rj = reg
        if ri <= 0 or rj <= 0:
            raise ValueError(f"register block must be positive, got {reg}")
        base = self._predict_dmp_tiled(n, m, threads, tile)
        w = float(flops_r0(n, m))
        # L1 traffic with the register block: X once per ri ops, A once
        # per rj, Y spilled once per full k-tile (folded into 2/ri)
        l1_bpf = 2.0 / ri + 2.0 / rj + 2.0 / ri
        bw_threads = min(threads, self.machine.cores)
        t_l1 = l1_bpf * w / self.bw("L1", bw_threads)
        t_peak = w / (self.machine.maxplus_peak_flops(bw_threads) * 0.85)
        # cache-tile traffic terms are unchanged: take them from the
        # one-level prediction by removing its L1 component
        t_tile_other = max(base.seconds - 6.0 * w / self.bw("L1", bw_threads), 0.0)
        seconds = max(t_l1, t_peak, t_tile_other)
        bound = (
            "peak" if t_peak >= max(t_l1, t_tile_other) else
            "L1" if t_l1 >= t_tile_other else base.bound
        )
        return self._result("register-tiled", n, m, threads, w, seconds, bound)

    def _predict_dmp_tiled(
        self, n: int, m: int, threads: int, tile: tuple[int, int, int]
    ) -> PredictedPerf:
        ti, tk, tj = tile
        if ti <= 0 or tk <= 0 or tj < 0:
            raise ValueError(f"invalid tile shape {tile}; i2/k2 extents must be > 0")
        tj_eff = tj if tj > 0 else m
        w = float(flops_r0(n, m))
        mach = self.machine

        # operand block (tk x tj) residence
        x_block = tk * tj_eff * BYTES_F32
        if x_block <= mach.cache("L1").size_bytes / 2:
            x_level = "L1"
        elif x_block <= mach.cache("L2").size_bytes / 2:
            x_level = "L2"
        else:
            x_level = self._untiled_x_level(m, 1)
        # accumulator block (ti x tj), refetched once per k-tile
        c_block = ti * tj_eff * BYTES_F32
        if c_block <= mach.cache("L2").size_bytes / 2:
            c_level = "L2"
        else:
            c_level = self._untiled_x_level(m, 1)

        # the tiled kernel is already near the MLP limit at 6 threads (it
        # hits 97 % of the stream target), so SMT is modelled as a small
        # constant gain (Fig. 17), not the generic bandwidth doubling:
        # evaluate at physical-core bandwidths, then apply the gain.
        bw_threads = min(threads, mach.cores)
        traffic: dict[str, float] = {"L1": 6.0 * w}
        traffic[x_level] = traffic.get(x_level, 0.0) + (2.0 / ti) * w
        traffic[c_level] = traffic.get(c_level, 0.0) + (4.0 / tk) * w
        times = {lvl: b / self.bw(lvl, bw_threads) for lvl, b in traffic.items()}
        times["peak"] = w / mach.maxplus_peak_flops(bw_threads)
        bound = max(times, key=times.get)  # type: ignore[arg-type]
        seconds = times[bound]
        # streaming penalty when the unit-stride j2 loop is cut short
        if tj_eff < m:
            seconds *= 1.0 + self.cal.short_stream_cycles / tj_eff
        if threads > mach.cores:
            seconds /= self.cal.smt_tiled_gain
        return self._result("tiled", n, m, threads, w, seconds, bound)

    # -- full BPMax (Figs. 15/16, Fig. 1) ---------------------------------------

    def predict_bpmax(
        self,
        variant: str,
        n: int,
        m: int,
        threads: int | None = None,
        tile: tuple[int, int, int] = (32, 4, 0),
    ) -> PredictedPerf:
        """Predict the complete BPMax program.

        R0 follows the kernel variant; R3/R4 ride along at a small
        surcharge ("almost free", §V-C); R1/R2 stream one F-triangle row
        set per output row (2 bytes/FLOP from their residence level) and
        are parallelized coarse-grain (or not at all, for ``fine``);
        cell updates and S tables stream at the L2 rate.
        """
        threads = threads or self.machine.cores
        wk = bpmax_breakdown(n, m)
        mach = self.machine

        if variant == "base":
            inner = self.predict_dmp("base", n, m, threads)
            seconds = inner.seconds * (wk.total / wk.r0)
            return self._result(
                variant, n, m, threads, wk.total, seconds, "scalar-chain"
            )
        if variant not in BPMAX_VARIANTS + FUTURE_BPMAX_VARIANTS:
            raise ValueError(
                f"unknown BPMax variant {variant!r}; use one of "
                f"{BPMAX_VARIANTS + FUTURE_BPMAX_VARIANTS}"
            )

        kernel_variant = {
            "coarse": "coarse",
            "fine": "fine-ltr",
            "hybrid": "fine-ltr",
            "hybrid-tiled": "tiled",
            "hybrid-tiled-r12": "tiled",
        }[variant]
        r0 = self.predict_dmp(kernel_variant, n, m, threads, tile)
        t_r0 = r0.seconds * (1.0 + self.cal.r34_surcharge)

        # R1/R2: per output row, stream ~a row set of the F triangle + S2
        w12 = float(wk.r1r2)
        if variant == "hybrid-tiled-r12":
            # future work §VI: tiling R1/R2 blocks the k2 loop so the F
            # rows are reused from L2 (a k2-tile of 16 cuts the stream
            # traffic 16x and keeps the block L2-resident)
            r12_tile = 16.0
            t_r12 = (2.0 / r12_tile) * w12 / self.bw("L2", threads) + (
                2.0 * w12 / self.bw("L1", threads)
            )
            r12_level = "L2(tiled)"
        elif variant == "fine":
            # not parallelizable without middle serialization: one thread
            t_r12 = 2.0 * w12 / self.bw("L3", 1)
            r12_level = "L3(1thr)"
        else:
            # coarse-parallel: each active thread pins ~half a triangle,
            # the (shared, read-only) S2 table adds one triangle worth
            active = min(threads, mach.cores)
            if threads > mach.cores:
                active = threads  # SMT doubles resident contexts (§V-C)
            demand = (active * 0.5 + 1.0) * self._triangle_bytes(m)
            r12_level = "L3" if demand <= self._llc_bytes() else "DRAM"
            t_r12 = 2.0 * w12 / self.bw(r12_level, threads)

        w_rest = float(wk.cells + wk.s_tables)
        t_rest = 6.0 * w_rest / self.bw("L2", threads)

        seconds = t_r0 + t_r12 + t_rest
        parts = {f"R0:{r0.bound}": t_r0, f"R1R2:{r12_level}": t_r12, "rest": t_rest}
        bound = max(parts, key=parts.get)  # type: ignore[arg-type]
        return self._result(variant, n, m, threads, wk.total, seconds, bound)

    # -- helpers ---------------------------------------------------------------

    def _result(
        self,
        variant: str,
        n: int,
        m: int,
        threads: int,
        flops: float,
        seconds: float,
        bound: str,
    ) -> PredictedPerf:
        return PredictedPerf(
            variant=variant,
            n=n,
            m=m,
            threads=threads,
            seconds=seconds,
            gflops=flops / seconds / 1e9,
            bound=bound,
        )
