"""Roofline model (paper Fig. 11).

For a kernel with arithmetic intensity ``ai`` (FLOPs per byte moved from a
given memory level), attainable performance at that level is

    attainable = min(peak, ai * bandwidth(level))

The paper plots one roof per level (L1/L2/L3/DRAM) and marks the BPMax
max-plus access pattern, ``Y = max(a + X, Y)``: 2 FLOPs per 3
single-precision accesses, i.e. AI = 2/12 = 1/6, which against the L1
roof predicts ~329 GFLOPS (93 B/cyc x 3.6 GHz x 6 cores x 1/6) — the
"expected" bound the micro-benchmark is then measured against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .specs import MachineSpec

__all__ = ["MAXPLUS_STREAM_AI", "RooflinePoint", "Roofline"]

#: Arithmetic intensity of Y = max(a+X, Y): 2 FLOPs / (3 x 4 bytes).
MAXPLUS_STREAM_AI = 2.0 / 12.0


@dataclass(frozen=True)
class RooflinePoint:
    """One evaluated point: a kernel on one roof."""

    level: str
    arithmetic_intensity: float
    attainable_gflops: float
    bound: str  # "memory" or "compute"


class Roofline:
    """Roofline evaluation for one machine at a given thread count."""

    def __init__(self, machine: MachineSpec, threads: int | None = None) -> None:
        self.machine = machine
        self.threads = machine.cores if threads is None else threads

    @property
    def peak_gflops(self) -> float:
        return self.machine.maxplus_peak_flops(self.threads) / 1e9

    def levels(self) -> list[str]:
        return [c.name for c in self.machine.caches] + ["DRAM"]

    def attainable(self, ai: float, level: str) -> RooflinePoint:
        """Attainable GFLOPS of a kernel with intensity ``ai`` at ``level``."""
        if ai <= 0:
            raise ValueError(f"arithmetic intensity must be > 0, got {ai}")
        bw = self.machine.level_bandwidth(level, self.threads)
        mem = ai * bw / 1e9
        peak = self.peak_gflops
        if mem < peak:
            return RooflinePoint(level, ai, mem, "memory")
        return RooflinePoint(level, ai, peak, "compute")

    def curve(
        self, level: str, ai_range: tuple[float, float] = (0.01, 64.0), n: int = 128
    ) -> tuple[np.ndarray, np.ndarray]:
        """(ai, gflops) arrays for plotting one roof."""
        ais = np.geomspace(ai_range[0], ai_range[1], n)
        vals = np.array([self.attainable(a, level).attainable_gflops for a in ais])
        return ais, vals

    def ridge_point(self, level: str) -> float:
        """AI where the ``level`` roof meets the compute peak."""
        bw = self.machine.level_bandwidth(level, self.threads)
        return self.peak_gflops * 1e9 / bw

    def maxplus_bound(self, level: str = "L1") -> RooflinePoint:
        """The paper's headline expectation: the stream kernel on one roof."""
        return self.attainable(MAXPLUS_STREAM_AI, level)
