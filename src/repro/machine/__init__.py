"""Hardware model: machine specs, roofline, work counters, perf model."""

from .counters import (
    WorkBreakdown,
    bpmax_breakdown,
    bytes_f_table,
    bytes_inner_triangle,
    flops_bpmax_total,
    flops_cells,
    flops_r0,
    flops_r1r2,
    flops_r3r4,
    flops_s_tables,
    k1,
    t1,
)
from .gpu import GpuComparison, GpuSpec, GpuWindowedModel, VOLTA_LIKE
from .perfmodel import (
    BPMAX_VARIANTS,
    DMP_VARIANTS,
    FUTURE_BPMAX_VARIANTS,
    FUTURE_DMP_VARIANTS,
    Calibration,
    PerfModel,
    PredictedPerf,
)
from .roofline import MAXPLUS_STREAM_AI, Roofline, RooflinePoint
from .specs import MACHINES, XEON_E2278G, XEON_E5_1650V4, CacheLevel, MachineSpec

__all__ = [
    "WorkBreakdown",
    "bpmax_breakdown",
    "bytes_f_table",
    "bytes_inner_triangle",
    "flops_bpmax_total",
    "flops_cells",
    "flops_r0",
    "flops_r1r2",
    "flops_r3r4",
    "flops_s_tables",
    "k1",
    "t1",
    "GpuComparison",
    "GpuSpec",
    "GpuWindowedModel",
    "VOLTA_LIKE",
    "BPMAX_VARIANTS",
    "DMP_VARIANTS",
    "FUTURE_BPMAX_VARIANTS",
    "FUTURE_DMP_VARIANTS",
    "Calibration",
    "PerfModel",
    "PredictedPerf",
    "MAXPLUS_STREAM_AI",
    "Roofline",
    "RooflinePoint",
    "MACHINES",
    "XEON_E2278G",
    "XEON_E5_1650V4",
    "CacheLevel",
    "MachineSpec",
]
