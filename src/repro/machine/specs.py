"""Machine specifications: cache hierarchy and bandwidth data.

The paper evaluates on an Intel Xeon E5-1650v4 (6 cores) and validates
scalability on a Xeon E-2278G (8 cores).  §V-A quotes Intel's
micro-architecture numbers: sustained L1 bandwidth 93 B/cycle, L2
25 B/cycle, L3 14 B/cycle and DRAM 76.8 GB/s, giving a theoretical
max-plus single-precision peak of ~346 GFLOPS for the E5-1650v4
(6 cores x 3.6 GHz x 8 fp32 SIMD lanes x 2 ops/cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheLevel", "MachineSpec", "XEON_E5_1650V4", "XEON_E2278G", "MACHINES"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the memory hierarchy.

    ``bandwidth_bytes_per_cycle`` is per core for private levels and for
    the whole chip for shared levels (``shared=True``).
    """

    name: str
    size_bytes: int
    bandwidth_bytes_per_cycle: float
    shared: bool = False

    def bandwidth_bytes_per_sec(self, freq_hz: float, cores: int = 1) -> float:
        """Aggregate bandwidth at ``freq_hz`` for ``cores`` active cores."""
        mult = 1 if self.shared else cores
        return self.bandwidth_bytes_per_cycle * freq_hz * mult


@dataclass(frozen=True)
class MachineSpec:
    """A CPU model sufficient for roofline/perf-model projections."""

    name: str
    cores: int
    smt: int  # hardware threads per core
    freq_hz: float
    simd_lanes_fp32: int
    maxplus_ops_per_cycle: int  # independent max+add issue ports
    caches: tuple[CacheLevel, ...]
    dram_bandwidth_bytes_per_sec: float

    # -- peaks -------------------------------------------------------------

    def maxplus_peak_flops(self, threads: int | None = None) -> float:
        """Theoretical single-precision max-plus peak (FLOP/s).

        One vector max + one vector add per cycle per core; extra SMT
        threads do not add issue width.
        """
        threads = self.cores if threads is None else min(threads, self.cores * self.smt)
        active_cores = min(threads, self.cores)
        return (
            active_cores
            * self.freq_hz
            * self.simd_lanes_fp32
            * self.maxplus_ops_per_cycle
        )

    def scalar_peak_flops(self, threads: int | None = None) -> float:
        """Peak without SIMD (the unvectorizable schedules)."""
        return self.maxplus_peak_flops(threads) / self.simd_lanes_fp32

    def cache(self, name: str) -> CacheLevel:
        for c in self.caches:
            if c.name == name:
                return c
        raise KeyError(f"{self.name} has no cache level {name!r}")

    def level_bandwidth(self, name: str, threads: int | None = None) -> float:
        """Aggregate bytes/sec of a level (or DRAM) with ``threads`` active."""
        if name.upper() == "DRAM":
            return self.dram_bandwidth_bytes_per_sec
        threads = self.cores if threads is None else threads
        active_cores = min(threads, self.cores)
        return self.cache(name).bandwidth_bytes_per_sec(self.freq_hz, active_cores)

    @property
    def llc(self) -> CacheLevel:
        return self.caches[-1]


#: The paper's primary platform (Table/figure machine).
XEON_E5_1650V4 = MachineSpec(
    name="Xeon E5-1650v4",
    cores=6,
    smt=2,
    freq_hz=3.6e9,
    simd_lanes_fp32=8,
    maxplus_ops_per_cycle=2,
    caches=(
        CacheLevel("L1", 32 * 1024, 93.0),
        CacheLevel("L2", 256 * 1024, 25.0),
        CacheLevel("L3", 15 * 1024 * 1024, 14.0),
    ),
    dram_bandwidth_bytes_per_sec=76.8e9,
)

#: The scalability-check platform (§V-C: "runs almost at the same speed").
XEON_E2278G = MachineSpec(
    name="Xeon E-2278G",
    cores=8,
    smt=2,
    freq_hz=3.4e9,
    simd_lanes_fp32=8,
    maxplus_ops_per_cycle=2,
    caches=(
        CacheLevel("L1", 32 * 1024, 93.0),
        CacheLevel("L2", 256 * 1024, 25.0),
        CacheLevel("L3", 16 * 1024 * 1024, 14.0),
    ),
    dram_bandwidth_bytes_per_sec=79.9e9,
)

MACHINES = {m.name: m for m in (XEON_E5_1650V4, XEON_E2278G)}
