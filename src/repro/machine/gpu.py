"""GPU comparison model (the Gildemaster related work, paper §II).

"Glidemaster achieved significant speedup on a windowed version of the
BPMax on GPU.  However, only up to a limited number of nucleotide
sequences or a window of nucleotide sequences can be processed on GPU
due to memory constraints.  Also, the cost of moving data out of the GPU
memory negatively impacts the overall performance.  So, it is crucial to
speed up the algorithm on the CPU."

This module models that trade-off so the claim is quantitative: a GPU
spec with device-memory capacity and PCIe bandwidth, a windowed-GPU
execution model (windows sized to fit device memory, each window's
triangles staged in and results staged out), and a comparison against
the CPU's tiled engine — reproducing the crossover the paper's argument
rests on: the GPU wins while the problem fits, and loses ground once
windowing forces transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import BYTES_F32, flops_r0, t1
from .perfmodel import PerfModel
from .specs import MachineSpec, XEON_E5_1650V4

__all__ = ["GpuSpec", "VOLTA_LIKE", "GpuWindowedModel", "GpuComparison"]


@dataclass(frozen=True)
class GpuSpec:
    """A GPU sufficient for the windowed-BPMax trade-off model."""

    name: str
    maxplus_peak_flops: float  # tropical (max,+) throughput
    memory_bytes: int
    memory_bandwidth_bytes_per_s: float
    pcie_bandwidth_bytes_per_s: float
    kernel_efficiency: float = 0.35  # fraction of peak a tuned kernel hits

    def __post_init__(self) -> None:
        if min(
            self.maxplus_peak_flops,
            self.memory_bytes,
            self.memory_bandwidth_bytes_per_s,
            self.pcie_bandwidth_bytes_per_s,
        ) <= 0:
            raise ValueError("GPU parameters must be positive")
        if not 0 < self.kernel_efficiency <= 1:
            raise ValueError("kernel_efficiency must be in (0, 1]")


#: A Volta-class device of the related work's era (V100-ish numbers).
VOLTA_LIKE = GpuSpec(
    name="Volta-class GPU",
    maxplus_peak_flops=14e12,
    memory_bytes=16 * 1024**3,
    memory_bandwidth_bytes_per_s=900e9,
    pcie_bandwidth_bytes_per_s=12e9,
)


@dataclass(frozen=True)
class GpuComparison:
    """CPU-vs-GPU outcome for one workload."""

    n: int
    m: int
    fits_device: bool
    windows_needed: int
    gpu_compute_s: float
    gpu_transfer_s: float
    gpu_total_s: float
    cpu_total_s: float

    @property
    def gpu_speedup_over_cpu(self) -> float:
        return self.cpu_total_s / self.gpu_total_s

    @property
    def transfer_fraction(self) -> float:
        return self.gpu_transfer_s / self.gpu_total_s if self.gpu_total_s else 0.0


class GpuWindowedModel:
    """Windowed BPMax-kernel execution on a GPU, vs the tiled CPU engine.

    The F table for (N, M) needs ``T1(N) * M^2 * 4`` bytes.  While it
    fits in device memory, the GPU runs one resident kernel (memory- or
    compute-bound, whichever binds).  Beyond that, the outer dimension is
    processed in windows of the largest N' that fits; window results and
    the halo triangles must cross PCIe both ways, and that traffic is the
    term the paper's argument hinges on.
    """

    def __init__(
        self,
        gpu: GpuSpec = VOLTA_LIKE,
        cpu: MachineSpec = XEON_E5_1650V4,
    ) -> None:
        self.gpu = gpu
        self.cpu_model = PerfModel(cpu)

    def table_bytes(self, n: int, m: int) -> int:
        return t1(n) * m * m * BYTES_F32

    def max_resident_n(self, m: int) -> int:
        """Largest outer length whose table fits device memory."""
        budget = self.gpu.memory_bytes * 0.9  # runtime reserves some
        n = 1
        while self.table_bytes(n + 1, m) <= budget:
            n += 1
            if n > 1 << 20:  # pragma: no cover - absurd sizes
                break
        return n

    def _gpu_kernel_seconds(self, n: int, m: int) -> float:
        w = float(flops_r0(n, m))
        t_compute = w / (self.gpu.maxplus_peak_flops * self.gpu.kernel_efficiency)
        # streaming the operand triangles at HBM rate, 2 bytes/FLOP
        t_memory = 2.0 * w / self.gpu.memory_bandwidth_bytes_per_s
        return max(t_compute, t_memory)

    def compare(self, n: int, m: int, threads: int = 6) -> GpuComparison:
        """One *full* workload, GPU vs CPU-tiled (the DMP kernel).

        While the table fits in device memory the GPU pays one staging
        round-trip; beyond capacity, the paper's objection bites: every
        split product whose operand triangles are not resident streams
        them over PCIe, and transfer time swamps the kernel ("the cost of
        moving data out of the GPU memory negatively impacts the overall
        performance").
        """
        if n < 2 or m < 2:
            raise ValueError(f"need n, m >= 2, got ({n}, {m})")
        n_fit = self.max_resident_n(m)
        fits = n <= n_fit
        compute = self._gpu_kernel_seconds(n, m)
        table = self.table_bytes(n, m)
        staging = 2 * table / self.gpu.pcie_bandwidth_bytes_per_s
        if fits:
            windows = 1
            transfer = staging
        else:
            # the resident fraction of the table serves from HBM; the
            # rest of every split product's operand traffic crosses PCIe
            windows = -(-n // max(n_fit, 1))
            resident = (self.gpu.memory_bytes * 0.9) / table
            tri = m * (m + 1) // 2 * BYTES_F32
            splits = (n - 1) * n * (n + 1) // 6  # K1(n) product instances
            miss_traffic = 2.0 * splits * tri * (1.0 - resident)
            transfer = staging + miss_traffic / self.gpu.pcie_bandwidth_bytes_per_s
        cpu = self.cpu_model.predict_dmp("tiled", n, m, threads, tile=(64, 16, 0))
        return GpuComparison(
            n=n,
            m=m,
            fits_device=fits,
            windows_needed=windows,
            gpu_compute_s=compute,
            gpu_transfer_s=transfer,
            gpu_total_s=compute + transfer,
            cpu_total_s=cpu.seconds,
        )
