"""Retry-aware stdlib client for the HTTP gateway.

:class:`GatewayClient` speaks the wire surface of
:mod:`repro.serve.http` over :mod:`http.client` — no third-party
dependency — and encodes the protocol's back-off contract so callers
don't have to: a **429** (``AdmissionRejected``) or **503**
(``DeadlineExceeded`` at admission, drain) response is retried after
sleeping the server's ``Retry-After`` hint (the gateway computes it
from observed queue depth and drain rate, and it is always finite),
falling back to capped exponential back-off when no hint is present.
Everything else — 400s, 500s, 504s — is *not* retried: those statuses
mean "fix the request" or "the tier already spent its own retry
budget", and hammering them only deepens an overload.

Failures raise structured :class:`BpmaxError` subclasses so ``bpmax
submit --url`` reports them as the usual one-line errors with exit
status 2: :class:`GatewayStatusError` carries the decoded error
envelope (``.status``, ``.code``, ``.retry_after_s``),
:class:`GatewayUnavailable` wraps transport-level failures (connection
refused, reset, timeout).

``/v1/batch`` responses stream: :meth:`GatewayClient.batch` yields one
decoded result object per JSONL line as the server flushes it.  Batch
calls are deliberately **not** retried as a unit — lines already
yielded may have been computed, and replaying them would double-spend
the tier; per-line retryable envelopes carry ``retry_after_s`` so the
caller can resubmit exactly the shed lines.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Iterable, Iterator
from urllib.parse import urlsplit

from ..robust.errors import BpmaxError
from .request import SubmitRequest, request_wire_dict

__all__ = ["GatewayClient", "GatewayStatusError", "GatewayUnavailable"]


class GatewayUnavailable(BpmaxError):
    """Transport-level failure: nothing listening, reset, timed out."""


class GatewayStatusError(BpmaxError):
    """A non-2xx response that exhausted (or never had) a retry budget."""

    def __init__(self, status: int, envelope: dict[str, Any] | None, message: str):
        super().__init__(message)
        self.status = status
        self.envelope = envelope or {}
        err = (envelope or {}).get("error") or {}
        self.code: str = err.get("code", "HttpError")
        self.retry_after_s: float | None = err.get("retry_after_s")


def _retry_after_from(headers: Any, envelope: dict[str, Any] | None) -> float | None:
    """Server back-off hint: Retry-After header, else envelope field."""
    raw = headers.get("Retry-After") if headers is not None else None
    if raw is not None:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    if envelope:
        val = (envelope.get("error") or {}).get("retry_after_s")
        if isinstance(val, (int, float)):
            return max(0.0, float(val))
    return None


class GatewayClient:
    """Client for one gateway base URL (e.g. ``http://127.0.0.1:8642``).

    ``max_retries`` bounds *additional* attempts after the first, spent
    only on 429/503 responses and (optionally, ``retry_transport=True``)
    transport failures.  Sleeps honor the server's ``Retry-After`` hint
    capped at ``max_sleep_s``; without a hint the fallback is
    ``backoff_s * 2**attempt``.
    """

    def __init__(
        self,
        url: str,
        timeout_s: float = 60.0,
        max_retries: int = 4,
        backoff_s: float = 0.05,
        max_sleep_s: float = 5.0,
        retry_transport: bool = False,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise BpmaxError(
                f"unsupported URL scheme {parts.scheme!r}; the gateway speaks http"
            )
        if not parts.hostname:
            raise BpmaxError(f"no host in gateway URL {url!r}")
        self.host: str = parts.hostname
        self.port: int = parts.port or 80
        self.base_path = parts.path.rstrip("/")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.max_sleep_s = max_sleep_s
        self.retry_transport = retry_transport
        #: total 429/503/transport retries this client has performed
        self.retries_performed = 0

    # -- low-level ------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout_s)

    def _request_once(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, Any, bytes]:
        """One round-trip -> ``(status, headers, body)``; connection closed."""
        conn = self._connect()
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, self.base_path + path, body=body, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            return resp.status, resp.headers, data
        except (ConnectionError, socket.timeout, OSError, http.client.HTTPException) as exc:
            raise GatewayUnavailable(
                f"gateway {self.host}:{self.port} unavailable: {exc}"
            ) from exc
        finally:
            conn.close()

    @staticmethod
    def _decode(data: bytes) -> dict[str, Any] | None:
        try:
            obj = json.loads(data.decode("utf-8", errors="replace"))
        except json.JSONDecodeError:
            return None
        return obj if isinstance(obj, dict) else None

    def _sleep_before_retry(self, attempt: int, hint: float | None) -> None:
        sleep = hint if hint is not None else self.backoff_s * (2.0 ** attempt)
        time.sleep(min(max(sleep, 0.0), self.max_sleep_s))
        self.retries_performed += 1

    def _json_call(self, method: str, path: str, body: bytes | None = None) -> dict[str, Any]:
        """Round-trip with the retry policy; returns the decoded 2xx body."""
        attempt = 0
        while True:
            try:
                status, headers, data = self._request_once(method, path, body)
            except GatewayUnavailable:
                if self.retry_transport and attempt < self.max_retries:
                    self._sleep_before_retry(attempt, None)
                    attempt += 1
                    continue
                raise
            envelope = self._decode(data)
            if 200 <= status < 300:
                if envelope is None:
                    raise GatewayStatusError(
                        status, None,
                        f"gateway returned undecodable body for {path}",
                    )
                return envelope
            if status in (429, 503) and attempt < self.max_retries:
                self._sleep_before_retry(
                    attempt, _retry_after_from(headers, envelope)
                )
                attempt += 1
                continue
            err = (envelope or {}).get("error") or {}
            raise GatewayStatusError(
                status, envelope,
                f"gateway error {status} [{err.get('code', '?')}] "
                f"{err.get('message', data[:200].decode(errors='replace'))}",
            )

    # -- endpoints ------------------------------------------------------------

    @staticmethod
    def _wire(request: SubmitRequest | dict[str, Any]) -> dict[str, Any]:
        if isinstance(request, SubmitRequest):
            return request_wire_dict(request)
        return dict(request)

    def fold(self, request: SubmitRequest | dict[str, Any]) -> dict[str, Any]:
        """``POST /v1/fold``; returns the result object of an accepted
        request, retrying 429/503 per the client's budget."""
        body = json.dumps(self._wire(request), separators=(",", ":")).encode()
        return self._json_call("POST", "/v1/fold", body)

    def batch(
        self, requests: Iterable[SubmitRequest | dict[str, Any]]
    ) -> Iterator[dict[str, Any]]:
        """``POST /v1/batch``; yields one decoded object per streamed line.

        Not retried as a unit (see module docstring) — shed lines carry
        ``error.retry_after_s`` for selective resubmission.
        """
        payload = "".join(
            json.dumps(self._wire(r), separators=(",", ":")) + "\n" for r in requests
        ).encode()
        conn = self._connect()
        try:
            conn.request(
                "POST", self.base_path + "/v1/batch", body=payload,
                headers={"Content-Type": "application/x-ndjson"},
            )
            resp = conn.getresponse()
            if resp.status != 200:
                data = resp.read()
                envelope = self._decode(data)
                err = (envelope or {}).get("error") or {}
                raise GatewayStatusError(
                    resp.status, envelope,
                    f"batch rejected with {resp.status} [{err.get('code', '?')}] "
                    f"{err.get('message', data[:200].decode(errors='replace'))}",
                )
            while True:
                line = resp.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    yield json.loads(text)
                except json.JSONDecodeError as exc:
                    raise GatewayStatusError(
                        200, None, f"undecodable stream line {text[:120]!r}"
                    ) from exc
        except (ConnectionError, socket.timeout, OSError, http.client.HTTPException) as exc:
            raise GatewayUnavailable(
                f"gateway {self.host}:{self.port} unavailable mid-batch: {exc}"
            ) from exc
        finally:
            conn.close()

    def healthz(self) -> dict[str, Any]:
        """``GET /healthz`` (a draining gateway's 503 is *not* retried:
        the caller is asking about health, not for work)."""
        status, _headers, data = self._request_once("GET", "/healthz")
        envelope = self._decode(data)
        if envelope is None:
            raise GatewayStatusError(status, None, "undecodable /healthz body")
        return envelope

    def metrics(self) -> dict[str, Any]:
        """``GET /metrics``."""
        return self._json_call("GET", "/metrics")
