"""Admission control for the sharded serving tier.

A service pushed past capacity has exactly two honest options: make the
client wait a *bounded* amount of time, or tell it "no" immediately.
Everything else — unbounded queues, silent timeouts — converts overload
into latency collapse.  The :class:`AdmissionController` implements the
"no" path:

* **bounded queues** — each shard accepts at most ``queue_limit``
  still-queued requests; beyond that, new arrivals are rejected with a
  structured :class:`~repro.robust.errors.AdmissionRejected` instead of
  queueing toward an inevitable timeout;
* **graduated priority shedding** — each priority class only gets a
  fraction of the bound (interactive 100%, batch 75%, scan 50%), so as
  a queue fills, ``scan`` traffic is shed first, then ``batch``, and
  ``interactive`` requests keep being admitted until the queue is
  *actually* full — the classic water-mark scheme;
* **deadline-aware shedding** — a request whose deadline has already
  expired, or whose remaining budget is smaller than a conservative
  queue-wait estimate, is rejected at admission (fail fast) rather than
  queued until its ``DeadlineExceeded`` fires after the work was
  already wasted.

The controller is a pure policy object: it never touches queues itself,
it just answers "admit or shed, and why" from the depths the scheduler
reports.  That keeps it deterministic and directly unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..robust.errors import AdmissionRejected, DeadlineExceeded
from .request import PRIORITY_CLASSES

__all__ = ["AdmissionController", "AdmissionStats", "priority_rank"]

#: class -> fraction of ``queue_limit`` that class may fill
_CLASS_FILL = {"interactive": 1.0, "batch": 0.75, "scan": 0.5}

_RANK = {name: rank for rank, name in enumerate(PRIORITY_CLASSES)}


def priority_rank(priority: str) -> int:
    """Numeric urgency of a class (lower is more urgent)."""
    return _RANK[priority]


@dataclass
class AdmissionStats:
    """Monotonic counters of one controller's decisions."""

    admitted: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    shed_by_class: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in PRIORITY_CLASSES}
    )

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_deadline

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "shed_by_class": dict(self.shed_by_class),
        }


class AdmissionController:
    """Decide admit-or-shed for one scheduler's queues.

    Parameters
    ----------
    queue_limit: per-shard bound on still-queued (undispatched)
        requests; the hard cap for ``interactive``, with lower classes
        capped at their :data:`_CLASS_FILL` fraction.
    est_wait_s: conservative estimate of the queue wait ahead of a new
        request *per queued request* — used only for deadline-aware
        shedding (a request whose remaining budget is below
        ``depth * est_wait_s`` can never make it).  0 disables the
        feasibility check; expired deadlines are always shed.
    """

    def __init__(self, queue_limit: int = 64, est_wait_s: float = 0.0) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if est_wait_s < 0:
            raise ValueError(f"est_wait_s must be >= 0, got {est_wait_s}")
        self.queue_limit = queue_limit
        self.est_wait_s = est_wait_s
        self.stats = AdmissionStats()

    def class_cap(self, priority: str) -> int:
        """The queue depth at which ``priority`` traffic starts shedding."""
        return max(1, int(self.queue_limit * _CLASS_FILL[priority]))

    def admit(
        self,
        priority: str,
        depth: int,
        deadline_remaining_s: float | None = None,
    ) -> AdmissionRejected | DeadlineExceeded | None:
        """Admit a request of ``priority`` into a queue of ``depth``.

        Returns ``None`` when admitted, or the structured error the
        request must be resolved with when shed (the caller turns it
        into an error :class:`~repro.serve.request.ServeResult`; it is
        *returned*, not raised, because shedding is an expected outcome,
        not an exception in the control flow).
        """
        if deadline_remaining_s is not None:
            if deadline_remaining_s < 0:
                self.stats.shed_deadline += 1
                self.stats.shed_by_class[priority] += 1
                return DeadlineExceeded(
                    "deadline expired before admission; not queueing dead work"
                )
            if self.est_wait_s > 0 and deadline_remaining_s < depth * self.est_wait_s:
                self.stats.shed_deadline += 1
                self.stats.shed_by_class[priority] += 1
                return DeadlineExceeded(
                    f"deadline infeasible: {deadline_remaining_s:.3g}s "
                    f"remaining < estimated queue wait "
                    f"{depth * self.est_wait_s:.3g}s at depth {depth}"
                )
        cap = self.class_cap(priority)
        if depth >= cap:
            self.stats.shed_queue_full += 1
            self.stats.shed_by_class[priority] += 1
            return AdmissionRejected(
                f"queue full for class {priority!r}: depth {depth} >= "
                f"cap {cap} (limit {self.queue_limit}); back off and retry"
            )
        self.stats.admitted += 1
        return None
