"""Deterministic stress-scenario library for the serving tier.

Production serving dies in predictable ways: traffic arrives in bursts,
request sizes are heavy-tailed (one genome-scale scan behind a hundred
interactive probes), deadline storms shed half the queue at once, a
poisoned request crashes its worker, and sometimes the worker just dies.
This module packages those shapes as *seeded, reproducible* generators
so the same scenario that guards CI can be replayed locally from one
printed seed — the :envvar:`BPMAX_TEST_SEED` convention of the test
suite (the suite seed is the default; every generated workload is a
pure function of ``(scenario, seed)``).

The workload model follows the paper's grounding: BPMax/BPPart
interaction scoring mixes short interactive probes with long windowed
sRNA-target scans, which is exactly an on/off bursty arrival process
over a heavy-tailed size distribution.

Each :class:`Scenario` compiles to a list of :class:`TimedRequest` —
an arrival offset plus a ready :class:`~repro.serve.request.SubmitRequest`
— and optionally a :class:`~repro.robust.faults.FaultPlan` carrying
worker-kill/hang sites.  ``benchmarks/bench_serve_stress.py`` replays
them against a :class:`~repro.serve.shard.ShardScheduler` and reports
p50/p99 latency and shed rate; the tests replay the small ones inline.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from ..rna.sequence import random_pair
from ..robust.faults import FaultPlan
from .request import PRIORITY_CLASSES, SubmitRequest

__all__ = [
    "Scenario",
    "TimedRequest",
    "SCENARIOS",
    "default_seed",
    "scenario_seed",
    "generate",
    "get_scenario",
    "scaled",
]


def default_seed() -> int:
    """The suite-wide seed (``BPMAX_TEST_SEED``, default 12345)."""
    return int(os.environ.get("BPMAX_TEST_SEED", "12345"))


def scenario_seed(name: str, seed: int | None = None) -> tuple[int, int]:
    """Derive a scenario's stream seed from the suite seed.

    Mirrors the test suite's ``fuzz_rng`` convention: the stream is
    ``(suite_seed, crc32(name))`` so each scenario draws independently
    while the whole library replays from one exported integer.
    """
    suite = default_seed() if seed is None else int(seed)
    return (suite, zlib.crc32(name.encode()))


@dataclass(frozen=True)
class TimedRequest:
    """One scheduled arrival: submit ``request`` at ``at_s`` seconds."""

    at_s: float
    request: SubmitRequest


@dataclass(frozen=True)
class Scenario:
    """A reproducible serving workload shape.

    Parameters
    ----------
    name, description: identity (the name also salts the seed stream).
    requests: total arrivals.
    duration_s: arrival horizon; mean arrival rate is
        ``requests / duration_s``.
    burstiness: 0 spreads arrivals evenly (Poisson); towards 1 the
        arrivals concentrate into on/off bursts of ``burst_len``.
    burst_len: arrivals per burst when bursty.
    n_range / m_range: uniform strand-length bounds (inclusive).
    heavy_tail: replace the uniform size draw with a clipped Pareto so
        a few requests are far larger than the median (the scan-behind-
        probes mix); ``tail_cap`` bounds the largest strand.
    priority_mix: class -> probability (defaults to all ``batch``).
    deadline_s: per-request budget applied to ``deadline_frac`` of the
        requests (None disables deadlines).
    deadline_frac: fraction of requests carrying the deadline — 1.0
        with a tight ``deadline_s`` is a deadline storm.
    poison_rate: fraction of requests with an unservable (non-RNA)
        strand; they must fail alone with a structured error.
    shard_kills / shard_hangs: ``(shard, ordinal)`` fault sites
        compiled into the scenario's :class:`FaultPlan`.
    overload: informational multiple of estimated service capacity this
        scenario aims at (recorded in benchmark reports).
    p99_budget_s: latency gate for the benchmark's ``--check`` mode
        (accepted interactive+batch requests must keep p99 under it).
    """

    name: str
    description: str
    requests: int = 64
    duration_s: float = 1.0
    burstiness: float = 0.0
    burst_len: int = 8
    n_range: tuple[int, int] = (6, 14)
    m_range: tuple[int, int] = (6, 14)
    heavy_tail: bool = False
    tail_cap: int = 28
    priority_mix: dict[str, float] = field(default_factory=lambda: {"batch": 1.0})
    deadline_s: float | None = None
    deadline_frac: float = 0.0
    poison_rate: float = 0.0
    shard_kills: tuple[tuple[int, int], ...] = ()
    shard_hangs: tuple[tuple[int, int], ...] = ()
    overload: float = 1.0
    p99_budget_s: float = 30.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if not 0.0 <= self.burstiness <= 1.0:
            raise ValueError(f"burstiness must be in [0, 1], got {self.burstiness}")
        if not 0.0 <= self.poison_rate <= 1.0:
            raise ValueError(f"poison_rate must be in [0, 1], got {self.poison_rate}")
        total = sum(self.priority_mix.values())
        if not self.priority_mix or abs(total - 1.0) > 1e-9:
            raise ValueError(f"priority_mix must sum to 1, got {total}")
        for cls in self.priority_mix:
            if cls not in PRIORITY_CLASSES:
                raise ValueError(
                    f"unknown priority {cls!r}; use one of {PRIORITY_CLASSES}"
                )

    def fault_plan(self, seed: int | None = None) -> FaultPlan | None:
        """The scenario's worker-fault plan (None when fault-free)."""
        if not self.shard_kills and not self.shard_hangs:
            return None
        suite, derived = scenario_seed(self.name, seed)
        return FaultPlan(
            seed=suite ^ derived,
            shard_kills=self.shard_kills,
            shard_hangs=self.shard_hangs,
        )


def _arrivals(scn: Scenario, rng: np.random.Generator) -> np.ndarray:
    """Arrival offsets in [0, duration_s), sorted."""
    if scn.burstiness <= 0:
        at = rng.uniform(0.0, scn.duration_s, size=scn.requests)
    else:
        # on/off process: bursts of burst_len land together at a few
        # burst epochs; the rest trickle uniformly.  burstiness is the
        # fraction of traffic arriving inside bursts.
        in_burst = rng.random(scn.requests) < scn.burstiness
        n_bursts = max(1, int(np.ceil(in_burst.sum() / scn.burst_len)))
        epochs = rng.uniform(0.0, scn.duration_s, size=n_bursts)
        at = np.where(
            in_burst,
            epochs[rng.integers(0, n_bursts, size=scn.requests)]
            + rng.uniform(0.0, 0.005, size=scn.requests),
            rng.uniform(0.0, scn.duration_s, size=scn.requests),
        )
    return np.sort(at)


def _size(scn: Scenario, rng: np.random.Generator, lo: int, hi: int) -> int:
    if not scn.heavy_tail:
        return int(rng.integers(lo, hi + 1))
    # clipped Pareto: median near lo, occasional sizes up to tail_cap
    draw = lo + (rng.pareto(2.5) + 0.0) * (hi - lo)
    return int(min(scn.tail_cap, max(lo, round(draw))))


#: characters guaranteed to fail sequence normalization
_POISON = "XX!!XX"


def generate(scn: Scenario, seed: int | None = None, **request_kw) -> list[TimedRequest]:
    """Compile a scenario into timed requests (pure in ``(scn, seed)``).

    ``request_kw`` overrides :class:`SubmitRequest` fields wholesale
    (e.g. ``variant="batched"`` to pin an engine for a benchmark run).
    """
    rng = np.random.default_rng(scenario_seed(scn.name, seed))
    classes = sorted(scn.priority_mix)
    probs = np.array([scn.priority_mix[c] for c in classes])
    probs = probs / probs.sum()
    out: list[TimedRequest] = []
    for i, at in enumerate(_arrivals(scn, rng)):
        n = _size(scn, rng, *scn.n_range)
        m = _size(scn, rng, *scn.m_range)
        s1, s2 = random_pair(n, m, int(rng.integers(0, 2**31)))
        seq1, seq2 = str(s1), str(s2)
        if scn.poison_rate > 0 and rng.random() < scn.poison_rate:
            seq1 = _POISON
        deadline = None
        if scn.deadline_s is not None and rng.random() < scn.deadline_frac:
            deadline = scn.deadline_s
        priority = classes[int(rng.choice(len(classes), p=probs))]
        kw = {
            "id": f"{scn.name}-{i}",
            "priority": priority,
            "deadline_s": deadline,
            **request_kw,
        }
        out.append(TimedRequest(float(at), SubmitRequest(seq1, seq2, **kw)))
    return out


def _mix(interactive: float, batch: float, scan: float) -> dict[str, float]:
    return {"interactive": interactive, "batch": batch, "scan": scan}


#: the checked-in scenario library, keyed by name.  ``bursty-small`` is
#: the CI smoke scenario: 2 shards, 2x overload-ish burst, one injected
#: worker kill — small enough for a runner, sharp enough to catch a
#: hung future or an unstructured shed.
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "steady",
            "uniform arrivals, uniform sizes — the control workload",
            requests=64,
            duration_s=1.0,
        ),
        Scenario(
            "bursty",
            "80% of traffic in bursts of 16 — queues must absorb or shed",
            requests=96,
            duration_s=1.5,
            burstiness=0.8,
            burst_len=16,
            priority_mix=_mix(0.3, 0.5, 0.2),
        ),
        Scenario(
            "heavy-tail",
            "Pareto sizes: interactive probes behind occasional big scans",
            requests=64,
            duration_s=1.5,
            heavy_tail=True,
            tail_cap=32,
            priority_mix=_mix(0.4, 0.3, 0.3),
        ),
        Scenario(
            "deadline-storm",
            "every request carries a tight deadline; most must shed fast, "
            "none may hang",
            requests=96,
            duration_s=0.5,
            burstiness=0.9,
            burst_len=32,
            deadline_s=0.15,
            deadline_frac=1.0,
            priority_mix=_mix(0.5, 0.5, 0.0),
            overload=3.0,
        ),
        Scenario(
            "poisoned",
            "10% unservable requests mixed into normal traffic; each fails "
            "alone with a structured error",
            requests=64,
            duration_s=1.0,
            poison_rate=0.10,
        ),
        Scenario(
            "worker-kill",
            "steady traffic with two injected worker deaths; respawn and "
            "re-route must keep every accepted answer exact",
            requests=48,
            duration_s=1.0,
            shard_kills=((0, 3), (1, 5)),
        ),
        Scenario(
            "overload-2x",
            "2x capacity bursts plus one worker death: the acceptance "
            "scenario — shed with structure, heal, stay exact",
            requests=128,
            duration_s=1.0,
            burstiness=0.9,
            burst_len=32,
            priority_mix=_mix(0.3, 0.5, 0.2),
            shard_kills=((0, 4),),
            overload=2.0,
        ),
        Scenario(
            "bursty-small",
            "CI smoke: small bursty workload, 2 shards, one injected kill",
            requests=40,
            duration_s=0.6,
            burstiness=0.8,
            burst_len=10,
            n_range=(5, 10),
            m_range=(5, 10),
            priority_mix=_mix(0.4, 0.4, 0.2),
            shard_kills=((0, 2),),
            p99_budget_s=20.0,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (helpful error on a miss)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def scaled(scn: Scenario, time_scale: float) -> Scenario:
    """A copy with the arrival horizon stretched by ``time_scale``."""
    if time_scale <= 0:
        raise ValueError(f"time_scale must be > 0, got {time_scale}")
    deadline = scn.deadline_s * time_scale if scn.deadline_s is not None else None
    return replace(scn, duration_s=scn.duration_s * time_scale, deadline_s=deadline)
