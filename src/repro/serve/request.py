"""Request/result objects and the JSONL wire format of the serving layer.

A :class:`SubmitRequest` is one unit of client work: score (and
optionally fold) a pair of strands under a scoring model, with the
per-request robustness knobs of :func:`repro.core.api.bpmax` (deadline,
retries, fallback chain).  Requests are grouped into batches by
:func:`batch_key` — same problem shape, same scoring model, same engine
configuration — so batch members can share one
:class:`~repro.kernels.Workspace`, and deduplicated by
:func:`cache_key`, the content address of the answer.

The CLI speaks JSON Lines: one request object per line in, one result
object per line out (see :func:`parse_request_line` /
:meth:`ServeResult.as_dict`).  JSONL requests always use the default
scoring model; the library API accepts any :class:`ScoringModel`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from typing import TYPE_CHECKING

from ..core.engine import ENGINES
from ..robust.errors import BpmaxError
from ..rna.alphabet import normalize
from ..rna.scoring import DEFAULT_MODEL, ScoringModel
from ..semiring import ENGINE_SEMIRINGS, get_semiring

if TYPE_CHECKING:  # pragma: no cover
    from ..robust.faults import FaultPlan

__all__ = [
    "PRIORITY_CLASSES",
    "SubmitRequest",
    "ServeResult",
    "scoring_fingerprint",
    "cache_key",
    "batch_key",
    "parse_request_line",
    "request_from_dict",
    "request_wire_dict",
]

#: admission-control priority classes, most to least urgent.  The
#: sharded tier schedules strictly by class (interactive jumps every
#: queue) and sheds the *least* urgent classes first under overload.
PRIORITY_CLASSES = ("interactive", "batch", "scan")


def scoring_fingerprint(model: ScoringModel) -> str:
    """Stable content hash of a scoring model (12 hex chars).

    Two models with the same pair weights, intermolecular weights and
    minimum-loop constraint fingerprint identically regardless of dict
    insertion order, so the fingerprint is a valid cache-key component.
    """

    def canon(weights: Mapping[frozenset[str], float] | None) -> list | None:
        if weights is None:
            return None
        return sorted(["".join(sorted(p)), float(w)] for p, w in weights.items())

    payload = json.dumps(
        {
            "pair": canon(model.pair_weights),
            "inter": canon(model.inter_weights),
            "min_loop": model.min_loop,
        },
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class SubmitRequest:
    """One serving request: score ``seq1`` vs ``seq2``.

    Parameters mirror :func:`repro.core.api.bpmax`; ``deadline_s`` is a
    per-request compute budget measured from *submission* (queueing time
    counts against it, as in a real service), so a request that waited
    too long fails fast instead of stalling its batch.

    ``priority`` names the admission-control class (one of
    :data:`PRIORITY_CLASSES`): the sharded tier serves more urgent
    classes first and sheds less urgent ones first under overload.
    ``faults`` optionally carries a :class:`~repro.robust.faults.FaultPlan`
    into the engine run — library/testing only, not part of the wire
    format or of any cache/batch key.
    """

    seq1: str
    seq2: str
    id: str = ""
    variant: str = "hybrid-tiled"
    backend: str | None = None
    model: ScoringModel = DEFAULT_MODEL
    semiring: str = "max-plus"
    structure: bool = False
    deadline_s: float | None = None
    retries: int = 0
    fallback: tuple[str, ...] = ()
    priority: str = "batch"
    faults: "FaultPlan | None" = None

    def __post_init__(self) -> None:
        if self.variant not in ENGINES:
            raise BpmaxError(
                f"unknown variant {self.variant!r}; use one of {ENGINES}"
            )
        try:
            sr = get_semiring(self.semiring)
        except ValueError as exc:
            raise BpmaxError(str(exc)) from None
        if sr.name not in ENGINE_SEMIRINGS:
            raise BpmaxError(
                f"semiring {sr.name!r} has no engine support; "
                f"use one of {ENGINE_SEMIRINGS}"
            )
        # canonicalize aliases ("log-sum-exp" -> "logsumexp") so cache
        # and batch keys compare by algebra, not by spelling
        object.__setattr__(self, "semiring", sr.name)
        for v in self.fallback:
            if v not in ENGINES:
                raise BpmaxError(
                    f"unknown fallback variant {v!r}; use one of {ENGINES}"
                )
        if self.retries < 0:
            raise BpmaxError(f"retries must be >= 0, got {self.retries}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise BpmaxError(
                f"deadline must be positive, got {self.deadline_s:g}"
            )
        if self.priority not in PRIORITY_CLASSES:
            raise BpmaxError(
                f"unknown priority {self.priority!r}; "
                f"use one of {PRIORITY_CLASSES}"
            )


def cache_key(req: SubmitRequest) -> tuple[str, str, str, str, str]:
    """The content address of a request's answer.

    ``(seq1, seq2, scoring, semiring, backend)`` after sequence
    normalization — every engine variant computes the same score within
    its semiring's contract (bit-identical for max-plus; within corpus
    tolerance for log-sum-exp), so the variant is deliberately *not*
    part of the key: a cached answer computed by one variant serves
    requests for any other.  The **semiring is** part of the key: a
    max-plus score and a log-partition value are different quantities
    for the same sequences, and serving one for the other would be a
    silent wrong answer.  Raises :class:`InvalidSequenceError` for
    unservable sequences (the scheduler fails those requests fast
    instead).
    """
    return (
        normalize(req.seq1),
        normalize(req.seq2),
        scoring_fingerprint(req.model),
        req.semiring,
        req.backend or "",
    )


def batch_key(req: SubmitRequest) -> tuple:
    """Grouping key for adaptive batching.

    Requests in one batch share problem shape ``(n, m)``, scoring model,
    semiring, variant and backend, so the executor can run them
    back-to-back on one thread reusing a single
    :class:`~repro.kernels.Workspace` (the zero-allocation hot path
    amortized across the whole batch; the semiring fixes the workspace
    dtype, so mixed-algebra requests must not share one).
    """
    n, m = len(normalize(req.seq1)), len(normalize(req.seq2))
    return (
        n,
        m,
        scoring_fingerprint(req.model),
        req.semiring,
        req.variant,
        req.backend or "",
    )


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one request (success or per-request failure).

    ``variant`` names the engine that actually produced the score —
    for a cache/coalescing hit that may differ from the requested
    variant (scores are engine-independent).  ``cached`` marks answers
    served without a fresh engine run; ``batch`` is the dispatch batch
    the computation ran in (-1 for submit-time cache hits and failed
    validations).  Failures carry ``error``/``error_type`` and a
    ``None`` score; the batch they rode in is unaffected.

    ``shard`` is the worker process that served the request in the
    sharded tier (-1 for the in-process batch tier, submit-time
    resolutions and shed requests; -2 for the degraded in-process
    fallback of a collapsed pool).
    """

    id: str
    seq1: str
    seq2: str
    score: float | None = None
    variant: str | None = None
    cached: bool = False
    batch: int = -1
    shard: int = -1
    wall_s: float = 0.0
    structure: dict[str, Any] | None = None
    degraded_from: tuple[str, ...] = ()
    error: str | None = None
    error_type: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "ok": self.ok,
            "seq1": self.seq1,
            "seq2": self.seq2,
            "score": self.score,
            "variant": self.variant,
            "cached": self.cached,
            "batch": self.batch,
            "shard": self.shard,
            "wall_s": round(self.wall_s, 6),
            "structure": self.structure,
            "degraded_from": list(self.degraded_from),
            "error": self.error,
            "error_type": self.error_type,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), separators=(",", ":"))


#: JSONL request keys the parser understands
_REQUEST_KEYS = frozenset(
    {
        "id",
        "seq1",
        "seq2",
        "variant",
        "backend",
        "semiring",
        "structure",
        "deadline",
        "retries",
        "fallback",
        "priority",
    }
)


def request_from_dict(data: dict[str, Any], where: str = "request") -> SubmitRequest:
    """Build a :class:`SubmitRequest` from a decoded JSONL object."""
    if not isinstance(data, dict):
        raise BpmaxError(f"{where}: expected a JSON object, got {type(data).__name__}")
    unknown = set(data) - _REQUEST_KEYS
    if unknown:
        raise BpmaxError(
            f"{where}: unknown key(s) {sorted(unknown)}; "
            f"allowed: {sorted(_REQUEST_KEYS)}"
        )
    for need in ("seq1", "seq2"):
        if need not in data:
            raise BpmaxError(f"{where}: missing required key {need!r}")
        if not isinstance(data[need], str):
            raise BpmaxError(f"{where}: {need!r} must be a string")
    fallback = data.get("fallback", ())
    if isinstance(fallback, str):
        fallback = tuple(v.strip() for v in fallback.split(",") if v.strip())
    elif isinstance(fallback, (list, tuple)):
        fallback = tuple(str(v) for v in fallback)
    else:
        raise BpmaxError(f"{where}: 'fallback' must be a list or comma string")
    deadline = data.get("deadline")
    if deadline is not None and not isinstance(deadline, (int, float)):
        raise BpmaxError(f"{where}: 'deadline' must be a number")
    priority = data.get("priority", "batch")
    if not isinstance(priority, str):
        raise BpmaxError(f"{where}: 'priority' must be a string")
    semiring = data.get("semiring", "max-plus")
    if not isinstance(semiring, str):
        raise BpmaxError(f"{where}: 'semiring' must be a string")
    return SubmitRequest(
        seq1=data["seq1"],
        seq2=data["seq2"],
        id=str(data.get("id", "")),
        variant=str(data.get("variant", "hybrid-tiled")),
        backend=data.get("backend"),
        semiring=semiring,
        structure=bool(data.get("structure", False)),
        deadline_s=float(deadline) if deadline is not None else None,
        retries=int(data.get("retries", 0)),
        fallback=fallback,
        priority=priority,
    )


def request_wire_dict(req: SubmitRequest) -> dict[str, Any]:
    """The JSONL wire object for a request (inverse of
    :func:`request_from_dict`, defaults elided).

    ``model`` and ``faults`` are library-side knobs with no wire
    representation: JSONL requests always use the default scoring model,
    and fault plans belong to the *server's* scheduler, never to a
    client.
    """
    d: dict[str, Any] = {"seq1": req.seq1, "seq2": req.seq2}
    if req.id:
        d["id"] = req.id
    if req.variant != "hybrid-tiled":
        d["variant"] = req.variant
    if req.backend is not None:
        d["backend"] = req.backend
    if req.semiring != "max-plus":
        d["semiring"] = req.semiring
    if req.structure:
        d["structure"] = True
    if req.deadline_s is not None:
        d["deadline"] = req.deadline_s
    if req.retries:
        d["retries"] = req.retries
    if req.fallback:
        d["fallback"] = list(req.fallback)
    if req.priority != "batch":
        d["priority"] = req.priority
    return d


def parse_request_line(line: str, lineno: int = 0) -> SubmitRequest | None:
    """Parse one JSONL request line (``None`` for blank/comment lines).

    Malformed lines raise :class:`BpmaxError` naming the line number, so
    the CLI reports them as one-line errors with exit status 2.
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    where = f"line {lineno}" if lineno else "request"
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BpmaxError(f"{where}: invalid JSON ({exc.msg})") from exc
    req = request_from_dict(data, where=where)
    if not req.id:
        req = SubmitRequest(
            **{**req.__dict__, "id": f"line{lineno}" if lineno else "req"}
        )
    return req
