"""Adaptive batch scheduler: the async request-serving core.

Turns one-shot :func:`~repro.core.api.bpmax` calls into a multi-tenant
service.  Amortization comes from three places, in order of strength:

1. **content-addressed caching** — identical ``(seq1, seq2, scoring,
   backend)`` requests are answered from the
   :class:`~repro.serve.cache.ResultCache` without touching an engine;
2. **in-flight coalescing** — a request identical to one already queued
   or running attaches to it as a *follower* and shares its single
   computation (the classic thundering-herd dedup);
3. **shape batching** — distinct requests with the same
   :func:`~repro.serve.request.batch_key` (problem shape, scoring,
   variant, backend) are grouped into batches and executed back-to-back
   on one worker, sharing a single :class:`~repro.kernels.Workspace`
   so the zero-allocation hot path warms up once per batch instead of
   once per request.

Batches form adaptively between two watermarks: a group dispatches as
soon as it holds ``max_batch`` requests (size watermark) or when its
oldest member has waited ``max_delay_s`` (latency watermark), whichever
comes first.  Dispatch fans out over the existing
:class:`~repro.parallel.pool.ParallelRunner`, so ``workers`` batches
execute concurrently (NumPy releases the GIL in the kernels).

Robustness is per-request, reusing :mod:`repro.robust` end to end: each
request may carry a :class:`~repro.robust.deadline.Deadline` budget
(started at *submission*, so queueing counts), a retry count and a
fallback chain.  A poisoned request — invalid sequence, expired budget,
crashing engine — degrades to an error :class:`ServeResult` on its own
future; the rest of its batch is unaffected and the service never dies.

The scheduler is thread-safe and loop-agnostic: ``submit`` returns a
:class:`concurrent.futures.Future`, and the ``*_async`` wrappers adapt
it to any running asyncio loop via :func:`asyncio.wrap_future`.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from ..kernels import Workspace
from ..observe.metrics import active as _metrics_active
from ..observe.tracer import trace
from ..parallel.pool import ParallelRunner
from ..robust.deadline import Deadline
from ..robust.errors import BpmaxError, RequestCancelled
from ..semiring import get_semiring
from .cache import CachedAnswer, ResultCache
from .request import ServeResult, SubmitRequest, batch_key, cache_key

__all__ = ["BatchScheduler", "SchedulerStats"]


@dataclass
class SchedulerStats:
    """Aggregate counters of one scheduler's lifetime."""

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    coalesced: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch_size: int = 0
    cache: dict[str, Any] = field(default_factory=dict)

    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": round(self.mean_batch_size(), 3),
            "cache": dict(self.cache),
        }


class _Pending:
    """One queued primary request plus the followers coalesced onto it."""

    __slots__ = ("request", "future", "deadline", "submitted_at", "followers", "resolved")

    def __init__(self, request: SubmitRequest, deadline: Deadline | None) -> None:
        self.request = request
        self.future: Future[ServeResult] = Future()
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self.followers: list[_Pending] = []
        self.resolved = False


class BatchScheduler:
    """Queue, batch, dedup and dispatch :class:`SubmitRequest` s.

    Parameters
    ----------
    max_batch: size watermark — a shape group dispatches immediately
        once it holds this many requests.
    max_delay_s: latency watermark — a group dispatches once its oldest
        member has queued this long, full or not.
    workers: concurrent batch executions (one
        :class:`~repro.parallel.pool.ParallelRunner` worker each).
    cache: a preconfigured :class:`ResultCache`, or an int capacity
        (0 disables caching).
    """

    def __init__(
        self,
        max_batch: int = 16,
        max_delay_s: float = 0.01,
        workers: int = 2,
        cache: ResultCache | int = 1024,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.cache = cache if isinstance(cache, ResultCache) else ResultCache(cache)
        self._pool = ParallelRunner(max(1, workers))
        self._cond = threading.Condition()
        self._groups: dict[tuple, list[_Pending]] = {}
        self._group_since: dict[tuple, float] = {}
        self._ready: deque[list[_Pending]] = deque()
        self._inflight: dict[tuple, _Pending] = {}
        self._outstanding = 0
        self._batch_seq = 0
        self._stopped = False
        self._stats = SchedulerStats()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="bpmax-serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- submission -----------------------------------------------------------

    def submit(self, request: SubmitRequest) -> "Future[ServeResult]":
        """Enqueue one request; resolve its future when the answer is in.

        Submit-time fast paths (no batch involved): an unservable
        request (invalid sequence) fails immediately, and a cache hit
        resolves immediately.  Everything else is queued for batching
        or coalesced onto an identical in-flight request.
        """
        pending = _Pending(
            request,
            Deadline(request.deadline_s) if request.deadline_s is not None else None,
        )
        with self._cond:
            if self._stopped:
                raise RuntimeError(
                    "BatchScheduler is closed; create a new one instead of "
                    "reusing a shut-down scheduler"
                )
            self._stats.submitted += 1
            self._outstanding += 1
        try:
            ckey = cache_key(request)
        except BpmaxError as exc:
            self._resolve(pending, self._error_result(request, exc))
            return pending.future
        hit = self.cache.get(ckey, need_structure=request.structure)
        if hit is not None:
            self._resolve(pending, self._answer_result(request, hit, cached=True))
            return pending.future
        coalesce_key = (ckey, request.structure)
        with self._cond:
            primary = self._inflight.get(coalesce_key)
            if primary is not None:
                primary.followers.append(pending)
                self._stats.coalesced += 1
                return pending.future
            self._inflight[coalesce_key] = pending
            bkey = batch_key(request)
            group = self._groups.setdefault(bkey, [])
            if not group:
                self._group_since[bkey] = pending.submitted_at
            group.append(pending)
            if len(group) >= self.max_batch:
                self._ready.append(self._groups.pop(bkey))
                self._group_since.pop(bkey, None)
            self._cond.notify_all()
        return pending.future

    def serve_all(self, requests: Iterable[SubmitRequest]) -> list[ServeResult]:
        """Submit every request, flush, and wait (results in input order)."""
        futures = [self.submit(r) for r in requests]
        self.flush()
        return [f.result() for f in futures]

    # -- asyncio adapters -----------------------------------------------------

    async def submit_async(self, request: SubmitRequest) -> ServeResult:
        """Await one request from a running asyncio loop."""
        return await asyncio.wrap_future(self.submit(request))

    async def serve_all_async(
        self, requests: Sequence[SubmitRequest]
    ) -> list[ServeResult]:
        """Submit concurrently and gather results in input order."""
        futures = [self.submit(r) for r in requests]
        self.flush()
        return list(await asyncio.gather(*(asyncio.wrap_future(f) for f in futures)))

    # -- lifecycle ------------------------------------------------------------

    def flush(self) -> None:
        """Dispatch every queued group now, ignoring the watermarks."""
        with self._cond:
            self._flush_locked()
            self._cond.notify_all()

    def drain(self) -> None:
        """Block until every submitted request has resolved."""
        self.flush()
        with self._cond:
            self._cond.wait_for(lambda: self._outstanding == 0)

    def cancel_pending(self) -> int:
        """Resolve every still-queued request with a structured
        :class:`~repro.robust.errors.RequestCancelled` result.

        Only undispatched requests are cancelled — batches already
        running (or queued on the pool) complete normally and resolve
        their own futures.  Returns the number of requests cancelled
        (followers included).  Every cancelled future *resolves*: a
        cancellation is an answer, never a hang.
        """
        with self._cond:
            victims: list[_Pending] = []
            for bkey in list(self._groups):
                victims.extend(self._groups.pop(bkey))
                self._group_since.pop(bkey, None)
            while self._ready:
                victims.extend(self._ready.popleft())
            self._cond.notify_all()
        cancelled = 0
        for pending in victims:
            cancelled += 1 + len(pending.followers)
            self._resolve(
                pending,
                self._error_result(
                    pending.request,
                    RequestCancelled(
                        "request cancelled before dispatch "
                        "(scheduler shutting down)"
                    ),
                ),
            )
        return cancelled

    def close(self, cancel: bool = False) -> None:
        """Shut down and release the pool.  Idempotent; afterwards
        :meth:`submit` raises.

        By default queued work is flushed and completed.  With
        ``cancel=True`` undispatched requests are instead resolved
        immediately with structured
        :class:`~repro.robust.errors.RequestCancelled` results (running
        batches still complete) — fast shutdown without ever stranding
        a future.
        """
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
        if cancel:
            self.cancel_pending()
        with self._cond:
            self._flush_locked()
            self._cond.notify_all()
        self._dispatcher.join()
        self._pool.close()
        # belt and braces: anything that slipped past the dispatcher
        # after the pool closed resolves as cancelled, never hangs
        self.cancel_pending()

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def stats(self) -> SchedulerStats:
        """A snapshot of the scheduler's aggregate counters."""
        with self._cond:
            snap = replace(self._stats)
        snap.cache = self.cache.stats.as_dict()
        return snap

    # -- dispatcher -----------------------------------------------------------

    def _flush_locked(self) -> None:
        for bkey in list(self._groups):
            self._ready.append(self._groups.pop(bkey))
            self._group_since.pop(bkey, None)

    def _dispatch_loop(self) -> None:
        while True:
            due: list[list[_Pending]] = []
            with self._cond:
                now = time.monotonic()
                for bkey, since in list(self._group_since.items()):
                    if now - since >= self.max_delay_s:
                        self._ready.append(self._groups.pop(bkey))
                        self._group_since.pop(bkey, None)
                while self._ready:
                    due.append(self._ready.popleft())
                if not due:
                    if self._stopped and not self._groups:
                        return
                    if self._group_since:
                        oldest = min(self._group_since.values())
                        timeout = max(0.0, oldest + self.max_delay_s - now)
                    else:
                        timeout = None
                    self._cond.wait(timeout)
                    continue
            for batch in due:
                with self._cond:
                    self._batch_seq += 1
                    batch_id = self._batch_seq
                    self._stats.batches += 1
                    self._stats.batched_requests += len(batch)
                    self._stats.max_batch_size = max(
                        self._stats.max_batch_size, len(batch)
                    )
                counters = _metrics_active()
                if counters is not None:
                    counters.batches_dispatched += 1
                fut = self._pool.submit(self._execute_batch, batch, batch_id)
                fut.add_done_callback(
                    lambda f, b=batch, i=batch_id: self._reap_batch(f, b, i)
                )

    def _reap_batch(self, fut: Future, batch: list[_Pending], batch_id: int) -> None:
        """Last line of defence: if a batch task itself crashed, fail its
        unresolved members instead of stranding their futures forever."""
        exc = fut.exception()
        if exc is None:
            return
        for pending in batch:  # pragma: no cover - defensive
            if not pending.future.done():
                self._resolve(pending, self._error_result(pending.request, exc, batch_id))

    # -- execution ------------------------------------------------------------

    def _execute_batch(self, batch: list[_Pending], batch_id: int) -> None:
        req0 = batch[0].request
        workspace: Workspace | None = None
        if req0.variant != "baseline":
            # all members share a batch_key, hence one (n, m) and one
            # workspace; the batch runs sequentially on this thread so
            # sharing is safe (Workspace forbids concurrent engines)
            try:
                n, m = batch_key(req0)[:2]
                # the semiring is part of the batch key, so one dtype
                # serves the whole batch
                workspace = Workspace(
                    m, max(n - 1, 0), dtype=get_semiring(req0.semiring).npdtype
                )
            except Exception:
                # degenerate shapes (e.g. empty strands) have no valid
                # workspace; each member still runs and reports its own
                # structured error
                workspace = None
        with trace("serve.batch", id=batch_id, size=len(batch), variant=req0.variant):
            for pending in batch:
                if pending.future.done():  # pragma: no cover - defensive
                    continue
                try:
                    result = self._run_one(pending, workspace, batch_id)
                except BaseException as exc:  # never strand a future
                    result = self._error_result(pending.request, exc, batch_id)
                self._resolve(pending, result)

    def _run_one(
        self, pending: _Pending, workspace: Workspace | None, batch_id: int
    ) -> ServeResult:
        from ..core.api import bpmax  # local import: api imports serve

        req = pending.request
        if pending.deadline is not None and pending.deadline.expired():
            return self._error_result(
                req,
                BpmaxError(
                    f"deadline of {pending.deadline.budget_s:g}s expired "
                    "while queued"
                ),
                batch_id,
                error_type="DeadlineExceeded",
            )
        engine_kwargs: dict[str, Any] = {}
        if req.variant != "baseline":
            if req.backend is not None:
                engine_kwargs["backend"] = req.backend
            if workspace is not None:
                engine_kwargs["workspace"] = workspace
        t0 = time.perf_counter()
        try:
            res = bpmax(
                req.seq1,
                req.seq2,
                variant=req.variant,
                model=req.model,
                semiring=req.semiring,
                structure=req.structure,
                fallback=req.fallback,
                retries=req.retries,
                deadline=pending.deadline,
                faults=req.faults,
                **engine_kwargs,
            )
        except BpmaxError as exc:
            return self._error_result(req, exc, batch_id)
        except Exception as exc:  # a crashing engine must not kill the batch
            return self._error_result(req, exc, batch_id)
        wall = time.perf_counter() - t0
        structure = None
        if res.structure is not None:
            db1, db2 = res.structure.dotbracket()
            structure = {
                "strand1": db1,
                "strand2": db2,
                "inter": [list(p) for p in res.structure.inter],
            }
        return ServeResult(
            id=req.id,
            seq1=req.seq1,
            seq2=req.seq2,
            score=res.score,
            variant=res.variant,
            cached=False,
            batch=batch_id,
            wall_s=wall,
            structure=structure,
            degraded_from=res.degraded_from,
        )

    # -- resolution -----------------------------------------------------------

    def _answer_result(
        self,
        req: SubmitRequest,
        answer: CachedAnswer,
        cached: bool,
        batch: int = -1,
    ) -> ServeResult:
        return ServeResult(
            id=req.id,
            seq1=req.seq1,
            seq2=req.seq2,
            score=answer.score,
            variant=answer.variant,
            cached=cached,
            batch=batch,
            structure=answer.structure if req.structure else None,
            degraded_from=answer.degraded_from,
        )

    def _error_result(
        self,
        req: SubmitRequest,
        exc: BaseException,
        batch: int = -1,
        error_type: str | None = None,
    ) -> ServeResult:
        return ServeResult(
            id=req.id,
            seq1=req.seq1,
            seq2=req.seq2,
            batch=batch,
            error=str(exc) or type(exc).__name__,
            error_type=error_type or type(exc).__name__,
        )

    def _resolve(self, pending: _Pending, result: ServeResult) -> None:
        """Deliver ``result`` to the primary and fan out to followers.

        The answer enters the cache *before* the in-flight entry is
        removed, so a racing identical submit either coalesces (and is
        fanned out below) or hits the cache — it never recomputes.
        """
        req = pending.request
        with self._cond:
            if pending.resolved:  # raced with another resolver: first wins
                return
            pending.resolved = True
        if result.ok and not result.cached:
            try:
                self.cache.put(
                    cache_key(req),
                    CachedAnswer(
                        score=result.score,
                        variant=result.variant or req.variant,
                        degraded_from=result.degraded_from,
                        structure=result.structure,
                    ),
                )
            except BpmaxError:  # pragma: no cover - vetted at submit
                pass
        with self._cond:
            followers = pending.followers
            pending.followers = []
            key = (None, None)
            try:
                key = (cache_key(req), req.structure)
            except BpmaxError:
                pass
            if self._inflight.get(key) is pending:
                del self._inflight[key]
        # Deliver BEFORE accounting: drain() returns when _outstanding
        # hits zero, so every future (primary and followers) must be
        # observable-done by then — otherwise a gateway that flushes a
        # stream on drain can close the connection with lines unwritten.
        pending.future.set_result(result)
        for f in followers:
            fr = replace(
                result,
                id=f.request.id,
                cached=result.ok,
                wall_s=0.0,
                structure=result.structure if f.request.structure else None,
            )
            f.future.set_result(fr)
        with self._cond:
            self._outstanding -= 1 + len(followers)
            self._stats.completed += 1 + len(followers)
            if not result.ok:
                self._stats.errors += 1 + len(followers)
            self._cond.notify_all()
        counters = _metrics_active()
        if counters is not None:
            counters.requests_served += 1 + len(followers)
