"""HTTP/JSONL gateway: the network front end of the serving tier.

Puts a dependency-free stdlib :mod:`http.server` in front of a running
:class:`~repro.serve.shard.ShardScheduler` (or
:class:`~repro.serve.scheduler.BatchScheduler` for the in-process tier)
so remote clients reach every workload — max-plus BPMax scores and
log-sum-exp BPPart values alike — through one tested wire surface:

* ``POST /v1/fold`` — one JSON request object (the existing JSONL wire
  format of ``bpmax submit``) in, one JSON result object out;
* ``POST /v1/batch`` — a JSONL request body in, a JSONL response stream
  out.  Lines are flushed **as their futures resolve** (chunked
  transfer encoding), not buffered until the batch completes, so a
  client sees its first answers while the tail is still computing;
* ``GET /healthz`` — liveness: per-shard state/epoch, queue depths and
  admission-controller counters, drain status;
* ``GET /metrics`` — gateway wire counters plus the process-wide
  :class:`~repro.observe.metrics.Counters` snapshot as JSON.

**Admission verdicts map onto HTTP semantics.**  A request the tier
sheds resolves with a structured error result, and the gateway
translates the existing error codes to status codes
(:data:`STATUS_BY_ERROR`): ``AdmissionRejected`` becomes **429 Too Many
Requests** and a deadline shed at admission becomes **503 Service
Unavailable**, both carrying a finite ``Retry-After`` computed from the
tier's observed queue depth and drain rate
(:meth:`HttpGateway.retry_after_s`).  Every failure — protocol-level or
request-level — serializes to one stable JSON envelope
(:func:`error_envelope`)::

    {"ok": false, "id": "r1",
     "error": {"code": "AdmissionRejected",
               "message": "queue full for class 'batch': ...",
               "status": 429, "retry_after_s": 0.31}}

**Per-connection backpressure.**  Request bodies are bounded
(``max_body_bytes`` -> 413), and a ``/v1/batch`` connection keeps at
most ``max_inflight`` requests in flight at once: further lines are
submitted only as earlier results are flushed to the client, so one
greedy client cannot buffer the whole tier into its socket.

**Graceful drain.**  :meth:`HttpGateway.drain` (wired to SIGTERM by
``bpmax serve --http``) stops accepting new connections, answers new
requests on kept-alive connections with 503 + ``Retry-After``, waits
for in-flight requests to flush, and closes the scheduler pool — no
future is ever stranded mid-stream.

The handler thread is the **only** writer of its connection: scheduler
threads resolving futures never touch the socket, they only feed a
per-connection queue the handler drains.  That, plus the schedulers'
deliver-before-accounting resolution order, is what makes a worker
death mid-stream surface as a structured ``WorkerFailure`` line instead
of a truncated stream.
"""

from __future__ import annotations

import json
import queue as queue_mod
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from ..observe.metrics import Counters, collecting
from ..robust.errors import BpmaxError
from .request import SubmitRequest, parse_request_line, request_from_dict

__all__ = [
    "HttpGateway",
    "STATUS_BY_ERROR",
    "RETRYABLE_STATUS",
    "error_envelope",
    "status_for_error",
]

#: existing structured error codes -> HTTP status.  Codes absent here
#: (including unexpected non-Bpmax exceptions) report 500.
STATUS_BY_ERROR: dict[str, int] = {
    # client-side request problems: fix the request, don't retry
    "BpmaxError": 400,
    "InvalidSequenceError": 400,
    # overload protection: back off and retry (finite Retry-After)
    "AdmissionRejected": 429,
    "DeadlineExceeded": 503,
    "RequestCancelled": 503,
    "ServerDraining": 503,
    # server-side failures after admission
    "WorkerFailure": 500,
    "EngineFailure": 500,
    "CheckpointError": 500,
    "GatewayTimeout": 504,
}

#: statuses whose responses (and stream lines) carry ``Retry-After``
RETRYABLE_STATUS = frozenset({429, 503})

#: protocol-level envelope codes for non-request failures
_PROTOCOL_CODES: dict[int, str] = {
    400: "BadRequest",
    404: "NotFound",
    405: "MethodNotAllowed",
    411: "LengthRequired",
    413: "PayloadTooLarge",
    500: "InternalError",
    501: "NotImplemented",
}


def status_for_error(error_type: str | None) -> int:
    """HTTP status for a structured error code (500 for unknown)."""
    if error_type is None:
        return 500
    return STATUS_BY_ERROR.get(error_type, 500)


def error_envelope(
    code: str,
    message: str,
    status: int,
    id: str = "",
    retry_after_s: float | None = None,
) -> dict[str, Any]:
    """The stable JSON error envelope every failure serializes to.

    Top-level keys are exactly ``ok``/``id``/``error``; ``error`` always
    carries ``code``/``message``/``status`` and adds ``retry_after_s``
    only on retryable statuses.  Protocol conformance tests pin this
    shape — extend it, never rearrange it.
    """
    err: dict[str, Any] = {"code": code, "message": message, "status": status}
    if retry_after_s is not None:
        err["retry_after_s"] = round(float(retry_after_s), 3)
    return {"ok": False, "id": id, "error": err}


def _dumps(obj: Any) -> str:
    return json.dumps(obj, separators=(",", ":"))


class _GatewayServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # the stdlib default backlog of 5 RSTs connections under bursty
    # arrivals (the whole point of the bursty/overload scenarios);
    # admission control — not the TCP backlog — is the shedding layer
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], gateway: "HttpGateway") -> None:
        self.gateway = gateway
        super().__init__(address, _Handler)


class HttpGateway:
    """Serve a scheduler over HTTP on ``host:port`` (0 = ephemeral).

    Parameters
    ----------
    scheduler: a started :class:`~repro.serve.shard.ShardScheduler` or
        :class:`~repro.serve.scheduler.BatchScheduler`; the gateway only
        submits to it.  With ``own_scheduler=True`` (the CLI path) the
        gateway also closes it on drain.
    max_inflight: per-connection bound on ``/v1/batch`` requests in
        flight at once — the backpressure window; further lines are
        submitted only as earlier results are flushed.
    max_body_bytes: request-body bound (oversized bodies get 413
        without being read).
    request_timeout_s: per-result wall bound; a future that somehow
        outlives it yields a 504 ``GatewayTimeout`` envelope instead of
        a hung connection (the schedulers' contract is that futures
        always resolve, so this is a backstop, not a policy).
    min_retry_after_s / max_retry_after_s: clamp on the computed
        ``Retry-After`` — always finite, never zero.
    """

    def __init__(
        self,
        scheduler: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 32,
        max_body_bytes: int = 8 << 20,
        request_timeout_s: float = 120.0,
        min_retry_after_s: float = 0.05,
        max_retry_after_s: float = 30.0,
        own_scheduler: bool = False,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        self.scheduler = scheduler
        self.max_inflight = max_inflight
        self.max_body_bytes = max_body_bytes
        self.request_timeout_s = request_timeout_s
        self.min_retry_after_s = min_retry_after_s
        self.max_retry_after_s = max_retry_after_s
        self.own_scheduler = own_scheduler
        self.counters = Counters()
        self._collect = None
        self._server = _GatewayServer((host, port), self)
        self._thread: threading.Thread | None = None
        self._draining = threading.Event()
        self._closed = False
        self._hlock = threading.Lock()
        self._active_requests = 0
        self._started_at = time.monotonic()
        self._http_stats: dict[str, Any] = {
            "requests": 0,
            "fold": 0,
            "batch": 0,
            "batch_lines": 0,
            "healthz": 0,
            "metrics": 0,
            "by_status": {},
        }

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "HttpGateway":
        """Begin serving on a background thread; returns ``self``."""
        # install a process-wide observe collector for the gateway's
        # lifetime so /metrics reports engine counters, not just wire
        # counters (workers are separate processes; parent-side serve
        # counters and in-process engine runs land here)
        self._collect = collecting(self.counters)
        self._collect.__enter__()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="bpmax-http-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def url(self, path: str = "") -> str:
        return f"http://{self.host}:{self.port}{path}"

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, flush in-flight, close pool.

        New connections are refused, new requests on kept-alive
        connections answer 503 with ``Retry-After``, and the call blocks
        (up to ``timeout``) until in-flight requests have flushed their
        responses.  With ``own_scheduler=True`` the scheduler pool is
        closed too (draining its own queue first).
        """
        self._draining.set()
        self._server.shutdown()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._hlock:
                if self._active_requests == 0:
                    break
            time.sleep(0.02)
        if self.own_scheduler:
            self.scheduler.close()

    def close(self, timeout: float = 30.0) -> None:
        """Drain (idempotent) and release the listening socket."""
        if self._closed:
            return
        self._closed = True
        self.drain(timeout=timeout)
        self._server.server_close()
        if self._collect is not None:
            self._collect.__exit__(None, None, None)
            self._collect = None

    def __enter__(self) -> "HttpGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- shared state helpers -------------------------------------------------

    def _sched_stats(self) -> dict[str, Any]:
        stats = self.scheduler.stats
        return stats if isinstance(stats, dict) else stats.as_dict()

    @staticmethod
    def _queue_depth(stats: dict[str, Any]) -> int:
        by_class = stats.get("queue_depth_by_class")
        if by_class is not None:
            return int(sum(by_class.values()))
        return max(0, int(stats.get("submitted", 0)) - int(stats.get("completed", 0)))

    def retry_after_s(self) -> float:
        """A finite back-off hint from observed queue depth and drain rate.

        The estimate is ``(depth + 1) / drain_rate`` where the drain
        rate is *served* requests per second since the gateway booted —
        shed requests resolve instantly and must not count, or a shed
        storm would inflate the rate, collapse the hint to the floor,
        and turn every backing-off client into a hammering one.  Clamped
        to ``[min_retry_after_s, max_retry_after_s]`` so a cold tier (no
        completions yet) or a deep queue still yields a finite, honest
        hint instead of 0 or infinity.
        """
        try:
            stats = self._sched_stats()
            depth = self._queue_depth(stats)
            served = int(stats.get("completed", 0)) - int(stats.get("shed", 0))
        except Exception:  # stats must never break an error response
            depth, served = 0, 0
        uptime = max(time.monotonic() - self._started_at, 1e-3)
        rate = max(0, served) / uptime
        if rate <= 0.0:
            est = 10 * self.min_retry_after_s
        else:
            est = (depth + 1) / rate
        return float(min(self.max_retry_after_s, max(self.min_retry_after_s, est)))

    def health(self) -> tuple[int, dict[str, Any]]:
        """``(status_code, payload)`` for ``/healthz``."""
        stats = self._sched_stats()
        tier = "shard" if "workers" in stats else "batch"
        if self.draining:
            state = "draining"
        elif stats.get("degraded"):
            state = "degraded"
        else:
            state = "ok"
        payload: dict[str, Any] = {
            "status": state,
            "tier": tier,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "outstanding": stats.get(
                "outstanding",
                max(0, int(stats.get("submitted", 0)) - int(stats.get("completed", 0))),
            ),
            "scheduler": stats,
        }
        return (503 if state == "draining" else 200), payload

    def metrics(self) -> dict[str, Any]:
        """The ``/metrics`` payload: wire counters + observe counters."""
        with self._hlock:
            http_stats = {
                k: (dict(v) if isinstance(v, dict) else v)
                for k, v in self._http_stats.items()
            }
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "http": http_stats,
            "observe": self.counters.as_dict(),
            "scheduler": self._sched_stats(),
        }

    def _record(self, endpoint: str, status: int, lines: int = 0) -> None:
        with self._hlock:
            self._http_stats["requests"] += 1
            if endpoint in self._http_stats:
                self._http_stats[endpoint] += 1
            self._http_stats["batch_lines"] += lines
            by = self._http_stats["by_status"]
            by[str(status)] = by.get(str(status), 0) + 1


class _Handler(BaseHTTPRequestHandler):
    """One connection; the only thread that ever writes its socket."""

    protocol_version = "HTTP/1.1"
    server_version = "bpmax-gateway/1"
    timeout = 60.0

    @property
    def gateway(self) -> HttpGateway:
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # the wire is JSON-only and tests parse stdout/stderr; keep the
        # stdlib's per-request logging off the console
        pass

    # -- dispatch -------------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._guarded("healthz", self._healthz)
        elif self.path == "/metrics":
            self._guarded("metrics", self._metrics)
        elif self.path in ("/v1/fold", "/v1/batch"):
            self._envelope(405, _PROTOCOL_CODES[405],
                           f"{self.path} accepts POST, not GET")
        else:
            self._envelope(404, _PROTOCOL_CODES[404],
                           f"no such endpoint {self.path!r}")

    def do_POST(self) -> None:
        if self.path == "/v1/fold":
            self._guarded("fold", self._fold)
        elif self.path == "/v1/batch":
            self._guarded("batch", self._batch)
        elif self.path in ("/healthz", "/metrics"):
            self._envelope(405, _PROTOCOL_CODES[405],
                           f"{self.path} accepts GET, not POST")
        else:
            self._envelope(404, _PROTOCOL_CODES[404],
                           f"no such endpoint {self.path!r}")

    def _guarded(self, endpoint: str, fn: Callable[[], None]) -> None:
        gw = self.gateway
        with gw._hlock:
            gw._active_requests += 1
        try:
            fn()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        finally:
            with gw._hlock:
                gw._active_requests -= 1

    def send_error(self, code: int, message: str | None = None,
                   explain: str | None = None) -> None:
        # stdlib parse failures (bad request line, oversized headers)
        # land here; keep the wire JSON-only even for those
        self._envelope(
            code,
            _PROTOCOL_CODES.get(code, "HttpError"),
            message or explain or f"HTTP {code}",
            close=True,
        )

    # -- plumbing -------------------------------------------------------------

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        endpoint: str | None = None,
        retry_after_s: float | None = None,
        close: bool = False,
    ) -> None:
        data = (_dumps(payload) + "\n").encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            if retry_after_s is not None:
                self.send_header("Retry-After", f"{retry_after_s:.3f}")
            if close or self.gateway.draining:
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        if endpoint is not None:
            self.gateway._record(endpoint, status)

    def _envelope(
        self,
        status: int,
        code: str,
        message: str,
        id: str = "",
        close: bool = False,
        endpoint: str | None = None,
    ) -> None:
        retry = self.gateway.retry_after_s() if status in RETRYABLE_STATUS else None
        self._send_json(
            status,
            error_envelope(code, message, status, id=id, retry_after_s=retry),
            endpoint=endpoint,
            retry_after_s=retry,
            close=close,
        )

    def _read_body(self) -> bytes | None:
        """The request body, or ``None`` after an error response."""
        length = self.headers.get("Content-Length")
        if length is None:
            self._envelope(411, _PROTOCOL_CODES[411],
                           "Content-Length is required", close=True)
            return None
        try:
            n = int(length)
        except ValueError:
            self._envelope(400, _PROTOCOL_CODES[400],
                           f"invalid Content-Length {length!r}", close=True)
            return None
        gw = self.gateway
        if n > gw.max_body_bytes:
            # refuse without reading: the bound exists to protect the
            # server from the body, so it must apply before the read
            self._envelope(
                413, _PROTOCOL_CODES[413],
                f"body of {n} bytes exceeds the {gw.max_body_bytes}-byte "
                "bound; split the batch",
                close=True,
            )
            return None
        return self.rfile.read(n)

    def _result_payload(self, res: Any) -> tuple[int, dict[str, Any], float | None]:
        """Map one ServeResult to ``(status, body, retry_after_s)``."""
        if res.ok:
            return 200, res.as_dict(), None
        status = status_for_error(res.error_type)
        retry = self.gateway.retry_after_s() if status in RETRYABLE_STATUS else None
        return status, error_envelope(
            res.error_type or "InternalError",
            res.error or "unknown error",
            status,
            id=res.id,
            retry_after_s=retry,
        ), retry

    # -- endpoints ------------------------------------------------------------

    def _healthz(self) -> None:
        status, payload = self.gateway.health()
        retry = self.gateway.retry_after_s() if status in RETRYABLE_STATUS else None
        self._send_json(status, payload, endpoint="healthz", retry_after_s=retry)

    def _metrics(self) -> None:
        self._send_json(200, self.gateway.metrics(), endpoint="metrics")

    def _fold(self) -> None:
        gw = self.gateway
        body = self._read_body()
        if body is None:
            return
        if gw.draining:
            self._envelope(503, "ServerDraining",
                           "gateway is draining; retry against another replica",
                           close=True, endpoint="fold")
            return
        try:
            data = json.loads(body.decode("utf-8", errors="replace"))
        except json.JSONDecodeError as exc:
            self._envelope(400, "BpmaxError", f"invalid JSON ({exc.msg})",
                           endpoint="fold")
            return
        try:
            req = request_from_dict(data)
        except BpmaxError as exc:
            self._envelope(400, type(exc).__name__, str(exc), endpoint="fold")
            return
        if not req.id:
            req = SubmitRequest(**{**req.__dict__, "id": "fold"})
        try:
            fut = gw.scheduler.submit(req)
        except RuntimeError:
            self._envelope(503, "ServerDraining",
                           "scheduler is shut down; retry against another replica",
                           id=req.id, close=True, endpoint="fold")
            return
        try:
            res = fut.result(timeout=gw.request_timeout_s)
        except TimeoutError:
            self._envelope(
                504, "GatewayTimeout",
                f"request {req.id!r} unresolved after {gw.request_timeout_s:g}s",
                id=req.id, close=True, endpoint="fold",
            )
            return
        status, payload, retry = self._result_payload(res)
        self._send_json(status, payload, endpoint="fold", retry_after_s=retry)

    def _batch(self) -> None:
        gw = self.gateway
        body = self._read_body()
        if body is None:
            return
        if gw.draining:
            self._envelope(503, "ServerDraining",
                           "gateway is draining; retry against another replica",
                           close=True, endpoint="batch")
            return
        # parse every line up front (the body already arrived); bad
        # lines become immediate structured error lines in the stream
        # instead of poisoning their neighbours
        items: list[tuple[str, Any]] = []
        for lineno, line in enumerate(
            body.decode("utf-8", errors="replace").splitlines(), start=1
        ):
            try:
                req = parse_request_line(line, lineno)
            except BpmaxError as exc:
                items.append((
                    "error",
                    error_envelope(type(exc).__name__, str(exc), 400,
                                   id=f"line{lineno}"),
                ))
                continue
            if req is not None:  # blank/comment lines are not requests
                items.append(("request", req))
        if not items:
            self._envelope(400, "BpmaxError",
                           "no requests found in the batch body",
                           endpoint="batch")
            return

        try:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
            return

        done_q: "queue_mod.Queue[Any]" = queue_mod.Queue()
        inflight = 0
        next_item = 0
        written = 0
        total = len(items)
        truncated = False
        try:
            while written < total:
                # top up the backpressure window; parse-error lines
                # flush immediately and cost no window slot
                while next_item < total and inflight < gw.max_inflight:
                    kind, val = items[next_item]
                    next_item += 1
                    if kind == "error":
                        self._write_chunk_line(val)
                        written += 1
                        continue
                    try:
                        fut = gw.scheduler.submit(val)
                    except RuntimeError:
                        self._write_chunk_line(error_envelope(
                            "ServerDraining",
                            "scheduler shut down mid-batch",
                            503, id=val.id,
                            retry_after_s=gw.retry_after_s(),
                        ))
                        written += 1
                        continue
                    fut.add_done_callback(done_q.put)
                    inflight += 1
                if written >= total:
                    break
                if inflight == 0:
                    continue  # only unflushed parse errors remained
                try:
                    fut = done_q.get(timeout=gw.request_timeout_s)
                except queue_mod.Empty:
                    # backstop only: scheduler futures always resolve
                    self._write_chunk_line(error_envelope(
                        "GatewayTimeout",
                        f"stream stalled {gw.request_timeout_s:g}s waiting "
                        "for a result",
                        504,
                    ))
                    truncated = True
                    break
                inflight -= 1
                res = fut.result()
                if res.ok:
                    self._write_chunk_line(res.as_dict())
                else:
                    _status, payload, _retry = self._result_payload(res)
                    self._write_chunk_line(payload)
                written += 1
            self._end_chunks()
        except (BrokenPipeError, ConnectionResetError):
            # client went away mid-stream; in-flight futures resolve on
            # their own, nothing else to write
            self.close_connection = True
        if truncated or gw.draining:
            self.close_connection = True
        gw._record("batch", 200, lines=written)

    # -- chunked-encoding primitives ------------------------------------------

    def _write_chunk_line(self, payload: dict[str, Any]) -> None:
        data = (_dumps(payload) + "\n").encode()
        self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()

    def _end_chunks(self) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()
