"""Sharded multi-process serving tier with admission control and self-healing.

:class:`~repro.serve.scheduler.BatchScheduler` amortizes work well, but
it lives inside one GIL-bound process with no overload protection and no
isolation: a wedged kernel wedges the service.  This module grows it
into a process-pool tier:

* **N worker processes**, each owning a kernel workspace pool and an LRU
  :class:`~repro.serve.cache.ResultCache` *shard*.  Requests are routed
  by a consistent hash of the existing content address
  (:func:`~repro.serve.request.cache_key`), so the cache shards stay
  disjoint — the same request always lands on the same shard, and no
  answer is cached twice.
* **Admission control in front** (:class:`~repro.serve.admission.AdmissionController`):
  bounded per-shard queues, priority classes (``interactive`` > ``batch``
  > ``scan``) with graduated shedding, and deadline-aware load shedding —
  a request that cannot be served in time resolves *immediately* with a
  structured :class:`~repro.robust.errors.BpmaxError`-derived result
  instead of queueing toward a timeout.  Backpressure therefore surfaces
  directly on the future returned by :meth:`ShardScheduler.submit`.
* **Self-healing**: every worker is watched by a heartbeat (process
  frozen/killed) and a per-request wall clock (process wedged).  A dead
  or hung worker is killed and respawned into the same ring slot; its
  in-flight requests are re-routed with a bounded retry budget
  (:class:`~repro.robust.errors.WorkerFailure` once exhausted).  If a
  shard exhausts its respawn budget it is failed and its queue migrates
  along the ring; if the whole pool collapses the tier degrades to
  in-process execution rather than going dark.
* **Observability**: shed/reroute/death/respawn counters flow into
  :mod:`repro.observe` (``requests_shed`` / ``requests_rerouted`` /
  ``worker_deaths`` / ``worker_respawns``), lifecycle transitions are
  tracer events (``shard.death`` / ``shard.respawn`` / ...), and
  :attr:`ShardScheduler.stats` snapshots per-class queue depth and
  latency percentiles.

Fault injection reuses :class:`~repro.robust.faults.FaultPlan`:
``shard_kills`` / ``shard_hangs`` sites make a worker hard-exit or wedge
just before serving its n-th request, and the respawn path strips the
shard's faults from the replacement worker's configuration (the
fires-once transient-fault convention, across a process boundary).

The worker protocol is deliberately tiny — picklable tuples over two
``multiprocessing`` queues per worker (requests in, shared results out),
heartbeats on the result queue — so the parent never blocks on a worker
and a worker death can never corrupt parent state.  Workers are started
with the ``spawn`` method by default (override with
``BPMAX_SHARD_START=fork`` where fork-safety is understood): the parent
runs scheduler threads, and forking a threaded process is exactly the
kind of latent wedge this tier exists to survive.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import itertools
import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..observe.metrics import active as _metrics_active
from ..observe.tracer import event, trace
from ..robust.deadline import Deadline
from ..robust.errors import (
    BpmaxError,
    DeadlineExceeded,
    RequestCancelled,
    WorkerFailure,
)
from ..robust.faults import FaultPlan
from .admission import AdmissionController, priority_rank
from .cache import CachedAnswer, ResultCache
from .request import PRIORITY_CLASSES, ServeResult, SubmitRequest, cache_key

__all__ = ["ShardScheduler", "ShardStats", "route_key"]

#: exit status a worker uses for an injected ``shard_kills`` fault, so a
#: test can tell an injected death from a real crash in the exit code
KILL_EXIT = 17

#: shard id reported by the degraded in-process fallback
FALLBACK_SHARD = -2


def _hash64(text: str) -> int:
    """Stable 64-bit hash (blake2b) — NOT Python's salted ``hash()``."""
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


def route_key(request: SubmitRequest) -> int:
    """The 64-bit ring position of a request's content address.

    Raises the same structured error as
    :func:`~repro.serve.request.cache_key` for unservable requests.
    """
    return _hash64("|".join(cache_key(request)))


class _HashRing:
    """Consistent-hash ring over shard ids with virtual nodes.

    ``replicas`` virtual points per shard smooth the key distribution;
    routing walks clockwise from the key's position to the first point
    whose shard is routable, so when a shard is failed its keyspace
    spills onto its ring successors instead of rehashing everything.
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        points = sorted(
            (_hash64(f"shard:{s}:vnode:{r}"), s)
            for s in range(shards)
            for r in range(replicas)
        )
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def route(self, key_hash: int, routable: Iterable[int]) -> int | None:
        """First routable shard clockwise of ``key_hash`` (None if none)."""
        ok = set(routable)
        if not ok:
            return None
        n = len(self._hashes)
        i = bisect.bisect_right(self._hashes, key_hash)
        for off in range(n):
            s = self._shards[(i + off) % n]
            if s in ok:
                return s
        return None  # pragma: no cover - ok is non-empty


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class _RequestExecutor:
    """One process's serving core: a cache shard plus per-shape workspaces.

    Used by every worker process (one each) and by the parent's degraded
    in-process fallback, so both paths produce identical result bodies.
    """

    #: max distinct problem shapes whose workspaces are kept warm
    MAX_WORKSPACES = 8

    def __init__(self, cache_capacity: int) -> None:
        self.cache = ResultCache(cache_capacity)
        self._workspaces: dict[tuple[int, int, str], Any] = {}

    def _workspace(self, n: int, m: int, semiring: str):
        from ..kernels import Workspace
        from ..semiring import get_semiring

        # keyed by semiring too: the algebra fixes the scratch dtype
        key = (n, m, semiring)
        ws = self._workspaces.get(key)
        if ws is None:
            if len(self._workspaces) >= self.MAX_WORKSPACES:
                self._workspaces.pop(next(iter(self._workspaces)))
            ws = Workspace(m, max(n - 1, 0), dtype=get_semiring(semiring).npdtype)
            self._workspaces[key] = ws
        return ws

    def execute(self, req: SubmitRequest, deadline_s: float | None) -> dict:
        """Serve one request; always returns a result body, never raises."""
        from ..core.api import bpmax
        from ..rna.alphabet import normalize

        def error(exc: BaseException, error_type: str | None = None) -> dict:
            return {
                "ok": False,
                "error": str(exc) or type(exc).__name__,
                "error_type": error_type or type(exc).__name__,
            }

        try:
            ckey = cache_key(req)
        except BpmaxError as exc:
            return error(exc)
        hit = self.cache.get(ckey, need_structure=req.structure)
        if hit is not None:
            return {
                "ok": True,
                "score": hit.score,
                "variant": hit.variant,
                "cached": True,
                "wall_s": 0.0,
                "structure": hit.structure if req.structure else None,
                "degraded_from": list(hit.degraded_from),
            }
        deadline = Deadline(deadline_s) if deadline_s is not None else None
        if deadline is not None and deadline.expired():
            return error(
                BpmaxError(f"deadline of {deadline.budget_s:g}s expired in queue"),
                error_type="DeadlineExceeded",
            )
        engine_kwargs: dict[str, Any] = {}
        if req.variant != "baseline":
            if req.backend is not None:
                engine_kwargs["backend"] = req.backend
            try:
                n, m = len(normalize(req.seq1)), len(normalize(req.seq2))
                engine_kwargs["workspace"] = self._workspace(n, m, req.semiring)
            except Exception:
                pass  # degenerate shape: let the engine report it
        t0 = time.perf_counter()
        try:
            res = bpmax(
                req.seq1,
                req.seq2,
                variant=req.variant,
                model=req.model,
                semiring=req.semiring,
                structure=req.structure,
                fallback=req.fallback,
                retries=req.retries,
                deadline=deadline,
                faults=req.faults,
                **engine_kwargs,
            )
        except BaseException as exc:  # poison must fail only this request
            return error(exc)
        wall = time.perf_counter() - t0
        structure = None
        if res.structure is not None:
            db1, db2 = res.structure.dotbracket()
            structure = {
                "strand1": db1,
                "strand2": db2,
                "inter": [list(p) for p in res.structure.inter],
            }
        self.cache.put(
            ckey,
            CachedAnswer(
                score=res.score,
                variant=res.variant,
                degraded_from=res.degraded_from,
                structure=structure,
            ),
        )
        return {
            "ok": True,
            "score": res.score,
            "variant": res.variant,
            "cached": False,
            "wall_s": wall,
            "structure": structure if req.structure else None,
            "degraded_from": list(res.degraded_from),
        }


def _worker_main(shard: int, epoch: int, cfg: dict, req_q, res_q) -> None:
    """Entry point of one shard worker process.

    Protocol (all plain picklable tuples):

    * parent -> worker on ``req_q``: ``("req", token, request,
      deadline_remaining_s)`` or ``("stop",)``;
    * worker -> parent on the shared ``res_q``: ``("res", shard, epoch,
      token, body)`` and ``("hb", shard, epoch)`` heartbeats.

    The epoch stamps every message so the parent can discard output of a
    superseded worker generation after a respawn.
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            try:
                res_q.put(("hb", shard, epoch))
            except Exception:  # pragma: no cover - parent gone
                return
            stop.wait(cfg["heartbeat_s"])

    threading.Thread(target=beat, name="bpmax-shard-hb", daemon=True).start()
    executor = _RequestExecutor(cfg["cache_capacity"])
    faults: FaultPlan | None = cfg.get("faults")
    ordinal = 0
    while True:
        msg = req_q.get()
        if msg is None or msg[0] == "stop":
            break
        _, token, request, deadline_s = msg
        ordinal += 1
        if faults is not None:
            mode = faults.shard_fault(shard, ordinal)
            if mode == "kill":
                os._exit(KILL_EXIT)
            elif mode == "hang":
                # heartbeats keep flowing: a livelocked main thread with a
                # healthy heartbeat is exactly what the per-request hang
                # detector (not the heartbeat detector) must catch
                time.sleep(cfg.get("hang_sleep_s", 3600.0))
        body = executor.execute(request, deadline_s)
        try:
            res_q.put(("res", shard, epoch, token, body))
        except Exception:  # pragma: no cover - parent gone
            break
    stop.set()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class _Task:
    """One admitted request while it lives in the parent."""

    __slots__ = (
        "request",
        "future",
        "deadline",
        "priority",
        "submitted_at",
        "seq",
        "key_hash",
        "reroutes",
        "resolved",
        "dispatched_at",
    )

    def __init__(self, request: SubmitRequest, seq: int, key_hash: int) -> None:
        self.request = request
        self.future: Future[ServeResult] = Future()
        self.deadline = (
            Deadline(request.deadline_s) if request.deadline_s is not None else None
        )
        self.priority = request.priority
        self.submitted_at = time.monotonic()
        self.seq = seq
        self.key_hash = key_hash
        self.reroutes = 0
        self.resolved = False
        self.dispatched_at = 0.0

    def heap_entry(self) -> tuple[int, int, "_Task"]:
        return (priority_rank(self.priority), self.seq, self)


class _Worker:
    """Parent-side handle of one shard worker generation."""

    __slots__ = (
        "shard",
        "epoch",
        "process",
        "req_q",
        "last_hb",
        "inflight",
        "queue",
        "state",  # "live" | "failed"
        "respawns",
        "served",
    )

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.epoch = 0
        self.process = None
        self.req_q = None
        self.last_hb = time.monotonic()
        self.inflight: dict[int, _Task] = {}
        self.queue: list[tuple[int, int, _Task]] = []
        self.state = "live"
        self.respawns = 0
        self.served = 0


@dataclass
class ShardStats:
    """Aggregate counters of one sharded scheduler's lifetime."""

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    shed: int = 0
    shed_by_class: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in PRIORITY_CLASSES}
    )
    rerouted: int = 0
    deaths: int = 0
    respawns: int = 0
    cancelled: int = 0
    degraded_requests: int = 0
    latencies_ms: dict[str, list[float]] = field(
        default_factory=lambda: {c: [] for c in PRIORITY_CLASSES}
    )

    #: bound on the per-class latency samples kept for percentiles
    LATENCY_SAMPLES = 8192

    def record_latency(self, priority: str, seconds: float) -> None:
        samples = self.latencies_ms[priority]
        if len(samples) >= self.LATENCY_SAMPLES:
            del samples[: self.LATENCY_SAMPLES // 2]
        samples.append(seconds * 1e3)

    @staticmethod
    def _pctl(samples: Sequence[float], q: float) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[idx]

    def latency_summary(self) -> dict[str, dict[str, float]]:
        return {
            cls: {
                "count": len(samples),
                "p50_ms": round(self._pctl(samples, 0.50), 3),
                "p99_ms": round(self._pctl(samples, 0.99), 3),
                "max_ms": round(max(samples), 3) if samples else 0.0,
            }
            for cls, samples in self.latencies_ms.items()
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
            "shed": self.shed,
            "shed_by_class": dict(self.shed_by_class),
            "rerouted": self.rerouted,
            "deaths": self.deaths,
            "respawns": self.respawns,
            "cancelled": self.cancelled,
            "degraded_requests": self.degraded_requests,
            "latency": self.latency_summary(),
        }


class ShardScheduler:
    """Process-pool serving tier: route, admit, dispatch, heal.

    The sharded counterpart of
    :class:`~repro.serve.scheduler.BatchScheduler`, with the same
    surface (``submit`` -> :class:`~concurrent.futures.Future`,
    ``serve_all``, ``*_async`` adapters, context manager) so callers and
    the CLI can switch tiers with one flag.

    Parameters
    ----------
    shards: worker process count (>= 1).
    queue_limit: per-shard bound on still-queued requests; the
        admission controller sheds beyond it (lower priority classes
        shed earlier, see :mod:`repro.serve.admission`).
    pipeline_depth: requests kept in flight per worker; the remainder
        waits in the parent's priority queue so urgent arrivals can
        overtake and death re-routing has little to replay.
    cache_size: per-worker LRU result-cache capacity.
    est_wait_s: per-queued-request wait estimate for deadline-aware
        admission (0 disables the feasibility check).
    heartbeat_s / heartbeat_timeout_s: worker heartbeat period and the
        staleness window after which a worker counts as frozen.
    hang_timeout_s: per-request wall bound after dispatch; an in-flight
        request older than this marks the worker as hung.
    max_reroutes: death re-route budget per request before it fails
        with :class:`~repro.robust.errors.WorkerFailure`.
    max_respawns: respawn budget per shard before the shard is failed
        and its keyspace migrates along the ring.
    default_priority: class assigned to requests whose priority is the
        dataclass default.
    faults: optional :class:`~repro.robust.faults.FaultPlan` whose
        ``shard_kills`` / ``shard_hangs`` sites are shipped to workers.
    start_method: multiprocessing start method (default: ``spawn``, or
        ``BPMAX_SHARD_START`` from the environment).
    """

    def __init__(
        self,
        shards: int = 2,
        queue_limit: int = 64,
        pipeline_depth: int = 2,
        cache_size: int = 512,
        est_wait_s: float = 0.0,
        heartbeat_s: float = 0.25,
        heartbeat_timeout_s: float = 10.0,
        hang_timeout_s: float = 30.0,
        max_reroutes: int = 2,
        max_respawns: int = 3,
        monitor_interval_s: float = 0.05,
        default_priority: str = "batch",
        faults: FaultPlan | None = None,
        start_method: str | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        if default_priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown default_priority {default_priority!r}; "
                f"use one of {PRIORITY_CLASSES}"
            )
        self.shards = shards
        self.pipeline_depth = pipeline_depth
        self.cache_size = cache_size
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.hang_timeout_s = hang_timeout_s
        self.max_reroutes = max_reroutes
        self.max_respawns = max_respawns
        self.monitor_interval_s = monitor_interval_s
        self.default_priority = default_priority
        self.admission = AdmissionController(queue_limit, est_wait_s=est_wait_s)
        self._faults = faults
        method = start_method or os.environ.get("BPMAX_SHARD_START", "spawn")
        self._ctx = mp.get_context(method)
        self._ring = _HashRing(shards)
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._seq = itertools.count()
        self._tokens = itertools.count(1)
        self._outstanding = 0
        self._closed = False
        self._stop = threading.Event()
        self._stats = ShardStats()
        self._res_q = self._ctx.Queue()
        self._workers = [_Worker(s) for s in range(shards)]
        self._fallback_pool: ThreadPoolExecutor | None = None
        self._fallback_exec: _RequestExecutor | None = None
        self._fallback_depth = 0
        for w in self._workers:
            self._spawn(w)
        self._reaper = threading.Thread(
            target=self._reap_loop, name="bpmax-shard-reaper", daemon=True
        )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="bpmax-shard-monitor", daemon=True
        )
        self._reaper.start()
        self._monitor.start()

    # -- worker lifecycle -----------------------------------------------------

    def _worker_cfg(self) -> dict:
        return {
            "cache_capacity": self.cache_size,
            "heartbeat_s": self.heartbeat_s,
            "faults": self._faults,
        }

    def _spawn(self, w: _Worker) -> None:
        """Start (or restart) the worker process of one shard slot."""
        w.req_q = self._ctx.Queue()
        w.process = self._ctx.Process(
            target=_worker_main,
            args=(w.shard, w.epoch, self._worker_cfg(), w.req_q, self._res_q),
            name=f"bpmax-shard-{w.shard}",
            daemon=True,
        )
        w.process.start()
        w.last_hb = time.monotonic()
        w.state = "live"

    def _routable(self) -> list[int]:
        return [w.shard for w in self._workers if w.state != "failed"]

    @property
    def degraded(self) -> bool:
        """True once every shard failed and requests run in-process."""
        with self._lock:
            return not self._routable()

    # -- submission -----------------------------------------------------------

    def submit(self, request: SubmitRequest) -> "Future[ServeResult]":
        """Admit-or-shed one request; the future always resolves.

        A shed request resolves *immediately* with a structured
        error result (``AdmissionRejected`` on a full queue,
        ``DeadlineExceeded`` for an infeasible budget) — that immediate
        resolution is the backpressure signal to the client.
        """
        if request.priority == "batch" and self.default_priority != "batch":
            request = SubmitRequest(
                **{**request.__dict__, "priority": self.default_priority}
            )
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "ShardScheduler is closed; create a new one instead of "
                    "reusing a shut-down scheduler"
                )
            self._stats.submitted += 1
            self._outstanding += 1
        try:
            key_hash = route_key(request)
        except BpmaxError as exc:
            task = _Task(request, next(self._seq), 0)
            self._resolve(task, self._error_result(request, exc))
            return task.future
        task = _Task(request, next(self._seq), key_hash)
        shed: BpmaxError | None = None
        pump_worker: _Worker | None = None
        with self._lock:
            shard = self._ring.route(key_hash, self._routable())
            depth = (
                self._fallback_depth
                if shard is None
                else len(self._workers[shard].queue)
            )
            verdict = self.admission.admit(
                task.priority,
                depth,
                task.deadline.remaining() if task.deadline is not None else None,
            )
            if verdict is not None:
                shed = verdict
            elif shard is None:
                self._submit_fallback_migrant(task)
            else:
                pump_worker = self._workers[shard]
                heapq.heappush(pump_worker.queue, task.heap_entry())
        if shed is not None:
            self._resolve(task, self._shed_result(request, shed), shed_request=True)
        elif pump_worker is not None:
            self._pump(pump_worker)
        return task.future

    def serve_all(self, requests: Iterable[SubmitRequest]) -> list[ServeResult]:
        """Submit every request and wait (results in input order)."""
        with trace("shard.serve_all"):
            futures = [self.submit(r) for r in requests]
            return [f.result() for f in futures]

    async def submit_async(self, request: SubmitRequest) -> ServeResult:
        """Await one request from a running asyncio loop."""
        import asyncio

        return await asyncio.wrap_future(self.submit(request))

    async def serve_all_async(
        self, requests: Sequence[SubmitRequest]
    ) -> list[ServeResult]:
        """Submit concurrently and gather results in input order."""
        import asyncio

        futures = [self.submit(r) for r in requests]
        return list(await asyncio.gather(*(asyncio.wrap_future(f) for f in futures)))

    # -- degraded in-process fallback -----------------------------------------

    def _run_fallback(self, task: _Task) -> None:
        remaining = (
            task.deadline.remaining() if task.deadline is not None else None
        )
        assert self._fallback_exec is not None
        body = self._fallback_exec.execute(task.request, remaining)
        with self._lock:
            self._fallback_depth -= 1
            self._stats.degraded_requests += 1
        self._resolve(task, self._body_result(task.request, body, FALLBACK_SHARD))

    # -- dispatch -------------------------------------------------------------

    def _pump(self, w: _Worker) -> None:
        """Fill ``w``'s pipeline from its priority queue."""
        to_shed: list[tuple[_Task, ServeResult]] = []
        with self._lock:
            while (
                w.state == "live"
                and len(w.inflight) < self.pipeline_depth
                and w.queue
            ):
                _, _, task = heapq.heappop(w.queue)
                if task.resolved:
                    continue
                remaining = None
                if task.deadline is not None:
                    remaining = task.deadline.remaining()
                    if remaining < 0:
                        to_shed.append(
                            (
                                task,
                                self._shed_result(
                                    task.request,
                                    DeadlineExceeded(
                                        f"deadline of "
                                        f"{task.deadline.budget_s:g}s expired "
                                        "while queued"
                                    ),
                                ),
                            )
                        )
                        continue
                token = next(self._tokens)
                w.inflight[token] = task
                task.dispatched_at = time.monotonic()
                try:
                    w.req_q.put(("req", token, task.request, remaining))
                except Exception:  # queue torn down under us
                    w.inflight.pop(token, None)
                    heapq.heappush(w.queue, task.heap_entry())
                    break
        for task, result in to_shed:
            self._resolve(task, result, shed_request=True)

    # -- result reaping -------------------------------------------------------

    def _reap_loop(self) -> None:
        while not self._stop.is_set():
            try:
                msg = self._res_q.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            except (EOFError, OSError):  # pragma: no cover - teardown race
                return
            kind = msg[0]
            if kind == "hb":
                _, shard, epoch = msg
                with self._lock:
                    w = self._workers[shard]
                    if epoch == w.epoch:
                        w.last_hb = time.monotonic()
                continue
            _, shard, epoch, token, body = msg
            with self._lock:
                w = self._workers[shard]
                if epoch != w.epoch:
                    continue  # superseded generation: task was re-routed
                w.last_hb = time.monotonic()
                task = w.inflight.pop(token, None)
                if task is not None:
                    w.served += 1
            if task is not None:
                self._resolve(task, self._body_result(task.request, body, shard))
            self._pump(w)

    # -- health monitoring ----------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.monitor_interval_s):
            self._check_workers()

    def _check_workers(self) -> None:
        now = time.monotonic()
        for w in self._workers:
            with self._lock:
                if w.state != "live":
                    continue
                reason = None
                if w.process is not None and not w.process.is_alive():
                    code = w.process.exitcode
                    reason = (
                        "injected kill" if code == KILL_EXIT else f"exit {code}"
                    )
                elif w.inflight and now - w.last_hb > self.heartbeat_timeout_s:
                    reason = (
                        f"heartbeat stale {now - w.last_hb:.2f}s "
                        f"(> {self.heartbeat_timeout_s:g}s)"
                    )
                elif w.inflight and (
                    now - min(t.dispatched_at for t in w.inflight.values())
                    > self.hang_timeout_s
                ):
                    reason = f"request in flight > {self.hang_timeout_s:g}s (hung)"
            if reason is not None:
                self._worker_down(w, reason)
            self._shed_expired(w)

    def _shed_expired(self, w: _Worker) -> None:
        """Resolve queued requests whose deadline expired while waiting.

        A deadline storm must drain by *shedding*, not by dispatching
        dead work; lazily-deleted heap entries are skipped by the pump.
        """
        to_shed: list[tuple[_Task, ServeResult]] = []
        with self._lock:
            for _, _, task in w.queue:
                if (
                    not task.resolved
                    and task.deadline is not None
                    and task.deadline.expired()
                ):
                    to_shed.append(
                        (
                            task,
                            self._shed_result(
                                task.request,
                                DeadlineExceeded(
                                    f"deadline of {task.deadline.budget_s:g}s "
                                    "expired while queued"
                                ),
                            ),
                        )
                    )
        for task, result in to_shed:
            self._resolve(task, result, shed_request=True)

    def _worker_down(self, w: _Worker, reason: str) -> None:
        """Kill, account, re-route, and respawn (or fail) one worker."""
        with self._lock:
            if w.state != "live" or self._closed:
                return
            w.state = "down"
            self._stats.deaths += 1
            victims = list(w.inflight.values())
            w.inflight.clear()
        event("shard.death", shard=w.shard, epoch=w.epoch, reason=reason)
        counters = _metrics_active()
        if counters is not None:
            counters.worker_deaths += 1
        proc = w.process
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stubborn process
                proc.kill()
                proc.join(timeout=2.0)
        failed: list[_Task] = []
        with self._lock:
            # fires-once across the process boundary: the respawned worker
            # (and every later generation) must not replay this shard's
            # injected faults
            if self._faults is not None:
                self._faults = self._faults.without_shard(w.shard)
            for task in victims:
                if task.resolved:
                    continue
                task.reroutes += 1
                if task.reroutes <= self.max_reroutes:
                    heapq.heappush(w.queue, task.heap_entry())
                    self._stats.rerouted += 1
                    if counters is not None:
                        counters.requests_rerouted += 1
                    event("shard.reroute", shard=w.shard, id=task.request.id)
                else:
                    failed.append(task)
            respawn = w.respawns < self.max_respawns
            if respawn:
                w.respawns += 1
                w.epoch += 1
        for task in failed:
            self._resolve(
                task,
                self._error_result(
                    task.request,
                    WorkerFailure(
                        f"shard {w.shard} worker died ({reason}) and the "
                        f"re-route budget of {self.max_reroutes} is exhausted"
                    ),
                ),
            )
        if respawn:
            try:
                self._spawn(w)
            except Exception as exc:  # pragma: no cover - spawn failure
                event("shard.respawn_failed", shard=w.shard, error=str(exc))
                self._fail_shard(w)
                return
            self._stats.respawns += 1
            if counters is not None:
                counters.worker_respawns += 1
            event("shard.respawn", shard=w.shard, epoch=w.epoch)
            self._pump(w)
        else:
            self._fail_shard(w)

    def _fail_shard(self, w: _Worker) -> None:
        """Retire a shard slot and migrate its queue along the ring."""
        with self._lock:
            w.state = "failed"
            migrants = [t for _, _, t in w.queue if not t.resolved]
            w.queue.clear()
        event("shard.failed", shard=w.shard)
        touched: set[int] = set()
        for task in migrants:
            with self._lock:
                target = self._ring.route(task.key_hash, self._routable())
                if target is not None:
                    heapq.heappush(self._workers[target].queue, task.heap_entry())
                    touched.add(target)
                else:
                    self._submit_fallback_migrant(task)
        for shard in touched:
            self._pump(self._workers[shard])

    def _submit_fallback_migrant(self, task: _Task) -> None:
        """Route an already-admitted task to the in-process fallback."""
        if self._fallback_pool is None:
            self._fallback_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="bpmax-shard-fallback"
            )
            self._fallback_exec = _RequestExecutor(self.cache_size)
            event("shard.degraded")
        self._fallback_depth += 1
        self._fallback_pool.submit(self._run_fallback, task)

    # -- resolution -----------------------------------------------------------

    def _body_result(self, req: SubmitRequest, body: dict, shard: int) -> ServeResult:
        if not body.get("ok", False):
            return ServeResult(
                id=req.id,
                seq1=req.seq1,
                seq2=req.seq2,
                shard=shard,
                error=body.get("error", "unknown worker error"),
                error_type=body.get("error_type"),
            )
        return ServeResult(
            id=req.id,
            seq1=req.seq1,
            seq2=req.seq2,
            score=body.get("score"),
            variant=body.get("variant"),
            cached=bool(body.get("cached", False)),
            shard=shard,
            wall_s=float(body.get("wall_s", 0.0)),
            structure=body.get("structure"),
            degraded_from=tuple(body.get("degraded_from", ())),
        )

    def _error_result(self, req: SubmitRequest, exc: BaseException) -> ServeResult:
        return ServeResult(
            id=req.id,
            seq1=req.seq1,
            seq2=req.seq2,
            error=str(exc) or type(exc).__name__,
            error_type=type(exc).__name__,
        )

    def _shed_result(self, req: SubmitRequest, exc: BpmaxError) -> ServeResult:
        event("shard.shed", id=req.id, priority=req.priority,
              error=type(exc).__name__)
        return self._error_result(req, exc)

    def _resolve(
        self, task: _Task, result: ServeResult, shed_request: bool = False
    ) -> None:
        with self._lock:
            if task.resolved:
                return
            task.resolved = True
        # Deliver BEFORE accounting: drain() returns when _outstanding
        # hits zero, so the future must already be observable-done by
        # then — otherwise a gateway that flushes a stream on drain can
        # close the connection with the final line still unwritten.
        task.future.set_result(result)
        with self._lock:
            self._outstanding -= 1
            self._stats.completed += 1
            if not result.ok:
                self._stats.errors += 1
            if shed_request:
                self._stats.shed += 1
                self._stats.shed_by_class[task.priority] += 1
            else:
                self._stats.record_latency(
                    task.priority, time.monotonic() - task.submitted_at
                )
            self._done.notify_all()
        counters = _metrics_active()
        if counters is not None:
            counters.requests_served += 1
            if shed_request:
                counters.requests_shed += 1

    # -- lifecycle ------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted request resolved (True on success)."""
        with self._done:
            return self._done.wait_for(
                lambda: self._outstanding == 0, timeout=timeout
            )

    def cancel_pending(self) -> int:
        """Resolve every queued *and* in-flight request with a structured
        :class:`~repro.robust.errors.RequestCancelled` result; returns
        how many were cancelled.  In-flight work may still complete in a
        worker, but its late result is discarded — the future already
        resolved, so nothing can hang."""
        to_cancel: list[_Task] = []
        with self._lock:
            for w in self._workers:
                to_cancel.extend(t for _, _, t in w.queue if not t.resolved)
                to_cancel.extend(
                    t for t in w.inflight.values() if not t.resolved
                )
                w.queue.clear()
                w.inflight.clear()
        cancelled = 0
        for task in to_cancel:
            self._resolve(
                task,
                self._error_result(
                    task.request,
                    RequestCancelled("scheduler closed while request was pending"),
                ),
            )
            cancelled += 1
        with self._lock:
            self._stats.cancelled += cancelled
        return cancelled

    def close(self, cancel: bool = False, timeout: float = 30.0) -> None:
        """Shut the tier down; idempotent, afterwards :meth:`submit` raises.

        ``cancel=False`` (default) drains: waits up to ``timeout`` for
        outstanding requests, then cancels whatever is left so no future
        ever hangs.  ``cancel=True`` skips the wait and resolves every
        pending request with ``RequestCancelled`` immediately.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not cancel:
            self.drain(timeout=timeout)
        self.cancel_pending()
        self._stop.set()
        for w in self._workers:
            if w.req_q is not None:
                try:
                    w.req_q.put(("stop",))
                except Exception:  # pragma: no cover - queue gone
                    pass
        self._reaper.join(timeout=5.0)
        self._monitor.join(timeout=5.0)
        for w in self._workers:
            proc = w.process
            if proc is not None:
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stubborn process
                    proc.kill()
            if w.req_q is not None:
                w.req_q.close()
                w.req_q.cancel_join_thread()
        self._res_q.close()
        self._res_q.cancel_join_thread()
        if self._fallback_pool is not None:
            self._fallback_pool.shutdown(wait=True)

    def __enter__(self) -> "ShardScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection --------------------------------------------------------

    def route(self, request: SubmitRequest) -> int | None:
        """The shard a request would be routed to right now."""
        with self._lock:
            return self._ring.route(route_key(request), self._routable())

    def queue_depths(self) -> dict[str, int]:
        """Still-queued request count per priority class (snapshot)."""
        depths = {c: 0 for c in PRIORITY_CLASSES}
        with self._lock:
            for w in self._workers:
                for _, _, task in w.queue:
                    if not task.resolved:
                        depths[task.priority] += 1
        return depths

    @property
    def stats(self) -> dict[str, Any]:
        """A JSON-ready snapshot of the tier's counters and health."""
        with self._lock:
            snap = self._stats.as_dict()
            snap["outstanding"] = self._outstanding
            snap["degraded"] = not self._routable()
            snap["queue_depth_by_class"] = {
                c: 0 for c in PRIORITY_CLASSES
            }
            for w in self._workers:
                for _, _, task in w.queue:
                    if not task.resolved:
                        snap["queue_depth_by_class"][task.priority] += 1
            snap["admission"] = self.admission.stats.as_dict()
            snap["workers"] = [
                {
                    "shard": w.shard,
                    "state": w.state,
                    "epoch": w.epoch,
                    "respawns": w.respawns,
                    "queued": sum(1 for e in w.queue if not e[2].resolved),
                    "inflight": len(w.inflight),
                    "served": w.served,
                }
                for w in self._workers
            ]
        return snap
