"""Content-addressed LRU result cache of the serving layer.

BPMax answers are pure functions of ``(seq1, seq2, scoring model,
backend)`` — the content address computed by
:func:`repro.serve.request.cache_key` — so the service can reuse them
across requests and across clients.  The cache is a bounded LRU:
``get`` refreshes recency, ``put`` evicts the least-recently-used entry
once ``capacity`` is reached.

Every lookup outcome is double-booked: into the cache's own
:class:`CacheStats` (always on, served by ``bpmax serve --stats`` and
:attr:`BatchScheduler.stats`) and into the process-wide
:mod:`repro.observe` collector when one is installed
(``cache_hits`` / ``cache_misses`` / ``cache_evictions`` counters), so
``with collecting() as c: serve_many(...)`` observes cache behaviour
with the same machinery that observes kernel traffic.

Thread safety: all operations hold one lock; entries are immutable
:class:`CachedAnswer` tuples, safe to share across scheduler workers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from ..observe.metrics import active as _metrics_active

__all__ = ["CachedAnswer", "CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CachedAnswer:
    """The engine-independent part of one answer.

    ``structure`` is only present when some request asked for it; a hit
    that needs a structure the entry lacks is treated as a miss (and the
    recomputed entry, structure included, replaces this one).
    """

    score: float
    variant: str
    degraded_from: tuple[str, ...] = ()
    structure: dict[str, Any] | None = None


@dataclass
class CacheStats:
    """Monotonic counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "hit_rate": round(self.hit_rate(), 4),
        }


class ResultCache:
    """Bounded LRU mapping content addresses to :class:`CachedAnswer`.

    ``capacity=0`` disables caching (every lookup misses, nothing is
    stored) without callers having to special-case it.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, CachedAnswer] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, need_structure: bool = False) -> CachedAnswer | None:
        """Look up ``key``; refresh recency on hit, count the outcome."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and (not need_structure or entry.structure is not None):
                self._entries.move_to_end(key)
                self.stats.hits += 1
                hit = True
            else:
                entry = None
                self.stats.misses += 1
                hit = False
        counters = _metrics_active()
        if counters is not None:
            if hit:
                counters.cache_hits += 1
            else:
                counters.cache_misses += 1
        return entry

    def put(self, key: Hashable, answer: CachedAnswer) -> None:
        """Insert/replace ``key``, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = answer
            self.stats.inserts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
        if evicted:
            counters = _metrics_active()
            if counters is not None:
                counters.cache_evictions += evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"ResultCache(capacity={self.capacity}, size={len(self)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"evictions={self.stats.evictions})"
        )
