"""repro.serve — the async batch-serving layer.

Everything needed to run BPMax as a multi-tenant service instead of a
one-shot library call:

* :class:`~repro.serve.request.SubmitRequest` /
  :class:`~repro.serve.request.ServeResult` and the JSONL wire format
  (``bpmax serve`` / ``bpmax submit``);
* :class:`~repro.serve.cache.ResultCache` — content-addressed LRU over
  ``(seq1, seq2, scoring, backend)`` with hit/miss/eviction counters
  wired into :mod:`repro.observe`;
* :class:`~repro.serve.scheduler.BatchScheduler` — adaptive size/latency
  batching, in-flight coalescing, per-request deadline/retry/fallback,
  dispatch over :class:`~repro.parallel.pool.ParallelRunner` with one
  shared :class:`~repro.kernels.Workspace` per batch.

Typical use::

    from repro import serve_many

    results = serve_many([("GCGCUUCG", "CGAAGCGC"), ("GGGG", "CCCC")])

or, with explicit control::

    from repro.serve import BatchScheduler, SubmitRequest

    with BatchScheduler(max_batch=32, max_delay_s=0.005) as sched:
        fut = sched.submit(SubmitRequest("GCGC", "GCGC", id="r1"))
        print(fut.result().score)
"""

from .cache import CachedAnswer, CacheStats, ResultCache
from .request import (
    ServeResult,
    SubmitRequest,
    batch_key,
    cache_key,
    parse_request_line,
    request_from_dict,
    scoring_fingerprint,
)
from .scheduler import BatchScheduler, SchedulerStats

__all__ = [
    "BatchScheduler",
    "SchedulerStats",
    "CachedAnswer",
    "CacheStats",
    "ResultCache",
    "ServeResult",
    "SubmitRequest",
    "batch_key",
    "cache_key",
    "parse_request_line",
    "request_from_dict",
    "scoring_fingerprint",
]
