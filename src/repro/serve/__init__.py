"""repro.serve — the async batch-serving layer.

Everything needed to run BPMax as a multi-tenant service instead of a
one-shot library call:

* :class:`~repro.serve.request.SubmitRequest` /
  :class:`~repro.serve.request.ServeResult` and the JSONL wire format
  (``bpmax serve`` / ``bpmax submit``);
* :class:`~repro.serve.cache.ResultCache` — content-addressed LRU over
  ``(seq1, seq2, scoring, backend)`` with hit/miss/eviction counters
  wired into :mod:`repro.observe`;
* :class:`~repro.serve.scheduler.BatchScheduler` — adaptive size/latency
  batching, in-flight coalescing, per-request deadline/retry/fallback,
  dispatch over :class:`~repro.parallel.pool.ParallelRunner` with one
  shared :class:`~repro.kernels.Workspace` per batch;
* :class:`~repro.serve.shard.ShardScheduler` — the multi-process tier:
  N worker processes each owning a cache shard, consistent-hash routing
  by content address, admission control with priority classes and
  deadline-aware load shedding (:mod:`repro.serve.admission`), worker
  heartbeats with respawn/re-route self-healing, and graceful
  degradation to in-process execution (``bpmax serve --shards N``);
* :mod:`~repro.serve.scenarios` — the seeded stress-scenario library
  (bursty arrivals, heavy-tail sizes, deadline storms, poisoned
  requests, worker kills) replayed by
  ``benchmarks/bench_serve_stress.py`` and the CI stress-smoke job;
* :class:`~repro.serve.http.HttpGateway` /
  :class:`~repro.serve.client.GatewayClient` — the stdlib HTTP/JSONL
  network front end (``bpmax serve --http`` / ``bpmax submit --url``):
  ``POST /v1/fold``, streaming ``POST /v1/batch``, ``GET /healthz``,
  ``GET /metrics``, with admission verdicts mapped to 429/503 +
  ``Retry-After`` and every failure in one stable JSON error envelope.

Typical use::

    from repro import serve_many

    results = serve_many([("GCGCUUCG", "CGAAGCGC"), ("GGGG", "CCCC")])

or, with explicit control::

    from repro.serve import BatchScheduler, SubmitRequest

    with BatchScheduler(max_batch=32, max_delay_s=0.005) as sched:
        fut = sched.submit(SubmitRequest("GCGC", "GCGC", id="r1"))
        print(fut.result().score)
"""

from .admission import AdmissionController, AdmissionStats
from .cache import CachedAnswer, CacheStats, ResultCache
from .client import GatewayClient, GatewayStatusError, GatewayUnavailable
from .http import (
    RETRYABLE_STATUS,
    STATUS_BY_ERROR,
    HttpGateway,
    error_envelope,
    status_for_error,
)
from .request import (
    PRIORITY_CLASSES,
    ServeResult,
    SubmitRequest,
    batch_key,
    cache_key,
    parse_request_line,
    request_from_dict,
    request_wire_dict,
    scoring_fingerprint,
)
from .scenarios import SCENARIOS, Scenario, TimedRequest, generate, get_scenario
from .scheduler import BatchScheduler, SchedulerStats
from .shard import ShardScheduler, ShardStats, route_key

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BatchScheduler",
    "SchedulerStats",
    "ShardScheduler",
    "ShardStats",
    "route_key",
    "CachedAnswer",
    "CacheStats",
    "ResultCache",
    "PRIORITY_CLASSES",
    "ServeResult",
    "SubmitRequest",
    "batch_key",
    "cache_key",
    "parse_request_line",
    "request_from_dict",
    "request_wire_dict",
    "scoring_fingerprint",
    "HttpGateway",
    "GatewayClient",
    "GatewayStatusError",
    "GatewayUnavailable",
    "STATUS_BY_ERROR",
    "RETRYABLE_STATUS",
    "error_envelope",
    "status_for_error",
    "SCENARIOS",
    "Scenario",
    "TimedRequest",
    "generate",
    "get_scenario",
]
