"""The ``fourrussians`` kernel backend: blocked R0 lookups + split pruning.

This backend lifts the table machinery proven on the Nussinov prototype
(:mod:`repro.kernels.fourrussians_tables`) to the BPMax R0 double
max-plus.  For one outer window ``(i1, j1)`` with ``k = j1 - i1`` splits
the reduction is

    acc[i2, j2]  ⊕=  max_{s, k2}  A_s[i2, k2] + B_s[k2, j2]

where ``A_s`` is the stored upper triangle of window ``(i1, i1+s)`` and
``B_s`` the split-shifted triangle of ``(i1+s+1, j1)``.  Both operands
are monotone with bounded integer differences (rows of ``A`` ascend
along ``k2``, columns of ``B`` descend — adding/removing one base moves
the score by at most one pair weight ``d``), which enables two attacks:

* **Four-Russians block lookups** — ``k2`` is cut into width-``q``
  blocks; each block of each operand row/column collapses to a
  ``(base, difference-code)`` pair, and the whole-block inner reduction
  becomes one shared-table lookup (``pair[ca, cb]``), vectorized over
  splits and cells with ``np.take``.  Cells that a block cannot serve
  exactly (the block straddles the cell's ``[i2, j2)`` split range) are
  finished by a direct *boundary* pass, organized per ``k2`` exactly
  like the triangular batched kernel.  Encodings are computed **once per
  source window** (cached on the :class:`~repro.core.tables.FTable` via
  its aux slots) and reused by every consumer window; the pair tables
  are process-shared and pinned in the engine's
  :class:`~repro.kernels.Workspace`.

* **candidate-list sparsification** — the same monotonicity makes the
  per-split R0 bound free: ``max_{k2} A_s[i2, k2] = A_s[i2, M-1]`` (last
  column) and ``max_{k2} B_s[k2, j2] = B_s[0, j2]`` (first row), so a
  split whose bound ``A_s[:, -1] + B_s[0, :]`` is dominated everywhere
  by the already-accumulated terms (R3/R4, closures, independent folds —
  seeded *before* R0 for exactly this reason) can be skipped outright.
  The same test at block granularity skips dominated lookup
  block-columns.  Both prunes drop only contributions ``<=`` the current
  accumulator, so the scores are bit-identical with pruning on or off;
  the observe counters (``r0_splits_pruned`` / ``r0_blocks_pruned``)
  prove how much was skipped.

Everything stays in exact float32 integer arithmetic (the
``bounded_scores`` precondition guarantees it), so the backend is
bit-identical to ``numpy-batched`` on the golden corpus and under
differential fuzzing.  The registered backend's generic entry points
(``matmul`` / ``batched_r0``) delegate to the dense batched kernels —
they serve the row-partitioned threaded path and the DMP engines — while
the blocked machinery is engine-dispatched through
:class:`FourRussiansState` (single-thread whole-window granularity).
"""

from __future__ import annotations

import numpy as np

from ..observe.metrics import active as _metrics_active
from ..semiring.maxplus import maxplus_batched, maxplus_bias_reduce
from .backend import DEFAULT_BACKEND, KernelBackend, register_backend
from .fourrussians_tables import (
    check_bounded_scores,
    encode_col_blocks,
    encode_row_blocks,
    max_block_width,
)

__all__ = ["FOURRUSSIANS_BACKEND", "FourRussiansState"]


def _matmul_batched(a: np.ndarray, bs: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Single-split product as a depth-1 batched reduction."""
    return maxplus_batched(a[None], bs[None], out)


class FourRussiansState:
    """Per-engine state of the blocked R0 path (single-thread windows).

    Owned by :class:`~repro.core.vectorized.VectorizedBPMax` when the
    ``fourrussians`` backend is selected, the precondition holds and
    ``threads == 1``.  Holds the verified difference bound ``d``, the
    block width ``q`` (``~log2(M)`` by default, autotunable via
    ``bpmax tune --backend fourrussians``), the pool-pinned pair tables
    and the strict-upper dominance mask.
    """

    def __init__(self, engine, d: int, q: int | None = None, sparsify: bool = True) -> None:
        m = engine.inputs.m
        self.d = int(d)
        if q is None:
            # persisted autotune winner for this (machine, shape, d) if one
            # exists, else the cache-budget-clamped ~log2(M) heuristic
            from .autotune import get_block_width

            q = get_block_width(engine.inputs.n, m, 1, self.d)
        self.q = max(2, min(int(q), max_block_width(self.d)))
        self.sparsify = bool(sparsify)
        self.nbf = m // self.q  # full blocks per k2 range
        self.tables = engine._ws.fr_tables(self.d, self.q)
        # strict-upper dominance domain: the split prune compares split
        # bounds against the accumulator masked to +inf off-domain (cells
        # R0 can never write), so dominated-everywhere splits drop out
        self.triu = np.triu(np.ones((m, m), dtype=bool), k=1)
        self.accm = np.empty((m, m), dtype=np.float32)
        # flat-table offsets: sub-table t of the stacked pf/pu families
        # starts ncodes^2 entries into the flat view
        nc2 = self.tables.ncodes * self.tables.ncodes
        self.offs = (np.arange(self.q, dtype=np.int64) * nc2).astype(np.int32)
        # per-column offsets of the merged block pass into the combined
        # [pu | pf] stack: relative column b0 + t is served by pu[t]
        # (t < q), every column past the block by pf[0] at offset q*nc^2
        cto = np.full(max(m, self.q), self.q * nc2, dtype=np.int32)
        cto[: self.q - 1] = self.offs[1:]
        self.col_tab_off = cto
        # packed-encoding cache keys and the finite floor for -inf bases
        # (never consumed: the block passes only read finite-base cells)
        self._rkey = f"fr_rowp|d{self.d}|q{self.q}"
        self._ckey = f"fr_colp|d{self.d}|q{self.q}"
        self._bfloor = np.float32(-(1 << 20))

    # -- cached per-source-window encodings ----------------------------------

    def _row_encoding(self, tri, i1: int, k1: int):
        """Packed row-block encoding of window ``(i1, k1)``'s triangle.

        One int32 ``(m, 2*nbf)`` array per source window: pre-scaled
        flat-index codes (``ca * ncodes``) in the first ``nbf`` columns,
        integer bases in the rest (``-inf`` bases clamped to a finite
        floor — those rows are never consumed by the block passes).  The
        packing makes the per-split stack fill a single copy.
        """
        t = self.tables

        def build():
            rc, rb = encode_row_blocks(tri.inner(i1, k1), self.q, self.d, t.powers)
            nbf = rc.shape[1]
            pack = np.empty((rc.shape[0], 2 * nbf), dtype=np.int32)
            np.multiply(rc, t.ncodes, out=pack[:, :nbf])
            np.copyto(pack[:, nbf:], np.maximum(rb, self._bfloor), casting="unsafe")
            return pack

        return tri.aux(i1, k1, self._rkey, build)

    def _col_encoding(self, tri, i1: int, j1: int):
        """Packed column-block encoding of window ``(i1, j1)``'s *shifted*
        triangle (the B-operand form every split consumes): ``(2*nbf, m)``
        int32, codes stacked above integer bases."""
        t = self.tables

        def build():
            cc, cb = encode_col_blocks(tri.shifted(i1, j1), self.q, self.d, t.powers)
            nbf = cc.shape[0]
            pack = np.empty((2 * nbf, cc.shape[1]), dtype=np.int32)
            np.copyto(pack[:nbf], cc)
            np.copyto(pack[nbf:], np.maximum(cb, self._bfloor), casting="unsafe")
            return pack

        return tri.aux(i1, j1, self._ckey, build)

    # -- the window reduction -------------------------------------------------

    def accumulate(self, engine, i1: int, j1: int, acc: np.ndarray) -> None:
        """R0/R3/R4 of one window through the blocked + pruned path.

        ``acc`` must already hold the window's split-independent terms
        (closures, independent folds) — the engine seeds them first so
        the dominance prunes have a meaningful baseline.  Every value
        accumulated here equals the corresponding direct float32 sum bit
        for bit; pruned candidates are only ever ``<= acc``.
        """
        inp = engine.inputs
        tri = engine.table
        ws = engine._ws
        m = inp.m
        k = j1 - i1
        q, nbf = self.q, self.nbf
        counters = _metrics_active()
        if counters is not None:
            counters.count_fr_window()

        astack, bstack, braw = ws.stacks(k)
        for s in range(k):
            k1 = i1 + s
            np.copyto(astack[s], tri.inner(i1, k1))
            np.copyto(braw[s], tri.inner(k1 + 1, j1))
            np.copyto(bstack[s], tri.shifted(k1 + 1, j1))
        s1l = np.ascontiguousarray(inp.s1[i1, i1:j1])  # S1[i1, k1]
        s1r = np.ascontiguousarray(inp.s1[i1 + 1 : j1 + 1, j1])  # S1[k1+1, j1]

        tmp = ws.tmp3(k)
        # R3/R4 first: they need every split's operands and they tighten
        # the accumulator before the dominance prune sees it
        maxplus_bias_reduce(braw, s1l, acc, tmp=tmp, red=ws.red)  # R3
        maxplus_bias_reduce(astack, s1r, acc, tmp=tmp, red=ws.red)  # R4

        if m < 2:
            if counters is not None and self.sparsify:
                counters.count_fr_splits(k, k)
            return  # no (i2 < j2) cells: R0 contributes nothing

        # -- candidate-list prune over k1 splits -----------------------------
        nk = k
        if self.sparsify:
            a_last = astack[:, :, m - 1]  # per-row block bound (monotone rows)
            b_first = bstack[:, 0, :]  # per-col block bound (antitone cols)
            np.copyto(self.accm, np.inf)
            np.copyto(self.accm, acc, where=self.triu)
            np.add(a_last[:, :, None], b_first[:, None, :], out=tmp)
            keep = np.flatnonzero(np.any(tmp > self.accm, axis=(1, 2)))
            nk = len(keep)
            if counters is not None:
                counters.count_fr_splits(k, k - nk)
            if nk == 0:
                return
            if nk < k:
                # forward compaction (t <= s, so in-place copies are safe)
                for t, s in enumerate(keep):
                    if t != s:
                        np.copyto(astack[t], astack[s])
                        np.copyto(bstack[t], bstack[s])
        else:
            keep = np.arange(k)
            if counters is not None:
                counters.count_fr_splits(k, 0)

        flat_t = tmp.reshape(-1) if tmp.flags["C_CONTIGUOUS"] else None
        tcap = tmp.size

        def scratch(shape: tuple[int, ...]) -> np.ndarray:
            size = 1
            for s in shape:
                size *= s
            if flat_t is not None and size <= tcap:
                return flat_t[:size].reshape(shape)
            return np.empty(shape, dtype=np.float32)

        # -- table passes: every split position inside a full block ----------
        # Two lookup passes per block kb cover all k2 inside full width-q
        # blocks, each one `index-add -> small-int take -> int base adds
        # -> k-reduce` over a rectangular cell grid:
        #
        # * the merged pass (kb >= 1): every cell with i2 < b0 = kb*q and
        #   j2 > b0 in one grid — columns inside the block resolve
        #   through pu[j2 - b0] (splits k2 in [b0, j2)), columns past it
        #   through pf[0] (the whole block); the combined [pu | pf] stack
        #   and a per-column offset vector serve both with a single take;
        # * the tail pass: rows *inside* block kb against columns past it
        #   take their in-block splits k2 in [i2, b1) from pf[t0 = i2 - b0],
        #   based at the diagonal A[i2, i2] (digits below t0 cancel, so
        #   garbage digits from -inf regions never leak in).
        if nbf > 0:
            ea, eb, adi, itmp, gtmp = ws.fr_stacks(nk, nbf)
            ea_codes = ea[:, :, :nbf]  # pre-scaled: flat index = ca*nc + cb
            ea_base = ea[:, :, nbf:]
            eb_codes = eb[:, :nbf, :]
            eb_base = eb[:, nbf:, :]
            for t in range(nk):
                k1 = i1 + int(keep[t])
                np.copyto(ea[t], self._row_encoding(tri, i1, k1))
                np.copyto(eb[t], self._col_encoding(tri, k1 + 1, j1))
            # the diagonal bases of the tail lookups: A[i2, i2] (finite)
            np.copyto(
                adi, astack[:nk].diagonal(axis1=1, axis2=2), casting="unsafe"
            )
            flat_i = itmp.reshape(-1) if itmp.flags["C_CONTIGUOUS"] else None
            icap = itmp.size
            tdt = self.tables.dtype
            flat_g = (
                gtmp.reshape(-1).view(tdt)
                if gtmp.flags["C_CONTIGUOUS"]
                else None
            )
            gcap = 0 if flat_g is None else flat_g.size
            comb_flat = self.tables.comb_flat
            pf_flat = self.tables.pf_flat
            offs = self.offs
            col_tab_off = self.col_tab_off
            red_all = ws.red
            lookup_cells = 0
            blocks_pruned = 0
            blocks_total = 0

            def gather(table, iv, base_b, base_a, rows, cols, accv):
                """index grid -> table take -> int bases -> k-reduce -> acc.

                ``iv`` is reused as the integer add scratch once the take
                has consumed it; both base adds run in int32 (bases are
                packed as integers) and only the final add materializes
                float32, halving the intermediate traffic.
                """
                size = nk * rows * cols
                if flat_g is not None and size <= gcap:
                    g = flat_g[:size].reshape(nk, rows, cols)
                else:  # pragma: no cover - non-contiguous scratch fallback
                    g = np.empty((nk, rows, cols), dtype=tdt)
                np.take(table, iv, out=g, mode="clip")
                np.add(g, base_b, out=iv)
                tv = scratch((nk, rows, cols))
                np.add(iv, base_a, out=tv)
                red = red_all[:rows, :cols]
                np.maximum.reduce(tv, axis=0, out=red)
                np.maximum(accv, red, out=accv)

            def iview(rows, cols):
                size = nk * rows * cols
                if flat_i is not None and size <= icap:
                    return flat_i[:size].reshape(nk, rows, cols)
                return np.empty(  # pragma: no cover - non-contiguous fallback
                    (nk, rows, cols), dtype=np.int32
                )

            def ivec(cols):
                # small (nk, cols) index scratch carved off the *end* of
                # the flat pool, disjoint from the front grid of iview
                size = nk * cols
                if flat_i is not None and size <= icap:
                    return flat_i[icap - size :].reshape(nk, cols)
                return np.empty(  # pragma: no cover - non-contiguous fallback
                    (nk, cols), dtype=np.int32
                )

            for kb in range(nbf):
                b0 = kb * q
                b1 = b0 + q
                # merged whole-block + prefix lookups: all rows above the
                # block against all columns past its start
                wp = m - b0 - 1
                if kb > 0:
                    r = b0
                    blocks_total += 1
                    accv = acc[:r, b0 + 1 :]
                    # block bound across kept splits: rows peak at the
                    # block's last column, columns at its first row
                    if self.sparsify and np.all(
                        astack[:nk, :r, b1 - 1].max(axis=0)[:, None]
                        + bstack[:nk, b0, b0 + 1 :].max(axis=0)[None, :]
                        <= accv
                    ):
                        blocks_pruned += 1
                    else:
                        colidx = ivec(wp)
                        np.add(
                            eb_codes[:nk, kb, b0 + 1 :],
                            col_tab_off[None, :wp],
                            out=colidx,
                        )
                        iv = iview(r, wp)
                        np.add(
                            ea_codes[:nk, :r, kb, None],
                            colidx[:, None, :],
                            out=iv,
                        )
                        gather(
                            comb_flat,
                            iv,
                            eb_base[:nk, kb, None, b0 + 1 :],
                            ea_base[:nk, :r, kb, None],
                            r,
                            wp,
                            accv,
                        )
                        lookup_cells += nk * r * wp
                # tail lookups: rows inside block kb, columns past it
                w = m - b1
                if w > 0:
                    blocks_total += 1
                    accv = acc[b0:b1, b1:]
                    if self.sparsify and np.all(
                        astack[:nk, b0:b1, b1 - 1].max(axis=0)[:, None]
                        + bstack[:nk, b0, b1:].max(axis=0)[None, :]
                        <= accv
                    ):
                        blocks_pruned += 1
                    else:
                        rowidx = ivec(q)
                        np.add(
                            ea_codes[:nk, b0:b1, kb], offs[None, :], out=rowidx
                        )
                        iv = iview(q, w)
                        np.add(
                            rowidx[:, :, None],
                            eb_codes[:nk, kb, None, b1:],
                            out=iv,
                        )
                        gather(
                            pf_flat,
                            iv,
                            eb_base[:nk, kb, None, b1:],
                            adi[:, b0:b1, None],
                            q,
                            w,
                            accv,
                        )
                        lookup_cells += nk * q * w
            if counters is not None:
                counters.count_fr_lookup(lookup_cells)
                counters.count_fr_blocks(blocks_total, blocks_pruned)

        # -- direct pass: in-block corners and the ragged tail ---------------
        # What no table serves: splits k2 with both i2 and j2 inside k2's
        # own strip (the corner triangles), plus every split inside the
        # trailing partial block.  Both are O(q^2) slivers evaluated as
        # fused broadcast-reduces, with the stored -inf structure (A
        # below its diagonal, B at k2 >= j2) acting as the mask.
        boundary_cells = 0
        # all full strips in one fused 5-D op: zero-copy reshape+diagonal
        # views expose the nbf diagonal (q, q) blocks of both operands,
        # and a strided view of acc scatters the per-strip maxima back
        # (the column shift needs nbf*q < m; with m == nbf*q the last
        # strip falls through to the scalar loop below)
        nfb_bulk = self.nbf if m > self.nbf * q else max(self.nbf - 1, 0)
        if nfb_bulk > 0 and q >= 2:
            nb = nfb_bulk
            bl = nb * q
            av = (
                astack[:nk, :bl, :bl]
                .reshape(nk, nb, q, nb, q)
                .diagonal(axis1=1, axis2=3)
            )  # (nk, q_i2, q_k2, nb)
            bv = (
                bstack[:nk, :bl, 1 : bl + 1]
                .reshape(nk, nb, q, nb, q)
                .diagonal(axis1=1, axis2=3)[:, :, : q - 1, :]
            )  # (nk, q_k2, q-1_j2, nb)
            cand = scratch((nk, q, q, q - 1, nb))
            np.add(av[:, :, :, None, :], bv[:, None, :, :, :], out=cand)
            red = ws.red.reshape(-1)[: q * (q - 1) * nb].reshape(q, q - 1, nb)
            np.maximum.reduce(cand, axis=(0, 2), out=red)
            s0, s1 = acc.strides
            accd = np.lib.stride_tricks.as_strided(
                acc[:, 1:],
                shape=(nb, q, q - 1),
                strides=(q * (s0 + s1), s0, s1),
            )
            np.maximum(accd, red.transpose(2, 0, 1), out=accd)
            boundary_cells += nk * q * q * (q - 1) * nb
        b0 = nfb_bulk * q
        while b0 < m:
            bw = min(q, m - b0)
            b1 = b0 + bw
            if bw >= 2:
                a = astack[:nk, b0:b1, b0:b1]  # (nk, bw, bw) diag block
                b = bstack[:nk, b0:b1, b0 + 1 : b1]  # (nk, bw, bw-1)
                cand = scratch((nk, bw, bw, bw - 1))
                np.add(a[:, :, :, None], b[:, None, :, :], out=cand)
                red = ws.red[:bw, : bw - 1]
                np.maximum.reduce(cand, axis=(0, 2), out=red)
                accv = acc[b0:b1, b0 + 1 : b1]
                np.maximum(accv, red, out=accv)
                boundary_cells += nk * bw * bw * (bw - 1)
            b0 += q
        b0t = nbf * q
        bwt = m - b0t
        if b0t > 0 and bwt >= 2:
            # ragged-tail splits for cells in earlier rows: k2 and j2 in
            # the tail, i2 anywhere above it
            a = astack[:nk, :b0t, b0t:]  # (nk, b0t, bwt) tail columns
            b = bstack[:nk, b0t:, b0t + 1 :]  # (nk, bwt, bwt-1) diag
            cand = scratch((nk, b0t, bwt, bwt - 1))
            np.add(a[:, :, :, None], b[:, None, :, :], out=cand)
            red = ws.red[:b0t, : bwt - 1]
            np.maximum.reduce(cand, axis=(0, 2), out=red)
            accv = acc[:b0t, b0t + 1 :]
            np.maximum(accv, red, out=accv)
            boundary_cells += nk * b0t * bwt * (bwt - 1)
        if counters is not None:
            counters.count_fr_boundary(boundary_cells)


FOURRUSSIANS_BACKEND = register_backend(
    KernelBackend(
        name="fourrussians",
        matmul=_matmul_batched,
        batched_r0=maxplus_batched,
        description=(
            "Four-Russians blocked max-plus lookups + candidate-list split "
            "pruning (requires bounded integer scores; falls back otherwise)"
        ),
        available=True,
        fallback=DEFAULT_BACKEND,
        capabilities={
            "threads": True,
            "workspace_reuse": True,
            "autotune": True,
            "bounded_scores": True,
        },
        # the difference-encoded lookup tables enumerate max-plus block
        # maxima; log-sum-exp requests fall back (with a backend_note)
        semirings=("max-plus",),
    )
)
