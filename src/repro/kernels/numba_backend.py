"""Optional numba JIT backend (guarded import, automatic fallback).

When numba is importable the backend compiles a fused scalar loop nest
for the stacked R0 reduction — no broadcast temporaries at all, the
closest Python gets to the paper's generated C.  When it is not, the
backend still registers (so ``bpmax backends`` can report *why* it is
missing) but flagged unavailable with ``numpy-batched`` as its declared
fallback; :func:`~repro.kernels.get_backend` then substitutes silently.

Compilation is lazy: importing this module never triggers a JIT build —
the first actual kernel call does.
"""

from __future__ import annotations

import numpy as np

from .backend import DEFAULT_BACKEND, KernelBackend, register_backend

__all__ = ["NUMBA_BACKEND", "HAVE_NUMBA"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
    _NOTE = ""
except ImportError:  # the container image does not ship numba
    numba = None
    HAVE_NUMBA = False
    _NOTE = "python package 'numba' is not installed"

_compiled: dict[str, object] = {}


def _kernels():  # pragma: no cover - requires numba
    """Compile (once) and return the jitted kernels."""
    if "batched" not in _compiled:
        neg_inf = np.float32(-np.inf)

        @numba.njit(cache=True)
        def nb_batched(astack, bstack, acc):
            s, n, kk = astack.shape
            m = bstack.shape[2]
            for i in range(n):
                for t in range(s):
                    for k in range(kk):
                        a = astack[t, i, k]
                        if a == neg_inf:
                            continue
                        for j in range(m):
                            v = a + bstack[t, k, j]
                            if v > acc[i, j]:
                                acc[i, j] = v
            return acc

        @numba.njit(cache=True)
        def nb_matmul(a, bs, out):
            n, kk = a.shape
            m = bs.shape[1]
            for i in range(n):
                for k in range(kk):
                    s = a[i, k]
                    if s == neg_inf:
                        continue
                    for j in range(m):
                        v = s + bs[k, j]
                        if v > out[i, j]:
                            out[i, j] = v
            return out

        _compiled["batched"] = nb_batched
        _compiled["matmul"] = nb_matmul
    return _compiled


def _batched_r0(
    astack: np.ndarray,
    bstack: np.ndarray,
    acc: np.ndarray,
    tmp: np.ndarray | None = None,
    red: np.ndarray | None = None,
    triangular: bool = False,
) -> np.ndarray:  # pragma: no cover - requires numba
    # triangular is implicit here: the jitted loop skips -inf A entries
    return _kernels()["batched"](
        np.ascontiguousarray(astack), np.ascontiguousarray(bstack), acc
    )


def _matmul(a: np.ndarray, bs: np.ndarray, out: np.ndarray) -> np.ndarray:
    # pragma: no cover - requires numba
    return _kernels()["matmul"](np.ascontiguousarray(a), np.ascontiguousarray(bs), out)


NUMBA_BACKEND = register_backend(
    KernelBackend(
        "numba",
        matmul=_matmul,
        batched_r0=_batched_r0,
        description="JIT-compiled fused scalar loop nest (needs numba)",
        available=HAVE_NUMBA,
        fallback=DEFAULT_BACKEND,
        note=_NOTE,
        capabilities={"threads": True, "workspace_reuse": True},
        semirings=("max-plus",),
    )
)
