"""Tile-size autotuner for the tiled wavefront backend.

The tiled executor's one tunable is the **window-block width** ``WB``:
how many same-diagonal outer windows one tile batches.  ``WB`` trades
scheduler exposure (more, smaller tiles → more wavefront parallelism)
against batching efficiency (fewer, larger tiles → longer GEMM stacks
and fewer dispatch rounds).  The right value depends on the machine's
cache sizes, the problem shape and the thread count, so it is resolved
in three stages:

1. a **persisted winner** from a previous ``bpmax tune`` run, keyed by
   ``(machine fingerprint, dtype, size class, threads)`` — size classes
   are power-of-two buckets of (N, M) so one measurement covers a
   neighbourhood of problem sizes;
2. otherwise a **cache-aware heuristic**: one tile per diagonal for
   single-thread runs (zero scheduler exposure), else enough tiles to
   feed every worker while one tile's accumulator + GEMM slab stays
   inside the L2 estimate of :mod:`repro.machine.specs`;
3. ``bpmax tune`` (or :func:`tune`) benchmarks candidate widths on a
   synthetic problem of the requested shape and persists the winner.

The cache file is JSON (see EXPERIMENTS.md for the format), stored at
``$BPMAX_TUNE_CACHE`` or ``~/.cache/bpmax/autotune.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..machine.specs import XEON_E5_1650V4, MachineSpec

__all__ = [
    "TUNE_CACHE_VERSION",
    "TuneResult",
    "cache_path",
    "cache_key",
    "default_candidates",
    "default_q_candidates",
    "fr_cache_key",
    "get_generated_config",
    "joint_cache_key",
    "machine_fingerprint",
    "size_class",
    "heuristic_block",
    "get_block_width",
    "get_tile_shape",
    "load_cache",
    "save_entry",
    "tune",
    "tune_fourrussians",
    "tune_joint",
]

TUNE_CACHE_VERSION = 1

#: environment override for the cache file location
CACHE_ENV = "BPMAX_TUNE_CACHE"


def cache_path(path: str | os.PathLike | None = None) -> Path:
    """Resolve the autotune cache file location."""
    if path is not None:
        return Path(path)
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "bpmax" / "autotune.json"


def _blas_vendor() -> str:
    """Best-effort name of the BLAS numpy was built against.

    Tries the numpy >= 1.26 ``show_config(mode="dicts")`` metadata first,
    then the legacy ``np.__config__`` info dicts; anything unreadable
    reports ``blas-unknown`` rather than failing a cache lookup.
    """
    import numpy as np

    try:
        info = np.show_config(mode="dicts")
    except TypeError:
        info = None
    except Exception:  # pragma: no cover - metadata layout surprises
        return "blas-unknown"
    if isinstance(info, dict):
        blas = (info.get("Build Dependencies") or {}).get("blas") or {}
        name = blas.get("name")
        if name:
            return str(name)
    cfg = getattr(np, "__config__", None)
    for attr in (
        "blas_ilp64_opt_info",
        "blas_opt_info",
        "openblas_info",
        "blas_mkl_info",
    ):
        d = getattr(cfg, attr, None)
        if isinstance(d, dict) and d.get("libraries"):
            return str(d["libraries"][0])
    return "blas-unknown"


_FINGERPRINT: str | None = None


def machine_fingerprint() -> str:
    """A stable-enough identifier of the host *environment* for cache keying.

    Includes the numpy version and BLAS vendor alongside the hardware
    identity: a tuned winner (or a compiled generated kernel) measured
    under one numpy/BLAS pairing is stale under another, so an upgrade
    must invalidate persisted entries instead of replaying them.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import numpy as np

        parts = (
            f"{platform.machine()}-{platform.system()}-c{os.cpu_count() or 1}"
            f"-np{np.__version__}-{_blas_vendor()}"
        )
        # the fingerprint is a cache-key *field*: strip the separator
        _FINGERPRINT = parts.replace("|", "_").replace(" ", "_")
    return _FINGERPRINT


def size_class(x: int) -> int:
    """Power-of-two bucket of a problem dimension (min bucket 8)."""
    b = 8
    while b < x:
        b *= 2
    return b


def cache_key(n: int, m: int, threads: int, dtype: str = "float32") -> str:
    return (
        f"{machine_fingerprint()}|{dtype}|n{size_class(n)}|m{size_class(m)}"
        f"|t{threads}"
    )


def fr_cache_key(n: int, m: int, threads: int, d: int) -> str:
    """Cache key of the Four-Russians sweep: the tiled key plus the
    verified difference bound ``d`` (tables and the best ``q`` depend on
    it, not just on the problem shape)."""
    return f"{cache_key(n, m, threads)}|fr|d{d}"


def joint_cache_key(n: int, m: int, threads: int, dtype: str = "float32") -> str:
    """Cache key of the joint schedule x tile sweep over generated kernels."""
    return f"{cache_key(n, m, threads, dtype)}|joint"


def heuristic_block(
    n: int, m: int, threads: int, machine: MachineSpec = XEON_E5_1650V4
) -> int:
    """Default window-block width when no tuned entry exists.

    Single-thread: one tile per diagonal — the scheduler degenerates to
    the plain span-group sweep with no dispatch overhead at all.
    Multi-thread: at least ``2 * threads`` tiles on mid diagonals for
    load balance, but never so wide that a tile's hot working set (the
    (M, M) accumulator plus the per-step GEMM block, ~3 inner matrices)
    spills the L2 estimate.
    """
    if n <= 1:
        return 1
    if threads <= 1:
        return n
    by_threads = max(1, -(-n // (2 * threads)))
    cells_bytes = 4 * m * m
    by_cache = max(1, machine.cache("L2").size_bytes // max(1, 3 * cells_bytes))
    return max(1, min(n, by_threads, by_cache))


# -- persisted winners --------------------------------------------------------


def load_cache(path: str | os.PathLike | None = None) -> dict:
    """Read the cache file; unreadable/foreign files read as empty."""
    p = cache_path(path)
    try:
        with open(p) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {"version": TUNE_CACHE_VERSION, "entries": {}}
    if not isinstance(data, dict) or data.get("version") != TUNE_CACHE_VERSION:
        return {"version": TUNE_CACHE_VERSION, "entries": {}}
    if not isinstance(data.get("entries"), dict):
        data["entries"] = {}
    return data


def save_entry(key: str, entry: dict, path: str | os.PathLike | None = None) -> Path:
    """Merge one tuned entry into the cache file (atomic replace)."""
    p = cache_path(path)
    data = load_cache(p)
    data["entries"][key] = entry
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_name(p.name + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, p)
    return p


def get_tile_shape(
    n: int,
    m: int,
    threads: int = 1,
    path: str | os.PathLike | None = None,
    machine: MachineSpec = XEON_E5_1650V4,
) -> int:
    """The window-block width the tiled executor should use.

    Tuned winner for this (machine, dtype, size-class, threads) if one
    was persisted, else :func:`heuristic_block`.
    """
    entry = load_cache(path)["entries"].get(cache_key(n, m, threads))
    if entry:
        wb = int(entry.get("wb", 0))
        if wb >= 1:
            return min(wb, max(1, n))
    return heuristic_block(n, m, threads, machine)


# -- measurement --------------------------------------------------------------


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one autotuning sweep.

    ``param`` names the tuned knob (``"wb"`` for the tiled window-block
    sweep, ``"fr_q"`` for the Four-Russians block-width sweep, ``"wj"``
    for the generated-kernel joint sweep) and ``best_wb`` holds its
    winning value either way; the Four-Russians sweep is joint over
    ``(q, sparsify)`` and also reports ``best_sparsify``; the
    generated-kernel sweep is joint over (schedule, tile) and also
    reports ``best_schedule``.
    """

    key: str
    n: int
    m: int
    threads: int
    best_wb: int
    best_wall_s: float
    candidates: dict = field(default_factory=dict)
    cache_file: str = ""
    param: str = "wb"
    best_sparsify: bool | None = None
    best_schedule: str | None = None


def default_candidates(n: int, threads: int) -> list[int]:
    """Candidate widths: powers of two up to N, plus the heuristic picks.

    Deduplicated and sorted — the power-of-two ladder and the heuristic
    picks overlap (``n // 2`` is frequently itself a power of two), and
    benchmarking the same width twice would double the sweep cost for no
    information.  :func:`tune` additionally deduplicates caller-supplied
    candidate lists for the same reason.
    """
    cands = {n, max(1, n // 2), max(1, -(-n // max(1, 2 * threads)))}
    w = 1
    while w < n:
        cands.add(w)
        w *= 2
    return sorted(c for c in cands if 1 <= c <= max(1, n))


def default_q_candidates(m: int, d: int) -> list[int]:
    """Candidate Four-Russians block widths for a ``(m, d)`` problem.

    Every feasible ``q`` from 2 up to the MAX_CODES hard cap, truncated
    to the cache-residency budget plus one (so the sweep can contradict
    the budget heuristic on machines with bigger caches), deduplicated
    and sorted like :func:`default_candidates`.
    """
    from .fourrussians_tables import cache_block_width, max_block_width

    hi = min(max_block_width(d), max(2, cache_block_width(d) + 1))
    return sorted({q for q in range(2, hi + 1)})


def tune(
    n: int,
    m: int,
    threads: int = 1,
    candidates: list[int] | None = None,
    seed: int = 7,
    repeats: int = 2,
    path: str | os.PathLike | None = None,
    persist: bool = True,
) -> TuneResult:
    """Benchmark candidate window-block widths; persist and return the winner.

    Times the real tiled executor on a synthetic random problem of the
    requested shape (best of ``repeats`` per candidate, interleaved so
    machine noise hits every candidate equally).
    """
    # engine imports are deferred: repro.core imports repro.kernels
    from ..core.engine import make_engine
    from ..core.reference import prepare_inputs
    from ..rna.sequence import random_pair
    from .tiled_backend import TiledExecutor

    if candidates is None:
        candidates = default_candidates(n, threads)
    # order-preserving dedup: a caller-supplied list may repeat widths
    candidates = list(dict.fromkeys(candidates))
    s1, s2 = random_pair(n, m, seed)
    inputs = prepare_inputs(s1, s2)

    def run_one(wb: int) -> float:
        engine = make_engine(inputs, variant="batched", backend="tiled", threads=threads)
        t0 = time.perf_counter()
        TiledExecutor(engine, wb=wb).run()
        return time.perf_counter() - t0

    for wb in candidates:  # warm caches/BLAS before timing
        run_one(wb)
        break
    best: dict[int, float] = {wb: float("inf") for wb in candidates}
    for _ in range(max(1, repeats)):
        for wb in candidates:
            best[wb] = min(best[wb], run_one(wb))
    best_wb = min(best, key=lambda wb: (best[wb], wb))
    key = cache_key(n, m, threads)
    cache_file = ""
    if persist:
        entry = {
            "wb": best_wb,
            "wall_s": best[best_wb],
            "n": n,
            "m": m,
            "threads": threads,
            "candidates": {str(wb): best[wb] for wb in candidates},
        }
        cache_file = str(save_entry(key, entry, path))
    return TuneResult(
        key=key,
        n=n,
        m=m,
        threads=threads,
        best_wb=best_wb,
        best_wall_s=best[best_wb],
        candidates=dict(best),
        cache_file=cache_file,
    )


# -- Four-Russians block-width sweep ------------------------------------------


def get_block_width(
    n: int,
    m: int,
    threads: int,
    d: int,
    path: str | os.PathLike | None = None,
) -> int:
    """The Four-Russians block width ``q`` an engine should use.

    Tuned winner for this (machine, dtype, size-class, threads, d) if
    one was persisted by ``bpmax tune --backend fourrussians``, else the
    cache-budget-clamped ``q ~ log2(M)`` heuristic.
    """
    from .fourrussians_tables import heuristic_q, max_block_width

    entry = load_cache(path)["entries"].get(fr_cache_key(n, m, threads, d))
    if entry:
        q = int(entry.get("q", 0))
        if q >= 2:
            return min(q, max_block_width(d))
    return heuristic_q(m, d)


def tune_fourrussians(
    n: int,
    m: int,
    threads: int = 1,
    q_candidates: list[int] | None = None,
    seed: int = 7,
    repeats: int = 2,
    path: str | os.PathLike | None = None,
    persist: bool = True,
) -> TuneResult:
    """Joint ``(q, sparsify)`` sweep of the Four-Russians backend.

    Benchmarks every feasible block width with the candidate-list prune
    on and off (the prune's bound passes cost real time on inputs where
    nothing prunes, so it is a tunable too), interleaved best-of-repeats
    like :func:`tune`, and persists the winning pair under
    :func:`fr_cache_key`.
    """
    from ..core.engine import make_engine
    from ..core.reference import prepare_inputs
    from ..rna.sequence import random_pair
    from .fourrussians_tables import check_bounded_scores

    s1, s2 = random_pair(n, m, seed)
    inputs = prepare_inputs(s1, s2)
    check = check_bounded_scores(inputs)
    if not check.ok:
        raise ValueError(
            f"cannot tune fourrussians: precondition failed ({check.reason})"
        )
    if q_candidates is None:
        q_candidates = default_q_candidates(m, check.d)
    q_candidates = list(dict.fromkeys(q_candidates))
    grid = [(q, sp) for q in q_candidates for sp in (False, True)]

    def run_one(q: int, sp: bool) -> float:
        engine = make_engine(
            inputs,
            variant="batched",
            backend="fourrussians",
            fr_q=q,
            fr_sparsify=sp,
        )
        t0 = time.perf_counter()
        engine.run()
        return time.perf_counter() - t0

    run_one(*grid[0])  # warm caches/tables before timing
    best: dict[tuple[int, bool], float] = {g: float("inf") for g in grid}
    for _ in range(max(1, repeats)):
        for g in grid:
            best[g] = min(best[g], run_one(*g))
    best_q, best_sp = min(best, key=lambda g: (best[g], g))
    key = fr_cache_key(n, m, threads, check.d)
    cache_file = ""
    if persist:
        entry = {
            "q": best_q,
            "sparsify": best_sp,
            "wall_s": best[(best_q, best_sp)],
            "n": n,
            "m": m,
            "threads": threads,
            "d": check.d,
            "candidates": {
                f"q{q}|sp{int(sp)}": t for (q, sp), t in best.items()
            },
        }
        cache_file = str(save_entry(key, entry, path))
    return TuneResult(
        key=key,
        n=n,
        m=m,
        threads=threads,
        best_wb=best_q,
        best_wall_s=best[(best_q, best_sp)],
        candidates={f"q{q}|sp{int(sp)}": t for (q, sp), t in best.items()},
        cache_file=cache_file,
        param="fr_q",
        best_sparsify=best_sp,
    )


# -- joint schedule x tile sweep over generated kernels ------------------------


def get_generated_config(
    n: int,
    m: int,
    threads: int = 1,
    dtype: str = "float32",
    path: str | os.PathLike | None = None,
) -> tuple[str, int]:
    """The (schedule, tile) a ``generated`` backend run should compile.

    Tuned winner for this (machine, dtype, size-class, threads) if one
    was persisted by ``bpmax tune --joint``, else the ``kmajor`` untiled
    default (the generic batched path's own order — never slower than a
    bad guess).
    """
    entry = load_cache(path)["entries"].get(joint_cache_key(n, m, threads, dtype))
    if entry:
        schedule = str(entry.get("schedule", ""))
        wj = int(entry.get("wj", 0))
        if schedule:
            return schedule, max(0, wj)
    return "kmajor", 0


def tune_joint(
    n: int,
    m: int,
    threads: int = 1,
    schedules: list[str] | None = None,
    tiles: list[int] | None = None,
    seed: int = 7,
    repeats: int = 2,
    path: str | os.PathLike | None = None,
    persist: bool = True,
) -> TuneResult:
    """Joint (schedule, tile) sweep of the generated window kernels.

    Each grid point is compiled through the codegen cache (first sweep on
    a machine pays the compiles; later sweeps replay them as cache hits),
    wrapped in a throwaway pinned backend, and timed end-to-end on a
    synthetic problem — interleaved best-of-repeats like :func:`tune`.
    A previously persisted winner is warm-started to the front of the
    grid so its caches (BLAS, compiled module) are the ones warmed by the
    untimed first run, keeping re-tunes stable.

    The winner is persisted under :func:`joint_cache_key` with full
    provenance: schedule name, tile width, per-candidate timings, and
    the emitter version via the codegen cache key.
    """
    from ..core.engine import make_engine
    from ..core.reference import prepare_inputs
    from ..polyhedral.codegen.vectorize import candidate_schedules, candidate_tiles
    from ..rna.sequence import random_pair
    from .codegen_backend import make_pinned_backend

    if schedules is None:
        schedules = [ks.name for ks in candidate_schedules()]
    if tiles is None:
        tiles = list(candidate_tiles(m))
    schedules = list(dict.fromkeys(schedules))
    tiles = list(dict.fromkeys(tiles))
    grid = [(s, w) for s in schedules for w in tiles]
    if not grid:
        raise ValueError("joint sweep needs at least one (schedule, tile) point")
    prev = load_cache(path)["entries"].get(joint_cache_key(n, m, threads))
    if prev:
        warm = (str(prev.get("schedule", "")), int(prev.get("wj", 0)))
        if warm in grid:
            grid.remove(warm)
            grid.insert(0, warm)
    s1, s2 = random_pair(n, m, seed)
    inputs = prepare_inputs(s1, s2)

    def run_one(schedule: str, wj: int) -> float:
        backend = make_pinned_backend(schedule, wj)
        engine = make_engine(
            inputs, variant="batched", backend=backend, threads=threads
        )
        t0 = time.perf_counter()
        engine.run()
        return time.perf_counter() - t0

    run_one(*grid[0])  # warm caches/BLAS/compiled modules before timing
    best: dict[tuple[str, int], float] = {g: float("inf") for g in grid}
    for _ in range(max(1, repeats)):
        for g in grid:
            best[g] = min(best[g], run_one(*g))
    best_schedule, best_wj = min(best, key=lambda g: (best[g], g))
    key = joint_cache_key(n, m, threads)
    cache_file = ""
    if persist:
        entry = {
            "schedule": best_schedule,
            "wj": best_wj,
            "wall_s": best[(best_schedule, best_wj)],
            "n": n,
            "m": m,
            "threads": threads,
            "candidates": {f"{s}|wj{w}": t for (s, w), t in best.items()},
        }
        cache_file = str(save_entry(key, entry, path))
    return TuneResult(
        key=key,
        n=n,
        m=m,
        threads=threads,
        best_wb=best_wj,
        best_wall_s=best[(best_schedule, best_wj)],
        candidates={f"{s}|wj{w}": t for (s, w), t in best.items()},
        cache_file=cache_file,
        param="wj",
        best_schedule=best_schedule,
    )
