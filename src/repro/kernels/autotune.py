"""Tile-size autotuner for the tiled wavefront backend.

The tiled executor's one tunable is the **window-block width** ``WB``:
how many same-diagonal outer windows one tile batches.  ``WB`` trades
scheduler exposure (more, smaller tiles → more wavefront parallelism)
against batching efficiency (fewer, larger tiles → longer GEMM stacks
and fewer dispatch rounds).  The right value depends on the machine's
cache sizes, the problem shape and the thread count, so it is resolved
in three stages:

1. a **persisted winner** from a previous ``bpmax tune`` run, keyed by
   ``(machine fingerprint, dtype, size class, threads)`` — size classes
   are power-of-two buckets of (N, M) so one measurement covers a
   neighbourhood of problem sizes;
2. otherwise a **cache-aware heuristic**: one tile per diagonal for
   single-thread runs (zero scheduler exposure), else enough tiles to
   feed every worker while one tile's accumulator + GEMM slab stays
   inside the L2 estimate of :mod:`repro.machine.specs`;
3. ``bpmax tune`` (or :func:`tune`) benchmarks candidate widths on a
   synthetic problem of the requested shape and persists the winner.

The cache file is JSON (see EXPERIMENTS.md for the format), stored at
``$BPMAX_TUNE_CACHE`` or ``~/.cache/bpmax/autotune.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..machine.specs import XEON_E5_1650V4, MachineSpec

__all__ = [
    "TUNE_CACHE_VERSION",
    "TuneResult",
    "cache_path",
    "cache_key",
    "machine_fingerprint",
    "size_class",
    "heuristic_block",
    "get_tile_shape",
    "load_cache",
    "save_entry",
    "tune",
]

TUNE_CACHE_VERSION = 1

#: environment override for the cache file location
CACHE_ENV = "BPMAX_TUNE_CACHE"


def cache_path(path: str | os.PathLike | None = None) -> Path:
    """Resolve the autotune cache file location."""
    if path is not None:
        return Path(path)
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "bpmax" / "autotune.json"


def machine_fingerprint() -> str:
    """A stable-enough identifier of the host for cache keying."""
    return f"{platform.machine()}-{platform.system()}-c{os.cpu_count() or 1}"


def size_class(x: int) -> int:
    """Power-of-two bucket of a problem dimension (min bucket 8)."""
    b = 8
    while b < x:
        b *= 2
    return b


def cache_key(n: int, m: int, threads: int, dtype: str = "float32") -> str:
    return (
        f"{machine_fingerprint()}|{dtype}|n{size_class(n)}|m{size_class(m)}"
        f"|t{threads}"
    )


def heuristic_block(
    n: int, m: int, threads: int, machine: MachineSpec = XEON_E5_1650V4
) -> int:
    """Default window-block width when no tuned entry exists.

    Single-thread: one tile per diagonal — the scheduler degenerates to
    the plain span-group sweep with no dispatch overhead at all.
    Multi-thread: at least ``2 * threads`` tiles on mid diagonals for
    load balance, but never so wide that a tile's hot working set (the
    (M, M) accumulator plus the per-step GEMM block, ~3 inner matrices)
    spills the L2 estimate.
    """
    if n <= 1:
        return 1
    if threads <= 1:
        return n
    by_threads = max(1, -(-n // (2 * threads)))
    cells_bytes = 4 * m * m
    by_cache = max(1, machine.cache("L2").size_bytes // max(1, 3 * cells_bytes))
    return max(1, min(n, by_threads, by_cache))


# -- persisted winners --------------------------------------------------------


def load_cache(path: str | os.PathLike | None = None) -> dict:
    """Read the cache file; unreadable/foreign files read as empty."""
    p = cache_path(path)
    try:
        with open(p) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {"version": TUNE_CACHE_VERSION, "entries": {}}
    if not isinstance(data, dict) or data.get("version") != TUNE_CACHE_VERSION:
        return {"version": TUNE_CACHE_VERSION, "entries": {}}
    if not isinstance(data.get("entries"), dict):
        data["entries"] = {}
    return data


def save_entry(key: str, entry: dict, path: str | os.PathLike | None = None) -> Path:
    """Merge one tuned entry into the cache file (atomic replace)."""
    p = cache_path(path)
    data = load_cache(p)
    data["entries"][key] = entry
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_name(p.name + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, p)
    return p


def get_tile_shape(
    n: int,
    m: int,
    threads: int = 1,
    path: str | os.PathLike | None = None,
    machine: MachineSpec = XEON_E5_1650V4,
) -> int:
    """The window-block width the tiled executor should use.

    Tuned winner for this (machine, dtype, size-class, threads) if one
    was persisted, else :func:`heuristic_block`.
    """
    entry = load_cache(path)["entries"].get(cache_key(n, m, threads))
    if entry:
        wb = int(entry.get("wb", 0))
        if wb >= 1:
            return min(wb, max(1, n))
    return heuristic_block(n, m, threads, machine)


# -- measurement --------------------------------------------------------------


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one autotuning sweep."""

    key: str
    n: int
    m: int
    threads: int
    best_wb: int
    best_wall_s: float
    candidates: dict[int, float] = field(default_factory=dict)
    cache_file: str = ""


def default_candidates(n: int, threads: int) -> list[int]:
    """Candidate widths: powers of two up to N, plus the heuristic picks."""
    cands = {n, max(1, n // 2), max(1, -(-n // max(1, 2 * threads)))}
    w = 1
    while w < n:
        cands.add(w)
        w *= 2
    return sorted(c for c in cands if 1 <= c <= max(1, n))


def tune(
    n: int,
    m: int,
    threads: int = 1,
    candidates: list[int] | None = None,
    seed: int = 7,
    repeats: int = 2,
    path: str | os.PathLike | None = None,
    persist: bool = True,
) -> TuneResult:
    """Benchmark candidate window-block widths; persist and return the winner.

    Times the real tiled executor on a synthetic random problem of the
    requested shape (best of ``repeats`` per candidate, interleaved so
    machine noise hits every candidate equally).
    """
    # engine imports are deferred: repro.core imports repro.kernels
    from ..core.engine import make_engine
    from ..core.reference import prepare_inputs
    from ..rna.sequence import random_pair
    from .tiled_backend import TiledExecutor

    if candidates is None:
        candidates = default_candidates(n, threads)
    s1, s2 = random_pair(n, m, seed)
    inputs = prepare_inputs(s1, s2)

    def run_one(wb: int) -> float:
        engine = make_engine(inputs, variant="batched", backend="tiled", threads=threads)
        t0 = time.perf_counter()
        TiledExecutor(engine, wb=wb).run()
        return time.perf_counter() - t0

    for wb in candidates:  # warm caches/BLAS before timing
        run_one(wb)
        break
    best: dict[int, float] = {wb: float("inf") for wb in candidates}
    for _ in range(max(1, repeats)):
        for wb in candidates:
            best[wb] = min(best[wb], run_one(wb))
    best_wb = min(best, key=lambda wb: (best[wb], wb))
    key = cache_key(n, m, threads)
    cache_file = ""
    if persist:
        entry = {
            "wb": best_wb,
            "wall_s": best[best_wb],
            "n": n,
            "m": m,
            "threads": threads,
            "candidates": {str(wb): best[wb] for wb in candidates},
        }
        cache_file = str(save_entry(key, entry, path))
    return TuneResult(
        key=key,
        n=n,
        m=m,
        threads=threads,
        best_wb=best_wb,
        best_wall_s=best[best_wb],
        candidates=dict(best),
        cache_file=cache_file,
    )
