"""repro.kernels — pluggable high-performance kernel backends.

The R0 "double max-plus" reduction dominates BPMax's Θ(N³M³) runtime;
this package makes its implementation a runtime choice:

* :func:`get_backend` / :data:`BACKENDS` — the registry
  (``numpy``, ``numpy-batched``, ``tiled``, ``fourrussians``, optional
  ``numba`` with automatic fallback when the JIT is not installed);
* :class:`Workspace` — the per-engine scratch pool that makes the
  per-window hot path allocation-free;
* :data:`DEFAULT_BACKEND` — what engines use when none is named.

Consumed by :class:`~repro.core.vectorized.VectorizedBPMax`,
:class:`~repro.core.dmp.DoubleMaxPlus`, ``make_engine(backend=...)``
and the CLI's ``--backend`` / ``bpmax backends``.
"""

from .backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .numba_backend import HAVE_NUMBA
from .numpy_backend import NUMPY_BACKEND, NUMPY_BATCHED_BACKEND
from .tiled_backend import TILED_BACKEND, TiledExecutor
from .fourrussians_tables import (
    BoundedScoresCheck,
    check_bounded_scores,
    heuristic_q,
    nussinov_fourrussians,
)
from .fourrussians_backend import FOURRUSSIANS_BACKEND, FourRussiansState
from .autotune import get_generated_config, get_tile_shape, tune, tune_joint
from .codegen_backend import (
    GENERATED_BACKEND,
    codegen_cache_dir,
    codegen_cache_key,
    get_window_kernel,
    make_pinned_backend,
)
from .workspace import Workspace

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "Workspace",
    "available_backends",
    "get_backend",
    "register_backend",
    "HAVE_NUMBA",
    "NUMPY_BACKEND",
    "NUMPY_BATCHED_BACKEND",
    "TILED_BACKEND",
    "TiledExecutor",
    "FOURRUSSIANS_BACKEND",
    "FourRussiansState",
    "BoundedScoresCheck",
    "check_bounded_scores",
    "heuristic_q",
    "nussinov_fourrussians",
    "get_tile_shape",
    "tune",
    "tune_joint",
    "get_generated_config",
    "GENERATED_BACKEND",
    "codegen_cache_dir",
    "codegen_cache_key",
    "get_window_kernel",
    "make_pinned_backend",
]
