"""Tiled wavefront execution backend: the whole fill as a tile graph.

The ``tiled`` backend executes the BPMax fill as a real inter-tile
wavefront instead of a per-window loop:

* **Packed slabs + square mirrors.**  The canonical table is the
  :class:`~repro.core.tables.FTable` packed ``(T1(N), M, M)`` buffer
  (written in place — no second copy).  Three window-major mirrors make
  every R0/R3/R4/closure operand of a whole diagonal a zero-copy strided
  view: ``atw[i1, d]`` holds window ``(i1, i1+d)`` *transposed*,
  ``sqcr[j1, e]`` / ``sqcs[j1, e]`` hold window ``(j1-e, j1)`` raw /
  split-shifted.  For span ``s``, the operand stacks of windows
  ``[w0, w1)`` are plain slices — no gather loop in the hot path.

* **R0 outer-sums as rank-2 GEMMs.**  The R0 step for inner split ``k2``
  is the outer *sum* ``t[i2, j2] = A[i2, k2] + B[k2, j2]``, which is
  exactly the rank-2 product ``[A[:, k2], 1] @ [[1], [B[k2, :]]]`` — a
  batched BLAS ``matmul`` over every (window, split) of the tile.  This
  is bit-exact in IEEE float32: the two products are by the constant
  1.0 (exact), the dot product is a single two-term sum (one rounding,
  identical to ``a + b`` whether or not the BLAS uses FMA), and no
  ``0 x inf`` products can arise because the constant planes are 1.0.
  An import-time probe verifies this on the installed BLAS; if it does
  not hold the backend registers as unavailable and falls back to
  ``numpy-batched`` rather than risk non-identical scores.

* **Tile graph + dependence-counting scheduler.**  Tiles are
  ``(diagonal, window-block)`` rectangles of the outer triangle; in
  (diag, windex) space the window dependences are the constant vectors
  ``(1, 0)`` and ``(1, -1)``, so the inter-tile DAG comes straight from
  :func:`repro.polyhedral.tiling.tile_graph` and is executed by
  :func:`repro.parallel.wavefront.execute_dag` on a
  :class:`~repro.parallel.pool.ParallelRunner`.  The window-block width
  comes from the autotuner (:mod:`repro.kernels.autotune`).

Every reassociation here is of ``max`` (order-independent) over sums
that are computed identically, so the backend is **bit-identical** to
``numpy-batched`` on full tables, not just on final scores — the
equivalence and golden suites assert exactly that.

Robustness hooks (checkpoint / deadline / fault injection / resume) are
polled per *window* in deterministic order, exactly like the per-window
engines, so crash/resume behaviour is preserved.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

import numpy as np

from ..observe.metrics import active as _metrics_active
from ..observe.tracer import trace
from ..parallel.pool import ParallelRunner
from ..parallel.wavefront import execute_dag
from ..polyhedral.tiling import TileSpec, tile_graph
from ..semiring.maxplus import NEG_INF, maxplus_batched
from .autotune import get_tile_shape
from .backend import KernelBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover
    from ..robust.checkpoint import CheckpointManager
    from ..robust.deadline import Deadline
    from ..robust.faults import FaultPlan

__all__ = ["TILED_BACKEND", "TiledExecutor", "gemm_outer_sum_exact"]

#: outer-window dependence vectors in (diagonal, window-index) space:
#: (i1, j1) needs its west (i1, j1-1) -> (1, 0) and south (i1+1, j1) -> (1, -1)
DEP_VECTORS = ((1, 0), (1, -1))

#: refuse the O(N^2 M^2) square mirrors beyond this footprint and let the
#: engine fall back to the per-window batched path (still bit-identical)
MIRROR_BYTES_CAP = 1_000_000_000


def gemm_outer_sum_exact(dtype=np.float32) -> bool:
    """Probe whether BLAS ``[a, 1] @ [[1], [b]]`` equals ``a + b`` bitwise.

    Exercises the cases that could go wrong: ``-inf`` padding, signed
    zeros, values needing a rounded two-term sum, and large-magnitude
    cancellation.  Probed per dtype: float32 gates the max-plus
    (bit-exact) contract, float64 gates the log-sum-exp one.
    """
    vals = np.array(
        [NEG_INF, -0.0, 0.0, 1.5, -2.25, 3.0e7, 1.0e-3, -3.0e7], dtype=dtype
    )
    r = len(vals)
    a2 = np.empty((1, r, 2), dtype=dtype)
    b2 = np.empty((1, 2, r), dtype=dtype)
    a2[0, :, 0] = vals
    a2[0, :, 1] = 1.0
    b2[0, 0, :] = 1.0
    b2[0, 1, :] = vals
    with np.errstate(all="ignore"):
        got = np.matmul(a2, b2)[0]
    want = vals[:, None] + vals[None, :]
    return bool(np.array_equal(got, want, equal_nan=True))


_GEMM_EXACT = gemm_outer_sum_exact(np.float32)
_GEMM_EXACT64 = gemm_outer_sum_exact(np.float64)


def _k1(m: int) -> int:
    return (m - 1) * m * (m + 1) // 6 if m >= 2 else 0


class _TileScratch:
    """One worker slot's preallocated buffers (checked out per tile)."""

    def __init__(self, wb: int, n: int, m: int, dtype=np.float32) -> None:
        dtype = np.dtype(dtype)
        lmax = 0
        for s in range(1, n):
            lmax = max(lmax, min(wb, n - s) * s)
        lmax = max(lmax, 1)
        self.lmax = lmax
        # rank-2 GEMM planes: column/row of ones is persistent
        self.a2 = np.empty((lmax, 2, m), dtype=dtype)
        self.a2[:, 1, :] = 1.0
        self.b2 = np.empty((lmax, 2, m), dtype=dtype)
        self.b2[:, 0, :] = 1.0
        self.tbuf = np.empty(lmax * m * m, dtype=dtype)
        self.gbuf = np.empty((wb, m, m), dtype=dtype)
        self.rbuf = np.empty((wb, m, m), dtype=dtype)
        self.c3buf = np.empty((wb, m, m), dtype=dtype)
        self.finbuf = np.empty((wb, m + 2, m), dtype=dtype)
        self.fin2buf = np.empty((wb, m, m), dtype=dtype)
        self.rowbuf = np.empty((wb, m), dtype=dtype)
        self.scrbuf = np.empty((wb, m), dtype=dtype)
        self.seedbuf = np.empty((wb, max(m - 1, 1)), dtype=dtype)
        kmax = max(n - 1, 1)
        self.s1l = np.empty((wb, kmax, 1, 1), dtype=dtype)
        self.s1r = np.empty((wb, kmax, 1, 1), dtype=dtype)

    def nbytes(self) -> int:
        return sum(
            b.nbytes
            for b in (
                self.a2,
                self.b2,
                self.tbuf,
                self.gbuf,
                self.rbuf,
                self.c3buf,
                self.finbuf,
                self.fin2buf,
                self.rowbuf,
                self.scrbuf,
                self.seedbuf,
                self.s1l,
                self.s1r,
            )
        )


class TiledExecutor:
    """Runs one engine's fill as a tiled wavefront over the outer triangle.

    Parameters
    ----------
    engine: a :class:`~repro.core.vectorized.VectorizedBPMax` (its
        inputs, table and precomputed finish-row views are reused; the
        filled table is the engine's own, so ``engine.table.inner`` and
        checkpointing behave exactly as in the per-window path).
    wb: window-block width (windows per tile along a diagonal); default
        from the autotuner / heuristic.
    """

    def __init__(self, engine, wb: int | None = None) -> None:
        inp = engine.inputs
        self.engine = engine
        self.inp = inp
        self.table = engine.table
        self.n, self.m = inp.n, inp.m
        self.threads = max(1, engine.threads)
        self.wb = wb if wb is not None else get_tile_shape(self.n, self.m, self.threads)
        self.wb = max(1, min(self.wb, self.n))
        n, m = self.n, self.m
        self.sr = engine.sr
        self._dtype = self.sr.npdtype
        # window-major square mirrors (see module docstring)
        self.atw = np.empty((n, n, m, m), dtype=self._dtype)
        self.sqcs = np.empty((n, n, m, m), dtype=self._dtype)
        self.sqcr = np.empty((n, n, m, m), dtype=self._dtype)
        self._s2_ut = engine._s2_ut
        self._score2_diag1 = engine._score2_diag1
        self._fin_r1 = engine._fin_r1
        self._fin_clo = engine._fin_clo
        self._fin_r2 = engine._fin_r2
        self._scratch: list[_TileScratch] = [
            _TileScratch(self.wb, n, m, dtype=self._dtype) for _ in range(self.threads)
        ]
        self._scratch_lock = threading.Lock()
        self._done: frozenset[tuple[int, int]] = frozenset()
        self._deadline: "Deadline | None" = None
        self._faults: "FaultPlan | None" = None

    @classmethod
    def fits(cls, n: int, m: int, itemsize: int = 4) -> bool:
        """Whether the square mirrors fit the executor's memory budget.

        ``itemsize`` is the semiring compute dtype's width (4 for the
        max-plus float32 contract, 8 for log-sum-exp float64) — wider
        elements halve the largest problem the mirrors accept.
        """
        return 3 * itemsize * n * n * m * m <= MIRROR_BYTES_CAP

    # -- per-tile body (worker threads) --------------------------------------

    def _checkout(self) -> _TileScratch:
        with self._scratch_lock:
            if self._scratch:
                return self._scratch.pop()
        # only reachable if a caller overcommits the runner; keep safe
        return _TileScratch(self.wb, self.n, self.m)

    def _checkin(self, sc: _TileScratch) -> None:
        with self._scratch_lock:
            self._scratch.append(sc)

    def _publish(self, i1: int, j1: int, g: np.ndarray) -> None:
        """Install one finished window into the table and all mirrors."""
        d = j1 - i1
        out = self.table.alloc(i1, j1)
        if out is not g:
            np.copyto(out, g)
        np.copyto(self.atw[i1, d], g.T)
        np.copyto(self.sqcr[j1, d], g)
        cs = self.sqcs[j1, d]
        cs[:-1, :] = g[1:, :]
        cs[-1, :] = NEG_INF

    def _exec_tile(self, tile: tuple[int, int]) -> dict | None:
        """Compute the windows of one (diagonal, block) tile.

        Returns the accounting record consumed by the coordinator's
        ``on_complete`` (``None`` for tiles outside the triangle).
        """
        span, b = tile
        n, m = self.n, self.m
        w0 = b * self.wb
        w1 = min(w0 + self.wb, n - span)
        if w0 >= w1:
            return None
        # resume prefixes are whole diagonals: republish mirrors, skip compute
        if (w0, w0 + span) in self._done:
            for i1 in range(w0, w1):
                self._publish(i1, i1 + span, self.table.inner(i1, i1 + span))
            return {"resumed": True, "windows": w1 - w0, "span": span}
        # robustness hooks, per window in deterministic order
        for i1 in range(w0, w1):
            if self._deadline is not None:
                self._deadline.check(f"window ({i1}, {i1 + span})")
            if self._faults is not None:
                delay = self._faults.engine_window(i1, i1 + span)
                if delay > 0:
                    time.sleep(delay)
        sc = self._checkout()
        try:
            with np.errstate(invalid="ignore"):
                self._compute_block(span, w0, w1, sc)
        finally:
            self._checkin(sc)
        nb = w1 - w0
        itemsize = self._dtype.itemsize
        slab_bytes = itemsize * (2 * nb * span + 2 * nb) * _k1(m) if span else 0
        return {"resumed": False, "windows": nb, "span": span, "slab_bytes": slab_bytes}

    def _compute_block(self, span: int, w0: int, w1: int, sc: _TileScratch) -> None:
        inp = self.inp
        n, m = self.n, self.m
        nb = w1 - w0
        # ⊗ is plain + for both engine semirings; only ⊕ varies (max or
        # logaddexp).  Each candidate below appears in exactly one ⊕, so
        # the same schedule is valid for non-idempotent sums.
        add, maximum = np.add, self.sr.add
        reduce = self.sr.add_reduce
        g = sc.gbuf[:nb]

        if span == 0:
            for w in range(nb):
                add(self._s2_ut, inp.s1[w0 + w, w0 + w], out=g[w])
            self._finish_block(span, w0, w1, sc, use_iscore=True)
            for w in range(nb):
                self._publish(w0 + w, w0 + w, g[w])
            return

        K = span
        L = nb * K
        AT = self.atw[w0:w1, :span]  # (nb, K, m, m): AT[w, kk] = (w0+w, w0+w+kk).T
        Bs = self.sqcs[span + w0 : span + w1, :span][:, ::-1]  # shifted (w+kk+1, w+span)
        Br = self.sqcr[span + w0 : span + w1, :span][:, ::-1]
        g.fill(NEG_INF)

        # R0: per inner-k2 step, one rank-2 batched GEMM over every
        # (window, split) of the tile, then a split-axis max reduction
        a2 = sc.a2[:L]
        b2 = sc.b2[:L]
        for k in range(m - 1):
            rows = k + 1
            c0 = k + 1
            wd = m - c0
            np.copyto(a2[:, 0, :rows].reshape(nb, K, rows), AT[:, :, k, :rows])
            np.copyto(b2[:, 1, :wd].reshape(nb, K, wd), Bs[:, :, k, c0:])
            t = sc.tbuf[: L * rows * wd].reshape(L, rows, wd)
            np.matmul(a2[:, :, :rows].transpose(0, 2, 1), b2[:, :, :wd], out=t)
            t4 = t.reshape(nb, K, rows, wd)
            rblk = sc.rbuf[:nb, :rows, :wd]
            reduce(t4, axis=1, out=rblk)
            ablk = g[:, :rows, c0:]
            maximum(ablk, rblk, out=ablk)

        # R3 (batched bias reduce over raw right operands) + R4 (left
        # operands are contiguous packed-row slabs of the F table)
        s1l = sc.s1l[:nb, :K]
        s1r = sc.s1r[:nb, :K]
        for kk in range(K):
            s1l[:, kk, 0, 0] = inp.s1.diagonal(kk)[w0:w1]
            s1r[:, kk, 0, 0] = inp.s1.diagonal(span - 1 - kk)[1 + kk + w0 : 1 + kk + w1]
        tf = sc.tbuf[: L * m * m].reshape(nb, K, m, m)
        add(Br, s1l, out=tf)
        reduce(tf, axis=1, out=sc.rbuf[:nb])
        maximum(g, sc.rbuf[:nb], out=g)
        packed = self.table.packed
        for w in range(nb):
            i1 = w0 + w
            off = self.table.offset(i1, i1)
            a = packed[off : off + K]
            tw = tf[0]
            add(a, s1r[w], out=tw)
            reduce(tw, axis=0, out=sc.rbuf[0])
            maximum(g[w], sc.rbuf[0], out=g[w])

        # closure of the (i1, j1) pair + independent folds
        sc1 = np.ascontiguousarray(inp.score1.diagonal(span)[w0:w1]).reshape(nb, 1, 1)
        s1v = np.ascontiguousarray(inp.s1.diagonal(span)[w0:w1]).reshape(nb, 1, 1)
        c3 = sc.c3buf[:nb]
        if span == 1:
            add(self._s2_ut[None], sc1, out=c3)
        else:
            add(self.sqcr[span - 1 + w0 : span - 1 + w1, span - 2], sc1, out=c3)
        maximum(g, c3, out=g)
        add(self._s2_ut[None], s1v, out=c3)
        maximum(g, c3, out=g)

        self._finish_block(span, w0, w1, sc, use_iscore=False)
        for w in range(nb):
            self._publish(w0 + w, w0 + w + span, g[w])

    def _finish_block(
        self, span: int, w0: int, w1: int, sc: _TileScratch, use_iscore: bool
    ) -> None:
        """Finish-rows (R1 + collapsed R2 + closure-2) for a whole block.

        The batched form of :meth:`VectorizedBPMax._finish_rows`: the
        per-row candidate stack gains a leading window axis, everything
        else is identical, so the computed sums (and therefore the
        float32 results) are exactly the per-window ones.
        """
        inp = self.inp
        m = self.m
        nb = w1 - w0
        g = sc.gbuf[:nb]
        fin = sc.finbuf[:nb]
        fin2 = sc.fin2buf[:nb]
        row_full = sc.rowbuf[:nb]
        scr = sc.scrbuf[:nb]
        add, maximum = np.add, self.sr.add
        reduce = self.sr.add_reduce
        idempotent = self.sr.idempotent
        s2ut = self._s2_ut
        s1vs = np.ascontiguousarray(inp.s1.diagonal(span)[w0:w1])
        if m > 1:
            seed = sc.seedbuf[:nb, : m - 1]
            add(self._score2_diag1[None, :], s1vs[:, None], out=seed)
        if use_iscore:
            iscore_rows = inp.iscore[w0:w1]
        for i2 in range(m - 1, -1, -1):
            kspan = m - 1 - i2
            if kspan == 0:
                if use_iscore:
                    g[:, i2, i2] = iscore_rows[:, i2]
                continue
            w = m - i2
            f = fin[:, : kspan + 2, :w]
            add(self._fin_r1[i2][None], g[:, i2 + 1 : m, i2:], out=f[:, :kspan])
            add(g[:, i2 + 1, i2 : m - 1], self._fin_clo[i2][None], out=f[:, kspan, 1:])
            f[:, kspan, 0] = NEG_INF
            f[:, kspan, 1] = seed[:, i2]
            np.copyto(f[:, kspan + 1], g[:, i2, i2:])
            row = row_full[:, :w]
            reduce(f, axis=1, out=row)
            if use_iscore:
                d = iscore_rows[:, i2]
            else:
                d = row[:, 0].copy()
            g[:, i2, i2] = d
            if not idempotent:
                # sequential R2 over the whole window block at once (see
                # VectorizedBPMax._finish_rows): columns left to right,
                # each reading finalized cells of its own row — every
                # derivation summed exactly once
                np.copyto(g[:, i2, i2 + 1 :], row[:, 1:])
                growb = g[:, i2]
                for j2 in range(i2 + 1, m):
                    cand = growb[:, i2:j2] + s2ut[i2 + 1 : j2 + 1, j2][None]
                    growb[:, j2] = maximum(growb[:, j2], reduce(cand, axis=1))
                continue
            row[:, 0] = d
            f2 = fin2[:, :kspan, :kspan]
            add(row[:, :kspan, None], self._fin_r2[i2][None], out=f2)
            reduce(f2, axis=1, out=scr[:, :kspan])
            maximum(row[:, 1:], scr[:, :kspan], out=g[:, i2, i2 + 1 :])

    # -- coordination ---------------------------------------------------------

    def run(
        self,
        done: frozenset[tuple[int, int]] = frozenset(),
        checkpoint: "CheckpointManager | None" = None,
        deadline: "Deadline | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> float:
        """Execute the whole tile graph; return the interaction score."""
        n, m = self.n, self.m
        self._done = done
        self._deadline = deadline
        self._faults = faults
        counters = _metrics_active()
        if counters is not None:
            counters.gauge_ws_bytes(sum(s.nbytes() for s in self._scratch))
        graph = tile_graph((n, n), TileSpec(("diag", "win"), (1, self.wb)), DEP_VECTORS)
        runner = ParallelRunner(self.threads)

        def on_complete(tile: tuple[int, int], res: dict | None) -> None:
            if res is None:
                return
            span, b = tile
            if not res["resumed"]:
                if counters is not None:
                    for _ in range(res["windows"]):
                        counters.count_window(span, m)
                    counters.count_tile(res["slab_bytes"])
                if checkpoint is not None:
                    w0 = b * self.wb
                    for i1 in range(w0, w0 + res["windows"]):
                        checkpoint.mark_done(i1, i1 + span)
                    checkpoint.maybe_save(self.table)

        try:
            with trace(
                "engine.tiled",
                n=n,
                m=m,
                wb=self.wb,
                threads=self.threads,
                tiles=graph.number_of_nodes(),
            ):
                stats = execute_dag(
                    graph,
                    runner,
                    self._exec_tile,
                    on_complete=on_complete,
                    key=lambda t: t,
                )
            if counters is not None:
                counters.tile_wavefronts += stats.rounds
                counters.tile_idle_ns += stats.idle_ns
        finally:
            runner.close()
            self._done = frozenset()
            self._deadline = None
            self._faults = None
        return float(self.table.get(0, n - 1, 0, m - 1))


# -- registry entry -----------------------------------------------------------


def _matmul(a: np.ndarray, bs: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Single-split product (stack of one through the shared primitive)."""
    return maxplus_batched(a[None], bs[None], out)


TILED_BACKEND = register_backend(
    KernelBackend(
        "tiled",
        matmul=_matmul,
        batched_r0=maxplus_batched,
        description="tile-graph wavefront executor: packed slabs, rank-2 GEMM "
        "outer-sums, dependence-counting scheduler, autotuned tile width",
        available=_GEMM_EXACT,
        fallback="numpy-batched",
        note="" if _GEMM_EXACT else "BLAS GEMM outer-sum is not bit-exact here",
        capabilities={
            "threads": True,
            "workspace_reuse": True,
            "autotune": True,
            "tile_graph": True,
        },
        # the log-sum-exp contract runs the same tile graph in float64;
        # gated on its own GEMM outer-sum probe
        semirings=("max-plus",) + (("logsumexp",) if _GEMM_EXACT64 else ()),
    )
)
