"""Four-Russians table machinery for blocked max-plus reductions.

The Frid–Gusfield/Venkatachalam line of work (PAPERS.md) accelerates
RNA-folding split reductions by exploiting a *bounded-difference*
property of the DP tables: along a row the values are monotone
non-decreasing with increments in ``{0, .., D}`` (adding one base to a
window can add at most one pair of weight ``<= D``), and along a column
they are monotone non-increasing with the same bound.  A length-``q``
row segment is then fully described by its first value (the *base*) plus
``q - 1`` small digits — one of ``(D+1)^(q-1)`` difference codes — and
the blocked reduction

    max_t  A[i, t] + B[t, j]        (t inside one width-q block)

collapses to a single precomputed table lookup::

    base_A + base_B + PAIR[code_A, code_B]

where ``PAIR[ca, cb] = max_t offs_A(ca)[t] + offs_B(cb)[t]`` is shared
by *every* block of *every* window of *every* problem with the same
``(D, q)``.  With ``q ~ log2(M)`` the inner reduction loses a log
factor.  All scores are small non-negative integers (float32-exact), so
the table path is bit-identical to the direct sums: the lookup computes
the same integer the direct max would, and float32 represents it
exactly below ``2^24``.

This module is the standalone, unit-testable core of the
``fourrussians`` kernel backend:

* :class:`FourRussiansTables` / :func:`get_tables` — the ``(D, q)``-keyed
  pair-lookup tables (built once per process, cached);
* :func:`encode_row_blocks` / :func:`encode_col_blocks` — vectorized
  difference encoders for row-monotone and column-monotone matrices;
* :func:`check_bounded_scores` — the precondition checker consulted by
  the backend at engine construction (weights must be non-negative
  integers small enough for exact float32 sums);
* :func:`nussinov_fourrussians` — the single-strand prototype: the
  weighted Nussinov ``S`` table computed through the block tables,
  bit-identical to :func:`repro.rna.nussinov.nussinov_reference`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..observe.metrics import active as _metrics_active

__all__ = [
    "MAX_CODES",
    "BoundedScoresCheck",
    "FourRussiansTables",
    "cache_block_width",
    "check_bounded_scores",
    "encode_col_blocks",
    "encode_row_blocks",
    "get_tables",
    "heuristic_q",
    "max_block_width",
    "nussinov_fourrussians",
]

#: cap on difference codes per side; bounds the pair table at
#: MAX_CODES^2 float32 entries (4 MiB) whatever the weight bound D is
MAX_CODES = 1024

#: weights above this fail the precondition outright (exactness headroom)
MAX_WEIGHT = 1 << 20

#: default table-footprint budget for the q heuristic: the combined
#: [pu | pf] stack should stay L2-resident — gathers into a 12 MiB q=6
#: stack measurably lose to a 640 KiB q=5 one on large problems
TABLE_CACHE_BUDGET = 1 << 20

#: float32 represents every integer below 2^24 exactly; table sums must
#: stay under this for the lookup path to be bit-identical
EXACT_INT_LIMIT = 1 << 24


def max_block_width(d: int) -> int:
    """Largest block width ``q`` whose code count stays within MAX_CODES.

    ``(d+1)^(q-1) <= MAX_CODES``; a weight bound of 3 (the default
    hydrogen-bond model) allows ``q = 6`` (4^5 = 1024 codes per side).
    """
    if d <= 0:
        return 16
    q = 2
    while (d + 1) ** q <= MAX_CODES:
        q += 1
    return q


def cache_block_width(d: int) -> int:
    """Largest ``q`` whose combined table stack fits TABLE_CACHE_BUDGET."""
    q = 2
    itemsize = 1 if d <= 0 or (q - 1) * d <= 127 else 2
    while (
        q < max_block_width(d)
        and 2 * (q + 1) * (d + 1) ** (2 * q) * itemsize <= TABLE_CACHE_BUDGET
    ):
        q += 1
    return q


def heuristic_q(m: int, d: int) -> int:
    """Default block width: ``q ~ log2(M)``, clamped to the table budgets
    (the MAX_CODES hard cap and the cache-residency budget)."""
    q = int(round(np.log2(max(m, 4))))
    return max(2, min(q, max_block_width(d), cache_block_width(d)))


# -- precondition --------------------------------------------------------------


@dataclass(frozen=True)
class BoundedScoresCheck:
    """Outcome of the bounded-difference precondition check.

    ``ok`` gates the Four-Russians path; ``d`` is the verified difference
    bound (the largest single pair weight); ``reason`` explains a
    failure in one line, for the structured fallback note.
    """

    ok: bool
    d: int = 0
    reason: str = ""


def _check_weight_matrix(w: np.ndarray, name: str) -> str:
    if not np.all(np.isfinite(w)):
        return f"{name} weights contain non-finite values"
    if np.any(w < 0):
        return f"{name} weights contain negative values"
    if not np.all(w == np.rint(w)):
        return f"{name} weights are not integers"
    if w.size and float(w.max()) > MAX_WEIGHT:
        return f"{name} weights exceed {MAX_WEIGHT}"
    return ""


def check_bounded_scores(model_or_inputs) -> BoundedScoresCheck:
    """Verify the bounded-difference precondition of the weight model.

    Accepts a :class:`~repro.rna.scoring.ScoringModel` or prepared
    :class:`~repro.core.reference.BpmaxInputs` (their realized score
    tables are checked directly).  The precondition is exactly what the
    Four-Russians argument needs:

    * every pair weight is a finite, non-negative integer — this makes
      the F tables monotone with increments bounded by the largest
      weight (removing the at-most-one pair a new base participates in
      costs at most ``d``), and every score an exact float32 integer;
    * total scores stay far below ``2^24`` so three-term lookup sums
      (``base_A + base_B + PAIR``) are exact.

    The returned ``d`` is the bound on *strand-2 / intermolecular*
    increments — the directions the R0 block encodings walk.
    """
    score1 = score2 = iscore = None
    n = m = 0
    if hasattr(model_or_inputs, "score2"):  # BpmaxInputs
        score1 = np.asarray(model_or_inputs.score1)
        score2 = np.asarray(model_or_inputs.score2)
        iscore = np.asarray(model_or_inputs.iscore)
        n, m = int(model_or_inputs.n), int(model_or_inputs.m)
        named = (("score1", score1), ("score2", score2), ("iscore", iscore))
    else:  # ScoringModel
        score2 = np.asarray(model_or_inputs.intra_matrix)
        iscore = np.asarray(model_or_inputs.inter_matrix)
        named = (("intra", score2), ("inter", iscore))
    for name, w in named:
        reason = _check_weight_matrix(w, name)
        if reason:
            return BoundedScoresCheck(ok=False, reason=reason)
    d = 0
    for w in (score2, iscore):
        if w.size:
            d = max(d, int(w.max()))
    if score1 is not None and score1.size:
        d1 = int(score1.max())
    else:
        d1 = d
    # headroom for exact float32 sums: every F value is at most one pair
    # weight per base, and the lookup adds three such integers
    if 4 * max(d, d1) * max(n + m, 8) >= EXACT_INT_LIMIT:
        return BoundedScoresCheck(
            ok=False,
            reason="total scores could exceed the exact-float32 integer range",
        )
    return BoundedScoresCheck(ok=True, d=d)


# -- the (D, q)-keyed pair tables ----------------------------------------------


class FourRussiansTables:
    """Precomputed lookup tables for one ``(d, q)`` configuration.

    ``powers`` converts a block's ``q - 1`` difference digits (base
    ``d + 1``) into a code; ``prefix[c, t]`` is the cumulative offset of
    code ``c`` at in-block position ``t`` (``prefix[c, 0] = 0``).  Three
    stacked table families resolve every block shape the R0 kernel
    meets, all storing the *relative* block optimum (bases are added by
    the consumer, keeping the tables weight-scale-free):

    * ``pair[ca, cb] = max_t prefix[ca, t] - prefix[cb, t]`` — a full
      width-``q`` block (A-side offsets ascend, B-side descend, hence
      the minus);
    * ``pf[t0][ca, cb] = max_{t >= t0} (prefix[ca, t] - prefix[ca, t0])
      - prefix[cb, t]`` — the block *tail* from in-block offset ``t0``,
      relative to the A value at ``t0`` (serving rows whose own position
      lies inside the block; digits below ``t0`` cancel, so garbage
      digits from -inf regions never leak in); ``pf[0]`` is ``pair``;
    * ``pu[tmax][ca, cb] = max_{t < tmax} prefix[ca, t] -
      prefix[cb, t]`` — the block *prefix* below ``tmax`` (serving
      columns whose own position lies inside the block).

    Values are bounded by ``(q - 1) * d``, so the tables live in int8
    (or int16 for large weight bounds): the gather path reads a quarter
    of the float traffic and the whole stack stays cache-resident.
    ``pf_flat`` / ``pu_flat`` expose the stacks flat so a single
    ``np.take`` with precomputed ``t0 * ncodes**2`` offsets serves
    mixed-offset index grids.
    """

    def __init__(self, d: int, q: int) -> None:
        if q < 2:
            raise ValueError(f"block width must be >= 2, got {q}")
        if d < 0:
            raise ValueError(f"difference bound must be >= 0, got {d}")
        ncodes = (d + 1) ** (q - 1)
        if ncodes > MAX_CODES:
            raise ValueError(
                f"(d={d}, q={q}) needs {ncodes} codes > MAX_CODES={MAX_CODES}; "
                f"use q <= {max_block_width(d)}"
            )
        self.d = d
        self.q = q
        self.ncodes = ncodes
        base = d + 1
        self.powers = (base ** np.arange(q - 1, dtype=np.int64)).astype(np.int32)
        codes = np.arange(ncodes, dtype=np.int64)
        digits = (codes[:, None] // self.powers[None, :].astype(np.int64)) % base
        prefix = np.zeros((ncodes, q), dtype=np.int32)
        np.cumsum(digits, axis=1, out=prefix[:, 1:])
        self.prefix = prefix
        bound = (q - 1) * d
        self.dtype = np.dtype(np.int8 if bound <= 127 else np.int16)
        # pf built back-to-front: pf[t0] = max(-prefB[t0],
        # digitA[t0] + pf[t0+1]) — two (ncodes, ncodes) passes per offset
        pf = np.empty((q, ncodes, ncodes), dtype=np.int32)
        pf[q - 1] = -prefix[None, :, q - 1]
        for t0 in range(q - 2, -1, -1):
            da = (prefix[:, t0 + 1] - prefix[:, t0])[:, None]
            np.add(pf[t0 + 1], da, out=pf[t0])
            np.maximum(pf[t0], -prefix[None, :, t0], out=pf[t0])
        # pu built front-to-back as a running max over block prefixes;
        # pu[0] (empty range) is never consumed — left at the floor
        pu = np.empty((q, ncodes, ncodes), dtype=np.int32)
        pu[0] = -bound - 1
        for tmax in range(1, q):
            t = tmax - 1
            np.maximum(
                pu[tmax - 1], prefix[:, t, None] - prefix[None, :, t], out=pu[tmax]
            )
        # one contiguous [pu | pf] stack: the R0 kernel's merged block
        # pass mixes prefix and whole-block lookups in a single flat
        # np.take, with per-column offsets tmax*ncodes^2 into the pu half
        # and q*ncodes^2 (== pf[0], the pair table) for columns past the
        # block.  pf/pu/pair are plain views into the stack.
        comb = np.empty((2 * q, ncodes, ncodes), dtype=self.dtype)
        comb[:q] = pu
        comb[q:] = pf
        self.comb = comb
        self.comb_flat = comb.reshape(-1)
        self.pu = comb[:q]
        self.pf = comb[q:]
        self.pu_flat = self.pu.reshape(-1)
        self.pf_flat = self.pf.reshape(-1)
        self.pair = self.pf[0]
        self.pair_flat = self.pf_flat[: ncodes * ncodes]
        counters = _metrics_active()
        if counters is not None:
            counters.count_fr_table_build(comb.size)

    def nbytes(self) -> int:
        return self.comb.nbytes + self.prefix.nbytes

    def __repr__(self) -> str:
        return (
            f"FourRussiansTables(d={self.d}, q={self.q}, ncodes={self.ncodes})"
        )


#: process-wide table cache keyed like the autotune cache: one dimension
#: per degree of freedom, joined with '|'
_TABLES: dict[str, FourRussiansTables] = {}


def get_tables(d: int, q: int) -> FourRussiansTables:
    """The shared ``(d, q)`` tables (built once per process, then reused)."""
    key = f"fr|d{d}|q{q}"
    t = _TABLES.get(key)
    if t is None:
        t = FourRussiansTables(d, q)
        _TABLES[key] = t
    return t


# -- difference encoders -------------------------------------------------------


def _digit_codes(
    diffs: np.ndarray, d: int, powers: np.ndarray, axis: int
) -> np.ndarray:
    """Difference digits along ``axis`` -> codes, sanitized.

    ``diffs`` may contain nan/inf where a segment crosses a -inf region
    of a triangle; those blocks are never consumed by the block pass
    (its row/column restriction keeps every consumed block fully
    finite), so they are clamped to *some* in-range code rather than
    poisoning the whole encode.
    """
    np.nan_to_num(diffs, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
    np.clip(diffs, 0, d, out=diffs)
    codes = np.tensordot(diffs.astype(np.int32), powers, axes=([axis], [0]))
    return np.ascontiguousarray(codes, dtype=np.int32)


def encode_row_blocks(
    mat: np.ndarray, q: int, d: int, powers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Encode width-``q`` row blocks of a row-monotone matrix.

    Returns ``(codes, base)`` of shape ``(rows, C // q)``: block ``kb``
    of row ``i`` covers columns ``[kb*q, kb*q + q)`` with
    ``base[i, kb] = mat[i, kb*q]`` and digits ``mat[i, c+1] - mat[i, c]``.
    A trailing partial block is not encoded (the kernel's boundary pass
    handles it directly).
    """
    rows, cols = mat.shape
    nbf = cols // q
    if nbf == 0:
        empty_i = np.zeros((rows, 0), dtype=np.int32)
        return empty_i, np.zeros((rows, 0), dtype=np.float32)
    seg = mat[:, : nbf * q].reshape(rows, nbf, q)
    base = np.ascontiguousarray(seg[:, :, 0])
    with np.errstate(invalid="ignore"):
        diffs = seg[:, :, 1:] - seg[:, :, :-1]
    return _digit_codes(diffs, d, powers, axis=2), base


def encode_col_blocks(
    mat: np.ndarray, q: int, d: int, powers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Encode height-``q`` column blocks of a column-antitone matrix.

    Returns ``(codes, base)`` of shape ``(R // q, cols)``: block ``kb``
    of column ``j`` covers rows ``[kb*q, kb*q + q)`` with
    ``base[kb, j] = mat[kb*q, j]`` and digits ``mat[r, j] - mat[r+1, j]``
    (non-increasing columns give non-negative digits).
    """
    rows, cols = mat.shape
    nbf = rows // q
    if nbf == 0:
        return (
            np.zeros((0, cols), dtype=np.int32),
            np.zeros((0, cols), dtype=np.float32),
        )
    seg = mat[: nbf * q, :].reshape(nbf, q, cols)
    base = np.ascontiguousarray(seg[:, 0, :])
    with np.errstate(invalid="ignore"):
        diffs = seg[:, :-1, :] - seg[:, 1:, :]
    return _digit_codes(diffs, d, powers, axis=1), base


# -- Nussinov prototype --------------------------------------------------------


def nussinov_fourrussians(seq, model=None, q: int | None = None) -> np.ndarray:
    """Weighted Nussinov ``S`` table through the Four-Russians tables.

    The standalone proof of the machinery on the single-strand S1/S2
    recurrence before it is lifted to R0: the split reduction
    ``max_k S[i, k] + S[k+1, j]`` is evaluated block-wise — full width-q
    blocks inside ``[i, j)`` through one pair-table lookup each, the two
    partial boundary runs directly.  Bit-identical to
    :func:`~repro.rna.nussinov.nussinov_reference` (all sums are exact
    float32 integers and ``max`` is order-independent).

    Raises ``ValueError`` when the model violates the bounded-difference
    precondition (the backend would fall back; the prototype refuses).
    """
    from ..rna.nussinov import _codes_of
    from ..rna.scoring import DEFAULT_MODEL

    model = DEFAULT_MODEL if model is None else model
    check = check_bounded_scores(model)
    if not check.ok:
        raise ValueError(
            f"Four-Russians precondition failed: {check.reason}"
        )
    codes = _codes_of(seq)
    n = len(codes)
    w = model.score_table(codes)
    d = check.d
    q = heuristic_q(n, d) if q is None else q
    if not 2 <= q <= max_block_width(d):
        raise ValueError(
            f"block width q={q} outside [2, {max_block_width(d)}] for d={d}"
        )
    ft = get_tables(d, q)
    s = np.zeros((n, n), dtype=np.float32)
    if n < 2:
        return s
    shifted = np.zeros((n, n), dtype=np.float32)
    for span in range(1, n):
        # re-encode per diagonal: rows of S ascend along j, columns of
        # the shifted table descend along k, both with digits in [0, d]
        ra_codes, ra_base = encode_row_blocks(s, q, d, ft.powers)
        shifted[: n - 1] = s[1:]
        cb_codes, cb_base = encode_col_blocks(shifted, q, d, ft.powers)
        for i in range(n - span):
            j = i + span
            best = max(s[i + 1, j], s[i, j - 1])
            inner = s[i + 1, j - 1] if span >= 2 else np.float32(0.0)
            best = max(best, inner + w[i, j])
            # full blocks strictly inside [i, j): kb*q >= i, kb*q+q <= j
            kb_lo = -(-i // q)
            kb_hi = (j - q) // q + 1 if j >= q else 0
            if kb_hi > kb_lo:
                ca = ra_codes[i, kb_lo:kb_hi]
                cb = cb_codes[kb_lo:kb_hi, j]
                vals = (
                    ft.pair[ca, cb]
                    + ra_base[i, kb_lo:kb_hi]
                    + cb_base[kb_lo:kb_hi, j]
                )
                best = max(best, vals.max())
                lo, hi = kb_lo * q, kb_hi * q
            else:
                lo = hi = j  # no full block: everything is boundary
            for k in range(i, min(lo, j)):
                best = max(best, s[i, k] + s[k + 1, j])
            for k in range(hi, j):
                best = max(best, s[i, k] + s[k + 1, j])
            s[i, j] = np.float32(best)
    return s
