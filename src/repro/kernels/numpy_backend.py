"""NumPy kernel backends: the portable row kernel and the batched default.

``numpy`` wraps the paper's row-vectorized kernel (one broadcast per
``(i2, k2)`` pair — O(splits x M^2) interpreter dispatches per window);
``numpy-batched`` stacks every ``k1`` split into one 3-D block and
reduces with whole-array ops (O(M) dispatches per window).  Both compute
the exact same set of float32 sums, and max is order-independent, so
they are bit-identical to each other and to the scalar references.
"""

from __future__ import annotations

import numpy as np

from ..semiring.maxplus import (
    maxplus_batched,
    maxplus_matmul_vectorized,
)
from .backend import KernelBackend, register_backend

__all__ = ["NUMPY_BACKEND", "NUMPY_BATCHED_BACKEND"]


def _batched_via_rows(
    astack: np.ndarray,
    bstack: np.ndarray,
    acc: np.ndarray,
    tmp: np.ndarray | None = None,
    red: np.ndarray | None = None,
    triangular: bool = False,
) -> np.ndarray:
    """Per-split fallback formulation of the stacked reduction.

    ``triangular`` is accepted for interface parity and ignored: the row
    kernel already skips -inf A entries, which covers the same cells.
    """
    for s in range(astack.shape[0]):
        maxplus_matmul_vectorized(astack[s], bstack[s], acc)
    return acc


def _matmul_batched(a: np.ndarray, bs: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Single-split product through the batched primitive (stack of one)."""
    return maxplus_batched(a[None], bs[None], out)


NUMPY_BACKEND = register_backend(
    KernelBackend(
        "numpy",
        matmul=maxplus_matmul_vectorized,
        batched_r0=_batched_via_rows,
        description="row-vectorized NumPy kernel, one broadcast per (i2, k2)",
        capabilities={"threads": True},
        semirings=("max-plus", "logsumexp"),
    )
)

NUMPY_BATCHED_BACKEND = register_backend(
    KernelBackend(
        "numpy-batched",
        matmul=_matmul_batched,
        batched_r0=maxplus_batched,
        description="stacked 3-D whole-array reduction over all k1 splits "
        "(default)",
        capabilities={"threads": True, "workspace_reuse": True},
        semirings=("max-plus", "logsumexp"),
    )
)
