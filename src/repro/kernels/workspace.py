"""Per-engine scratch pool: the zero-allocation hot path.

The vectorized engines used to allocate fresh M x M temporaries for every
outer window (the accumulator, every split's shifted triangle, the R1/R2
row buffers) — O(N^3) allocations over a run, all of identical shape.  A
:class:`Workspace` owns one copy of each buffer for the lifetime of an
engine so the per-window hot path performs no heap allocation at all:

* ``acc`` / ``red`` — the window accumulator and the shared (M, M)
  reduction output;
* ``astack`` / ``bstack`` / ``braw`` — stacked split operands for the
  batched R0/R3/R4 reductions (grown geometrically, at most once per
  high-water mark of the split count);
* ``tmp`` — the (K, M, M) broadcast scratch of the batched kernels;
* ``row_a`` / ``row_b`` / ``row_c`` — length-M row buffers for the
  vectorized R1/R2 finish-rows scans;
* ``fin`` — the (M + 1, M) stacked-candidate buffer of the finish-rows
  scan (every R1 row below, the closure-2 row and the accumulator row
  share one reduction).

Buffers are plain views into engine-owned memory: a workspace must not be
shared between concurrently-running engines (each engine builds its own).
"""

from __future__ import annotations

import numpy as np

from ..observe.metrics import active as _metrics_active
from ..semiring.maxplus import NEG_INF

__all__ = ["Workspace"]


class Workspace:
    """Reusable scratch buffers for one engine's (N, M) problem.

    Parameters
    ----------
    m: inner sequence length (buffer width/height).
    kmax: upper bound on the split count of one outer window (``N - 1``
        for a full BPMax run); the stacked buffers are grown lazily up
        to this bound, so passing a loose bound costs nothing until a
        window actually needs it.
    quantum: slab-count rounding of the stacked-buffer capacity.  The
        tiled backend consumes the stacks in tile-sized groups of
        windows, so rounding each growth step up to the tile-slab
        quantum guarantees a whole tile's operands fit without a
        mid-tile reallocation (bare geometric doubling could land the
        capacity one slab short of the next tile boundary and force an
        extra regrow per high-water window).
    dtype: element type of every buffer; must match the engine's
        semiring compute dtype (float32 for max-plus, float64 for
        log-sum-exp) so the ufunc ``out=`` targets never mix precisions.
    """

    #: default slab-count rounding of stacked-buffer growth
    SLAB_QUANTUM = 8

    def __init__(
        self,
        m: int,
        kmax: int,
        quantum: int | None = None,
        dtype=np.float32,
    ) -> None:
        if m <= 0:
            raise ValueError(f"workspace width must be > 0, got {m}")
        if kmax < 0:
            raise ValueError(f"kmax must be >= 0, got {kmax}")
        self.m = m
        self.kmax = kmax
        self.quantum = self.SLAB_QUANTUM if quantum is None else max(1, quantum)
        self.dtype = np.dtype(dtype)
        self.acc = np.empty((m, m), dtype=self.dtype)
        self.red = np.empty((m, m), dtype=self.dtype)
        self.row_a = np.empty(m, dtype=self.dtype)
        self.row_b = np.empty(m, dtype=self.dtype)
        self.row_c = np.empty(m, dtype=self.dtype)
        self.fin = np.empty((m + 1, m), dtype=self.dtype)
        self._cap = 0
        self._astack: np.ndarray | None = None
        self._bstack: np.ndarray | None = None
        self._braw: np.ndarray | None = None
        self._tmp: np.ndarray | None = None
        # Four-Russians state: pair tables keyed like the autotune cache
        # ("fr|d{d}|q{q}") plus stacked difference-encoding buffers
        self._fr_tables: dict[str, object] = {}
        self._fr_cap = 0
        self._fr_nbf = 0
        self._fr_bufs: tuple[np.ndarray, ...] | None = None

    # -- window accumulator ---------------------------------------------------

    def acc_reset(self) -> np.ndarray:
        """The (M, M) accumulator, refilled with the ⊕-identity (-inf)."""
        self.acc.fill(NEG_INF)
        return self.acc

    # -- stacked split operands ----------------------------------------------

    def _grow(self, k: int) -> None:
        if k > self.kmax:
            raise ValueError(
                f"window needs {k} splits but workspace was sized for {self.kmax}"
            )
        # geometric growth rounded up to the tile-slab quantum: at most
        # O(log kmax) reallocations, never one slab short of a tile boundary
        q = self.quantum
        want = max(4, 2 * self._cap)
        want = (want + q - 1) // q * q
        cap = max(k, min(self.kmax, want))
        self._astack = np.empty((cap, self.m, self.m), dtype=self.dtype)
        self._bstack = np.empty((cap, self.m, self.m), dtype=self.dtype)
        self._braw = np.empty((cap, self.m, self.m), dtype=self.dtype)
        self._tmp = np.empty((cap, self.m, self.m), dtype=self.dtype)
        self._cap = cap
        counters = _metrics_active()
        if counters is not None:
            counters.count_ws_grow(4 * self._astack.nbytes)
            counters.gauge_ws_bytes(self.nbytes())

    def stacks(self, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(astack, bstack, braw) views of length ``k`` (A, shifted B, raw B)."""
        if k > self._cap or self._astack is None:
            self._grow(k)
        else:
            counters = _metrics_active()
            if counters is not None:
                counters.count_ws_reuse()
        return self._astack[:k], self._bstack[:k], self._braw[:k]

    def tmp3(self, k: int) -> np.ndarray:
        """The (k, M, M) broadcast scratch of the batched kernels."""
        if k > self._cap or self._tmp is None:
            self._grow(k)
        return self._tmp[:k]

    # -- Four-Russians scratch -----------------------------------------------

    def fr_tables(self, d: int, q: int):
        """The ``(d, q)`` Four-Russians pair tables, pool-resident.

        Tables are fetched from the process-wide cache (they are pure
        functions of ``(d, q)`` and shared across engines) and pinned in
        this pool under an autotune-style key ``fr|d{d}|q{q}`` so their
        bytes are accounted with the rest of the engine's scratch.
        """
        from .fourrussians_tables import get_tables

        key = f"fr|d{d}|q{q}"
        t = self._fr_tables.get(key)
        if t is None:
            t = get_tables(d, q)
            self._fr_tables[key] = t
            counters = _metrics_active()
            if counters is not None:
                counters.gauge_ws_bytes(self.nbytes())
        return t

    def fr_stacks(
        self, k: int, nbf: int
    ) -> tuple[np.ndarray, ...]:
        """Stacked per-split difference encodings for one window.

        Returns length-``k`` views ``(ea, eb, adi, itmp, gtmp)``: the
        packed row-block encodings of the A operands (``(k, m, 2*nbf)``
        int32 — pre-scaled codes in the first ``nbf`` columns, integer
        bases in the rest), the packed column-block encodings of the
        shifted B operands (``(k, 2*nbf, m)``, codes then bases), the
        int32 diagonal bases of the tail lookups (``(k, m)``), the int32
        gather-index scratch and the small-int gather-output scratch
        (both ``(k, m, m)``; ``gtmp`` is int16-backed — view-cast it
        down for int8 tables).  Packing codes and bases side by side in
        one dtype means the per-split fill is two copies, not four.
        Grown geometrically like :meth:`stacks`; ``nbf`` (blocks per
        row, fixed per engine by the block width) is part of the shape
        and triggers a reallocation if it changes.
        """
        if k > self.kmax:
            raise ValueError(
                f"window needs {k} splits but workspace was sized for {self.kmax}"
            )
        if k > self._fr_cap or nbf != self._fr_nbf or self._fr_bufs is None:
            quantum = self.quantum
            want = max(4, 2 * self._fr_cap)
            want = (want + quantum - 1) // quantum * quantum
            cap = max(k, min(self.kmax, want))
            m = self.m
            self._fr_bufs = (
                np.empty((cap, m, 2 * nbf), dtype=np.int32),
                np.empty((cap, 2 * nbf, m), dtype=np.int32),
                np.empty((cap, m), dtype=np.int32),
                np.empty((cap, m, m), dtype=np.int32),
                np.empty((cap, m, m), dtype=np.int16),
            )
            self._fr_cap = cap
            self._fr_nbf = nbf
            counters = _metrics_active()
            if counters is not None:
                counters.count_ws_grow(sum(b.nbytes for b in self._fr_bufs))
                counters.gauge_ws_bytes(self.nbytes())
        else:
            counters = _metrics_active()
            if counters is not None:
                counters.count_ws_reuse()
        return tuple(b[:k] for b in self._fr_bufs)

    def nbytes(self) -> int:
        """Total bytes currently held by the pool (for accounting tests)."""
        total = (
            self.acc.nbytes
            + self.red.nbytes
            + self.row_a.nbytes
            + self.row_b.nbytes
            + self.row_c.nbytes
            + self.fin.nbytes
        )
        for buf in (self._astack, self._bstack, self._braw, self._tmp):
            if buf is not None:
                total += buf.nbytes
        if self._fr_bufs is not None:
            total += sum(b.nbytes for b in self._fr_bufs)
        for t in self._fr_tables.values():
            total += t.nbytes()
        return total

    def __repr__(self) -> str:
        return (
            f"Workspace(m={self.m}, kmax={self.kmax}, stacked={self._cap}, "
            f"dtype={self.dtype.name})"
        )
