"""Compile-and-cache layer for generated window kernels.

Closes the loop between the mini-AlphaZ layer and the production
registry: a (schedule, tile) point chosen from
:mod:`repro.polyhedral.codegen.vectorize` is emitted to source, compiled,
cached on disk *and* in process, and registered as an ordinary
:class:`~repro.kernels.KernelBackend` — so ``bpmax --backend generated``
runs a kernel whose loop structure came from a space-time map, not from
hand-written code.

Cache keying mirrors the autotune cache exactly — ``machine fingerprint
| dtype | size-class | schedule | tile | codegen version`` — so a
numpy/BLAS upgrade that invalidates tuned winners invalidates compiled
kernels at the same moment.  The cache directory is
``$BPMAX_CODEGEN_CACHE`` or ``~/.cache/bpmax/codegen``; each entry is the
generated module's *source* (inspectable, diffable) with its key in a
header line, loaded with one ``exec`` per process.

Observability: every source emission counts ``codegen_compiles``, every
load that skipped emission (disk or in-process) counts
``codegen_cache_hits``, and every window a generated kernel accumulates
counts its triangle cells into ``generated_kernel_cells``.

Registered backends:

* ``generated`` — resolves (schedule, tile) per problem from the joint
  autotune cache (``bpmax tune --joint``), default ``kmajor`` untiled;
* ``generated-kmajor`` / ``generated-smajor`` — pinned untiled variants
  (the conformance suite runs the golden corpus through each);
* ``generated-numba`` — the scalar-loop twin under numba's ``njit``;
  registered unavailable (fallback ``generated``) when numba is absent.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..observe.metrics import active as _metrics_active
from ..semiring.maxplus import maxplus_batched, maxplus_matmul_vectorized
from .autotune import get_generated_config, machine_fingerprint, size_class
from .backend import DEFAULT_BACKEND, KernelBackend, register_backend
from .numba_backend import HAVE_NUMBA

if TYPE_CHECKING:  # pragma: no cover
    from ..semiring.semiring import Semiring

__all__ = [
    "CODEGEN_CACHE_ENV",
    "GENERATED_BACKEND",
    "codegen_cache_dir",
    "codegen_cache_key",
    "clear_codegen_memory_cache",
    "load_kernel_module",
    "get_window_kernel",
    "make_generated_backend",
]

#: environment override for the compiled-kernel cache directory
CODEGEN_CACHE_ENV = "BPMAX_CODEGEN_CACHE"


def codegen_cache_dir(path: str | os.PathLike | None = None) -> Path:
    """Resolve the on-disk generated-source cache directory."""
    if path is not None:
        return Path(path)
    env = os.environ.get(CODEGEN_CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "bpmax" / "codegen"


def codegen_cache_key(
    schedule: str, tile_wj: int, dtype: str = "float32", m: int = 64
) -> str:
    """Cache key of one compiled variant (autotune-cache field order)."""
    from ..polyhedral.codegen.vectorize import CODEGEN_VERSION

    return (
        f"{machine_fingerprint()}|{dtype}|m{size_class(m)}"
        f"|{schedule}|wj{tile_wj}|v{CODEGEN_VERSION}"
    )


#: in-process caches: key -> exec'd module namespace; (key, ⊕-name) -> kernel
_MODULES: dict[str, dict] = {}
_BOUND: dict[tuple[str, str], Callable] = {}


def clear_codegen_memory_cache() -> None:
    """Drop the in-process module/kernel caches (tests only; the disk
    cache is untouched)."""
    _MODULES.clear()
    _BOUND.clear()


def load_kernel_module(
    schedule: str,
    tile_wj: int,
    dtype: str = "float32",
    m: int = 64,
    path: str | os.PathLike | None = None,
) -> dict:
    """The compiled module namespace of one variant (cache-through).

    In-process hit and on-disk hit both count ``codegen_cache_hits`` and
    skip source emission entirely; only a cold miss emits the module
    through the vectorized emitter (``codegen_compiles``), written
    atomically so concurrent processes race benignly.
    """
    key = codegen_cache_key(schedule, tile_wj, dtype, m)
    counters = _metrics_active()
    ns = _MODULES.get(key)
    if ns is not None:
        if counters is not None:
            counters.count_codegen_cache_hit()
        return ns
    f = codegen_cache_dir(path) / (
        hashlib.sha1(key.encode()).hexdigest()[:16] + ".py"
    )
    src: str | None
    try:
        src = f.read_text()
    except OSError:
        src = None
    hit = src is not None and src.startswith(f"# key: {key}\n")
    if not hit:
        from ..polyhedral.codegen.vectorize import generate_window_kernel

        src = f"# key: {key}\n" + generate_window_kernel(schedule, tile_wj)
        f.parent.mkdir(parents=True, exist_ok=True)
        tmp = f.with_name(f.name + f".{os.getpid()}.tmp")
        tmp.write_text(src)
        os.replace(tmp, f)
    ns = {}
    exec(compile(src, str(f), "exec"), ns)
    _MODULES[key] = ns
    if counters is not None:
        if hit:
            counters.count_codegen_cache_hit()
        else:
            counters.count_codegen_compile()
    return ns


def get_window_kernel(
    schedule: str,
    tile_wj: int,
    semiring: "Semiring",
    m: int = 64,
    path: str | os.PathLike | None = None,
) -> Callable:
    """The variant's window kernel with ``semiring``'s ufuncs bound."""
    key = codegen_cache_key(schedule, tile_wj, semiring.npdtype.name, m)
    bound_key = (key, semiring.name)
    kern = _BOUND.get(bound_key)
    if kern is not None:
        counters = _metrics_active()
        if counters is not None:
            counters.count_codegen_cache_hit()
        return kern
    ns = load_kernel_module(schedule, tile_wj, semiring.npdtype.name, m, path)
    kern = ns["make_kernel"](semiring)
    _BOUND[bound_key] = kern
    return kern


# -- engine integration -------------------------------------------------------


def _make_window_r0(resolve: Callable) -> Callable:
    """Build the whole-window hook around a per-engine kernel resolver.

    The hook reads the left operands through the packed table's zero-copy
    ``row_slab`` view and gathers only the shifted right operands plus
    one raw row per split — 1 of the 3 stack copies the generic batched
    path makes (see the emitter's module docstring for why that is
    sufficient).
    """

    def window_r0(engine, i1: int, j1: int, acc: np.ndarray) -> np.ndarray:
        kern = engine.__dict__.get("_codegen_window_kernel")
        if kern is None:
            kern = resolve(engine)
            engine._codegen_window_kernel = kern
        tri = engine.table
        inp = engine.inputs
        ws = engine._ws
        k = j1 - i1
        aslab = tri.row_slab(i1, i1, k)
        _, bstack, braw = ws.stacks(k)
        copyto = np.copyto
        for s in range(k):
            k1 = i1 + s
            copyto(bstack[s], tri.shifted(k1 + 1, j1))
            copyto(braw[s, 0], tri.inner(k1 + 1, j1)[0])
        brow0 = braw[:k, 0, :]
        s1l = np.ascontiguousarray(inp.s1[i1, i1:j1])
        s1r = np.ascontiguousarray(inp.s1[i1 + 1 : j1 + 1, j1])
        kern(aslab, bstack, brow0, s1l, s1r, acc, ws.tmp3(k), ws.red)
        counters = _metrics_active()
        if counters is not None:
            m = inp.m
            counters.count_generated_cells(m * (m + 1) // 2)
        return acc

    return window_r0


def _resolve_pinned(schedule: str, tile_wj: int) -> Callable:
    def resolve(engine):
        return get_window_kernel(schedule, tile_wj, engine.sr, engine.inputs.m)

    return resolve


def _resolve_tuned(engine) -> Callable:
    inp = engine.inputs
    schedule, wj = get_generated_config(
        inp.n, inp.m, engine.threads, dtype=engine.sr.npdtype.name
    )
    return get_window_kernel(schedule, wj, engine.sr, inp.m)


def _resolve_numba(engine):  # pragma: no cover - requires numba
    import numba

    inp = engine.inputs
    schedule, wj = get_generated_config(
        inp.n, inp.m, engine.threads, dtype=engine.sr.npdtype.name
    )
    ns = load_kernel_module(schedule, wj, engine.sr.npdtype.name, inp.m)
    scalar = ns["make_scalar_kernel"](jit=numba.njit(cache=True))

    def kernel(aslab, bstack, brow0, s1l, s1r, acc, tmp, red):
        return scalar(
            np.ascontiguousarray(aslab), bstack, brow0, s1l, s1r, acc
        )

    return kernel


def make_generated_backend(
    name: str,
    resolve: Callable,
    description: str,
    provenance: dict,
    available: bool = True,
    fallback: str = DEFAULT_BACKEND,
    note: str = "",
    semirings: tuple[str, ...] = ("max-plus", "logsumexp"),
) -> KernelBackend:
    """A registry-shaped backend around a generated window kernel.

    The stacked/`matmul` entry points delegate to the reference max-plus
    kernels (threaded row-partitioned runs and the DMP engines use them);
    single-thread window accumulation dispatches to the generated
    ``slab_direct`` hook.  Not registered — callers decide (the joint
    autotuner builds throwaway instances per grid point).
    """
    return KernelBackend(
        name,
        matmul=maxplus_matmul_vectorized,
        batched_r0=maxplus_batched,
        description=description,
        available=available,
        fallback=fallback,
        note=note,
        capabilities={
            "workspace_reuse": True,
            "autotune": True,
            "slab_direct": True,
        },
        semirings=semirings,
        window_r0=_make_window_r0(resolve),
        provenance=provenance,
    )


def make_pinned_backend(schedule: str, tile_wj: int) -> KernelBackend:
    """An unregistered backend pinned to one (schedule, tile) grid point."""
    from ..polyhedral.codegen.vectorize import CODEGEN_VERSION

    return make_generated_backend(
        f"generated:{schedule}:wj{tile_wj}",
        _resolve_pinned(schedule, tile_wj),
        f"generated {schedule} kernel, column tile {tile_wj or 'untiled'}",
        provenance={
            "schedule": schedule,
            "tile_wj": tile_wj,
            "codegen": f"v{CODEGEN_VERSION}",
            "source": "pinned",
        },
    )


GENERATED_BACKEND = register_backend(
    make_generated_backend(
        "generated",
        _resolve_tuned,
        "schedule-generated slab-direct kernel (joint-tuned schedule x tile)",
        provenance={
            "schedule": "auto",
            "tile_wj": "auto",
            "source": "joint tune cache (bpmax tune --joint)",
        },
    )
)

GENERATED_KMAJOR_BACKEND = register_backend(
    make_generated_backend(
        "generated-kmajor",
        _resolve_pinned("kmajor", 0),
        "generated kernel pinned to the kmajor schedule, untiled",
        provenance={"schedule": "kmajor", "tile_wj": 0, "source": "pinned"},
    )
)

GENERATED_SMAJOR_BACKEND = register_backend(
    make_generated_backend(
        "generated-smajor",
        _resolve_pinned("smajor", 0),
        "generated kernel pinned to the smajor schedule, untiled",
        provenance={"schedule": "smajor", "tile_wj": 0, "source": "pinned"},
    )
)

GENERATED_NUMBA_BACKEND = register_backend(
    make_generated_backend(
        "generated-numba",
        _resolve_numba,
        "generated scalar-loop kernel under numba njit (needs numba)",
        provenance={
            "schedule": "auto",
            "tile_wj": "auto",
            "source": "joint tune cache, scalar twin",
        },
        available=HAVE_NUMBA,
        fallback="generated",
        note="" if HAVE_NUMBA else "python package 'numba' is not installed",
        semirings=("max-plus",),
    )
)
