"""Kernel backend registry: runtime-dispatchable R0 implementations.

A :class:`KernelBackend` packages the two operations every engine hot
path needs —

* ``matmul(a, bs, out)`` — one accumulating max-plus product (a single
  ``k1`` split);
* ``batched_r0(astack, bstack, acc, tmp, red)`` — the whole R0 reduction
  of one outer window, with all splits stacked into 3-D blocks;

— behind a name, so :class:`~repro.core.vectorized.VectorizedBPMax`,
:class:`~repro.core.dmp.DoubleMaxPlus` and
:func:`~repro.core.engine.make_engine` can switch implementations at
runtime (``backend="numpy-batched"``, CLI ``--backend``).

Backends register themselves in :data:`BACKENDS`; optional accelerators
(numba) register even when their dependency is missing, flagged
unavailable, and :func:`get_backend` transparently falls back along the
backend's declared fallback chain so a run never fails just because an
optional JIT is absent on this machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..semiring.semiring import Semiring

__all__ = [
    "KernelBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "register_backend",
    "get_backend",
    "available_backends",
]

#: name of the backend engines use when asked for the default
DEFAULT_BACKEND = "numpy-batched"


class KernelBackend:
    """One named R0 kernel implementation.

    Parameters
    ----------
    name: registry key (``bpmax backends`` lists them).
    matmul: accumulating single-split product ``out ⊕= A ⊗ B``.
    batched_r0: stacked whole-window reduction
        ``acc[i, j] ⊕= max_{s, k} A[s, i, k] + B[s, k, j]``; the optional
        ``tmp``/``red`` scratch arguments make it allocation-free.
    description: one line for the CLI listing.
    available: False when the backing dependency is missing here.
    fallback: backend name :func:`get_backend` resolves to instead when
        this one is unavailable.
    note: human-readable availability detail (why it is missing, or what
        an unavailable request resolved to).
    capabilities: feature flags of the backend (``threads``,
        ``workspace_reuse``, ``autotune``, ``tile_graph``,
        ``bounded_scores``) consumed by ``bpmax backends`` and by engines
        that dispatch on them — a ``tile_graph`` backend is executed
        through the tiled wavefront scheduler instead of the per-window
        loop, and a ``bounded_scores`` backend requires the
        bounded-difference weight precondition (the engine verifies it at
        construction and falls back when it does not hold).
    semirings: canonical names of the semirings this backend can reduce
        in.  Every backend speaks ``max-plus``; backends whose kernels
        are algebra-generic also declare ``logsumexp``.  Engines route a
        request for an undeclared semiring to the backend's fallback
        with a structured ``backend_note`` — never a wrong-algebra
        result.  Rendered by ``bpmax backends``.
    window_r0: optional whole-window hook
        ``window_r0(engine, i1, j1, acc)`` accumulating R0+R3+R4 of one
        outer window straight off the engine's packed table (the
        generated ``slab_direct`` kernels).  Engines with a single
        coordinating thread dispatch to it instead of gathering the
        stacked operands; ``None`` keeps the generic batched path.
    provenance: where a compiled backend came from — e.g. ``{"schedule":
        "kmajor", "tile_wj": 16, "source": "cache"}`` for generated
        kernels.  Free-form, rendered by ``bpmax backends``.
    """

    #: the capability flags every backend reports (False when unset)
    CAPABILITY_FLAGS = (
        "threads",
        "workspace_reuse",
        "autotune",
        "tile_graph",
        "bounded_scores",
        "slab_direct",
    )

    def __init__(
        self,
        name: str,
        matmul: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        batched_r0: Callable[..., np.ndarray],
        description: str = "",
        available: bool = True,
        fallback: str | None = None,
        note: str = "",
        capabilities: dict[str, bool] | None = None,
        semirings: tuple[str, ...] = ("max-plus",),
        window_r0: Callable[..., np.ndarray] | None = None,
        provenance: dict | None = None,
    ) -> None:
        self.name = name
        self.description = description
        self.available = available
        self.fallback = fallback
        self.note = note
        self.capabilities = {
            f: bool((capabilities or {}).get(f, False)) for f in self.CAPABILITY_FLAGS
        }
        self.semirings = tuple(semirings)
        self._matmul = matmul
        self._batched_r0 = batched_r0
        self.window_r0 = window_r0
        self.provenance = provenance

    def matmul(self, a: np.ndarray, bs: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Accumulating max-plus product of one split: ``out ⊕= A ⊗ B``."""
        return self._matmul(a, bs, out)

    def batched_r0(
        self,
        astack: np.ndarray,
        bstack: np.ndarray,
        acc: np.ndarray,
        tmp: np.ndarray | None = None,
        red: np.ndarray | None = None,
        triangular: bool = False,
        semiring: "Semiring | None" = None,
    ) -> np.ndarray:
        """Whole-window stacked R0 reduction (splits along the leading axis).

        ``triangular=True`` promises the BPMax operand structure (stored
        upper triangles / shifted triangles); backends may exploit it to
        skip the all--inf half of every step, and must produce results
        bit-identical to the dense form for such operands.

        ``semiring`` selects the reduction algebra; ``None`` and
        max-plus take the backend's native kernel (bit-identical to the
        pre-semiring contract).  Any other declared semiring routes
        through the generic stacked reduction; an undeclared one raises
        — silent wrong-algebra output is a contract violation.
        """
        if semiring is None or semiring.name == "max-plus":
            return self._batched_r0(
                astack, bstack, acc, tmp=tmp, red=red, triangular=triangular
            )
        if semiring.name not in self.semirings:
            raise ValueError(
                f"backend {self.name!r} supports semirings {self.semirings}; "
                f"got {semiring.name!r}"
            )
        from ..semiring.generic import semiring_batched

        return semiring_batched(
            semiring, astack, bstack, acc, tmp=tmp, red=red, triangular=triangular
        )

    def __repr__(self) -> str:
        state = "available" if self.available else f"unavailable ({self.note})"
        return f"KernelBackend({self.name!r}, {state})"


#: name -> KernelBackend; populated by the backend modules at import time
BACKENDS: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend to the registry (last registration wins)."""
    BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend by name, following fallbacks for unavailable ones.

    ``None`` resolves to :data:`DEFAULT_BACKEND`; passing an already-
    resolved :class:`KernelBackend` returns it unchanged.  Requesting a
    registered-but-unavailable backend (e.g. ``numba`` without numba
    installed) returns its declared fallback; the reason stays on the
    unavailable entry's :attr:`~KernelBackend.note` (shown by ``bpmax
    backends``).  An unknown name raises ``ValueError``.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = DEFAULT_BACKEND
    try:
        backend = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(sorted(BACKENDS))}"
        ) from None
    seen = [name]
    while not backend.available:
        if backend.fallback is None or backend.fallback in seen:
            raise ValueError(
                f"backend {name!r} is unavailable here ({backend.note}) "
                "and declares no usable fallback"
            )
        seen.append(backend.fallback)
        backend = BACKENDS[backend.fallback]
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of the backends that can actually run on this machine."""
    return tuple(sorted(n for n, b in BACKENDS.items() if b.available))
