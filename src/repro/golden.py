"""Golden-corpus conformance: curated pairs with pinned scores.

The corpus is the repository's ground-truth contract: ~20 curated RNA
pairs covering the scoring model's corners (GC-only, AU-only,
wobble-heavy, length-1, asymmetric N≠M, unpairable, DNA input) plus
invalid inputs with pinned *error types* (empty strands, foreign
characters).  Values live in a checked-in JSON manifest
(``tests/golden/manifest.json``); every case pins one value **per
engine semiring**, each under that semiring's tolerance policy:

* ``max-plus`` (BPMax scores) is *exact* — every engine × backend must
  reproduce the pin **bit-identically** (``atol = rtol = 0``); the
  serving layer's result cache and the kernel-backend registry both
  rely on scores being a pure function of the input.
* ``logsumexp`` (BPPart-style log-partition values) is float64
  accumulation whose rounding legitimately differs between reduction
  orders, so its pins carry ``atol = rtol = 1e-9`` and conformance
  means agreement *within* that tolerance.

``bpmax golden`` verifies the manifest from the CLI;
``bpmax golden --regen`` rewrites it after an *intentional* scoring
change — cross-checking fresh log-sum-exp pins against the
:func:`repro.core.bppart.bppart_recursive` reference — and refuses to
run under CI so a pipeline can never silently re-pin drifted scores
(see :func:`regen_manifest`).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path

from .core.api import bpmax
from .robust.errors import BpmaxError
from .serve.request import scoring_fingerprint
from .rna.scoring import DEFAULT_MODEL

__all__ = [
    "GoldenCase",
    "GOLDEN_CASES",
    "ERROR_CASES",
    "MANIFEST_VERSION",
    "MANIFEST_SEMIRINGS",
    "TOLERANCES",
    "CROSSCHECK_MAX_LEN",
    "default_manifest_path",
    "build_manifest",
    "regen_manifest",
    "verify_manifest",
    "load_manifest",
]

MANIFEST_VERSION = 2

#: engine variant used to (re)generate pinned scores; the conformance
#: suite independently checks every other engine against the same pins
GENERATOR_VARIANT = "hybrid-tiled"

#: semirings pinned per case, in manifest order
MANIFEST_SEMIRINGS = ("max-plus", "logsumexp")

#: tolerance policy per semiring: ``(atol, rtol)``.  Exact semirings
#: pin ``(0, 0)`` — conformance is bit-identity; log-sum-exp admits
#: reduction-order rounding up to 1e-9.
TOLERANCES: dict[str, tuple[float, float]] = {
    "max-plus": (0.0, 0.0),
    "logsumexp": (1e-9, 1e-9),
}

#: regen-time cross-check bound: fresh log-sum-exp pins for cases with
#: ``max(n, m)`` up to this are re-derived with the O(n^2 m^2)-state
#: recursive BPPart reference (the larger cases take ~10 s each there;
#: the engine x engine conformance matrix covers them instead)
CROSSCHECK_MAX_LEN = 12

_EXACT = {name: TOLERANCES[name] == (0.0, 0.0) for name in TOLERANCES}


def _conforms(got: float, pin: dict) -> bool:
    """Does a recomputed value satisfy one semiring pin's tolerance?"""
    if pin.get("exact", True):
        return got == pin["value"]
    return math.isclose(
        got, pin["value"], rel_tol=pin["rtol"], abs_tol=pin["atol"]
    )


@dataclass(frozen=True)
class GoldenCase:
    """One curated corpus entry."""

    name: str
    seq1: str
    seq2: str
    note: str = ""

    @property
    def n(self) -> int:
        return len(self.seq1.strip())

    @property
    def m(self) -> int:
        return len(self.seq2.strip())


#: scoreable corpus: every engine must reproduce the pinned score exactly.
#: Random entries were drawn once with ``repro.rna.sequence.random_pair``
#: (seeds noted) and frozen as literals so the corpus is self-contained.
GOLDEN_CASES: tuple[GoldenCase, ...] = (
    GoldenCase("gc-only-4", "GGGG", "CCCC", "pure Watson-Crick, weight 3"),
    GoldenCase("gc-only-12", "GCGCGCGCGCGC", "CGCGCGCGCGCG", "GC-only, longer"),
    GoldenCase("au-only-8", "AAAAUUUU", "UUUUAAAA", "pure A-U, weight 2"),
    GoldenCase("wobble-only-8", "GUGUGUGU", "UGUGUGUG", "pure G-U wobble, weight 1"),
    GoldenCase("wobble-heavy-12", "GGUUGGUUGGUU", "UUGGUUGGUUGG", "wobble-dominated"),
    GoldenCase("len1-pairable", "G", "C", "single bases that can pair"),
    GoldenCase("len1-unpairable", "A", "G", "single bases that cannot pair"),
    GoldenCase("len1-vs-16", "G", "CCCCCCCCCCCCCCCC", "length-1 outer strand"),
    GoldenCase("unpairable-polyA", "AAAAAA", "AAAAAA", "no admissible pair: score 0"),
    GoldenCase("palindrome-9", "GGGAAACCC", "GGGUUUCCC", "hairpin + duplex mix"),
    GoldenCase("dna-input-6", "GCTTAG", "CTAAGC", "thymine normalised to uracil"),
    GoldenCase(
        "copA-like",
        "CCUUUCCUUCU",
        "GGAAUUCGAAAGAAGGAAAGGAGCAUCCGGU",
        "antisense seed vs planted site (demo corpus)",
    ),
    GoldenCase("asym-3x17", "ACG", "AAUAAUGCGGCAUGGUG", "N<<M, seed 11"),
    GoldenCase("asym-17x3", "CUAACAGAUUAGACCCC", "UCA", "N>>M, seed 12"),
    GoldenCase("random-8x8", "GUAUCCUC", "GAUGCUCC", "seed 1"),
    GoldenCase("random-12x12", "CCUAGGAACGGA", "CGCGUGCACGUU", "seed 2"),
    GoldenCase("random-16x16", "AAUGACCAGACGCGGU", "CGGCAUCCUGCUAGCA", "seed 3"),
    GoldenCase("random-12x20", "UGUAGCUAUGUC", "CUUCUUAGGUGACCGUCAGG", "seed 4"),
    GoldenCase(
        "random-24x24",
        "UUGCACCAAUGACUUUCCGAGCUA",
        "GUAUUAGAGCACUCAGCUACUGGA",
        "seed 5, largest corpus entry",
    ),
    GoldenCase("gc-rich-14x14", "GCCCUGGCGCCGAU", "GGACGCGCCCGGCG", "seed 6, 90% GC"),
    GoldenCase("au-rich-14x14", "UUUAAUAUUCAAAA", "GUUUUUAAUAAGCU", "seed 7, 10% GC"),
)

#: invalid inputs with their pinned structured-error type; the corpus
#: pins *how* the system refuses, not just that it refuses.
ERROR_CASES: tuple[tuple[str, str, str, str], ...] = (
    ("empty-seq1", "", "GC", "InvalidSequenceError"),
    ("empty-seq2", "GC", "", "InvalidSequenceError"),
    ("whitespace-seq1", "   ", "GC", "InvalidSequenceError"),
    ("invalid-char", "GCXC", "GGGG", "InvalidSequenceError"),
)


def default_manifest_path() -> Path:
    """``tests/golden/manifest.json`` of this checkout.

    Resolved relative to the package source so ``bpmax golden`` works
    from any working directory of a source checkout; installed copies
    without the tests tree get a clean error from the caller.
    """
    return Path(__file__).resolve().parents[2] / "tests" / "golden" / "manifest.json"


def _case_score(
    case: GoldenCase,
    variant: str,
    backend: str | None = None,
    semiring: str = "max-plus",
) -> float:
    kwargs = {}
    if backend is not None and variant != "baseline":
        kwargs["backend"] = backend
    return bpmax(
        case.seq1, case.seq2, variant=variant, semiring=semiring, **kwargs
    ).score


def _crosscheck_bppart(case: GoldenCase, value: float) -> None:
    """Regen-time guard: a fresh log-sum-exp pin must match the
    recursive BPPart reference within the corpus tolerance."""
    from .core.bppart import bppart_recursive
    from .core.reference import prepare_inputs

    inputs = prepare_inputs(case.seq1, case.seq2, semiring="logsumexp")
    ref = bppart_recursive(inputs)
    atol, rtol = TOLERANCES["logsumexp"]
    if not math.isclose(value, ref, rel_tol=rtol, abs_tol=atol):
        raise BpmaxError(
            f"golden case {case.name!r}: {GENERATOR_VARIANT} log-sum-exp "
            f"value {value!r} disagrees with the recursive BPPart "
            f"reference {ref!r} beyond (atol={atol:g}, rtol={rtol:g}); "
            "refusing to pin a drifted partition value"
        )


def build_manifest(crosscheck: bool = True) -> dict:
    """Compute a fresh manifest dict from the corpus definitions.

    Every case pins one value per semiring in
    :data:`MANIFEST_SEMIRINGS`, stamped with its tolerance policy; the
    top-level ``score`` mirrors the max-plus pin (the quantity most
    tooling reads).  With ``crosscheck`` (the default), fresh
    log-sum-exp pins for cases up to :data:`CROSSCHECK_MAX_LEN` are
    verified against the recursive BPPart reference before being
    written.
    """
    cases = {}
    for case in GOLDEN_CASES:
        semirings = {}
        for sr_name in MANIFEST_SEMIRINGS:
            value = _case_score(case, GENERATOR_VARIANT, semiring=sr_name)
            atol, rtol = TOLERANCES[sr_name]
            if (
                crosscheck
                and sr_name == "logsumexp"
                and max(case.n, case.m) <= CROSSCHECK_MAX_LEN
            ):
                _crosscheck_bppart(case, value)
            semirings[sr_name] = {
                "value": value,
                "atol": atol,
                "rtol": rtol,
                "exact": _EXACT[sr_name],
            }
        cases[case.name] = {
            "seq1": case.seq1,
            "seq2": case.seq2,
            "n": case.n,
            "m": case.m,
            "note": case.note,
            "score": semirings["max-plus"]["value"],
            "semirings": semirings,
        }
    errors = {}
    for name, seq1, seq2, error in ERROR_CASES:
        errors[name] = {"seq1": seq1, "seq2": seq2, "error": error}
    return {
        "version": MANIFEST_VERSION,
        "model": scoring_fingerprint(DEFAULT_MODEL),
        "generator": GENERATOR_VARIANT,
        "cases": cases,
        "errors": errors,
    }


def load_manifest(path: str | os.PathLike | None = None) -> dict:
    """Load and sanity-check a manifest file."""
    p = Path(path) if path is not None else default_manifest_path()
    try:
        data = json.loads(p.read_text())
    except OSError as exc:
        raise BpmaxError(
            f"cannot read golden manifest {str(p)!r}: {exc}; "
            "run 'bpmax golden --regen' in a source checkout to create it"
        ) from exc
    except json.JSONDecodeError as exc:
        raise BpmaxError(f"golden manifest {str(p)!r} is not valid JSON: {exc}") from exc
    if data.get("version") != MANIFEST_VERSION:
        raise BpmaxError(
            f"golden manifest {str(p)!r} has version {data.get('version')!r}, "
            f"expected {MANIFEST_VERSION}"
        )
    return data


def regen_manifest(
    path: str | os.PathLike | None = None, crosscheck: bool = True
) -> Path:
    """Recompute every pinned value and rewrite the manifest.

    Refuses to run under CI (``CI`` or ``GITHUB_ACTIONS`` in the
    environment): re-pinning is a deliberate, reviewed act — a pipeline
    that regenerates the corpus would hide exactly the regressions the
    corpus exists to catch.
    """
    if os.environ.get("CI") or os.environ.get("GITHUB_ACTIONS"):
        raise BpmaxError(
            "refusing to regenerate the golden manifest under CI "
            "(CI/GITHUB_ACTIONS set): pinned scores must only change in "
            "a reviewed commit; run 'bpmax golden --regen' locally"
        )
    p = Path(path) if path is not None else default_manifest_path()
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(
        json.dumps(build_manifest(crosscheck=crosscheck), indent=2, sort_keys=True)
        + "\n"
    )
    return p


def verify_manifest(
    path: str | os.PathLike | None = None,
    variant: str = GENERATOR_VARIANT,
    backend: str | None = None,
    semirings: tuple[str, ...] | None = None,
) -> list[str]:
    """Recompute the corpus with one engine and diff against the pins.

    Each case is recomputed once per verified semiring and compared
    under that pin's own tolerance policy — bit-identity for exact
    pins, ``math.isclose`` within the pinned ``atol``/``rtol``
    otherwise.  ``semirings`` restricts which algebras to verify
    (default: every pinned one the configuration can run — the
    max-plus-only ``baseline`` variant skips non-exact pins).

    Returns a list of human-readable mismatch lines (empty == conform).
    Detects drifted scores, drifted error types, *and* corpus/manifest
    skew (cases added or removed without a regen).
    """
    data = load_manifest(path)
    problems: list[str] = []
    model_fp = scoring_fingerprint(DEFAULT_MODEL)
    if data.get("model") != model_fp:
        problems.append(
            f"scoring model drift: manifest pinned {data.get('model')!r}, "
            f"current default fingerprints {model_fp!r}"
        )
    if semirings is None:
        wanted = MANIFEST_SEMIRINGS
        if variant == "baseline":
            wanted = tuple(s for s in wanted if _EXACT[s])
    else:
        unknown = set(semirings) - set(MANIFEST_SEMIRINGS)
        if unknown:
            raise BpmaxError(
                f"unknown manifest semiring(s) {sorted(unknown)}; "
                f"pinned: {MANIFEST_SEMIRINGS}"
            )
        wanted = tuple(semirings)
    pinned = data.get("cases", {})
    names = {c.name for c in GOLDEN_CASES}
    for missing in sorted(names - set(pinned)):
        problems.append(f"case {missing!r} is in the corpus but not the manifest")
    for extra in sorted(set(pinned) - names):
        problems.append(f"case {extra!r} is in the manifest but not the corpus")
    label = variant + (f"+{backend}" if backend else "")
    for case in GOLDEN_CASES:
        pin = pinned.get(case.name)
        if pin is None:
            continue
        if pin["seq1"] != case.seq1 or pin["seq2"] != case.seq2:
            problems.append(f"case {case.name!r}: sequences drifted from manifest")
            continue
        sr_pins = pin.get("semirings", {})
        if pin.get("score") != sr_pins.get("max-plus", {}).get("value"):
            problems.append(
                f"case {case.name!r}: top-level score {pin.get('score')!r} "
                "does not mirror the max-plus pin"
            )
        for sr_name in wanted:
            sr_pin = sr_pins.get(sr_name)
            if sr_pin is None:
                problems.append(
                    f"case {case.name!r}: no {sr_name!r} pin in the manifest"
                )
                continue
            got = _case_score(case, variant, backend, semiring=sr_name)
            if not _conforms(got, sr_pin):
                policy = (
                    "exactly"
                    if sr_pin.get("exact", True)
                    else f"within (atol={sr_pin['atol']:g}, rtol={sr_pin['rtol']:g})"
                )
                problems.append(
                    f"case {case.name!r} [{sr_name}]: {label} scored {got!r}, "
                    f"manifest pins {sr_pin['value']!r} {policy}"
                )
    pinned_errors = data.get("errors", {})
    for name, seq1, seq2, error in ERROR_CASES:
        pin = pinned_errors.get(name)
        if pin is None:
            problems.append(f"error case {name!r} missing from manifest")
            continue
        try:
            bpmax(seq1, seq2, variant=variant)
        except BpmaxError as exc:
            got_type = type(exc).__name__
            if got_type != pin["error"]:
                problems.append(
                    f"error case {name!r}: raised {got_type}, "
                    f"manifest pins {pin['error']}"
                )
        else:
            problems.append(
                f"error case {name!r}: scored successfully, "
                f"manifest pins {pin['error']}"
            )
    return problems
