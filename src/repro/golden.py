"""Golden-corpus conformance: curated pairs with pinned scores.

The corpus is the repository's ground-truth contract: ~20 curated RNA
pairs covering the scoring model's corners (GC-only, AU-only,
wobble-heavy, length-1, asymmetric N≠M, unpairable, DNA input) plus
invalid inputs with pinned *error types* (empty strands, foreign
characters).  Scores live in a checked-in JSON manifest
(``tests/golden/manifest.json``) and every engine × backend must
reproduce them **bit-identically** — the serving layer's result cache
and the kernel-backend registry both rely on scores being a pure
function of the input.

``bpmax golden`` verifies the manifest from the CLI;
``bpmax golden --regen`` rewrites it after an *intentional* scoring
change, and refuses to run under CI so a pipeline can never silently
re-pin drifted scores (see :func:`regen_manifest`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from .core.api import bpmax
from .robust.errors import BpmaxError
from .serve.request import scoring_fingerprint
from .rna.scoring import DEFAULT_MODEL

__all__ = [
    "GoldenCase",
    "GOLDEN_CASES",
    "ERROR_CASES",
    "MANIFEST_VERSION",
    "default_manifest_path",
    "build_manifest",
    "regen_manifest",
    "verify_manifest",
    "load_manifest",
]

MANIFEST_VERSION = 1

#: engine variant used to (re)generate pinned scores; the conformance
#: suite independently checks every other engine against the same pins
GENERATOR_VARIANT = "hybrid-tiled"


@dataclass(frozen=True)
class GoldenCase:
    """One curated corpus entry."""

    name: str
    seq1: str
    seq2: str
    note: str = ""

    @property
    def n(self) -> int:
        return len(self.seq1.strip())

    @property
    def m(self) -> int:
        return len(self.seq2.strip())


#: scoreable corpus: every engine must reproduce the pinned score exactly.
#: Random entries were drawn once with ``repro.rna.sequence.random_pair``
#: (seeds noted) and frozen as literals so the corpus is self-contained.
GOLDEN_CASES: tuple[GoldenCase, ...] = (
    GoldenCase("gc-only-4", "GGGG", "CCCC", "pure Watson-Crick, weight 3"),
    GoldenCase("gc-only-12", "GCGCGCGCGCGC", "CGCGCGCGCGCG", "GC-only, longer"),
    GoldenCase("au-only-8", "AAAAUUUU", "UUUUAAAA", "pure A-U, weight 2"),
    GoldenCase("wobble-only-8", "GUGUGUGU", "UGUGUGUG", "pure G-U wobble, weight 1"),
    GoldenCase("wobble-heavy-12", "GGUUGGUUGGUU", "UUGGUUGGUUGG", "wobble-dominated"),
    GoldenCase("len1-pairable", "G", "C", "single bases that can pair"),
    GoldenCase("len1-unpairable", "A", "G", "single bases that cannot pair"),
    GoldenCase("len1-vs-16", "G", "CCCCCCCCCCCCCCCC", "length-1 outer strand"),
    GoldenCase("unpairable-polyA", "AAAAAA", "AAAAAA", "no admissible pair: score 0"),
    GoldenCase("palindrome-9", "GGGAAACCC", "GGGUUUCCC", "hairpin + duplex mix"),
    GoldenCase("dna-input-6", "GCTTAG", "CTAAGC", "thymine normalised to uracil"),
    GoldenCase(
        "copA-like",
        "CCUUUCCUUCU",
        "GGAAUUCGAAAGAAGGAAAGGAGCAUCCGGU",
        "antisense seed vs planted site (demo corpus)",
    ),
    GoldenCase("asym-3x17", "ACG", "AAUAAUGCGGCAUGGUG", "N<<M, seed 11"),
    GoldenCase("asym-17x3", "CUAACAGAUUAGACCCC", "UCA", "N>>M, seed 12"),
    GoldenCase("random-8x8", "GUAUCCUC", "GAUGCUCC", "seed 1"),
    GoldenCase("random-12x12", "CCUAGGAACGGA", "CGCGUGCACGUU", "seed 2"),
    GoldenCase("random-16x16", "AAUGACCAGACGCGGU", "CGGCAUCCUGCUAGCA", "seed 3"),
    GoldenCase("random-12x20", "UGUAGCUAUGUC", "CUUCUUAGGUGACCGUCAGG", "seed 4"),
    GoldenCase(
        "random-24x24",
        "UUGCACCAAUGACUUUCCGAGCUA",
        "GUAUUAGAGCACUCAGCUACUGGA",
        "seed 5, largest corpus entry",
    ),
    GoldenCase("gc-rich-14x14", "GCCCUGGCGCCGAU", "GGACGCGCCCGGCG", "seed 6, 90% GC"),
    GoldenCase("au-rich-14x14", "UUUAAUAUUCAAAA", "GUUUUUAAUAAGCU", "seed 7, 10% GC"),
)

#: invalid inputs with their pinned structured-error type; the corpus
#: pins *how* the system refuses, not just that it refuses.
ERROR_CASES: tuple[tuple[str, str, str, str], ...] = (
    ("empty-seq1", "", "GC", "InvalidSequenceError"),
    ("empty-seq2", "GC", "", "InvalidSequenceError"),
    ("whitespace-seq1", "   ", "GC", "InvalidSequenceError"),
    ("invalid-char", "GCXC", "GGGG", "InvalidSequenceError"),
)


def default_manifest_path() -> Path:
    """``tests/golden/manifest.json`` of this checkout.

    Resolved relative to the package source so ``bpmax golden`` works
    from any working directory of a source checkout; installed copies
    without the tests tree get a clean error from the caller.
    """
    return Path(__file__).resolve().parents[2] / "tests" / "golden" / "manifest.json"


def _case_score(case: GoldenCase, variant: str, backend: str | None = None) -> float:
    kwargs = {}
    if backend is not None and variant != "baseline":
        kwargs["backend"] = backend
    return bpmax(case.seq1, case.seq2, variant=variant, **kwargs).score


def build_manifest() -> dict:
    """Compute a fresh manifest dict from the corpus definitions."""
    cases = {}
    for case in GOLDEN_CASES:
        cases[case.name] = {
            "seq1": case.seq1,
            "seq2": case.seq2,
            "n": case.n,
            "m": case.m,
            "note": case.note,
            "score": _case_score(case, GENERATOR_VARIANT),
        }
    errors = {}
    for name, seq1, seq2, error in ERROR_CASES:
        errors[name] = {"seq1": seq1, "seq2": seq2, "error": error}
    return {
        "version": MANIFEST_VERSION,
        "model": scoring_fingerprint(DEFAULT_MODEL),
        "generator": GENERATOR_VARIANT,
        "cases": cases,
        "errors": errors,
    }


def load_manifest(path: str | os.PathLike | None = None) -> dict:
    """Load and sanity-check a manifest file."""
    p = Path(path) if path is not None else default_manifest_path()
    try:
        data = json.loads(p.read_text())
    except OSError as exc:
        raise BpmaxError(
            f"cannot read golden manifest {str(p)!r}: {exc}; "
            "run 'bpmax golden --regen' in a source checkout to create it"
        ) from exc
    except json.JSONDecodeError as exc:
        raise BpmaxError(f"golden manifest {str(p)!r} is not valid JSON: {exc}") from exc
    if data.get("version") != MANIFEST_VERSION:
        raise BpmaxError(
            f"golden manifest {str(p)!r} has version {data.get('version')!r}, "
            f"expected {MANIFEST_VERSION}"
        )
    return data


def regen_manifest(path: str | os.PathLike | None = None) -> Path:
    """Recompute every pinned score and rewrite the manifest.

    Refuses to run under CI (``CI`` or ``GITHUB_ACTIONS`` in the
    environment): re-pinning is a deliberate, reviewed act — a pipeline
    that regenerates the corpus would hide exactly the regressions the
    corpus exists to catch.
    """
    if os.environ.get("CI") or os.environ.get("GITHUB_ACTIONS"):
        raise BpmaxError(
            "refusing to regenerate the golden manifest under CI "
            "(CI/GITHUB_ACTIONS set): pinned scores must only change in "
            "a reviewed commit; run 'bpmax golden --regen' locally"
        )
    p = Path(path) if path is not None else default_manifest_path()
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(build_manifest(), indent=2, sort_keys=True) + "\n")
    return p


def verify_manifest(
    path: str | os.PathLike | None = None,
    variant: str = GENERATOR_VARIANT,
    backend: str | None = None,
) -> list[str]:
    """Recompute the corpus with one engine and diff against the pins.

    Returns a list of human-readable mismatch lines (empty == conform).
    Detects drifted scores, drifted error types, *and* corpus/manifest
    skew (cases added or removed without a regen).
    """
    data = load_manifest(path)
    problems: list[str] = []
    model_fp = scoring_fingerprint(DEFAULT_MODEL)
    if data.get("model") != model_fp:
        problems.append(
            f"scoring model drift: manifest pinned {data.get('model')!r}, "
            f"current default fingerprints {model_fp!r}"
        )
    pinned = data.get("cases", {})
    names = {c.name for c in GOLDEN_CASES}
    for missing in sorted(names - set(pinned)):
        problems.append(f"case {missing!r} is in the corpus but not the manifest")
    for extra in sorted(set(pinned) - names):
        problems.append(f"case {extra!r} is in the manifest but not the corpus")
    for case in GOLDEN_CASES:
        pin = pinned.get(case.name)
        if pin is None:
            continue
        if pin["seq1"] != case.seq1 or pin["seq2"] != case.seq2:
            problems.append(f"case {case.name!r}: sequences drifted from manifest")
            continue
        got = _case_score(case, variant, backend)
        if got != pin["score"]:
            problems.append(
                f"case {case.name!r}: {variant}"
                f"{f'+{backend}' if backend else ''} scored {got!r}, "
                f"manifest pins {pin['score']!r}"
            )
    pinned_errors = data.get("errors", {})
    for name, seq1, seq2, error in ERROR_CASES:
        pin = pinned_errors.get(name)
        if pin is None:
            problems.append(f"error case {name!r} missing from manifest")
            continue
        try:
            bpmax(seq1, seq2, variant=variant)
        except BpmaxError as exc:
            got_type = type(exc).__name__
            if got_type != pin["error"]:
                problems.append(
                    f"error case {name!r}: raised {got_type}, "
                    f"manifest pins {pin['error']}"
                )
        else:
            problems.append(
                f"error case {name!r}: scored successfully, "
                f"manifest pins {pin['error']}"
            )
    return problems
