"""Per-run counters: the paper's operation-count accounting, observed.

The paper justifies every optimization with *counted* work — Θ(N³M³)
max-plus operations for R0, Θ(N²M³) for R1/R2, a ~6× memory-traffic cut
from the triangular-aware batched kernel.  :class:`Counters` turns those
assertions into observed numbers:

* **logical op counts** (``ops_r0`` … ``ops_r4``, ``cells``) — counted
  per outer window from the recurrence's closed forms, so they are
  *backend- and thread-independent*: every engine computing the same
  (N, M) problem must report identical values (the differential fuzz
  suite asserts exactly this, making the counters part of the
  equivalence contract);
* **physical traffic** (``slab_cells_touched`` / ``slab_cells_dense``,
  ``bytes_moved``) — counted inside the batched R0 kernel, where the
  triangular-aware mode's slab shrinking is observable;
* **workspace accounting** (``ws_grow_events`` / ``ws_bytes_allocated``
  / ``ws_stack_reuses``) — proves the hot path allocates nothing after
  warm-up;
* **robustness accounting** (``checkpoint_saves`` / ``retries`` /
  ``faults_injected``) — events from the fault-tolerant layer;
* **serving accounting** (``cache_hits`` / ``cache_misses`` /
  ``cache_evictions``, ``batches_dispatched`` / ``requests_served``,
  ``requests_shed`` / ``requests_rerouted`` / ``worker_deaths`` /
  ``worker_respawns``) — events from the :mod:`repro.serve` result
  cache, batch scheduler, and sharded process-pool tier.

Collection is opt-in and guarded: instrumented sites call
:func:`active` and skip all accounting when it returns ``None`` (the
default), so a run without a collector pays one ``is None`` test per
*window*, not per operation.  Install a collector with
:func:`collecting`::

    with collecting() as c:
        make_engine(inputs, "batched").run()
    print(c.ops_r0, c.traffic_ratio())

Counter increments are plain int ``+=`` under the GIL; the logical op
counts are incremented only on the engine's coordinating thread, so they
are exact even for ``threads > 1`` runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["Counters", "COUNTER_FIELDS", "active", "collecting"]

#: every integer counter carried by :class:`Counters`, in report order
COUNTER_FIELDS = (
    "windows",
    "cells",
    "ops_r0",
    "ops_r1",
    "ops_r2",
    "ops_r3",
    "ops_r4",
    "bytes_moved",
    "slabs_total",
    "slabs_skipped",
    "slab_cells_touched",
    "slab_cells_dense",
    "ws_grow_events",
    "ws_bytes_allocated",
    "ws_stack_reuses",
    "workspace_bytes",
    "tiles_executed",
    "tile_wavefronts",
    "tile_idle_ns",
    "tile_slab_bytes",
    "checkpoint_saves",
    "checkpoint_bytes",
    "retries",
    "faults_injected",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "batches_dispatched",
    "requests_served",
    "requests_shed",
    "requests_rerouted",
    "worker_deaths",
    "worker_respawns",
    "fr_windows",
    "fr_table_builds",
    "fr_table_cells",
    "fr_lookup_cells",
    "fr_boundary_cells",
    "r0_splits_total",
    "r0_splits_pruned",
    "r0_blocks_total",
    "r0_blocks_pruned",
    "codegen_compiles",
    "codegen_cache_hits",
    "generated_kernel_cells",
)


def _t1(n: int) -> int:
    return n * (n + 1) // 2


def _k1(n: int) -> int:
    return (n - 1) * n * (n + 1) // 6 if n >= 2 else 0


class Counters:
    """One run's metric counters (all plain ints, see
    :data:`COUNTER_FIELDS`)."""

    __slots__ = COUNTER_FIELDS

    def __init__(self) -> None:
        for f in COUNTER_FIELDS:
            setattr(self, f, 0)

    # -- engine hooks --------------------------------------------------------

    def count_window(self, splits: int, m: int) -> None:
        """Account one outer window with ``splits = j1 - i1`` k1 splits.

        Uses the recurrence's closed forms over the inner triangle
        (``T1(m) = m(m+1)/2`` cells, ``K1(m) = (m-1)m(m+1)/6`` split
        triples), so the totals over a full run reproduce the analytic
        model of :mod:`repro.machine.counters` exactly:

        * R0: one (i2, k2, j2) triple per split — ``splits * K1(m)``;
        * R1/R2: one k2 choice per inner cell pair — ``K1(m)`` each;
        * R3/R4: one k1 choice per inner cell — ``splits * T1(m)`` each.
        """
        t1m = _t1(m)
        k1m = _k1(m)
        self.windows += 1
        self.cells += t1m
        self.ops_r0 += splits * k1m
        self.ops_r1 += k1m
        self.ops_r2 += k1m
        self.ops_r3 += splits * t1m
        self.ops_r4 += splits * t1m

    # -- kernel hooks --------------------------------------------------------

    def count_slab(self, stack: int, rows: int, width: int, full_rows: int, full_width: int) -> None:
        """Account one reduction step of the batched R0 kernel.

        ``rows x width`` is the slab actually touched; ``full_rows x
        full_width`` is what the dense (triangular-unaware) form would
        touch for the same step, across a stack of ``stack`` splits.
        ``bytes_moved`` models the dominant traffic of one step: the
        stacked broadcast-add writes the (stack, rows, width) block, the
        reduction reads it back, and the accumulator slab is read and
        written once (float32 throughout).
        """
        touched = rows * width
        self.slabs_total += 1
        if touched == 0:
            self.slabs_skipped += 1
        self.slab_cells_touched += stack * touched
        self.slab_cells_dense += stack * full_rows * full_width
        self.bytes_moved += 4 * (2 * stack * touched + 2 * touched)

    # -- Four-Russians hooks -------------------------------------------------

    def count_fr_window(self) -> None:
        """One R0 window accumulated through the Four-Russians kernel."""
        self.fr_windows += 1

    def count_fr_table_build(self, cells: int) -> None:
        """One ``(d, q)`` pair-table construction (amortized: the table
        cache makes this a handful per process, vs millions of lookups)."""
        self.fr_table_builds += 1
        self.fr_table_cells += cells

    def count_fr_lookup(self, cells: int) -> None:
        """Block-resolved accumulator cells: each counted cell replaced a
        width-q direct max-plus run with one pair-table lookup."""
        self.fr_lookup_cells += cells

    def count_fr_boundary(self, cells: int) -> None:
        """Accumulator cells finished by the direct (non-table) boundary
        pass around partial blocks."""
        self.fr_boundary_cells += cells

    def count_fr_splits(self, total: int, pruned: int) -> None:
        """k1-split candidate-list accounting for one window: ``pruned``
        of ``total`` splits were dominated under the monotone triangular
        bound and skipped entirely."""
        self.r0_splits_total += total
        self.r0_splits_pruned += pruned

    def count_fr_blocks(self, total: int, pruned: int) -> None:
        """k2-block candidate accounting: ``pruned`` of ``total`` lookup
        block-columns were dominated by the current accumulator."""
        self.r0_blocks_total += total
        self.r0_blocks_pruned += pruned

    # -- generated-kernel hooks ----------------------------------------------

    def count_codegen_compile(self) -> None:
        """One generated-kernel source actually emitted and compiled
        (cold cache); a steady-state run should report zero of these."""
        self.codegen_compiles += 1

    def count_codegen_cache_hit(self) -> None:
        """One generated-kernel variant served from the compiled cache
        (in-process or on-disk) without re-emitting source."""
        self.codegen_cache_hits += 1

    def count_generated_cells(self, cells: int) -> None:
        """Accumulator cells produced by a generated window kernel."""
        self.generated_kernel_cells += cells

    # -- workspace hooks -----------------------------------------------------

    def count_ws_grow(self, nbytes: int) -> None:
        self.ws_grow_events += 1
        self.ws_bytes_allocated += nbytes

    def count_ws_reuse(self) -> None:
        self.ws_stack_reuses += 1

    def gauge_ws_bytes(self, nbytes: int) -> None:
        """High-water gauge of live workspace bytes (max, not a sum)."""
        if nbytes > self.workspace_bytes:
            self.workspace_bytes = nbytes

    # -- tiled-execution hooks -----------------------------------------------

    def count_tile(self, slab_bytes: int = 0) -> None:
        """Account one executed tile of the wavefront tile graph.

        ``slab_bytes`` is the tile's analytic slab traffic (operand slabs
        read + accumulator written), kept separate from ``bytes_moved``
        so the per-kernel and per-tile models stay individually
        comparable.
        """
        self.tiles_executed += 1
        self.tile_slab_bytes += slab_bytes

    def count_wavefront(self, idle_ns: int = 0) -> None:
        """Account one wavefront step (an anti-diagonal of ready tiles);
        ``idle_ns`` is scheduler time not spent inside tile bodies."""
        self.tile_wavefronts += 1
        self.tile_idle_ns += idle_ns

    # -- derived -------------------------------------------------------------

    @property
    def ops_total(self) -> int:
        """All counted max-plus reduction operations."""
        return self.ops_r0 + self.ops_r1 + self.ops_r2 + self.ops_r3 + self.ops_r4

    def traffic_ratio(self) -> float:
        """Dense-over-touched slab cells: the observed traffic cut of the
        triangular-aware batched mode (~6x for square operands)."""
        if self.slab_cells_touched == 0:
            return 1.0
        return self.slab_cells_dense / self.slab_cells_touched

    def slab_skip_fraction(self) -> float:
        """Fraction of dense slab cells the triangular mode never touched."""
        if self.slab_cells_dense == 0:
            return 0.0
        return 1.0 - self.slab_cells_touched / self.slab_cells_dense

    def as_dict(self) -> dict[str, int]:
        return {f: getattr(self, f) for f in COUNTER_FIELDS}

    def op_counts(self) -> dict[str, int]:
        """The R0-R4 logical op counters (the equivalence contract)."""
        return {
            "r0": self.ops_r0,
            "r1": self.ops_r1,
            "r2": self.ops_r2,
            "r3": self.ops_r3,
            "r4": self.ops_r4,
        }

    def __repr__(self) -> str:
        return (
            f"Counters(windows={self.windows}, cells={self.cells}, "
            f"ops={self.ops_total}, bytes={self.bytes_moved})"
        )


#: the installed collector; ``None`` (the default) disables all accounting
_ACTIVE: Counters | None = None


def active() -> Counters | None:
    """The currently-installed collector, or ``None`` when metrics are off.

    Instrumented hot paths call this once per coarse unit of work (an
    outer window, a kernel invocation) and skip all accounting on
    ``None`` — the disabled cost is one global read and one identity
    test.
    """
    return _ACTIVE


@contextmanager
def collecting(counters: Counters | None = None) -> Iterator[Counters]:
    """Install a collector for the duration of a ``with`` block.

    Nested blocks shadow outer ones (innermost wins) and the previous
    collector is restored on exit.  Not async-safe by design: one
    process-wide slot, matching the engines' thread model (counters are
    incremented from the coordinating thread).
    """
    global _ACTIVE
    c = Counters() if counters is None else counters
    prev = _ACTIVE
    _ACTIVE = c
    try:
        yield c
    finally:
        _ACTIVE = prev
