"""repro.observe — zero-dependency tracing, metrics and profiling.

The observability layer the measurement-driven methodology of the paper
calls for: spans (:mod:`~repro.observe.tracer`), per-run operation and
traffic counters (:mod:`~repro.observe.metrics`) and roofline-linked run
reports (:mod:`~repro.observe.report`).  Everything is off by default
and near-free while off: ``trace()`` is one flag test, counter sites are
one ``active() is None`` test per outer window.

Typical use::

    from repro.observe import collecting, tracing

    with tracing() as tr, collecting() as c:
        result = bpmax("GCGCUUCG", "CGAAGCGC", variant="batched")
    print(c.ops_r0, c.traffic_ratio())
    tr.save("trace.json")

or from the CLI: ``bpmax run SEQ1 SEQ2 --metrics --trace trace.json``
and ``bpmax report report.json``.
"""

from .metrics import COUNTER_FIELDS, Counters, active, collecting
from .report import RunReport, predicted_op_counts
from .tracer import SpanRecord, Tracer, event, get_tracer, trace, tracing

__all__ = [
    "COUNTER_FIELDS",
    "Counters",
    "active",
    "collecting",
    "RunReport",
    "predicted_op_counts",
    "SpanRecord",
    "Tracer",
    "event",
    "get_tracer",
    "trace",
    "tracing",
]
