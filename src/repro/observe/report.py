"""RunReport: observed counters vs the analytic model, roofline-linked.

A :class:`RunReport` freezes one run's :class:`~repro.observe.metrics.
Counters` next to the *predicted* operation counts from the closed forms
of :mod:`repro.machine.counters` (the paper's Θ(N³M³)/Θ(N²M³)
accounting), so "the engines perform exactly the modelled work" is a
checkable equality rather than an assertion.  It also connects observed
ops/bytes to the :mod:`repro.machine` roofline model: the achieved
arithmetic intensity of the batched R0 kernel against the paper's
predicted ``Y = max(a + X, Y)`` stream intensity (2 FLOPs / 12 bytes)
and the resulting attainable-GFLOPS bound per memory level.

Reports serialize to JSON (``bpmax run --metrics-out report.json``) and
back (``bpmax report report.json``), and :meth:`RunReport.render`
pretty-prints the whole comparison.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..machine.counters import k1, t1
from ..machine.roofline import MAXPLUS_STREAM_AI, Roofline
from ..machine.specs import XEON_E5_1650V4, MachineSpec
from .metrics import COUNTER_FIELDS, Counters

__all__ = [
    "RunReport",
    "predicted_op_counts",
    "predicted_fr_cells",
    "predicted_window_fr_cells",
]

REPORT_VERSION = 1

#: max-plus FLOPs per counted op (one add + one max), the paper's unit
FLOPS_PER_OP = 2


def predicted_op_counts(n: int, m: int) -> dict[str, int]:
    """Analytic per-term max-plus op counts for an (N, M) run.

    The closed forms behind the paper's complexity table: R0 iterates
    ``(i1,k1,j1) x (i2,k2,j2)``, R1/R2 ``(i1,j1) x (i2,k2,j2)``, R3/R4
    ``(i1,k1,j1) x (i2,j2)``; cells is the number of F entries.
    """
    return {
        "r0": k1(n) * k1(m),
        "r1": t1(n) * k1(m),
        "r2": t1(n) * k1(m),
        "r3": k1(n) * t1(m),
        "r4": k1(n) * t1(m),
        "cells": t1(n) * t1(m),
    }


def predicted_window_fr_cells(m: int, q: int) -> tuple[int, int]:
    """Per-split ``(lookup, boundary)`` accumulator cells of one window.

    The closed form of the Four-Russians region decomposition over an
    ``M x M`` inner triangle with block width ``q``, mirroring the two
    lookup passes of the kernel: for each full block ``kb`` (covering
    ``k2 in [kb*q, kb*q + q)``) the *merged* pass serves every cell with
    its row in an earlier block (``i2 < kb*q``) and its column past the
    block's start (in-block columns through the ``pu`` prefix tables,
    later columns through ``pf[0]``), and the *tail* pass serves the
    ``q`` rows inside the block against all columns past it through
    ``pf[t0]``.  The boundary pass handles what no table serves: per
    strip, the ``bw x bw`` diagonal A block against the strip's
    ``bw x (bw - 1)`` B diagonal block (rows and columns both in-strip),
    plus the ragged-tail splits against every earlier row — the stored
    ``-inf`` triangle structure masks the invalid combinations, which is
    why the boundary counts are the full block rectangles.
    """
    nbf = m // q
    lookup = 0
    for kb in range(nbf):
        b0 = kb * q
        # merged whole-block + prefix pass: rows above block kb against
        # every column past its start (in-block columns via pu, the rest
        # via pf[0])
        if kb > 0:
            lookup += b0 * (m - b0 - 1)
        # tail pass: the q rows inside block kb against columns past it
        w = m - b0 - q
        if w > 0:
            lookup += q * w
    boundary = 0
    b0 = 0
    while b0 < m:
        # in-strip corner: the bw x bw diagonal A block against the
        # strip's bw x (bw - 1) B diagonal block
        bw = min(q, m - b0)
        if bw >= 2:
            boundary += bw * bw * (bw - 1)
        b0 += q
    b0t = nbf * q
    bwt = m - b0t
    if b0t > 0 and bwt >= 2:
        # ragged-tail splits against every earlier row
        boundary += b0t * bwt * (bwt - 1)
    return lookup, boundary


def predicted_fr_cells(n: int, m: int, q: int) -> dict[str, int]:
    """Predicted ``fr_lookup_cells`` / ``fr_boundary_cells`` for a full
    (N, M) run with pruning disabled.

    Every window with ``k = j1 - i1 >= 1`` splits contributes ``k`` times
    the per-split window counts; summed over the outer triangle that is
    ``K1(N)`` splits total — the same split count behind the R0 closed
    form, so ``lookup*q + boundary ~ K1(N) * K1(M)`` up to block
    rounding.  With sparsification enabled the observed counters can
    only be lower (that is the point), so this form is the
    predicted-vs-observed equality check for ``fr_sparsify=False`` runs
    and an upper bound otherwise.
    """
    lookup, boundary = predicted_window_fr_cells(m, q)
    splits = k1(n)
    return {
        "fr_lookup_cells": splits * lookup,
        "fr_boundary_cells": splits * boundary,
    }


@dataclass(frozen=True)
class RunReport:
    """Observed metrics of one BPMax run, with predictions alongside.

    Build one with :meth:`from_counters` after a
    :func:`~repro.observe.metrics.collecting` run; ``bpmax run
    --metrics`` does this for you.
    """

    n: int
    m: int
    variant: str
    counters: dict[str, int]
    backend: str | None = None
    threads: int = 1
    wall_s: float = 0.0
    score: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_counters(
        cls,
        counters: Counters,
        n: int,
        m: int,
        variant: str,
        backend: str | None = None,
        threads: int = 1,
        wall_s: float = 0.0,
        score: float | None = None,
        **attrs,
    ) -> "RunReport":
        return cls(
            n=n,
            m=m,
            variant=variant,
            counters=counters.as_dict(),
            backend=backend,
            threads=threads,
            wall_s=wall_s,
            score=score,
            attrs=dict(attrs),
        )

    # -- observed vs predicted ----------------------------------------------

    def observed_op_counts(self) -> dict[str, int]:
        c = self.counters
        return {
            "r0": c["ops_r0"],
            "r1": c["ops_r1"],
            "r2": c["ops_r2"],
            "r3": c["ops_r3"],
            "r4": c["ops_r4"],
            "cells": c["cells"],
        }

    def predicted(self) -> dict[str, int]:
        return predicted_op_counts(self.n, self.m)

    def deviations(self) -> dict[str, tuple[int, int]]:
        """Terms whose observed count differs from the prediction,
        as ``term -> (observed, predicted)``.  Empty means the run
        performed exactly the modelled work."""
        obs, pred = self.observed_op_counts(), self.predicted()
        return {k: (obs[k], pred[k]) for k in pred if obs[k] != pred[k]}

    @property
    def ops_total(self) -> int:
        c = self.counters
        return c["ops_r0"] + c["ops_r1"] + c["ops_r2"] + c["ops_r3"] + c["ops_r4"]

    @property
    def flops(self) -> int:
        """Observed max-plus FLOPs (2 per counted reduction op)."""
        return FLOPS_PER_OP * self.ops_total

    def traffic_ratio(self) -> float:
        c = self.counters
        if c["slab_cells_touched"] == 0:
            return 1.0
        return c["slab_cells_dense"] / c["slab_cells_touched"]

    def slab_skip_fraction(self) -> float:
        c = self.counters
        if c["slab_cells_dense"] == 0:
            return 0.0
        return 1.0 - c["slab_cells_touched"] / c["slab_cells_dense"]

    # -- roofline link -------------------------------------------------------

    def achieved_intensity(self) -> float | None:
        """Observed FLOPs per byte of the batched R0 kernel, or ``None``
        when the run moved no counted bytes (non-batched kernels)."""
        bytes_moved = self.counters["bytes_moved"]
        if bytes_moved == 0:
            return None
        r0_flops = FLOPS_PER_OP * self.counters["ops_r0"]
        return r0_flops / bytes_moved

    def roofline_summary(
        self, machine: MachineSpec = XEON_E5_1650V4, level: str = "L1"
    ) -> dict[str, Any]:
        """Achieved vs predicted intensity on one machine's roofline.

        ``predicted_ai`` is the paper's stream-kernel intensity (2/12);
        ``achieved_ai`` is observed R0 FLOPs over counted kernel bytes.
        Both are evaluated against the same roof so the attainable
        GFLOPS are directly comparable.
        """
        roof = Roofline(machine, threads=self.threads)
        predicted = roof.attainable(MAXPLUS_STREAM_AI, level)
        ai = self.achieved_intensity()
        out: dict[str, Any] = {
            "machine": machine.name,
            "level": level,
            "threads": self.threads,
            "predicted_ai": MAXPLUS_STREAM_AI,
            "predicted_gflops": predicted.attainable_gflops,
            "achieved_ai": ai,
        }
        if ai is not None:
            achieved = roof.attainable(ai, level)
            out["achieved_gflops_bound"] = achieved.attainable_gflops
            out["bound"] = achieved.bound
        if self.wall_s > 0:
            out["measured_gflops"] = self.flops / self.wall_s / 1e9
        return out

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "n": self.n,
            "m": self.m,
            "variant": self.variant,
            "backend": self.backend,
            "threads": self.threads,
            "wall_s": self.wall_s,
            "score": self.score,
            "counters": dict(self.counters),
            "attrs": dict(self.attrs),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2) + "\n"

    def save(self, path: str | os.PathLike) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        version = data.get("version")
        if version != REPORT_VERSION:
            raise ValueError(
                f"unsupported RunReport version {version!r} "
                f"(expected {REPORT_VERSION})"
            )
        counters = {f: int(data["counters"].get(f, 0)) for f in COUNTER_FIELDS}
        return cls(
            n=int(data["n"]),
            m=int(data["m"]),
            variant=str(data["variant"]),
            backend=data.get("backend"),
            threads=int(data.get("threads", 1)),
            wall_s=float(data.get("wall_s", 0.0)),
            score=data.get("score"),
            counters=counters,
            attrs=dict(data.get("attrs", {})),
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunReport":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -- rendering -----------------------------------------------------------

    def render(self, machine: MachineSpec = XEON_E5_1650V4) -> str:
        c = self.counters
        obs, pred = self.observed_op_counts(), self.predicted()
        head = f"RunReport: (N, M) = ({self.n}, {self.m}), variant {self.variant}"
        if self.backend:
            head += f", backend {self.backend}"
        if self.threads > 1:
            head += f", {self.threads} threads"
        lines = [head]
        if self.score is not None:
            lines.append(f"score {self.score:g}, wall {self.wall_s:.4f} s")
        lines.append("")
        lines.append(f"{'term':8s} {'observed':>14s} {'predicted':>14s}")
        for term in ("r0", "r1", "r2", "r3", "r4", "cells"):
            mark = "" if obs[term] == pred[term] else "  <- MISMATCH"
            lines.append(f"{term:8s} {obs[term]:14d} {pred[term]:14d}{mark}")
        lines.append(
            f"{'total':8s} {self.ops_total:14d} "
            f"{sum(v for k, v in pred.items() if k != 'cells'):14d}"
        )
        if c["slabs_total"]:
            lines.append("")
            lines.append(
                f"batched R0 traffic: {c['slab_cells_touched']} of "
                f"{c['slab_cells_dense']} dense cells touched "
                f"({self.traffic_ratio():.2f}x cut, "
                f"{self.slab_skip_fraction():.1%} skipped, "
                f"{c['slabs_skipped']}/{c['slabs_total']} slabs fully skipped)"
            )
            lines.append(f"bytes moved (model): {c['bytes_moved']}")
        if c["fr_windows"]:
            pruned_s = c["r0_splits_pruned"]
            total_s = c["r0_splits_total"]
            frac_s = pruned_s / total_s if total_s else 0.0
            lines.append(
                f"four-russians: {c['fr_windows']} windows, "
                f"{c['fr_lookup_cells']} lookup cells + "
                f"{c['fr_boundary_cells']} boundary cells, "
                f"{c['fr_table_builds']} table builds "
                f"({c['fr_table_cells']} table cells)"
            )
            lines.append(
                f"  pruning: {pruned_s}/{total_s} splits skipped "
                f"({frac_s:.1%}), {c['r0_blocks_pruned']}/"
                f"{c['r0_blocks_total']} lookup blocks skipped"
            )
            fr_q = self.attrs.get("fr_q")
            if fr_q:
                p = predicted_fr_cells(self.n, self.m, int(fr_q))
                mark_l = (
                    ""
                    if c["fr_lookup_cells"] == p["fr_lookup_cells"]
                    else (
                        " (pruned)"
                        if c["fr_lookup_cells"] < p["fr_lookup_cells"]
                        else "  <- MISMATCH"
                    )
                )
                mark_b = (
                    ""
                    if c["fr_boundary_cells"] == p["fr_boundary_cells"]
                    else (
                        " (pruned)"
                        if c["fr_boundary_cells"] < p["fr_boundary_cells"]
                        else "  <- MISMATCH"
                    )
                )
                lines.append(
                    f"  q={fr_q}: predicted lookup {p['fr_lookup_cells']}"
                    f"{mark_l}, predicted boundary "
                    f"{p['fr_boundary_cells']}{mark_b}"
                )
        if c["codegen_compiles"] or c["codegen_cache_hits"]:
            lines.append(
                f"codegen: {c['codegen_compiles']} compiles, "
                f"{c['codegen_cache_hits']} cache hits, "
                f"{c['generated_kernel_cells']} generated-kernel cells"
            )
        if c["tiles_executed"]:
            idle_ms = c["tile_idle_ns"] / 1e6
            lines.append(
                f"tiling: {c['tiles_executed']} tiles over "
                f"{c['tile_wavefronts']} wavefronts, "
                f"{idle_ms:.1f} ms scheduler idle, "
                f"{c['tile_slab_bytes']} slab bytes"
            )
        ws_line = (
            f"workspace: {c['ws_grow_events']} grows, "
            f"{c['ws_bytes_allocated']} bytes allocated, "
            f"{c['ws_stack_reuses']} stack reuses"
        )
        if c["workspace_bytes"]:
            ws_line += f", {c['workspace_bytes']} bytes high-water"
        lines.append(ws_line)
        if c["checkpoint_saves"] or c["retries"] or c["faults_injected"]:
            lines.append(
                f"robustness: {c['checkpoint_saves']} checkpoint saves "
                f"({c['checkpoint_bytes']} bytes), {c['retries']} retries, "
                f"{c['faults_injected']} faults injected"
            )
        if c["requests_served"] or c["cache_hits"] or c["cache_misses"]:
            looked_up = c["cache_hits"] + c["cache_misses"]
            rate = c["cache_hits"] / looked_up if looked_up else 0.0
            lines.append(
                f"serving: {c['requests_served']} requests in "
                f"{c['batches_dispatched']} batches; cache "
                f"{c['cache_hits']}/{looked_up} hits ({rate:.1%}), "
                f"{c['cache_evictions']} evictions"
            )
        if c["requests_shed"] or c["worker_deaths"] or c["worker_respawns"]:
            lines.append(
                f"sharding: {c['requests_shed']} shed, "
                f"{c['requests_rerouted']} rerouted, "
                f"{c['worker_deaths']} worker deaths, "
                f"{c['worker_respawns']} respawns"
            )
        roof = self.roofline_summary(machine)
        lines.append("")
        lines.append(
            f"roofline ({roof['machine']}, {roof['level']}): predicted AI "
            f"{roof['predicted_ai']:.4f} -> {roof['predicted_gflops']:.1f} GFLOPS"
        )
        if roof["achieved_ai"] is not None:
            lines.append(
                f"achieved AI {roof['achieved_ai']:.4f} -> "
                f"{roof['achieved_gflops_bound']:.1f} GFLOPS bound "
                f"({roof['bound']}-bound)"
            )
        if "measured_gflops" in roof:
            lines.append(f"measured: {roof['measured_gflops']:.3f} GFLOPS")
        return "\n".join(lines)
