"""Lightweight span tracer: see inside a BPMax run without paying for it.

One global :class:`Tracer` records *spans* (named, timed, attributed,
nested regions — ``with trace("r0.batched", window=(i1, j1)):``) and
*events* (zero-duration marks — checkpoint writes, retries, injected
faults, rank recoveries) into a bounded ring buffer.  The design goals,
in order:

1. **near-zero overhead when disabled** — the default.  ``trace()``
   checks one module-global flag and returns a shared no-op context
   manager; ``event()`` returns immediately.  No allocation, no clock
   read, no lock.
2. **cheap when enabled** — one ``perf_counter`` read at entry and exit,
   one record appended to a ``deque(maxlen=capacity)``.  The ring buffer
   bounds memory for arbitrarily long runs (oldest spans drop first).
3. **thread-safe nesting** — the current span stack is thread-local, so
   pool workers attach their spans under whatever span their thread
   opened; ``deque.append`` is atomic under the GIL.

Finished spans are flat records carrying ``(sid, parent)`` links;
:meth:`Tracer.tree` reassembles the forest and :meth:`Tracer.save`
exports JSON for offline analysis (``bpmax run --trace out.json``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "SpanRecord",
    "Tracer",
    "trace",
    "event",
    "tracing",
    "get_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span or event, as stored in the ring buffer.

    ``dur_s`` is 0.0 and ``kind`` is ``"event"`` for point events.
    ``parent`` is the sid of the enclosing span (0 = top level).
    """

    sid: int
    parent: int
    name: str
    t0_s: float
    dur_s: float
    kind: str = "span"
    thread: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "t0_s": self.t0_s,
            "dur_s": self.dur_s,
            "kind": self.kind,
            "thread": self.thread,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span: context manager recording itself on exit."""

    __slots__ = ("_tracer", "sid", "name", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.sid = tracer._next_id()
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._push(self.sid)
        self._t0 = self._tracer.clock()
        return self

    def __exit__(self, exc_type, *exc) -> None:
        t1 = self._tracer.clock()
        tracer = self._tracer
        parent = tracer._pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        tracer._record(
            SpanRecord(
                sid=self.sid,
                parent=parent,
                name=self.name,
                t0_s=self._t0 - tracer.epoch,
                dur_s=t1 - self._t0,
                kind="span",
                thread=threading.get_ident() & 0xFFFF,
                attrs=self.attrs,
            )
        )


class Tracer:
    """A bounded-ring-buffer span recorder.

    Parameters
    ----------
    capacity: maximum retained records; older spans are evicted first.
    clock: injectable time source (tests use a fake clock for exact
        durations); defaults to :func:`time.perf_counter`.
    """

    def __init__(self, capacity: int = 65536, clock=time.perf_counter) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = False
        self.capacity = capacity
        self.clock = clock
        self.epoch = clock()
        self._ring: deque[SpanRecord] = deque(maxlen=capacity)
        self._ids = 0
        self._idlock = threading.Lock()
        self._tls = threading.local()

    # -- bookkeeping ---------------------------------------------------------

    def _next_id(self) -> int:
        with self._idlock:
            self._ids += 1
            return self._ids

    def _stack(self) -> list[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _push(self, sid: int) -> None:
        self._stack().append(sid)

    def _pop(self) -> int:
        stack = self._stack()
        stack.pop()
        return stack[-1] if stack else 0

    def _current(self) -> int:
        stack = self._stack()
        return stack[-1] if stack else 0

    def _record(self, rec: SpanRecord) -> None:
        self._ring.append(rec)

    # -- recording API -------------------------------------------------------

    def trace(self, name: str, **attrs) -> "_Span | _NullSpan":
        """Open a span (as a context manager); no-op while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a zero-duration event under the current span."""
        if not self.enabled:
            return
        self._record(
            SpanRecord(
                sid=self._next_id(),
                parent=self._current(),
                name=name,
                t0_s=self.clock() - self.epoch,
                dur_s=0.0,
                kind="event",
                thread=threading.get_ident() & 0xFFFF,
                attrs=attrs,
            )
        )

    # -- inspection / export -------------------------------------------------

    def records(self) -> tuple[SpanRecord, ...]:
        """All retained records, oldest first."""
        return tuple(self._ring)

    def spans(self, name: str | None = None) -> tuple[SpanRecord, ...]:
        """Retained spans (not events), optionally filtered by name."""
        return tuple(
            r
            for r in self._ring
            if r.kind == "span" and (name is None or r.name == name)
        )

    def events(self, name: str | None = None) -> tuple[SpanRecord, ...]:
        """Retained events, optionally filtered by name."""
        return tuple(
            r
            for r in self._ring
            if r.kind == "event" and (name is None or r.name == name)
        )

    def clear(self) -> None:
        self._ring.clear()

    def tree(self) -> list[dict[str, Any]]:
        """Reassemble the span forest as nested dicts.

        A record whose parent was evicted from the ring (or whose parent
        is 0) becomes a root.  Children appear in recording order.
        """
        nodes = {r.sid: {**r.as_dict(), "children": []} for r in self._ring}
        roots: list[dict[str, Any]] = []
        for r in self._ring:
            node = nodes[r.sid]
            parent = nodes.get(r.parent)
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def export(self) -> dict[str, Any]:
        """JSON-serializable dump of the retained records."""
        return {
            "version": 1,
            "capacity": self.capacity,
            "count": len(self._ring),
            "spans": [r.as_dict() for r in self._ring],
        }

    def save(self, path: str | os.PathLike) -> None:
        """Write :meth:`export` as JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.export(), fh, indent=2)
            fh.write("\n")

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, records={len(self._ring)}/{self.capacity})"


#: The process-wide tracer every instrumented layer reports to.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The global tracer (disabled by default)."""
    return _TRACER


def trace(name: str, **attrs):
    """Open a span on the global tracer; a shared no-op when disabled."""
    if not _TRACER.enabled:
        return _NULL_SPAN
    return _Span(_TRACER, name, attrs)


def event(name: str, **attrs) -> None:
    """Record an event on the global tracer; returns immediately when
    disabled."""
    if not _TRACER.enabled:
        return
    _TRACER.event(name, **attrs)


class tracing:
    """Enable the global tracer for a ``with`` block.

    >>> with tracing() as tr:
    ...     result = bpmax("GCGC", "GCGC")  # doctest: +SKIP
    >>> tr.spans("engine.run")  # doctest: +SKIP

    ``capacity`` replaces the ring buffer (previous records are kept only
    when the capacity is unchanged); nesting restores the previous
    enabled state on exit, so a traced region inside a traced region
    stays traced.
    """

    def __init__(self, capacity: int | None = None, clear: bool = True) -> None:
        self._capacity = capacity
        self._clear = clear
        self._prev = False

    def __enter__(self) -> Tracer:
        tr = _TRACER
        self._prev = tr.enabled
        if self._capacity is not None and self._capacity != tr.capacity:
            tr.capacity = self._capacity
            tr._ring = deque(tr._ring, maxlen=self._capacity)
        elif self._clear and not self._prev:
            tr.clear()
        tr.enabled = True
        return tr

    def __exit__(self, *exc) -> None:
        _TRACER.enabled = self._prev


def iter_tree(nodes: list[dict[str, Any]]) -> Iterator[dict[str, Any]]:
    """Depth-first walk over :meth:`Tracer.tree` output (helper for tests)."""
    for node in nodes:
        yield node
        yield from iter_tree(node["children"])
